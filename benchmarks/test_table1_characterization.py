"""Benchmark T1 — the paper's Table I workload characterization.

One benchmark per kernel: runs the kernel at its characterization
configuration and asserts the phases the paper names as the bottleneck
jointly dominate the measured breakdown.  This single file covers the
per-kernel evaluation claims E1-E5, E7, E8, and E14 (the quantitative
bottleneck shares quoted in section V).
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.characterization import (
    EXPECTATIONS,
    characterize_kernel,
)


@pytest.mark.parametrize(
    "expectation", EXPECTATIONS, ids=[e.kernel for e in EXPECTATIONS]
)
def test_kernel_characterization(benchmark, expectation):
    row = run_once(benchmark, characterize_kernel, expectation)
    assert row.matches_paper, (
        f"{row.kernel}: paper claims {expectation.paper_bottleneck!r}; "
        f"measured {row.fractions}"
    )
    benchmark.extra_info["dominant_phase"] = row.dominant_phase
    benchmark.extra_info["claimed_phase_share"] = round(row.combined_share, 3)
    benchmark.extra_info["paper_bottleneck"] = row.paper_bottleneck
