"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not paper artifacts — these regenerate the trade-off numbers behind the
suite's own implementation decisions (NN index, heuristic inflation,
particle density, ICP matcher, roadmap sizing, bidirectional search,
ray-cast method).
"""

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.experiments.ablations import (
    ablate_bidirectional,
    ablate_bo_acquisition,
    ablate_ekf_landmarks,
    ablate_epsilon,
    ablate_icp_correspondence,
    ablate_icp_metric,
    ablate_mpc_horizon,
    ablate_nn_strategy,
    ablate_particles,
    ablate_prm_roadmap,
    ablate_raycast_method,
    ablate_symbolic_heuristics,
)


def test_nn_strategy(benchmark):
    result = run_once(benchmark, ablate_nn_strategy)
    assert result.both_found
    # The KD-tree prunes: it must touch far fewer candidates.
    assert result.kdtree_visits < result.linear_visits / 2
    benchmark.extra_info["kdtree_time"] = round(result.kdtree_time, 3)
    benchmark.extra_info["linear_time"] = round(result.linear_time, 3)
    benchmark.extra_info["visit_ratio"] = round(
        result.linear_visits / max(result.kdtree_visits, 1), 1
    )


def test_epsilon_tradeoff(benchmark):
    points = run_once(benchmark, ablate_epsilon)
    costs = [p.cost for p in points]
    expansions = [p.expansions for p in points]
    # Suboptimality bound: every inflated cost within epsilon * optimal.
    optimal = costs[0]
    for p in points:
        assert p.cost <= p.epsilon * optimal + 1e-9
    # Search effort falls (weakly) as epsilon rises, and substantially
    # from plain A* to the largest inflation.
    assert expansions[-1] < expansions[0] / 2
    assert all(b <= a * 1.2 for a, b in zip(expansions[:-1], expansions[1:]))
    benchmark.extra_info["expansions"] = expansions
    benchmark.extra_info["costs"] = [round(c, 1) for c in costs]


def test_particle_scaling(benchmark):
    points = run_once(benchmark, ablate_particles)
    # Ray-cast work scales roughly linearly with particle count.
    checks = [p.raycast_checks for p in points]
    counts = [p.particles for p in points]
    ratio_low = checks[0] / counts[0]
    ratio_high = checks[-1] / counts[-1]
    assert 0.5 < ratio_high / ratio_low < 2.0
    # The densest filter converges.
    assert points[-1].spread_after < 1.0
    benchmark.extra_info["checks_per_particle"] = [
        round(c / n) for c, n in zip(checks, counts)
    ]
    benchmark.extra_info["errors"] = [round(p.error, 2) for p in points]


def test_icp_correspondence(benchmark):
    result = run_once(benchmark, ablate_icp_correspondence)
    # Same answer either way...
    assert result.both_converged_close
    assert result.translation_gap < 5e-3
    # ...but the vectorized matcher wins at these sizes (the reason srec
    # uses it by default).
    assert result.brute_time < result.kdtree_time
    benchmark.extra_info["kdtree_time"] = round(result.kdtree_time, 3)
    benchmark.extra_info["brute_time"] = round(result.brute_time, 3)


def test_prm_roadmap_size(benchmark):
    points = run_once(benchmark, ablate_prm_roadmap)
    # Bigger roadmaps succeed (the largest always must).
    assert points[-1].found
    # Offline cost grows with samples.
    assert points[-1].offline_time > points[0].offline_time
    # The online search/L2/NN share grows with roadmap size (EXPERIMENTS.md
    # deviation #2: toward the paper's search-dominated regime).
    assert points[-1].online_search_share > points[0].online_search_share
    benchmark.extra_info["search_shares"] = [
        round(p.online_search_share, 2) for p in points
    ]


def test_bidirectional(benchmark):
    result = run_once(benchmark, ablate_bidirectional)
    assert len(result.seeds) >= 3
    # RRT-Connect solves with no more samples on average.
    assert np.mean(result.connect_samples) <= np.mean(result.rrt_samples)
    benchmark.extra_info["rrt_samples"] = result.rrt_samples
    benchmark.extra_info["connect_samples"] = result.connect_samples


def test_ekf_state_scaling(benchmark):
    points = run_once(benchmark, ablate_ekf_landmarks)
    # Per-update cost grows superlinearly with landmark count: the
    # covariance algebra is O(state_dim^2)+ per observation, and more
    # landmarks also mean more observations per step.
    t_small = points[0].time_per_update
    t_large = points[-1].time_per_update
    n_ratio = points[-1].landmarks / points[0].landmarks
    assert t_large > t_small * n_ratio
    benchmark.extra_info["per_update_ms"] = [
        round(p.time_per_update * 1e3, 2) for p in points
    ]


def test_symbolic_heuristics(benchmark):
    points = run_once(benchmark, ablate_symbolic_heuristics)
    by_kind = {p.heuristic: p for p in points}
    # All three find plans of the same length on this domain (hmax and
    # goal-count are optimality-safe here; hadd happens to agree).
    lengths = {p.plan_length for p in points}
    assert len(lengths) == 1
    # The informed delete-relaxation heuristic expands far fewer nodes.
    assert by_kind["hadd"].expansions < by_kind["goal-count"].expansions / 2
    benchmark.extra_info["expansions"] = {
        p.heuristic: p.expansions for p in points
    }


def test_icp_metric(benchmark):
    result = run_once(benchmark, ablate_icp_metric)
    # Both metrics register within 2 cm...
    assert result.p2p_error < 0.02
    assert result.p2plane_error < 0.02
    # ...and point-to-plane needs no more iterations on the planar scene.
    assert result.p2plane_iterations <= result.p2p_iterations
    benchmark.extra_info["iterations"] = {
        "point_to_point": result.p2p_iterations,
        "point_to_plane": result.p2plane_iterations,
    }


def test_bo_acquisition(benchmark):
    result = run_once(benchmark, ablate_bo_acquisition)
    # Both acquisitions land within half a meter of the goal on average.
    assert result.ucb_best > -0.5
    assert result.ei_best > -0.5
    benchmark.extra_info["ucb_best"] = round(result.ucb_best, 4)
    benchmark.extra_info["ei_best"] = round(result.ei_best, 4)


def test_mpc_horizon(benchmark):
    points = run_once(benchmark, ablate_mpc_horizon)
    # Optimization cost grows with horizon length...
    assert points[-1].roi_time > points[0].roi_time * 1.5
    # ...and tracking does not get worse for it (longer lookahead sees
    # the curves earlier).
    assert points[-1].mean_error <= points[0].mean_error * 1.2
    benchmark.extra_info["mean_errors"] = [
        round(p.mean_error, 3) for p in points
    ]
    benchmark.extra_info["times"] = [round(p.roi_time, 3) for p in points]


def test_raycast_method(benchmark):
    result = run_once(benchmark, ablate_raycast_method)
    # The sampled caster only ever overshoots (it can miss a wall, never
    # invent one)...
    assert result.undershoots == 0
    # ...its typical error is within one step...
    assert result.median_disagreement <= 0.125 + 1e-9
    # ...but a small fraction of rays tunnel through thin walls crossed
    # near corners — the exact traverser exists for exactly this reason.
    assert result.tunneled_rays < result.rays * 0.1
    benchmark.extra_info["sampled_time"] = round(result.sampled_time, 3)
    benchmark.extra_info["exact_time"] = round(result.exact_time, 3)
    benchmark.extra_info["tunneled"] = (
        f"{result.tunneled_rays}/{result.rays}"
    )
    benchmark.extra_info["max_disagreement"] = round(
        result.max_disagreement, 4
    )
