"""Benchmark F21 — Fig. 21: performance vs educational libraries.

The paper compares its optimized pp2d against PythonRobotics (357x-3469x
slower) and CppRobotics (74x-13576x slower) on the educational demo map
scaled by factors 1..64, showing the educational implementations are
"far from real-time" and fall further behind as the map grows.

Here both contestants run in CPython (see DESIGN.md section 2), so the
asserted shape is: a large constant-factor gap (>10x) that *grows* with
map scale, plus near-real-time absolute numbers for the optimized
planner on the base map.
"""

from benchmarks.conftest import run_once
from repro.experiments.fig21_comparison import run_fig21


def test_fig21_speedup_grows_with_scale(benchmark):
    points = run_once(
        benchmark, run_fig21, scales=[1, 2, 4, 8], educational_max_scale=2
    )
    with_baseline = [p for p in points if p.speedup is not None]
    assert len(with_baseline) == 2
    # Orders-of-magnitude class gap even inside one runtime.
    assert with_baseline[0].speedup > 10.0
    # The gap grows with scale (the paper's central trend).
    assert with_baseline[1].speedup > with_baseline[0].speedup
    # The optimized planner is near-real-time on the base map.
    assert points[0].optimized_time < 0.1
    # And its own scaling is sane: superlinear in cells but far from the
    # educational baseline's blow-up.
    assert points[-1].optimized_time < 5.0
    benchmark.extra_info["optimized_times"] = [
        f"{p.optimized_time:.3e}" for p in points
    ]
    benchmark.extra_info["educational_times"] = [
        f"{p.educational_time:.3e}" if p.educational_time else "skipped"
        for p in points
    ]
    benchmark.extra_info["speedups"] = [
        round(p.speedup, 1) if p.speedup else None for p in points
    ]
