"""Benchmark E9/E10 — RRT vs RRT* vs RRT+shortcutting (sections V.9-V.10).

Paper claims reproduced in shape:
* RRT* is significantly slower than RRT (paper: up to 8x) ...
* ... but produces shorter paths (paper: 1.6x on average);
* RRT with post-processing lands between them in path cost, at little
  extra time over RRT.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments.figures_planning import run_rrt_family


def test_rrt_family_time_quality_tradeoff(benchmark):
    comparison = run_once(benchmark, run_rrt_family, seeds=[1, 2, 4, 5, 7])
    assert len(comparison.seeds) >= 3, "too few matched successes"
    # E9: slower but shorter.
    slowdown = comparison.slowdown()
    cost_ratio = comparison.cost_ratio()
    assert slowdown > 1.5, f"RRT* only {slowdown:.1f}x slower"
    assert cost_ratio > 1.2, f"RRT* paths only {cost_ratio:.2f}x shorter"
    # E10: rrtpp cost between rrtstar and rrt; time closer to rrt.
    assert comparison.rrtpp_between()
    rrtpp_time = float(np.mean(comparison.rrtpp_times))
    rrtstar_time = float(np.mean(comparison.rrtstar_times))
    assert rrtpp_time < rrtstar_time
    benchmark.extra_info["matched_seeds"] = comparison.seeds
    benchmark.extra_info["rrtstar_slowdown"] = round(slowdown, 2)
    benchmark.extra_info["cost_ratio_rrt_over_rrtstar"] = round(cost_ratio, 2)
    benchmark.extra_info["mean_costs"] = {
        "rrt": round(float(np.mean(comparison.rrt_costs)), 2),
        "rrtpp": round(float(np.mean(comparison.rrtpp_costs)), 2),
        "rrtstar": round(float(np.mean(comparison.rrtstar_costs)), 2),
    }
