"""Benchmark E11 — symbolic planning parallelism (sections V.11-V.12).

The paper: "sym-fext exhibits a higher level of parallelism (~3.2x)
since it has more valid actions.  Every action translates into an edge in
the graph representation ... the neighbors of every node at every step
can be evaluated in parallel."  The measurable proxy is the mean
branching factor of the two domains under the same planner.
"""

from benchmarks.conftest import run_once
from repro.experiments.figures_planning import run_symbolic_branching


def test_symbolic_branching_ratio(benchmark):
    result = run_once(benchmark, run_symbolic_branching)
    assert result.fext_branching > result.blkw_branching
    # Paper measures ~3.2x; accept the same order (2x-6x).
    assert 2.0 < result.ratio < 6.0, f"ratio {result.ratio:.1f}x"
    benchmark.extra_info["blkw_branching"] = round(result.blkw_branching, 2)
    benchmark.extra_info["fext_branching"] = round(result.fext_branching, 2)
    benchmark.extra_info["ratio"] = round(result.ratio, 2)
