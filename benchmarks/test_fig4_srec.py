"""Benchmark F4 — Fig. 4: ICP scene reconstruction of the living room.

The paper's figure shows the scene reconstructed from the robot's scans.
With simulated scans we can assert what the figure can only show: the
estimated camera poses track ground truth and the fused model lies on
the true scene surface.
"""

from benchmarks.conftest import run_once
from repro.experiments.figures_perception import run_fig4_srec


def test_fig4_scene_reconstruction(benchmark):
    fig = run_once(benchmark, run_fig4_srec, seed=0)
    # Registration: every frame's estimated camera position within 5 cm.
    assert all(e < 0.05 for e in fig.pose_errors), fig.pose_errors
    # The fused model hugs the true scene surface.
    assert fig.model_rms_to_scene < 0.05
    assert fig.model_points > 1000
    benchmark.extra_info["final_pose_error"] = round(fig.final_pose_error, 4)
    benchmark.extra_info["model_points"] = fig.model_points
    benchmark.extra_info["model_rms_to_scene"] = round(
        fig.model_rms_to_scene, 4
    )
