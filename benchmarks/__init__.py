"""Benchmark package: one benchmark per paper table/figure plus ablations.

The package marker lets ``pytest benchmarks/`` resolve the shared
``benchmarks.conftest`` helpers regardless of how pytest is invoked.
"""
