"""Benchmark F18 — Fig. 18: CEM reward over learning.

The paper runs CEM "for five iterations and draw[s] fifteen samples in
every iteration" on the ball-throwing robot and shows reward improving
(higher is better) over the samples.
"""

from benchmarks.conftest import run_once
from repro.experiments.figures_control import run_fig18_cem


def test_fig18_cem_reward_improves(benchmark):
    curve = run_once(benchmark, run_fig18_cem, seed=0)
    assert len(curve.reward_history) == 5  # the paper's 5 iterations
    # Reward (negative landing error) improves and ends near-perfect.
    assert curve.best_reward >= curve.first_reward
    assert curve.best_reward > -0.5  # within half a meter of the goal
    # Monotone-ish improvement: the last iteration beats the first.
    assert curve.reward_history[-1] >= curve.reward_history[0]
    benchmark.extra_info["reward_history"] = [
        round(r, 4) for r in curve.reward_history
    ]
