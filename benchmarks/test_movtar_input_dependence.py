"""Benchmark E6 — movtar's input-dependent bottleneck (section V.6).

The paper: "The performance of the kernel is largely dependent on the
inputset.  In large environments, the kernel exhibits virtually the same
characteristics as pp3d.  In small environments, however, ... the
contribution of the heuristic calculation latency ... grows up to 62%."

The benchmark sweeps environment size and asserts the *direction* of the
trend: the backward-Dijkstra precompute share is largest in the smallest
environment and decays as the environment (and therefore the search)
grows.  The absolute 62% depends on the C++ search's per-expansion cost
relative to Dijkstra's per-cell cost; the Python balance differs (noted
in EXPERIMENTS.md).
"""

from benchmarks.conftest import run_once
from repro.experiments.figures_planning import run_movtar_input_dependence


def test_movtar_bottleneck_is_input_dependent(benchmark):
    points = run_once(benchmark, run_movtar_input_dependence, seed=0)
    assert len(points) == 4
    shares = [p.heuristic_share for p in points]
    # Strictly input-dependent: small env has the largest heuristic share,
    # and the share decays monotonically from the smallest to the largest
    # environment.
    assert shares[0] == max(shares)
    assert shares[0] > 2.0 * shares[-1]
    # Large environments are search-bound, like pp3d.
    assert points[-1].search_share > 0.8
    benchmark.extra_info["heuristic_shares"] = [round(s, 3) for s in shares]
    benchmark.extra_info["environments"] = [
        f"{p.rows}x{p.cols}" for p in points
    ]
