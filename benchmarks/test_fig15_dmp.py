"""Benchmark F15 — Fig. 15: DMP trajectory and velocity generation.

The paper's figure shows the DMP-generated trajectory tracking the
demonstrated reference (left) and the corresponding oscillating velocity
profile (right).  The benchmark asserts both properties.
"""

from benchmarks.conftest import run_once
from repro.experiments.figures_control import run_fig15_dmp


def test_fig15_dmp_tracks_reference(benchmark):
    fig = run_once(benchmark, run_fig15_dmp, seed=0)
    # Trajectory: tracks a ~15 m S-curve within ~1 m RMS and nails the end.
    assert fig.rms_error < 1.2
    assert fig.endpoint_error < 0.3
    # Velocity: a real profile — bounded speed, with the lateral
    # oscillations the S-curve demands (Fig. 15 right panel).
    assert 0.0 < fig.max_velocity < 60.0
    assert fig.velocity_sign_changes >= 2
    benchmark.extra_info["rms_error"] = round(fig.rms_error, 3)
    benchmark.extra_info["endpoint_error"] = round(fig.endpoint_error, 4)
