"""Benchmark F2 — Fig. 2: particle filter convergence.

The paper evaluates pfl in five different parts of the Wean Hall
building; Fig. 2 shows the particle cloud collapsing from building-wide
uncertainty onto the robot's pose.  The benchmark runs all five regions
and asserts the cloud converges (spread drops by >=10x) in at least four
of them — global localization in self-similar corridors can legitimately
lock a minority of runs onto a symmetric mode.
"""

from benchmarks.conftest import run_once
from repro.experiments.figures_perception import run_fig2_pfl


def test_fig2_particle_convergence(benchmark):
    results = run_once(benchmark, run_fig2_pfl, n_regions=5)
    assert len(results) == 5
    converged = [r for r in results if r.converged]
    assert len(converged) >= 4, [
        (r.region, r.spread_before, r.spread_after) for r in results
    ]
    # In converged regions, spread collapses from building scale (~10 m+)
    # to sub-meter.
    for r in converged:
        assert r.spread_before > 5.0
        assert r.spread_after < 1.0
    # At least three regions also localize near the true pose (the
    # remainder may converge to a symmetric corridor mode).
    accurate = [r for r in converged if r.final_error < 2.0]
    assert len(accurate) >= 3
    benchmark.extra_info["spreads_after"] = [
        round(r.spread_after, 3) for r in results
    ]
    benchmark.extra_info["errors"] = [round(r.final_error, 2) for r in results]
