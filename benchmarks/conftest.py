"""Shared benchmark configuration.

Each benchmark regenerates one of the paper's evaluation artifacts (see
DESIGN.md section 4 for the experiment index) and asserts the *shape* of
the paper's claim — who dominates, who wins, which way a trend runs.
Workload construction happens outside the timed region, mirroring the
paper's ROI discipline; heavy experiments run a single round.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark ``fn`` with exactly one timed execution.

    The suite's kernels are macro-benchmarks (0.1 s - 10 s); statistical
    repetition belongs to a dedicated performance rig, not the CI gate.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
