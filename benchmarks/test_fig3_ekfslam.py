"""Benchmark F3 — Fig. 3: EKF-SLAM on the six-landmark loop.

The paper's figure shows the filter recovering the robot trajectory
(blue) and the six landmark positions (green) under Gaussian measurement
noise, with uncertainty ellipses (red) quantifying the remaining doubt.
The benchmark asserts all of that quantitatively.
"""

from benchmarks.conftest import run_once
from repro.experiments.figures_perception import run_fig3_ekfslam


def test_fig3_ekfslam_estimates(benchmark):
    fig = run_once(benchmark, run_fig3_ekfslam, seed=0)
    # Localization: final pose error well under a meter on a ~50 m loop.
    assert fig.final_pose_error < 0.5
    # Mapping: all six landmarks placed, each within a meter.
    assert len(fig.landmark_uncertainties) == 6
    assert fig.mean_landmark_error < 0.5
    # Uncertainty is finite and small (the red ellipses shrink with
    # evidence; landmarks start at effectively infinite covariance).
    assert all(u < 1.0 for u in fig.landmark_uncertainties)
    assert fig.final_pose_uncertainty < 1.0
    benchmark.extra_info["final_pose_error"] = round(fig.final_pose_error, 4)
    benchmark.extra_info["mean_landmark_error"] = round(
        fig.mean_landmark_error, 4
    )
