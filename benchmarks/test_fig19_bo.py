"""Benchmark F19 + E16 — Fig. 19: BO reward; bo vs cem compute.

Fig. 19 shows reward improving over "the 45 iterations of the learning
process".  Section V.16 adds the cross-kernel claims: bo is far more
compute-intensive than cem, and its sort handles more metadata (paper:
~6x more expensive).
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments.figures_control import run_bo_vs_cem, run_fig19_bo


def test_fig19_bo_reward_improves(benchmark):
    curve = run_once(benchmark, run_fig19_bo, seed=0)
    assert len(curve.reward_history) == 45  # the paper's iteration count
    assert curve.best_reward > -0.3
    # The best of the second half beats the best of the first few
    # (exploration) iterations.
    early = max(curve.reward_history[:5])
    late = max(curve.reward_history[20:])
    assert late >= early
    benchmark.extra_info["best_reward"] = round(curve.best_reward, 4)


def test_e16_bo_heavier_than_cem(benchmark):
    result = run_once(benchmark, run_bo_vs_cem, seed=0)
    # bo does far more compute overall...
    assert result.time_ratio > 2.0
    # ...and its sorts move much more metadata (paper: ~6x; here the
    # candidate pool dwarfs cem's 15 samples).
    assert result.sort_ratio > 6.0
    benchmark.extra_info["time_ratio"] = round(result.time_ratio, 1)
    benchmark.extra_info["sort_ratio"] = round(result.sort_ratio, 1)
