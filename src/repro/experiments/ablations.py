"""Ablation studies for the suite's design choices.

The paper's characterization motivates several implementation decisions
(KD-tree nearest neighbors, inflated-heuristic search, sampled ray
casting, ICP correspondence strategy, roadmap sizing).  Each ablation
here swaps one choice and measures the consequence, so the trade-offs
DESIGN.md asserts are regenerable numbers rather than folklore.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.harness.profiler import PhaseProfiler


@dataclass
class NnStrategyAblation:
    """RRT nearest-neighbor index: KD-tree versus linear scan."""

    kdtree_time: float
    linear_time: float
    kdtree_visits: int
    linear_visits: int
    both_found: bool


def ablate_nn_strategy(seed: int = 1, samples: int = 4000) -> NnStrategyAblation:
    """Run matched hard RRT queries with both NN strategies.

    The query is drawn long (3.5-5.5 rad) so the tree grows to thousands
    of nodes — the regime where the KD-tree's pruning shows.  The
    wall-clock comparison is recorded too: numpy's vectorized linear scan
    is competitive at small n, which is itself a finding worth keeping.
    """
    from repro.envs.arm_maps import default_arm
    from repro.planning.prm import distant_free_pair, select_workspace
    from repro.planning.rrt import RRT

    workspace = select_workspace("map-c")
    arm = default_arm(size=workspace.size)
    rng = np.random.default_rng(seed)
    start, goal = distant_free_pair(
        arm, workspace, rng, min_distance=3.5, max_distance=5.5
    )
    results = {}
    for strategy in ("kdtree", "linear"):
        prof = PhaseProfiler()
        planner = RRT(
            arm,
            workspace,
            goal_bias=0.05,
            goal_threshold=0.8,
            max_samples=samples,
            nn_strategy=strategy,
            rng=np.random.default_rng(seed),
            profiler=prof,
        )
        t0 = time.perf_counter()
        outcome = planner.plan(start, goal)
        results[strategy] = (
            time.perf_counter() - t0,
            prof.counters.get("nn_node_visits", 0),
            outcome.found,
        )
    return NnStrategyAblation(
        kdtree_time=results["kdtree"][0],
        linear_time=results["linear"][0],
        kdtree_visits=results["kdtree"][1],
        linear_visits=results["linear"][1],
        both_found=results["kdtree"][2] and results["linear"][2],
    )


@dataclass
class EpsilonPoint:
    """One Weighted A* inflation setting on the pp2d workload."""

    epsilon: float
    cost: float
    expansions: int


def ablate_epsilon(
    epsilons: Optional[List[float]] = None, seed: int = 0
) -> List[EpsilonPoint]:
    """Sweep WA* inflation on one pp2d query (cost vs effort trade-off)."""
    from repro.envs.mapgen import city_like
    from repro.geometry.collision import footprint_points
    from repro.planning.pp2d import far_apart_free_cells, plan_2d

    if epsilons is None:
        epsilons = [1.0, 1.5, 2.0, 3.0, 5.0]
    grid = city_like(rows=128, cols=128, seed=seed)
    rng = np.random.default_rng(seed)
    clearance = footprint_points(5.0, 5.0, grid.resolution)
    start, goal = far_apart_free_cells(grid, rng, clearance)
    points = []
    for epsilon in epsilons:
        result = plan_2d(grid, start, goal, epsilon=epsilon)
        if not result.found:
            raise RuntimeError(f"pp2d failed at epsilon={epsilon}")
        points.append(
            EpsilonPoint(
                epsilon=epsilon, cost=result.cost,
                expansions=result.expansions,
            )
        )
    return points


@dataclass
class ParticlePoint:
    """One pfl particle-count setting."""

    particles: int
    raycast_checks: int
    roi_time: float
    error: float
    spread_after: float


def ablate_particles(
    counts: Optional[List[int]] = None, seed: int = 0
) -> List[ParticlePoint]:
    """Sweep pfl's particle count.

    Ray-cast work must scale linearly with particles (each particle casts
    every beam), and localization reliability improves with density —
    the knob the paper's ray-casting-accelerator discussion turns.
    """
    from repro.harness.runner import run_kernel

    if counts is None:
        counts = [250, 500, 1000, 2000]
    points = []
    for n in counts:
        result = run_kernel(
            "pfl", particles=n, steps=20, map_rows=100, map_cols=120,
            seed=seed,
        )
        points.append(
            ParticlePoint(
                particles=n,
                raycast_checks=result.profiler.counters.get(
                    "raycast_cell_checks", 0
                ),
                roi_time=result.roi_time,
                error=result.output["error"],
                spread_after=result.output["spread_after"],
            )
        )
    return points


@dataclass
class IcpCorrespondenceAblation:
    """ICP correspondence: instrumented KD-tree vs vectorized brute force."""

    kdtree_time: float
    brute_time: float
    translation_gap: float
    both_converged_close: bool


def ablate_icp_correspondence(seed: int = 0) -> IcpCorrespondenceAblation:
    """Same registration problem, both matchers: equal answer, different cost."""
    from repro.envs.pointcloud import living_room
    from repro.geometry.transforms import RigidTransform3D, rotation_matrix_3d
    from repro.perception.icp import icp

    rng = np.random.default_rng(seed)
    scene = living_room(2500, seed=seed)
    true = RigidTransform3D(
        rotation_matrix_3d(0.05, -0.04, 0.06), np.array([0.06, -0.05, 0.04])
    )
    source = true.inverse().apply(scene[:800])
    outcomes = {}
    for method in ("kdtree", "brute"):
        t0 = time.perf_counter()
        result = icp(source, scene, max_iterations=20, correspondence=method)
        outcomes[method] = (time.perf_counter() - t0, result)
    gap = float(
        np.linalg.norm(
            outcomes["kdtree"][1].transform.translation
            - outcomes["brute"][1].transform.translation
        )
    )
    close = all(
        np.linalg.norm(out.transform.translation - true.translation) < 0.02
        for _, out in outcomes.values()
    )
    return IcpCorrespondenceAblation(
        kdtree_time=outcomes["kdtree"][0],
        brute_time=outcomes["brute"][0],
        translation_gap=gap,
        both_converged_close=close,
    )


@dataclass
class RoadmapPoint:
    """One PRM roadmap-size setting."""

    samples: int
    found: bool
    cost: float
    online_search_share: float
    offline_time: float


def ablate_prm_roadmap(
    sample_counts: Optional[List[int]] = None, seed: int = 0
) -> List[RoadmapPoint]:
    """Sweep PRM roadmap size: connectivity, cost, and online breakdown."""
    from repro.harness.runner import run_kernel

    if sample_counts is None:
        sample_counts = [100, 300, 800]
    points = []
    for samples in sample_counts:
        result = run_kernel("prm", samples=samples, seed=seed)
        out = result.output
        fractions = result.profiler.fractions()
        points.append(
            RoadmapPoint(
                samples=samples,
                found=out["result"].found,
                cost=out["result"].cost,
                online_search_share=fractions.get("search", 0.0)
                + fractions.get("l2_norm", 0.0)
                + fractions.get("connect", 0.0),
                offline_time=out["offline_time"],
            )
        )
    return points


@dataclass
class BidirectionalAblation:
    """RRT vs RRT-Connect on matched queries."""

    seeds: List[int]
    rrt_samples: List[int] = field(default_factory=list)
    connect_samples: List[int] = field(default_factory=list)
    rrt_times: List[float] = field(default_factory=list)
    connect_times: List[float] = field(default_factory=list)


def ablate_bidirectional(
    seeds: Optional[List[int]] = None,
) -> BidirectionalAblation:
    """The RRT-Connect extension versus baseline RRT (samples to solve)."""
    from repro.harness.runner import run_kernel

    if seeds is None:
        seeds = [0, 1, 2, 3, 4]
    ablation = BidirectionalAblation(seeds=[])
    for seed in seeds:
        t0 = time.perf_counter()
        rrt = run_kernel("rrt", seed=seed, samples=6000)
        t_rrt = time.perf_counter() - t0
        t0 = time.perf_counter()
        connect = run_kernel("rrtconnect", seed=seed, samples=6000)
        t_connect = time.perf_counter() - t0
        if not (rrt.output.found and connect.output.found):
            continue
        ablation.seeds.append(seed)
        ablation.rrt_samples.append(rrt.output.samples_drawn)
        ablation.connect_samples.append(connect.output.samples_drawn)
        ablation.rrt_times.append(t_rrt)
        ablation.connect_times.append(t_connect)
    return ablation


@dataclass
class EkfScalingPoint:
    """One ekfslam landmark-count setting."""

    landmarks: int
    state_dim: int
    roi_time: float
    time_per_update: float


def ablate_ekf_landmarks(
    counts: Optional[List[int]] = None, seed: int = 0
) -> List[EkfScalingPoint]:
    """Sweep EKF-SLAM's landmark count.

    The paper (footnote 1) notes the matrix sizes scale with the
    measurement problem; here the joint state is 3 + 2n, and the
    covariance updates are O(state_dim^2) per observation, so per-update
    cost must grow superlinearly with n — the scaling that motivates the
    paper's near-cache-compute discussion.
    """
    from repro.harness.runner import run_kernel

    if counts is None:
        counts = [4, 8, 16, 32]
    steps = 80
    points = []
    for n in counts:
        result = run_kernel("ekfslam", landmarks=n, steps=steps, seed=seed)
        points.append(
            EkfScalingPoint(
                landmarks=n,
                state_dim=3 + 2 * n,
                roi_time=result.roi_time,
                time_per_update=result.roi_time / steps,
            )
        )
    return points


@dataclass
class SymbolicHeuristicPoint:
    """One symbolic-heuristic setting on the firefighter domain."""

    heuristic: str
    expansions: int
    plan_length: int
    time: float


def ablate_symbolic_heuristics(
    domain: str = "fext",
) -> List[SymbolicHeuristicPoint]:
    """Compare goal-count vs delete-relaxation heuristics.

    h_add pays a fixpoint per node but expands far fewer nodes; h_max is
    admissible so its plan (like goal-count's on these domains) stays
    optimal-length.
    """
    from repro.planning.symbolic.domains import blocks_world, firefighter
    from repro.planning.symbolic.planner import SymbolicPlanner

    make = firefighter if domain == "fext" else lambda: blocks_world(6)
    points = []
    for kind in ("goal-count", "hmax", "hadd"):
        problem = make()
        t0 = time.perf_counter()
        result = SymbolicPlanner(problem, heuristic=kind).plan()
        elapsed = time.perf_counter() - t0
        if not result.found:
            raise RuntimeError(f"{kind} failed on {domain}")
        points.append(
            SymbolicHeuristicPoint(
                heuristic=kind,
                expansions=result.expansions,
                plan_length=len(result.plan),
                time=elapsed,
            )
        )
    return points


@dataclass
class IcpMetricAblation:
    """Point-to-point vs point-to-plane ICP on a planar-heavy scene."""

    p2p_iterations: int
    p2plane_iterations: int
    p2p_error: float
    p2plane_error: float


def ablate_icp_metric(seed: int = 0) -> IcpMetricAblation:
    """Same registration problem under both error metrics."""
    from repro.envs.pointcloud import living_room
    from repro.geometry.transforms import RigidTransform3D, rotation_matrix_3d
    from repro.perception.icp import icp

    scene = living_room(1800, seed=seed)
    true = RigidTransform3D(
        rotation_matrix_3d(0.05, -0.04, 0.06), np.array([0.08, -0.06, 0.05])
    )
    source = true.inverse().apply(scene[:600])
    outcomes = {}
    for metric in ("point_to_point", "point_to_plane"):
        result = icp(
            source, scene, max_iterations=30, correspondence="brute",
            metric=metric,
        )
        outcomes[metric] = (
            result.iterations,
            float(np.linalg.norm(result.transform.translation
                                 - true.translation)),
        )
    return IcpMetricAblation(
        p2p_iterations=outcomes["point_to_point"][0],
        p2plane_iterations=outcomes["point_to_plane"][0],
        p2p_error=outcomes["point_to_point"][1],
        p2plane_error=outcomes["point_to_plane"][1],
    )


@dataclass
class AcquisitionAblation:
    """BO acquisition function: UCB vs expected improvement."""

    ucb_best: float
    ei_best: float


def ablate_bo_acquisition(
    seeds: Optional[List[int]] = None,
) -> AcquisitionAblation:
    """Both acquisitions on the ball thrower, averaged over seeds."""
    from repro.harness.runner import run_kernel

    if seeds is None:
        seeds = [0, 1, 2]
    ucb = [
        run_kernel("bo", seed=s, acquisition="ucb").output["best_reward"]
        for s in seeds
    ]
    ei = [
        run_kernel("bo", seed=s, acquisition="ei").output["best_reward"]
        for s in seeds
    ]
    return AcquisitionAblation(
        ucb_best=float(np.mean(ucb)), ei_best=float(np.mean(ei))
    )


@dataclass
class MpcHorizonPoint:
    """One MPC lookahead-horizon setting."""

    horizon: int
    mean_error: float
    roi_time: float


def ablate_mpc_horizon(
    horizons: Optional[List[int]] = None, seed: int = 0
) -> List[MpcHorizonPoint]:
    """Sweep the MPC horizon: tracking quality vs optimization cost.

    Longer horizons see more of the reference (better tracking on
    curves) and pay proportionally more in the Riccati recursion — the
    knob behind the paper's "optimization takes >80%" claim.
    """
    from repro.harness.runner import run_kernel

    if horizons is None:
        horizons = [4, 8, 16, 24]
    points = []
    for horizon in horizons:
        result = run_kernel("mpc", horizon=horizon, steps=80, seed=seed)
        points.append(
            MpcHorizonPoint(
                horizon=horizon,
                mean_error=result.output["mean_error"],
                roi_time=result.roi_time,
            )
        )
    return points


@dataclass
class RaycastMethodAblation:
    """Sampled marching vs exact grid traversal.

    Key finding the ablation exists to record: the sampled caster can
    *tunnel* — a ray crossing a one-cell-thick wall near its corner may
    straddle the wall between two consecutive samples and miss the hit
    entirely, so its overshoot is NOT bounded by the step size.  The
    exact traverser visits every crossed cell and cannot tunnel.
    """

    sampled_time: float
    exact_time: float
    max_disagreement: float
    median_disagreement: float
    tunneled_rays: int
    undershoots: int
    rays: int


def ablate_raycast_method(
    n_rays: int = 400, seed: int = 0
) -> RaycastMethodAblation:
    """Compare the two ray casters on building-map rays."""
    from repro.envs.mapgen import wean_hall_like
    from repro.geometry.raycast import cast_ray, cast_ray_dda

    grid = wean_hall_like(rows=100, cols=120, seed=seed)
    rng = np.random.default_rng(seed)
    free = np.argwhere(~grid.cells)
    origins = free[rng.integers(len(free), size=n_rays)]
    angles = rng.uniform(-math.pi, math.pi, size=n_rays)
    step = grid.resolution * 0.5
    rays = []
    for (r, c), angle in zip(origins, angles):
        x, y = grid.cell_to_world(int(r), int(c))
        rays.append((x, y, float(angle)))
    t0 = time.perf_counter()
    sampled = [cast_ray(grid, x, y, a, 15.0, step=step) for x, y, a in rays]
    sampled_time = time.perf_counter() - t0
    t0 = time.perf_counter()
    exact = [cast_ray_dda(grid, x, y, a, 15.0) for x, y, a in rays]
    exact_time = time.perf_counter() - t0
    deltas = [s - e for s, e in zip(sampled, exact)]
    return RaycastMethodAblation(
        sampled_time=sampled_time,
        exact_time=exact_time,
        max_disagreement=float(max(abs(d) for d in deltas)),
        median_disagreement=float(np.median(np.abs(deltas))),
        tunneled_rays=sum(1 for d in deltas if d > step + 1e-9),
        undershoots=sum(1 for d in deltas if d < -1e-9),
        rays=n_rays,
    )
