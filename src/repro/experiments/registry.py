"""Experiment registry: id -> runner, shared by benchmarks and docs.

Every runner can also be driven through :func:`run_experiment_recorded`,
which wraps the run in a :class:`~repro.results.record.RunRecord`
(experiment id, wall clock, environment fingerprint, JSON-able payload)
and appends it to the result history — so paper-figure regenerations
leave the same comparable trail as the bench/suite/rt commands.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Optional

from repro.experiments.characterization import run_characterization
from repro.experiments.fig21_comparison import run_fig21
from repro.experiments.figures_control import (
    run_bo_vs_cem,
    run_fig15_dmp,
    run_fig18_cem,
    run_fig19_bo,
)
from repro.experiments.figures_perception import (
    run_fig2_pfl,
    run_fig3_ekfslam,
    run_fig4_srec,
)
from repro.experiments.figures_planning import (
    run_movtar_input_dependence,
    run_rrt_family,
    run_symbolic_branching,
)
from repro.harness.suite import run_suite

EXPERIMENTS: Dict[str, Callable[..., Any]] = {
    "T1": run_characterization,
    "F2": run_fig2_pfl,
    "F3": run_fig3_ekfslam,
    "F4": run_fig4_srec,
    "E6": run_movtar_input_dependence,
    "E9": run_rrt_family,
    "E11": run_symbolic_branching,
    "F15": run_fig15_dmp,
    "F18": run_fig18_cem,
    "F19": run_fig19_bo,
    "E16": run_bo_vs_cem,
    "F21": run_fig21,
    # The end-to-end suite run (characterization + bench + F21 sweep) on
    # the parallel executor; not a single paper figure but the harness
    # that regenerates them all in one dispatch.
    "SUITE": run_suite,
}


def run_experiment(experiment_id: str, **kwargs: Any) -> Any:
    """Run one experiment by its DESIGN.md id."""
    try:
        runner = EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; "
            f"known: {sorted(EXPERIMENTS)}"
        ) from None
    return runner(**kwargs)


def run_experiment_recorded(
    experiment_id: str, store: Optional[Any] = None, **kwargs: Any
) -> Any:
    """Run an experiment and append a :class:`RunRecord` of it to history.

    Returns the record; the runner's raw payload is available as
    ``record.detail["payload"]``.  ``store`` defaults to the standard
    ``.rtrbench_results/`` store (pass a
    :class:`~repro.results.store.ResultStore` to redirect).
    """
    from repro.results import ResultStore, record_from_experiment

    t0 = time.perf_counter()
    payload = run_experiment(experiment_id, **kwargs)
    wall_s = time.perf_counter() - t0
    record = record_from_experiment(experiment_id, wall_s, payload)
    if store is None:
        store = ResultStore()
    store.save(record)
    return record
