"""Experiment F21 — the library performance comparison (paper Fig. 21).

Section VII compares the suite's optimized pp2d against PythonRobotics
and CppRobotics on the small educational map, scaled by factors 1..64.
Here both contestants run in the same interpreter: the optimized planner
(:func:`repro.planning.fast_astar.fast_grid_astar` — memoized one-shot
grid inflation plus the flat-array search core of
:mod:`repro.search.grid_core`) against
:class:`repro.planning.baselines.EducationalAStar` (the P-Rob/C-Rob
pathologies reproduced faithfully).  Absolute times differ
from the paper's C++-vs-Python numbers, but the comparison's structure —
orders-of-magnitude gap, growing with map scale — is what this experiment
regenerates.  Educational runs are capped at a scale where a single call
stays in benchmark-friendly territory; the paper's own P-Rob column stops
scaling for the same practical reason (7.65E3 s at x64).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.envs.mapgen import comparison_map
from repro.harness.reporting import format_table
from repro.planning.baselines import EducationalAStar, grid_to_obstacle_points
from repro.planning.fast_astar import fast_grid_astar


@dataclass
class ComparisonPoint:
    """One row of the Fig. 21-(b) table."""

    scale: int
    optimized_time: float
    educational_time: Optional[float]

    @property
    def speedup(self) -> Optional[float]:
        """educational / optimized time; None when the baseline was skipped."""
        if self.educational_time is None:
            return None
        return self.educational_time / self.optimized_time


def _endpoints(scale: int) -> Tuple[Tuple[int, int], Tuple[int, int]]:
    """The P-Rob demo's start (10, 10) and goal (50, 50), scaled."""
    return (10 * scale, 10 * scale), (50 * scale, 50 * scale)


def run_fig21_point(
    scale: int, educational_max_scale: int = 2
) -> ComparisonPoint:
    """Run one scale of the comparison sweep (worker-process entry)."""
    base = comparison_map()
    grid = base.scaled(scale) if scale > 1 else base
    start, goal = _endpoints(scale)
    t0 = time.perf_counter()
    result = fast_grid_astar(grid, start, goal, robot_radius=0.8)
    optimized_time = time.perf_counter() - t0
    if not result.found:
        raise RuntimeError(f"optimized planner failed at scale {scale}")
    educational_time = None
    if scale <= educational_max_scale:
        ox, oy = grid_to_obstacle_points(grid)
        planner = EducationalAStar(
            ox, oy, resolution=grid.resolution, robot_radius=0.8
        )
        sx, sy = grid.cell_to_world(*start)
        gx, gy = grid.cell_to_world(*goal)
        t0 = time.perf_counter()
        edu = planner.plan(sx, sy, gx, gy)
        educational_time = time.perf_counter() - t0
        if not edu.found:
            raise RuntimeError(
                f"educational planner failed at scale {scale}"
            )
    return ComparisonPoint(
        scale=scale,
        optimized_time=optimized_time,
        educational_time=educational_time,
    )


def _fig21_task(task: Tuple[int, int]) -> ComparisonPoint:
    """map_tasks adapter: ``(scale, educational_max_scale)`` tuple entry."""
    scale, educational_max_scale = task
    return run_fig21_point(scale, educational_max_scale)


def run_fig21(
    scales: Optional[List[int]] = None,
    educational_max_scale: int = 2,
    jobs: int = 1,
) -> List[ComparisonPoint]:
    """Run both planners over the scale sweep.

    The educational baseline's obstacle-map rebuild is O(cells x obstacle
    points) and its open list is a linear scan, so runs beyond
    ``educational_max_scale`` are skipped (they would take minutes to
    hours, exactly the non-real-time behaviour the paper documents).

    ``jobs > 1`` runs the scale points on worker processes — each point
    rebuilds its map independently (cheap via the workload cache), so
    the sweep order carries no state and points may run concurrently.
    """
    if scales is None:
        scales = [1, 2, 4, 8]
    if jobs <= 1:
        return [
            run_fig21_point(scale, educational_max_scale) for scale in scales
        ]
    from repro.harness.parallel import map_tasks

    results = map_tasks(
        _fig21_task,
        [(scale, educational_max_scale) for scale in scales],
        jobs=jobs,
        names=[f"fig21:x{scale}" for scale in scales],
    )
    failed = [r for r in results if not r.ok]
    if failed:
        raise RuntimeError(
            "fig21 sweep failures:\n"
            + "\n".join(f"{r.name}: {r.error}" for r in failed)
        )
    return [r.value for r in results]


def render_fig21(points: List[ComparisonPoint]) -> str:
    """Text table of the comparison sweep (Fig. 21-(b) layout)."""
    rows = []
    for p in points:
        edu = f"{p.educational_time:.3e}" if p.educational_time else "(skipped)"
        speedup = f"{p.speedup:.0f}x" if p.speedup else "-"
        rows.append([p.scale, f"{p.optimized_time:.3e}", edu, speedup])
    return format_table(
        ["scale", "optimized (s)", "educational (s)", "speedup"], rows
    )
