"""Experiment runners regenerating the paper's tables and figures.

Each module reproduces one evaluation artifact (see DESIGN.md section 4
for the experiment index); :mod:`.registry` maps experiment ids
(``T1``, ``F2``, ... ``F21``) to runner callables so the benchmark suite
and the ``EXPERIMENTS.md`` generator share one source of truth.
"""

from repro.experiments.registry import (
    EXPERIMENTS,
    run_experiment,
    run_experiment_recorded,
)

__all__ = ["EXPERIMENTS", "run_experiment", "run_experiment_recorded"]
