"""Experiments F15, F18, F19, E16 — the control figures.

* F15 (paper Fig. 15): DMP reproduces the demonstrated trajectory and
  yields a smooth velocity profile.
* F18 (paper Fig. 18): CEM reward improves across 5 iterations x 15
  samples.
* F19 (paper Fig. 19): BO reward improves over 45 iterations.
* E16 (section V.16): bo is computationally heavier than cem (more
  iterations of more work) and its sort handles more metadata.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.harness.runner import run_kernel


@dataclass
class DmpFigure:
    """F15 metrics: tracking fidelity and velocity smoothness."""

    rms_error: float
    endpoint_error: float
    max_velocity: float
    velocity_sign_changes: int


def run_fig15_dmp(seed: int = 0) -> DmpFigure:
    """F15: fit the demonstration and roll the DMP out."""
    out = run_kernel("dmp", seed=seed).output
    velocity = out["velocity"]
    speed = np.linalg.norm(velocity, axis=1)
    lateral = velocity[:, 1]
    sign_changes = int(np.sum(np.diff(np.sign(lateral[np.abs(lateral) > 1e-6])) != 0))
    return DmpFigure(
        rms_error=out["rms_error"],
        endpoint_error=out["endpoint_error"],
        max_velocity=float(speed.max()),
        velocity_sign_changes=sign_changes,
    )


@dataclass
class LearningCurve:
    """F18/F19 metrics: reward progress for a policy-search kernel."""

    kernel: str
    reward_history: List[float]
    best_reward: float
    first_reward: float
    roi_time: float

    @property
    def improved(self) -> bool:
        """Whether the best reward beats the first iteration's."""
        return self.best_reward > self.first_reward


def run_fig18_cem(seed: int = 0) -> LearningCurve:
    """F18: CEM rewards over 5 iterations of 15 samples."""
    result = run_kernel("cem", seed=seed)
    out = result.output
    return LearningCurve(
        kernel="15.cem",
        reward_history=list(out["reward_history"]),
        best_reward=out["best_reward"],
        first_reward=out["reward_history"][0],
        roi_time=result.roi_time,
    )


def run_fig19_bo(seed: int = 0) -> LearningCurve:
    """F19: BO rewards over 45 iterations."""
    result = run_kernel("bo", seed=seed)
    out = result.output
    history = list(out["reward_history"])
    return LearningCurve(
        kernel="16.bo",
        reward_history=history,
        best_reward=out["best_reward"],
        first_reward=history[0],
        roi_time=result.roi_time,
    )


@dataclass
class BoVsCem:
    """E16: relative compute and sort volume of bo versus cem."""

    cem_time: float
    bo_time: float
    cem_sort_elements: int
    bo_sort_elements: int

    @property
    def time_ratio(self) -> float:
        """bo wall-clock over cem wall-clock."""
        return self.bo_time / max(self.cem_time, 1e-12)

    @property
    def sort_ratio(self) -> float:
        """Elements sorted by bo over elements sorted by cem."""
        return self.bo_sort_elements / max(self.cem_sort_elements, 1)


def run_bo_vs_cem(seed: int = 0) -> BoVsCem:
    """E16: matched-task comparison of the two policy-search kernels."""
    cem = run_kernel("cem", seed=seed)
    bo = run_kernel("bo", seed=seed)
    return BoVsCem(
        cem_time=cem.roi_time,
        bo_time=bo.roi_time,
        cem_sort_elements=cem.profiler.counters.get("sort_elements", 0),
        bo_sort_elements=bo.profiler.counters.get("sort_elements", 0),
    )
