"""Experiments E6, E9/E10, E11 — the planning evaluation claims.

* E6 (section V.6): movtar's bottleneck is input-dependent — heuristic
  precomputation dominates in small environments (up to ~62% in the
  paper), search dominates in large ones.
* E9/E10 (sections V.9-V.10): RRT* is slower than RRT (up to ~8x) but
  produces shorter paths (~1.6x on average); RRT-with-postprocessing
  lands between them on both axes.
* E11 (sections V.11-V.12): sym-fext exposes ~3.2x the per-node
  parallelism (branching factor) of sym-blkw.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.harness.reporting import format_table
from repro.harness.runner import run_kernel


@dataclass
class MovtarPoint:
    """Phase shares for one environment size."""

    rows: int
    cols: int
    horizon: int
    heuristic_share: float
    search_share: float
    roi_time: float


def run_movtar_input_dependence(seed: int = 0) -> List[MovtarPoint]:
    """E6: sweep environment size; watch the bottleneck flip.

    Small environments make the (whole-map) backward-Dijkstra heuristic
    precomputation a large share; large environments are search-bound.
    """
    settings = [
        (24, 24, 40),
        (48, 48, 96),
        (96, 96, 256),
        (128, 128, 384),
    ]
    points = []
    for rows, cols, horizon in settings:
        result = run_kernel(
            "movtar", rows=rows, cols=cols, horizon=horizon, seed=seed
        )
        fractions = result.profiler.fractions()
        points.append(
            MovtarPoint(
                rows=rows,
                cols=cols,
                horizon=horizon,
                heuristic_share=fractions.get("heuristic_precompute", 0.0),
                search_share=fractions.get("search", 0.0)
                + fractions.get("heuristic", 0.0),
                roi_time=result.roi_time,
            )
        )
    return points


def render_movtar(points: List[MovtarPoint]) -> str:
    """Text table of the movtar environment-size sweep."""
    rows = [
        [f"{p.rows}x{p.cols}", p.horizon, f"{p.heuristic_share:.0%}",
         f"{p.search_share:.0%}", f"{p.roi_time:.3f}s"]
        for p in points
    ]
    return format_table(
        ["environment", "horizon", "heuristic precompute", "search", "ROI time"],
        rows,
    )


@dataclass
class RrtFamilyComparison:
    """E9/E10 aggregates over matched seeds (successful runs only)."""

    seeds: List[int]
    rrt_times: List[float] = field(default_factory=list)
    rrt_costs: List[float] = field(default_factory=list)
    rrtstar_times: List[float] = field(default_factory=list)
    rrtstar_costs: List[float] = field(default_factory=list)
    rrtpp_times: List[float] = field(default_factory=list)
    rrtpp_costs: List[float] = field(default_factory=list)

    def slowdown(self) -> float:
        """RRT* time / RRT time (mean over matched successes)."""
        return float(np.mean(self.rrtstar_times) / np.mean(self.rrt_times))

    def cost_ratio(self) -> float:
        """RRT cost / RRT* cost (>1 means RRT* paths are shorter)."""
        return float(np.mean(self.rrt_costs) / np.mean(self.rrtstar_costs))

    def rrtpp_between(self, tolerance: float = 0.1) -> bool:
        """Whether rrtpp's mean cost lies between rrtstar's and rrt's.

        ``tolerance`` admits the tie region: at practical sample budgets
        shortcutting can match RRT*'s path quality (see EXPERIMENTS.md),
        so "between" is checked with a relative slack at the lower end.
        """
        pp = float(np.mean(self.rrtpp_costs))
        lo = float(np.mean(self.rrtstar_costs))
        hi = float(np.mean(self.rrt_costs))
        return lo * (1.0 - tolerance) <= pp <= hi + 1e-9


def run_rrt_family(
    seeds: Optional[List[int]] = None,
    map_name: str = "map-c",
    rrt_samples: int = 6000,
    star_samples: int = 3000,
    shortcut_iterations: int = 20,
    goal_bias: float = 0.05,
) -> RrtFamilyComparison:
    """E9/E10: run rrt, rrtstar, rrtpp on matched hard queries.

    Queries are drawn long (3.5-5.5 rad in joint space) so baseline RRT
    returns visibly suboptimal paths — the regime where the paper's
    slower-but-shorter trade-off is measurable.  Seeds where any planner
    fails are skipped (the paper reports statistics over successful
    queries).
    """
    from repro.envs.arm_maps import default_arm
    from repro.geometry.distance import path_length
    from repro.planning.prm import distant_free_pair, select_workspace
    from repro.planning.rrt import RRT
    from repro.planning.rrt_postprocess import shortcut_path
    from repro.planning.rrt_star import RRTStar

    if seeds is None:
        seeds = [1, 2, 4, 5, 7]
    workspace = select_workspace(map_name)
    arm = default_arm(size=workspace.size)
    comparison = RrtFamilyComparison(seeds=[])
    for seed in seeds:
        rng = np.random.default_rng(seed)
        start, goal = distant_free_pair(
            arm, workspace, rng, min_distance=3.5, max_distance=5.5
        )
        t0 = time.perf_counter()
        rrt_result = RRT(
            arm, workspace, goal_bias=goal_bias, goal_threshold=0.8,
            max_samples=rrt_samples, rng=np.random.default_rng(seed),
        ).plan(start, goal)
        rrt_time = time.perf_counter() - t0
        if not rrt_result.found:
            continue
        t0 = time.perf_counter()
        improved = shortcut_path(
            arm, workspace, rrt_result.path,
            iterations=shortcut_iterations, rng=np.random.default_rng(seed),
        )
        pp_time = rrt_time + (time.perf_counter() - t0)
        pp_cost = path_length(np.vstack(improved))
        t0 = time.perf_counter()
        star_result = RRTStar(
            arm, workspace, goal_bias=goal_bias, goal_threshold=0.8,
            max_samples=star_samples, rng=np.random.default_rng(seed),
        ).plan(start, goal)
        star_time = time.perf_counter() - t0
        if not star_result.found:
            continue
        comparison.seeds.append(seed)
        comparison.rrt_times.append(rrt_time)
        comparison.rrt_costs.append(rrt_result.cost)
        comparison.rrtpp_times.append(pp_time)
        comparison.rrtpp_costs.append(pp_cost)
        comparison.rrtstar_times.append(star_time)
        comparison.rrtstar_costs.append(star_result.cost)
    return comparison


def render_rrt_family(comparison: RrtFamilyComparison) -> str:
    """Text summary of the rrt / rrtpp / rrtstar comparison."""
    rows = [
        ["rrt", f"{np.mean(comparison.rrt_times):.2f}s",
         f"{np.mean(comparison.rrt_costs):.2f}"],
        ["rrtpp", f"{np.mean(comparison.rrtpp_times):.2f}s",
         f"{np.mean(comparison.rrtpp_costs):.2f}"],
        ["rrtstar", f"{np.mean(comparison.rrtstar_times):.2f}s",
         f"{np.mean(comparison.rrtstar_costs):.2f}"],
    ]
    summary = format_table(["planner", "mean time", "mean cost"], rows)
    return (
        f"{summary}\n"
        f"RRT* slowdown vs RRT: {comparison.slowdown():.1f}x "
        f"(paper: up to ~8x)\n"
        f"RRT/RRT* cost ratio: {comparison.cost_ratio():.2f}x "
        f"(paper: ~1.6x shorter paths)\n"
        f"rrtpp between: {comparison.rrtpp_between()}"
    )


@dataclass
class SymbolicBranching:
    """E11: branching factors of the two symbolic domains."""

    blkw_branching: float
    fext_branching: float

    @property
    def ratio(self) -> float:
        """fext branching over blkw branching (paper: ~3.2x)."""
        return self.fext_branching / self.blkw_branching


def run_symbolic_branching(seed: int = 0) -> SymbolicBranching:
    """E11: measure mean branching factor of both symbolic kernels."""
    blkw = run_kernel("sym-blkw", seed=seed).output
    fext = run_kernel("sym-fext", seed=seed).output
    return SymbolicBranching(
        blkw_branching=blkw.mean_branching,
        fext_branching=fext.mean_branching,
    )
