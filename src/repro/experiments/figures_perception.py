"""Experiments F2, F3, F4 — the perception figures.

* F2 (paper Fig. 2): particle filter convergence — particles start spread
  over the building and collapse onto the robot's true pose.  Evaluated,
  like the paper, in five different parts of the building.
* F3 (paper Fig. 3): EKF-SLAM recovers the robot trajectory and the six
  landmark positions under Gaussian sensor noise, with the uncertainty
  ellipses shrinking as evidence accumulates.
* F4 (paper Fig. 4): ICP-based scene reconstruction — simulated scans of
  the living-room scene are registered into a consistent model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.harness.reporting import format_table
from repro.harness.runner import run_kernel


@dataclass
class PflRegionResult:
    """Convergence metrics for one part of the building."""

    region: int
    spread_before: float
    spread_after: float
    final_error: float
    converged: bool


def run_fig2_pfl(
    n_regions: int = 5, particles: int = 2500, seed: int = 0
) -> List[PflRegionResult]:
    """Fig. 2: run pfl in five parts of the building; check convergence.

    Global localization needs particle density commensurate with the
    free-space volume, so this experiment runs a mid-size building wing
    (30 m x 25 m) with 2500 particles and a longer drive — the same
    regime as the paper's figure, where the cloud visibly collapses onto
    the robot.  Convergence means the spread dropped by >= 10x.
    """
    results = []
    for region in range(n_regions):
        out = run_kernel(
            "pfl",
            region=region,
            particles=particles,
            steps=35,
            seed=seed,
            map_rows=100,
            map_cols=120,
        ).output
        results.append(
            PflRegionResult(
                region=region,
                spread_before=out["spread_before"],
                spread_after=out["spread_after"],
                final_error=out["error"],
                converged=out["spread_after"] < out["spread_before"] / 10.0,
            )
        )
    return results


def render_fig2(results: List[PflRegionResult]) -> str:
    """Text table of per-region pfl convergence."""
    rows = [
        [r.region, f"{r.spread_before:.2f} m", f"{r.spread_after:.2f} m",
         f"{r.final_error:.2f} m", "yes" if r.converged else "NO"]
        for r in results
    ]
    return format_table(
        ["region", "spread before", "spread after", "final error", "converged"],
        rows,
    )


@dataclass
class EkfSlamFigure:
    """F3 metrics: localization + mapping quality and uncertainty decay."""

    final_pose_error: float
    mean_landmark_error: float
    initial_pose_uncertainty: float
    final_pose_uncertainty: float
    landmark_uncertainties: List[float]


def run_fig3_ekfslam(seed: int = 0) -> EkfSlamFigure:
    """Fig. 3: EKF-SLAM on the six-landmark loop."""
    result = run_kernel("ekfslam", seed=seed)
    out = result.output
    slam = out["slam"]
    landmark_unc = [
        float(np.sqrt(np.trace(slam.landmark_covariance(j))))
        for j in range(slam.n_landmarks)
        if slam.seen[j]
    ]
    pose_cov = slam.pose_covariance()
    return EkfSlamFigure(
        final_pose_error=out["final_pose_error"],
        mean_landmark_error=out["mean_landmark_error"],
        initial_pose_uncertainty=0.0,  # pose known exactly at start
        final_pose_uncertainty=float(np.sqrt(np.trace(pose_cov[:2, :2]))),
        landmark_uncertainties=landmark_unc,
    )


@dataclass
class SrecFigure:
    """F4 metrics: registration error against simulation ground truth."""

    pose_errors: List[float]
    final_pose_error: float
    model_points: int
    model_rms_to_scene: float


def run_fig4_srec(seed: int = 0) -> SrecFigure:
    """Fig. 4: reconstruct the living room from simulated scans.

    ``model_rms_to_scene`` measures how far fused model points sit from
    the true scene surface (nearest-scene-point RMS, subsampled).
    """
    result = run_kernel("srec", seed=seed)
    out = result.output
    recon = out["recon"]
    # Compare a subsample of the fused model against the true scene.
    from repro.envs.pointcloud import living_room

    scene = living_room(n_points=9000, seed=seed)
    model = recon.model_points()
    rng = np.random.default_rng(0)
    sample = model[rng.choice(len(model), min(400, len(model)), replace=False)]
    dists = []
    for point in sample:
        dists.append(float(np.min(np.linalg.norm(scene - point, axis=1))))
    return SrecFigure(
        pose_errors=list(out["pose_errors"]),
        final_pose_error=out["final_pose_error"],
        model_points=out["model_points"],
        model_rms_to_scene=float(np.sqrt(np.mean(np.square(dists)))),
    )
