"""Experiment T1 — Table I workload characterization.

Runs every kernel at its default configuration and checks that the
dominant instrumented phase matches the bottleneck the paper's Table I
reports.  The paper's quantitative per-kernel claims (E1-E8, E14) are
expressed as expectations here: a set of phases that must jointly
dominate, and optionally a minimum share for the leading phase.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.harness.reporting import format_table
from repro.harness.runner import load_all_kernels, registry


@dataclass
class Expectation:
    """The paper's bottleneck claim for one kernel."""

    kernel: str
    paper_bottleneck: str
    dominant_phases: Tuple[str, ...]
    min_combined_share: float = 0.5


# Paper Table I plus the per-kernel evaluation paragraphs in section V.
EXPECTATIONS: List[Expectation] = [
    Expectation("01.pfl", "Ray-casting (67-78%)", ("raycast",), 0.6),
    Expectation("02.ekfslam", "Matrix operations (>85%)", ("matrix_ops",), 0.85),
    Expectation(
        "03.srec",
        "Point cloud + matrix ops (memory-bound)",
        ("correspondence", "transform_estimation"),
        0.7,
    ),
    Expectation("04.pp2d", "Collision detection (>65%)", ("collision",), 0.65),
    Expectation(
        "05.pp3d", "Collision detection + graph search",
        ("collision", "search"), 0.7,
    ),
    Expectation(
        "06.movtar", "Input-dependent (search here: large environment)",
        ("search", "heuristic", "heuristic_precompute"), 0.7,
    ),
    Expectation(
        "07.prm", "Graph search + L2-norm calculations (online phase)",
        ("search", "l2_norm", "heuristic", "collision", "connect"), 0.6,
    ),
    Expectation(
        "08.rrt", "Collision detection + nearest neighbor search",
        ("collision", "nn_search"), 0.7,
    ),
    Expectation(
        "09.rrtstar", "Collision detection + nearest neighbor search",
        ("collision", "nn_search"), 0.7,
    ),
    Expectation(
        "10.rrtpp", "Collision detection + nearest neighbor search",
        ("collision", "nn_search", "shortcut"), 0.7,
    ),
    Expectation(
        "11.sym-blkw", "Graph search + string manipulation",
        ("search", "string_ops", "successor_gen"), 0.6,
    ),
    Expectation(
        "12.sym-fext", "Graph search + string manipulation",
        ("search", "string_ops", "successor_gen"), 0.6,
    ),
    Expectation(
        "13.dmp", "Fine-grained serialization",
        ("integrate", "basis_eval"), 0.7,
    ),
    Expectation("14.mpc", "Optimization (>80%)", ("optimize",), 0.8),
    Expectation("15.cem", "Sort (~1/3)", ("sort", "rollout", "refit"), 0.6),
    Expectation(
        "16.bo", "Sort (6x cem) + GP compute",
        ("sort", "gp_fit", "acquisition"), 0.6,
    ),
]

# Characterization overrides: a couple of kernels need slightly larger
# workloads than their sub-second defaults for stable time fractions.
_CONFIG_OVERRIDES: Dict[str, Dict[str, object]] = {
    "11.sym-blkw": {"blocks": 6},
}


@dataclass
class KernelCharacterization:
    """Measured breakdown for one kernel plus the claim verdict.

    ``counters`` carries the profiler's architecture-independent operation
    counts — deterministic for a given configuration, unlike the timing
    fractions — which is what the suite's parallel-vs-serial determinism
    check fingerprints.  ``setup_time`` is workload construction outside
    the ROI (the part the content-keyed cache accelerates).
    """

    kernel: str
    stage: str
    paper_bottleneck: str
    fractions: Dict[str, float]
    combined_share: float
    dominant_phase: str
    roi_time: float
    matches_paper: bool
    counters: Dict[str, int] = field(default_factory=dict)
    setup_time: float = 0.0


def characterize_kernel(expectation: Expectation) -> KernelCharacterization:
    """Run one kernel and compare its breakdown to the paper's claim."""
    load_all_kernels()
    cls = registry.get(expectation.kernel)
    overrides = _CONFIG_OVERRIDES.get(expectation.kernel, {})
    config = cls.config_cls(**overrides)
    result = cls().run(config)
    fractions = result.profiler.fractions()
    combined = sum(
        fractions.get(phase, 0.0) for phase in expectation.dominant_phases
    )
    dominant = result.profiler.dominant_phase() or "-"
    return KernelCharacterization(
        kernel=expectation.kernel,
        stage=cls.stage,
        paper_bottleneck=expectation.paper_bottleneck,
        fractions=fractions,
        combined_share=combined,
        dominant_phase=dominant,
        roi_time=result.roi_time,
        matches_paper=combined >= expectation.min_combined_share,
        counters=dict(result.profiler.counters),
        setup_time=result.setup_time,
    )


def characterize_kernel_by_name(kernel: str) -> KernelCharacterization:
    """Characterize one kernel by its paper id (worker-process entry)."""
    expectation = next(
        (e for e in EXPECTATIONS if e.kernel == kernel), None
    )
    if expectation is None:
        raise KeyError(f"no characterization expectation for {kernel!r}")
    return characterize_kernel(expectation)


def run_characterization(
    kernels: Optional[Sequence[str]] = None,
    jobs: int = 1,
    timeout: Optional[float] = None,
) -> List[KernelCharacterization]:
    """Characterize the whole suite (or a named subset).

    ``jobs > 1`` fans the kernels out over worker processes via
    :func:`repro.harness.parallel.map_tasks` — each kernel is seeded by
    its own configuration, so parallel and serial runs produce identical
    operation counters.  Any kernel failure raises with the worker's
    traceback; callers that want failure *rows* instead (the suite)
    dispatch per-kernel tasks themselves.
    """
    selected = [
        e for e in EXPECTATIONS if kernels is None or e.kernel in kernels
    ]
    if jobs <= 1:
        return [characterize_kernel(e) for e in selected]
    from repro.harness.parallel import map_tasks

    results = map_tasks(
        characterize_kernel_by_name,
        [e.kernel for e in selected],
        jobs=jobs,
        timeout=timeout,
        names=[f"characterize:{e.kernel}" for e in selected],
    )
    failed = [r for r in results if not r.ok]
    if failed:
        raise RuntimeError(
            "characterization failures:\n"
            + "\n".join(f"{r.name}: {r.error}" for r in failed)
        )
    return [r.value for r in results]


def render_characterization(
    rows: Sequence[KernelCharacterization],
) -> str:
    """Text rendition of the reproduced Table I."""
    table_rows = []
    for row in rows:
        table_rows.append(
            [
                row.kernel,
                row.stage,
                row.paper_bottleneck,
                row.dominant_phase,
                f"{row.combined_share:.0%}",
                "yes" if row.matches_paper else "NO",
            ]
        )
    return format_table(
        ["kernel", "stage", "paper bottleneck", "measured dominant",
         "claimed-phase share", "matches"],
        table_rows,
    )
