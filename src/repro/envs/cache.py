"""Content-keyed workload cache for expensive environment setup.

Characterization, the perf bench, and the Fig. 21 sweep all rebuild the
same procedural workloads — Wean-Hall-style maps, city grids, campus
volumes, living-room point clouds — from scratch on every run, even
though the generators are pure functions of their parameters.  This
module memoizes those artifacts by *content key*: a SHA-256 of the
generating category, its full parameter set, and a schema version.  Two
calls with the same parameters share one build; changing any parameter
(or bumping a generator's schema version) changes the key and invalidates
the entry — there is no time-based expiry to get wrong.

Three layers back the key:

* an in-process LRU (``max_memory_items`` entries) serving repeat calls
  within one process at deep-copy cost;
* an optional **shared-memory plane** (:mod:`repro.harness.shm`): the
  suite parent publishes large artifacts once into
  ``multiprocessing.shared_memory`` segments keyed by these same
  content keys, and pool workers attach zero-copy instead of re-reading
  the disk store (install with :func:`install_shared_plane`; a
  per-worker LRU keeps segments attached across tasks);
* an on-disk pickle store under ``.rtrbench_cache/`` (override with
  ``RTRBENCH_CACHE_DIR``) shared between processes and across runs, so
  parallel suite workers and repeated invocations all reuse one build.

Cached values are returned as deep copies, so callers may mutate their
workload freely without poisoning the cache.  Disk writes are atomic
(temp file + ``os.replace``) and unreadable/corrupt entries are treated
as misses and rebuilt, so concurrent workers can share a directory
safely.  Set ``RTRBENCH_CACHE=0`` to disable caching entirely.
"""

from __future__ import annotations

import copy
import functools
import hashlib
import inspect
import json
import os
import pickle
import tempfile
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional

#: Bump when a generator's output changes for identical parameters, so
#: stale on-disk artifacts from older code can never be served.
#: v2: trajectory generation runs backward Dijkstra on the bucketed
#: batch engine by default, which may break distance ties differently
#: from the scalar heap sweep.
SCHEMA_VERSION = 2

DEFAULT_CACHE_DIR = ".rtrbench_cache"


def _jsonable(value: Any) -> Any:
    """Fallback encoder: represent unknown types stably by repr."""
    return repr(value)


def content_key(category: str, params: Mapping[str, Any]) -> str:
    """Stable hex digest of a workload's generating configuration."""
    payload = json.dumps(
        {
            "category": category,
            "schema": SCHEMA_VERSION,
            "params": dict(params),
        },
        sort_keys=True,
        default=_jsonable,
    )
    return hashlib.sha256(payload.encode()).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss accounting, including time spent building vs serving."""

    memory_hits: int = 0
    shm_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    build_time_s: float = 0.0
    hit_time_s: float = 0.0
    per_category: Dict[str, int] = field(default_factory=dict)

    @property
    def hits(self) -> int:
        """Total hits across all three layers."""
        return self.memory_hits + self.shm_hits + self.disk_hits

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict view for JSON reports."""
        return {
            "memory_hits": self.memory_hits,
            "shm_hits": self.shm_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "build_time_s": self.build_time_s,
            "hit_time_s": self.hit_time_s,
            "per_category": dict(self.per_category),
        }


# -- shared-memory plane (installed by the suite before its pool forks) --------

#: ``{content_key[:24] -> shared-memory segment name}``; empty = no plane.
_shared_plane: Dict[str, str] = {}

#: Per-process LRU of attached segments (lazy; workers inherit ``None``
#: across fork and build their own on first attach).
_segment_cache: Optional[Any] = None


def install_shared_plane(mapping: Optional[Mapping[str, str]]) -> None:
    """Install (or, with ``None``/empty, remove) the shared-memory plane.

    The suite parent publishes its cached workloads via
    :class:`repro.harness.shm.SharedWorkloadPlane` and installs the
    resulting ``{content key -> segment name}`` table *before* forking
    the worker pool, so every worker inherits it; spawned workers get it
    through the pool's initializer instead.
    """
    global _segment_cache
    _shared_plane.clear()
    if mapping:
        _shared_plane.update(mapping)
    elif _segment_cache is not None:
        _segment_cache.close()
        _segment_cache = None


def shared_plane_mapping() -> Dict[str, str]:
    """The installed plane table (empty when no plane is active)."""
    return dict(_shared_plane)


def _attach_from_plane(plane_key: str) -> Any:
    """Attached (shm-backed, shared) value for a plane key, or ``None``."""
    name = _shared_plane.get(plane_key)
    if name is None:
        return None
    global _segment_cache
    if _segment_cache is None:
        from repro.harness.shm import AttachedSegmentCache

        _segment_cache = AttachedSegmentCache()
    return _segment_cache.get(name)


class WorkloadCache:
    """Three-layer (memory LRU + shared-memory plane + disk pickle)
    content-keyed artifact cache."""

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        max_memory_items: int = 32,
        enabled: bool = True,
        persist: bool = True,
    ) -> None:
        self.cache_dir = cache_dir or DEFAULT_CACHE_DIR
        self.max_memory_items = max_memory_items
        self.enabled = enabled
        self.persist = persist
        self.stats = CacheStats()
        self._memory: "OrderedDict[str, Any]" = OrderedDict()
        self._lock = threading.Lock()

    # -- storage layers ----------------------------------------------------

    def _entry_path(self, category: str, key: str) -> str:
        return os.path.join(self.cache_dir, f"{category}-{key[:24]}.pkl")

    def _memory_put(self, key: str, value: Any) -> None:
        self._memory[key] = value
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_memory_items:
            self._memory.popitem(last=False)

    def _disk_get(self, path: str) -> Any:
        try:
            with open(path, "rb") as fh:
                return pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, ValueError):
            # Missing, truncated, or written by incompatible code: a miss.
            return None

    def _disk_put(self, path: str, value: Any) -> None:
        try:
            os.makedirs(self.cache_dir, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=self.cache_dir, suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
            finally:
                if os.path.exists(tmp):
                    os.unlink(tmp)
        except (OSError, pickle.PicklingError):
            # Persistence is an optimization; never fail the build over it.
            pass

    # -- public API --------------------------------------------------------

    def get_or_build(
        self,
        category: str,
        params: Mapping[str, Any],
        build: Callable[[], Any],
    ) -> Any:
        """Return the artifact for ``(category, params)``, building at most once.

        Hits are served as deep copies so the cached original stays
        pristine even if the caller mutates its workload.
        """
        if not self.enabled:
            return build()
        key = content_key(category, params)
        t0 = time.perf_counter()
        with self._lock:
            if key in self._memory:
                self._memory.move_to_end(key)
                value = copy.deepcopy(self._memory[key])
                self.stats.memory_hits += 1
                self.stats.hit_time_s += time.perf_counter() - t0
                self._count(category)
                return value
        if _shared_plane:
            value = _attach_from_plane(key[:24])
            if value is not None:
                # The attached original stays shm-backed and shared; the
                # caller gets the usual mutation-safe deep copy.
                served = copy.deepcopy(value)
                with self._lock:
                    self.stats.shm_hits += 1
                    self.stats.hit_time_s += time.perf_counter() - t0
                    self._count(category)
                return served
        if self.persist:
            value = self._disk_get(self._entry_path(category, key))
            if value is not None:
                with self._lock:
                    self._memory_put(key, value)
                    self.stats.disk_hits += 1
                    self.stats.hit_time_s += time.perf_counter() - t0
                    self._count(category)
                return copy.deepcopy(value)
        t_build = time.perf_counter()
        value = build()
        built_s = time.perf_counter() - t_build
        with self._lock:
            self._memory_put(key, value)
            self.stats.misses += 1
            self.stats.build_time_s += built_s
            self._count(category)
        if self.persist:
            self._disk_put(self._entry_path(category, key), value)
        return copy.deepcopy(value)

    def _count(self, category: str) -> None:
        self.stats.per_category[category] = (
            self.stats.per_category.get(category, 0) + 1
        )

    def publish_entries(self, plane: Any) -> int:
        """Publish every cached artifact into a shared-memory plane.

        The in-memory layer publishes directly; disk entries not already
        covered are loaded once and published under the key embedded in
        their filename.  Returns the number of segments published.
        Publication is opportunistic — a value the plane declines (size
        budget, unpicklable buffers, no shared memory on this platform)
        simply stays disk-served.
        """
        published = 0
        with self._lock:
            memory_entries = [
                (key[:24], value) for key, value in self._memory.items()
            ]
        for plane_key, value in memory_entries:
            if plane.publish(plane_key, value):
                published += 1
        if self.persist and os.path.isdir(self.cache_dir):
            for name in sorted(os.listdir(self.cache_dir)):
                if not name.endswith(".pkl") or "-" not in name:
                    continue
                plane_key = name[:-4].rsplit("-", 1)[1]
                if plane_key in plane.mapping():
                    continue
                value = self._disk_get(os.path.join(self.cache_dir, name))
                if value is None:
                    continue
                if plane.publish(plane_key, value):
                    published += 1
        return published

    def disk_stats(self) -> Dict[str, Any]:
        """Entry count and byte usage of the on-disk layer.

        Powers ``rtrbench cache stats``; counts only ``.pkl`` entries
        (leftover ``.tmp`` files from interrupted writes are ignored —
        ``clear`` removes them too).
        """
        entries = 0
        total_bytes = 0
        if self.persist and os.path.isdir(self.cache_dir):
            for name in os.listdir(self.cache_dir):
                if not name.endswith(".pkl"):
                    continue
                entries += 1
                try:
                    total_bytes += os.path.getsize(
                        os.path.join(self.cache_dir, name)
                    )
                except OSError:  # pragma: no cover - concurrent delete
                    pass
        return {
            "cache_dir": self.cache_dir,
            "enabled": self.enabled,
            "entries": entries,
            "bytes": total_bytes,
        }

    def clear(self, memory_only: bool = False) -> None:
        """Drop the in-memory layer (and the disk layer unless asked not to)."""
        with self._lock:
            self._memory.clear()
        if memory_only or not self.persist:
            return
        if os.path.isdir(self.cache_dir):
            for name in os.listdir(self.cache_dir):
                if name.endswith(".pkl") or name.endswith(".tmp"):
                    try:
                        os.unlink(os.path.join(self.cache_dir, name))
                    except OSError:  # pragma: no cover - races are fine
                        pass


# -- process-wide default cache ------------------------------------------------

_default_cache: Optional[WorkloadCache] = None
_default_lock = threading.Lock()


def default_cache() -> WorkloadCache:
    """The process-wide cache used by the workload generators.

    Configured from the environment on first use: ``RTRBENCH_CACHE=0``
    disables it, ``RTRBENCH_CACHE_DIR`` relocates the disk layer.
    """
    global _default_cache
    with _default_lock:
        if _default_cache is None:
            enabled = os.environ.get("RTRBENCH_CACHE", "1") != "0"
            cache_dir = os.environ.get("RTRBENCH_CACHE_DIR", DEFAULT_CACHE_DIR)
            _default_cache = WorkloadCache(
                cache_dir=cache_dir, enabled=enabled
            )
        return _default_cache


def set_default_cache(cache: Optional[WorkloadCache]) -> None:
    """Replace the process-wide cache (``None`` re-reads the environment)."""
    global _default_cache
    with _default_lock:
        _default_cache = cache


def cached_workload(category: str) -> Callable:
    """Decorator: memoize a pure workload generator through the default cache.

    The content key is the function's *complete* bound argument mapping
    (defaults applied), so every parameter participates in invalidation.
    The undecorated builder stays reachable as ``fn.build_uncached`` for
    cold-build timing and cache-bypass use.
    """

    def decorate(fn: Callable) -> Callable:
        signature = inspect.signature(fn)

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            bound = signature.bind(*args, **kwargs)
            bound.apply_defaults()
            return default_cache().get_or_build(
                category, dict(bound.arguments), lambda: fn(*args, **kwargs)
            )

        wrapper.build_uncached = fn  # type: ignore[attr-defined]
        return wrapper

    return decorate
