"""Location-cost fields for the moving-target kernel (paper section V.6).

movtar plans over a 2D environment where "every location in the
environment has a particular cost for the robot"; the planner minimizes
accumulated cost rather than distance.  :func:`synthetic_costmap` builds
such fields — smooth cost terrain from superposed Gaussian bumps, plus
hard obstacles — matching the paper's "we create our own synthetic
environments".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np


@dataclass
class CostField:
    """A per-cell traversal cost plus an obstacle mask."""

    cost: np.ndarray  # (rows, cols) float, >= min_cost > 0 on free cells
    obstacles: np.ndarray  # (rows, cols) bool

    def __post_init__(self) -> None:
        if self.cost.shape != self.obstacles.shape:
            raise ValueError("cost and obstacle grids must have equal shape")
        free = ~self.obstacles
        if free.any() and float(self.cost[free].min()) <= 0.0:
            raise ValueError("traversal costs must be positive on free cells")

    @property
    def shape(self) -> Tuple[int, int]:
        """(rows, cols) of the field."""
        return self.cost.shape  # type: ignore[return-value]

    def in_bounds(self, r: int, c: int) -> bool:
        """Whether (r, c) indexes a cell."""
        rows, cols = self.cost.shape
        return 0 <= r < rows and 0 <= c < cols

    def is_free(self, r: int, c: int) -> bool:
        """Whether the cell exists and is not an obstacle."""
        return self.in_bounds(r, c) and not bool(self.obstacles[r, c])


def synthetic_costmap(
    rows: int = 64,
    cols: int = 64,
    n_bumps: int = 6,
    obstacle_density: float = 0.08,
    seed: int = 0,
) -> CostField:
    """A smooth cost terrain with scattered rectangular obstacles.

    Cost = 1 + sum of Gaussian bumps (expensive regions the robot should
    route around).  Obstacles are small random rectangles.
    """
    rng = np.random.default_rng(seed)
    ys, xs = np.mgrid[0:rows, 0:cols]
    cost = np.ones((rows, cols), dtype=float)
    for _ in range(n_bumps):
        cy = rng.uniform(0, rows)
        cx = rng.uniform(0, cols)
        amp = rng.uniform(2.0, 8.0)
        sigma = rng.uniform(min(rows, cols) / 12, min(rows, cols) / 5)
        cost += amp * np.exp(-((ys - cy) ** 2 + (xs - cx) ** 2) / (2 * sigma**2))
    obstacles = np.zeros((rows, cols), dtype=bool)
    target_cells = int(rows * cols * obstacle_density)
    placed = 0
    while placed < target_cells:
        h = int(rng.integers(2, max(3, rows // 10)))
        w = int(rng.integers(2, max(3, cols // 10)))
        r0 = int(rng.integers(1, max(2, rows - h - 1)))
        c0 = int(rng.integers(1, max(2, cols - w - 1)))
        obstacles[r0 : r0 + h, c0 : c0 + w] = True
        placed += h * w
    # Keep the border free so trajectories can wrap around the field edge.
    obstacles[0, :] = obstacles[-1, :] = False
    obstacles[:, 0] = obstacles[:, -1] = False
    return CostField(cost=cost, obstacles=obstacles)


def target_trajectory(
    field: CostField, length: int, seed: int = 0
) -> np.ndarray:
    """A known target trajectory: a loop of free cells, one per timestep.

    movtar assumes "the robot knows the trajectory of the target (i.e.,
    the location of the target at any given time)".  The target patrols a
    loop of corner waypoints; each leg is routed with a shortest grid
    path through free space, so the trajectory is 8-connected everywhere
    (obstacles deflect it rather than teleporting it).
    """
    from repro.search.dijkstra import shortest_grid_path

    rows, cols = field.shape
    margin_r = max(2, rows // 6)
    margin_c = max(2, cols // 6)
    corners = [
        (margin_r, margin_c),
        (margin_r, cols - margin_c),
        (rows - margin_r, cols - margin_c),
        (rows - margin_r, margin_c),
    ]
    free = np.argwhere(~field.obstacles)
    waypoints = []
    for corner in corners:
        i = int(np.argmin(np.abs(free - np.asarray(corner)).sum(axis=1)))
        waypoints.append((int(free[i][0]), int(free[i][1])))
    loop: List[Tuple[int, int]] = []
    for a, b in zip(waypoints, waypoints[1:] + waypoints[:1]):
        leg = shortest_grid_path(field.obstacles, a, b)
        if not leg:
            raise ValueError(
                "cost field's free space does not connect the patrol corners"
            )
        loop.extend(leg[:-1])  # drop the endpoint: next leg starts there
    if not loop:
        raise ValueError("degenerate patrol loop")
    out = [loop[i % len(loop)] for i in range(length)]
    return np.asarray(out, dtype=int)
