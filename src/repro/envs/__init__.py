"""Environments and workloads.

The paper evaluates each kernel on a representative inputset (Wean Hall
for pfl, Boston_1_1024 for pp2d, the Freiburg campus scan for pp3d, the
ICL-NUIM living room for srec, Map-F / Map-C for the arm planners).  Those
datasets are not redistributable, so this package generates procedural
equivalents that preserve the structural properties each kernel exercises
— see DESIGN.md section 2 for the substitution rationale — plus a parser
for the MovingAI ``.map`` format so the real maps drop in when available.
"""

from repro.envs.arm_maps import ArmWorkspace, map_c, map_f
from repro.envs.costmap import CostField, synthetic_costmap
from repro.envs.mapgen import campus_like_3d, city_like, comparison_map, wean_hall_like
from repro.envs.movingai import load_movingai, parse_movingai, save_movingai
from repro.envs.pointcloud import living_room, simulate_scan

__all__ = [
    "ArmWorkspace",
    "map_c",
    "map_f",
    "CostField",
    "synthetic_costmap",
    "campus_like_3d",
    "city_like",
    "comparison_map",
    "wean_hall_like",
    "load_movingai",
    "parse_movingai",
    "save_movingai",
    "living_room",
    "simulate_scan",
]
