"""Synthetic point-cloud scenes and scan simulation.

The paper evaluates srec on the ICL-NUIM ``living_room`` RGB-D sequence.
This module generates a living-room-like scene — floor, walls, and box/
plane furniture surfaces, sampled into a dense point cloud — and simulates
the robot's successive scans: each scan is a subsampled, noise-perturbed
copy of the scene observed under a known rigid camera motion.  Ground-truth
motions let the experiments verify ICP's registration error, which the
real dataset cannot (it would need the authors' trajectory tooling).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.envs.cache import cached_workload
from repro.geometry.transforms import RigidTransform3D, rotation_matrix_3d


def _sample_box_surface(
    rng: np.random.Generator,
    center: Tuple[float, float, float],
    size: Tuple[float, float, float],
    n: int,
) -> np.ndarray:
    """Sample ``n`` points uniformly from the surface of an axis-aligned box."""
    cx, cy, cz = center
    sx, sy, sz = size
    areas = np.array([sy * sz, sy * sz, sx * sz, sx * sz, sx * sy, sx * sy])
    faces = rng.choice(6, size=n, p=areas / areas.sum())
    u = rng.uniform(-0.5, 0.5, size=n)
    v = rng.uniform(-0.5, 0.5, size=n)
    pts = np.empty((n, 3))
    for face in range(6):
        mask = faces == face
        axis = face // 2
        sign = 1.0 if face % 2 == 0 else -1.0
        size_v = np.array([sx, sy, sz])
        p = np.zeros((int(mask.sum()), 3))
        p[:, axis] = sign * size_v[axis] / 2.0
        others = [a for a in range(3) if a != axis]
        p[:, others[0]] = u[mask] * size_v[others[0]]
        p[:, others[1]] = v[mask] * size_v[others[1]]
        pts[mask] = p + np.array([cx, cy, cz])
    return pts


def _sample_plane(
    rng: np.random.Generator,
    origin: Tuple[float, float, float],
    extent_u: Tuple[float, float, float],
    extent_v: Tuple[float, float, float],
    n: int,
) -> np.ndarray:
    """Sample ``n`` points on a planar patch spanned by two edge vectors."""
    u = rng.uniform(0.0, 1.0, size=(n, 1))
    v = rng.uniform(0.0, 1.0, size=(n, 1))
    return (
        np.asarray(origin)
        + u * np.asarray(extent_u)
        + v * np.asarray(extent_v)
    )


@cached_workload("living_room")
def living_room(
    n_points: int = 12000, seed: int = 0
) -> np.ndarray:
    """A living-room-like scene as an ``(n, 3)`` point cloud (meters).

    Contents: floor, two walls, a sofa (two boxes), a table (top + legs),
    and a cabinet — flat and boxy surfaces like the ICL-NUIM room, which is
    what gives ICP its planar-patch correspondence structure.
    """
    rng = np.random.default_rng(seed)
    room_w, room_d, room_h = 5.0, 4.0, 2.5
    budget = {
        "floor": 0.25,
        "wall_x": 0.15,
        "wall_y": 0.15,
        "sofa_seat": 0.10,
        "sofa_back": 0.08,
        "table_top": 0.08,
        "cabinet": 0.12,
        "legs": 0.07,
    }
    clouds: List[np.ndarray] = []
    clouds.append(
        _sample_plane(rng, (0, 0, 0), (room_w, 0, 0), (0, room_d, 0),
                      int(n_points * budget["floor"]))
    )
    clouds.append(
        _sample_plane(rng, (0, 0, 0), (room_w, 0, 0), (0, 0, room_h),
                      int(n_points * budget["wall_x"]))
    )
    clouds.append(
        _sample_plane(rng, (0, 0, 0), (0, room_d, 0), (0, 0, room_h),
                      int(n_points * budget["wall_y"]))
    )
    clouds.append(
        _sample_box_surface(rng, (1.2, 3.2, 0.25), (1.8, 0.8, 0.5),
                            int(n_points * budget["sofa_seat"]))
    )
    clouds.append(
        _sample_box_surface(rng, (1.2, 3.7, 0.65), (1.8, 0.2, 0.8),
                            int(n_points * budget["sofa_back"]))
    )
    clouds.append(
        _sample_plane(rng, (2.6, 1.2, 0.7), (1.2, 0, 0), (0, 0.7, 0),
                      int(n_points * budget["table_top"]))
    )
    clouds.append(
        _sample_box_surface(rng, (4.4, 0.5, 0.6), (0.6, 0.9, 1.2),
                            int(n_points * budget["cabinet"]))
    )
    n_leg = int(n_points * budget["legs"]) // 4
    for lx, ly in ((2.65, 1.25), (3.75, 1.25), (2.65, 1.85), (3.75, 1.85)):
        clouds.append(
            _sample_box_surface(rng, (lx, ly, 0.35), (0.06, 0.06, 0.7), n_leg)
        )
    return np.vstack(clouds)


@dataclass
class SimulatedScan:
    """One sensor frame: points in the *camera* frame + ground-truth pose."""

    points: np.ndarray  # (n, 3) in the scan's own frame
    true_pose: RigidTransform3D  # camera-to-world: world = pose.apply(points)


def simulate_scan(
    scene: np.ndarray,
    pose: RigidTransform3D,
    n_points: int = 3000,
    noise_sigma: float = 0.005,
    dropout: float = 0.0,
    rng: Optional[np.random.Generator] = None,
) -> SimulatedScan:
    """Observe ``scene`` from camera pose ``pose``.

    Subsamples the scene, maps it into the camera frame (the inverse
    pose), adds isotropic Gaussian sensor noise, and optionally drops a
    fraction of points — giving two scans only partial overlap, as between
    consecutive RGB-D frames.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    n = min(n_points, len(scene))
    idx = rng.choice(len(scene), size=n, replace=False)
    world_pts = scene[idx]
    if dropout > 0.0:
        keep = rng.random(n) >= dropout
        world_pts = world_pts[keep]
    cam_pts = pose.inverse().apply(world_pts)
    cam_pts = cam_pts + rng.normal(0.0, noise_sigma, size=cam_pts.shape)
    return SimulatedScan(points=cam_pts, true_pose=pose)


def scan_trajectory(
    scene: np.ndarray,
    n_frames: int,
    max_rotation: float = 0.08,
    max_translation: float = 0.10,
    n_points: int = 3000,
    noise_sigma: float = 0.005,
    seed: int = 0,
) -> List[SimulatedScan]:
    """A sequence of scans under a smooth random-walk camera motion.

    Frame-to-frame motion stays small (``max_rotation`` rad,
    ``max_translation`` m) so ICP's local convergence assumption holds,
    matching consecutive frames of a handheld/robot camera.
    """
    rng = np.random.default_rng(seed)
    pose = RigidTransform3D.identity()
    scans = []
    for _ in range(n_frames):
        scans.append(
            simulate_scan(scene, pose, n_points, noise_sigma, rng=rng)
        )
        d_rot = rotation_matrix_3d(
            rng.uniform(-max_rotation, max_rotation),
            rng.uniform(-max_rotation, max_rotation),
            rng.uniform(-max_rotation, max_rotation),
        )
        d_t = rng.uniform(-max_translation, max_translation, size=3)
        pose = pose.compose(RigidTransform3D(d_rot, d_t))
    return scans
