"""MovingAI ``.map`` format support.

The paper's pp2d inputset is ``Boston_1_1024`` from the MovingAI grid
benchmark collection (Sturtevant 2012).  The dataset itself is not bundled,
but this parser accepts the standard format, so the real city maps can be
dropped in unchanged:

    type octile
    height 1024
    width 1024
    map
    .....@@@...

``.`` and ``G`` are passable terrain; ``@``, ``O``, ``T``, ``S``, ``W``
are treated as obstacles (trees/swamp/water are impassable for a car).
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.geometry.grid2d import OccupancyGrid2D

PASSABLE = frozenset(".G")
OBSTACLE = frozenset("@OTSW")


def parse_movingai(text: str, resolution: float = 1.0) -> OccupancyGrid2D:
    """Parse MovingAI ``.map`` text into an occupancy grid."""
    lines = text.splitlines()
    height = width = None
    map_start = None
    for i, line in enumerate(lines):
        token = line.strip().lower()
        if token.startswith("height"):
            height = int(token.split()[1])
        elif token.startswith("width"):
            width = int(token.split()[1])
        elif token == "map":
            map_start = i + 1
            break
    if height is None or width is None or map_start is None:
        raise ValueError("not a MovingAI map: missing height/width/map header")
    rows = lines[map_start : map_start + height]
    if len(rows) < height:
        raise ValueError(
            f"map body has {len(rows)} rows, header promised {height}"
        )
    cells = np.zeros((height, width), dtype=bool)
    for r, row in enumerate(rows):
        if len(row) < width:
            raise ValueError(f"map row {r} has {len(row)} cols, expected {width}")
        for c in range(width):
            ch = row[c]
            if ch in OBSTACLE:
                cells[r, c] = True
            elif ch not in PASSABLE:
                raise ValueError(f"unknown terrain character {ch!r} at ({r},{c})")
    return OccupancyGrid2D(cells, resolution=resolution)


def load_movingai(
    path: Union[str, Path], resolution: float = 1.0
) -> OccupancyGrid2D:
    """Load a ``.map`` file from disk."""
    return parse_movingai(Path(path).read_text(), resolution)


def save_movingai(grid: OccupancyGrid2D, path: Union[str, Path]) -> None:
    """Write a grid in MovingAI format (obstacles as ``@``)."""
    lines = [
        "type octile",
        f"height {grid.rows}",
        f"width {grid.cols}",
        "map",
    ]
    for r in range(grid.rows):
        lines.append(
            "".join("@" if grid.cells[r, c] else "." for c in range(grid.cols))
        )
    Path(path).write_text("\n".join(lines) + "\n")
