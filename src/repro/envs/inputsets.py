"""Named inputsets for the kernels.

The paper (section VI): "In the paper, we typically report kernel
execution results for one inputset per kernel.  However, in the
repository, we provide multiple inputsets for many of the kernels."

An inputset is a named bundle of configuration overrides — a workload
preset.  ``default`` is always available (the paper's reported setting,
i.e. the kernel's built-in defaults); the others vary the environment,
scale, or difficulty along the axes the paper calls out.

Use from code::

    from repro.envs.inputsets import inputset_overrides
    result = run_kernel("pp2d", **inputset_overrides("pp2d", "dense-city"))

or from the CLI::

    rtrbench run pp2d --inputset dense-city
"""

from __future__ import annotations

from typing import Dict, List

# kernel suffix -> inputset name -> config overrides
INPUTSETS: Dict[str, Dict[str, Dict[str, object]]] = {
    "pfl": {
        "default": {},
        "wing": {"map_rows": 100, "map_cols": 120, "particles": 2500,
                 "steps": 35},
        "sparse-sensing": {"beams": 8, "particles": 2000},
        "long-drive": {"steps": 60},
    },
    "ekfslam": {
        "default": {},
        "dense-landmarks": {"landmarks": 16},
        "noisy-sensors": {"range_sigma": 0.4, "bearing_sigma": 0.08},
        "long-loop": {"steps": 400},
    },
    "srec": {
        "default": {},
        "long-sequence": {"frames": 12},
        "dense-scans": {"scan_points": 3000, "scene_points": 15000},
        "noisy-camera": {"noise_sigma": 0.01},
    },
    "pp2d": {
        "default": {},
        "dense-city": {"rows": 256, "cols": 256},
        "fine-resolution": {"rows": 256, "cols": 256, "resolution": 0.5},
        "suboptimal-fast": {"epsilon": 2.5},
    },
    "pp3d": {
        "default": {},
        "tall-city": {"nz": 40},
        "wide-campus": {"nx": 160, "ny": 160},
    },
    "movtar": {
        "default": {},
        "small-env": {"rows": 24, "cols": 24, "horizon": 40},
        "large-env": {"rows": 128, "cols": 128, "horizon": 384},
        "rough-terrain": {"bumps": 14},
    },
    "prm": {
        "default": {},
        "map-f": {"map": "map-f"},
        "dense-roadmap": {"samples": 800},
        "high-dof": {"dof": 7},
    },
    "rrt": {
        "default": {},
        "map-f": {"map": "map-f"},
        "fine-steps": {"epsilon": 0.25, "samples": 8000},
        "linear-nn": {"nn_strategy": "linear"},
    },
    "rrtstar": {
        "default": {},
        "map-f": {"map": "map-f"},
        "long-refine": {"star_samples": 8000},
    },
    "rrtpp": {
        "default": {},
        "map-f": {"map": "map-f"},
        "heavy-postprocess": {"shortcut_iterations": 500},
    },
    "rrtconnect": {
        "default": {},
        "map-f": {"map": "map-f"},
    },
    "sym-blkw": {
        "default": {},
        "tall-stack": {"blocks": 7},
        "spread-goal": {"goal": "spread"},
    },
    "sym-fext": {
        "default": {},
        "many-locations": {"locations": 7},
    },
    "dmp": {
        "default": {},
        "fine-integration": {"dt": 0.001},
        "many-basis": {"basis": 80},
    },
    "mpc": {
        "default": {},
        "long-horizon": {"horizon": 25},
        "highway": {"speed": 15.0, "steps": 300},
    },
    "cem": {
        "default": {},
        "big-population": {"iterations": 10, "samples": 60},
        "far-goal": {"goal_x": 6.0},
    },
    "bo": {
        "default": {},
        "wide-acquisition": {"candidates": 2048},
        "far-goal": {"goal_x": 6.0},
    },
}


def inputset_names(kernel: str) -> List[str]:
    """All inputset names for a kernel (by suffix, e.g. ``"pp2d"``)."""
    key = kernel.split(".", 1)[-1]
    if key not in INPUTSETS:
        raise KeyError(f"no inputsets registered for kernel {kernel!r}")
    return sorted(INPUTSETS[key])


def inputset_overrides(kernel: str, name: str) -> Dict[str, object]:
    """Configuration overrides for one named inputset."""
    key = kernel.split(".", 1)[-1]
    try:
        sets = INPUTSETS[key]
    except KeyError:
        raise KeyError(f"no inputsets registered for kernel {kernel!r}") from None
    try:
        return dict(sets[name])
    except KeyError:
        raise KeyError(
            f"kernel {kernel!r} has no inputset {name!r}; "
            f"available: {sorted(sets)}"
        ) from None
