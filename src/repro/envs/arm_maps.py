"""Synthetic arm-planning workspaces (the paper's Fig. 9).

``Map-F`` is a free 50 cm x 50 cm workspace; ``Map-C`` is a cluttered one
with box obstacles the arm must thread between.  The 5-DoF planar arm is
anchored at the workspace's bottom-left corner, matching the figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry.collision import Rectangle, polyline_hits_obstacles
from repro.robots.arm import PlanarArm

CountFn = Callable[[str, int], None]

WORKSPACE_SIZE = 0.5  # meters (50 cm, per Fig. 9)


@dataclass
class ArmWorkspace:
    """A planar workspace with rectangular obstacles and an anchored arm."""

    name: str
    size: float
    obstacles: List[Rectangle]
    base: Tuple[float, float] = (0.0, 0.0)

    def in_bounds(self, x: float, y: float) -> bool:
        """Whether a workspace point lies inside the square arena."""
        return 0.0 <= x <= self.size and 0.0 <= y <= self.size

    def config_collides(
        self,
        arm: PlanarArm,
        q: Sequence[float],
        count: Optional[CountFn] = None,
    ) -> bool:
        """Whether the arm at joint configuration ``q`` hits anything.

        The arm's links form a polyline from the base through each joint;
        a configuration collides if any link crosses an obstacle or leaves
        the workspace.
        """
        points = arm.link_points(q, base=self.base)
        for x, y in points[1:]:
            if not self.in_bounds(x, y):
                if count is not None:
                    count("segment_obstacle_tests", 0)
                return True
        return polyline_hits_obstacles(points, self.obstacles, count)

    def edge_collides(
        self,
        arm: PlanarArm,
        q0: Sequence[float],
        q1: Sequence[float],
        step: float = 0.05,
        count: Optional[CountFn] = None,
    ) -> bool:
        """Whether the straight joint-space motion q0 -> q1 collides.

        Checked by sampling intermediate configurations at joint-space
        spacing ``step`` radians — the standard discretized edge check the
        sampling-based planners use.
        """
        q0 = np.asarray(q0, dtype=float)
        q1 = np.asarray(q1, dtype=float)
        dist = float(np.linalg.norm(q1 - q0))
        n = max(1, int(np.ceil(dist / step)))
        for i in range(n + 1):
            q = q0 + (q1 - q0) * (i / n)
            if self.config_collides(arm, q, count):
                return True
        return False


def map_f(size: float = WORKSPACE_SIZE) -> ArmWorkspace:
    """The free workspace of Fig. 9: no obstacles."""
    return ArmWorkspace(
        name="Map-F", size=size, obstacles=[], base=(size / 2.0, size / 2.0)
    )


def map_c(size: float = WORKSPACE_SIZE) -> ArmWorkspace:
    """The cluttered workspace of Fig. 9: box obstacles across the arena.

    Obstacle layout follows the figure's character: several rectangles
    distributed over the reachable area, leaving threadable gaps.
    """
    s = size
    obstacles = [
        Rectangle(0.30 * s, 0.10 * s, 0.45 * s, 0.25 * s),
        Rectangle(0.60 * s, 0.30 * s, 0.80 * s, 0.42 * s),
        Rectangle(0.15 * s, 0.55 * s, 0.35 * s, 0.70 * s),
        Rectangle(0.55 * s, 0.65 * s, 0.72 * s, 0.85 * s),
        Rectangle(0.05 * s, 0.30 * s, 0.18 * s, 0.40 * s),
        Rectangle(0.82 * s, 0.05 * s, 0.95 * s, 0.18 * s),
    ]
    return ArmWorkspace(
        name="Map-C", size=size, obstacles=obstacles,
        base=(size / 2.0, size / 2.0),
    )


def default_arm(dof: int = 5, size: float = WORKSPACE_SIZE) -> PlanarArm:
    """A ``dof``-link arm sized so the workspace is comfortably plannable.

    The arm is anchored at the arena center (see :func:`map_c`) with reach
    0.45x the edge length, so a fully extended arm always stays inside
    the box and collisions come only from the obstacles — the regime the
    sampling-based planners are meant to exercise.
    """
    reach = size * 0.45
    return PlanarArm([reach / dof] * dof)
