"""Procedural occupancy-map generators.

Each generator reproduces the structural character of one of the paper's
inputsets (see DESIGN.md section 2):

* :func:`wean_hall_like` — an indoor floorplan of corridors and rooms,
  standing in for the CMU Wean Hall map used by pfl;
* :func:`city_like` — an urban street grid with solid building blocks,
  standing in for the MovingAI ``Boston_1_1024`` snapshot used by pp2d;
* :func:`campus_like_3d` — an outdoor voxel volume with buildings, trees,
  and an overpass, standing in for the Freiburg campus scan used by pp3d;
* :func:`comparison_map` — the small map used by PythonRobotics'
  ``a_star.py`` demo, for the Fig. 21 library comparison.

All generators are deterministic in their seed, which is what lets the
expensive ones (the floorplan, city, and campus builders) be memoized by
content key through :mod:`repro.envs.cache`: repeated characterization /
bench / suite runs with identical parameters reuse one build instead of
re-carving the same map.  Callers receive a private deep copy and may
mutate it freely; bypass the cache via ``<generator>.build_uncached``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.envs.cache import cached_workload
from repro.geometry.grid2d import OccupancyGrid2D
from repro.geometry.grid3d import OccupancyGrid3D


@cached_workload("wean_hall_like")
def wean_hall_like(
    rows: int = 160,
    cols: int = 200,
    resolution: float = 0.25,
    seed: int = 0,
) -> OccupancyGrid2D:
    """An indoor corridor-and-rooms floorplan.

    Structure: a solid building slab, two long horizontal corridors and
    several vertical connectors carved out, then rooms carved off the
    corridors with door gaps.  Particles localize slowly in the long
    self-similar corridors — the property pfl needs from Wean Hall.
    """
    rng = np.random.default_rng(seed)
    grid = OccupancyGrid2D(
        np.ones((rows, cols), dtype=bool), resolution=resolution
    )
    base_w = max(3, rows // 20)
    upper = rows // 4
    lower = 3 * rows // 4
    # Two long horizontal corridors of *different* widths — identical
    # corridors make the building periodic and global localization
    # ambiguous in principle.
    widths = {upper: base_w, lower: base_w + 2}
    for row, w in widths.items():
        grid.fill_rect(row - w // 2, 2, row + w // 2, cols - 3, False)
    # Vertical connectors at irregular positions.
    n_connectors = max(2, cols // 50)
    connector_cols = sorted(
        int(c) for c in rng.choice(
            np.arange(cols // 8, cols - cols // 8),
            size=n_connectors,
            replace=False,
        )
    )
    for c in connector_cols:
        w = int(rng.integers(base_w - 1, base_w + 2))
        grid.fill_rect(upper, c - w // 2, lower, c + w // 2, False)
    # Rooms off each corridor with varied sizes and door gaps, so lidar
    # signatures differ along the building.
    for corridor_row, direction in ((upper, -1), (lower, 1)):
        c = 4
        while c + cols // 16 < cols - 4:
            room_w = int(rng.integers(cols // 16, cols // 8))
            if c + room_w >= cols - 4:
                break
            if rng.random() < 0.8:
                room_depth = int(rng.integers(rows // 10, rows // 5))
                w = widths[corridor_row]
                r0 = corridor_row + direction * (w // 2 + 1)
                r1 = r0 + direction * room_depth
                grid.fill_rect(r0, c, r1, c + room_w, False)
                # Door: small gap connecting room and corridor.
                door_c = c + int(rng.integers(1, max(2, room_w - 1)))
                grid.fill_rect(
                    corridor_row,
                    door_c,
                    r0,
                    min(door_c + 1, cols - 1),
                    False,
                )
            c += room_w + 2
    # A few corridor pillars: distinctive close-range lidar landmarks.
    for _ in range(max(2, cols // 60)):
        row = upper if rng.random() < 0.5 else lower
        c = int(rng.integers(cols // 8, cols - cols // 8))
        if not grid.cells[row, c]:
            grid.fill_rect(row - 1, c, row - 1, c + 1, True)
    grid.fill_border(1)
    return grid


@cached_workload("city_like")
def city_like(
    rows: int = 256,
    cols: int = 256,
    resolution: float = 1.0,
    block: int = 24,
    street: int = 8,
    seed: int = 0,
) -> OccupancyGrid2D:
    """An urban street grid: solid building blocks separated by streets.

    Buildings are randomly eroded at the corners and occasionally merged
    across a street so routes must detour, giving the long, obstacle-rich
    paths pp2d measures on Boston_1_1024.
    """
    rng = np.random.default_rng(seed)
    grid = OccupancyGrid2D.empty(rows, cols, resolution=resolution)
    pitch = block + street
    for r0 in range(street, rows - 1, pitch):
        for c0 in range(street, cols - 1, pitch):
            if rng.random() < 0.04:
                continue  # an open plaza
            # Erode the block a little so building shapes vary.
            dr0 = int(rng.integers(0, block // 4 + 1))
            dc0 = int(rng.integers(0, block // 4 + 1))
            dr1 = int(rng.integers(0, block // 4 + 1))
            dc1 = int(rng.integers(0, block // 4 + 1))
            grid.fill_rect(
                r0 + dr0, c0 + dc0, r0 + block - 1 - dr1, c0 + block - 1 - dc1
            )
            # Occasionally bridge to the next block, blocking a street.
            if rng.random() < 0.15 and c0 + pitch + block < cols:
                bridge_r = r0 + block // 2
                grid.fill_rect(
                    bridge_r, c0 + block - 1, bridge_r + 2, c0 + pitch + 1
                )
    grid.fill_border(1)
    return grid


@cached_workload("campus_like_3d")
def campus_like_3d(
    nx: int = 96,
    ny: int = 96,
    nz: int = 24,
    resolution: float = 1.0,
    seed: int = 0,
) -> OccupancyGrid3D:
    """An outdoor campus volume for UAV planning.

    Buildings of varying heights (some too tall to overfly cheaply),
    scattered trees (thin tall columns with canopies), and one elevated
    overpass a UAV can fly under — so the third dimension genuinely
    matters, as in the Freiburg campus scan.
    """
    rng = np.random.default_rng(seed)
    grid = OccupancyGrid3D.empty(nz, ny, nx, resolution=resolution)
    # Buildings.
    n_buildings = (nx * ny) // 600
    for _ in range(n_buildings):
        w = int(rng.integers(8, 20))
        d = int(rng.integers(8, 20))
        h = int(rng.integers(nz // 3, nz))
        x0 = int(rng.integers(2, max(3, nx - w - 2)))
        y0 = int(rng.integers(2, max(3, ny - d - 2)))
        grid.fill_box(0, y0, x0, h - 1, y0 + d - 1, x0 + w - 1)
    # Trees: trunk + canopy.
    n_trees = (nx * ny) // 400
    for _ in range(n_trees):
        x = int(rng.integers(2, nx - 3))
        y = int(rng.integers(2, ny - 3))
        trunk_h = int(rng.integers(3, max(4, nz // 3)))
        grid.fill_box(0, y, x, trunk_h, y, x)
        grid.fill_box(trunk_h, y - 1, x - 1, min(trunk_h + 2, nz - 1), y + 1, x + 1)
    # One overpass spanning the middle: solid deck at mid altitude with
    # clearance underneath.
    deck_z = nz // 3
    y_mid = ny // 2
    grid.fill_box(deck_z, y_mid - 2, 0, deck_z + 1, y_mid + 2, nx - 1)
    # Pillars.
    for x in range(4, nx - 4, 16):
        grid.fill_box(0, y_mid - 1, x, deck_z, y_mid + 1, x + 1)
    # Ground plane is implicit (z=0 voxels free unless built on); close the
    # volume's vertical walls so the UAV cannot leave the map.
    grid.cells[:, 0, :] = True
    grid.cells[:, -1, :] = True
    grid.cells[:, :, 0] = True
    grid.cells[:, :, -1] = True
    return grid


def comparison_map(resolution: float = 1.0) -> OccupancyGrid2D:
    """The PythonRobotics ``a_star.py`` demo map (paper Fig. 21-(a)).

    A 60x60 arena with a border wall, one long vertical wall rising from
    the bottom at x=20, and one wall descending from the top at x=40 —
    forcing an S-shaped route between the demo's start (10, 10) and goal
    (50, 50).
    """
    size = 62
    grid = OccupancyGrid2D.empty(size, size, resolution=resolution)
    grid.fill_border(1)
    # Wall from the floor up to y=40 at x=20.
    grid.fill_rect(1, 20, 40, 20)
    # Wall from the ceiling down to y=20 at x=40.
    grid.fill_rect(size - 2, 40, 20, 40)
    return grid


def random_obstacle_grid(
    rows: int,
    cols: int,
    density: float = 0.2,
    resolution: float = 1.0,
    seed: int = 0,
) -> OccupancyGrid2D:
    """Uniform random obstacles — a stress inputset for planners/tests."""
    rng = np.random.default_rng(seed)
    cells = rng.random((rows, cols)) < density
    grid = OccupancyGrid2D(cells, resolution=resolution)
    grid.fill_border(1)
    return grid
