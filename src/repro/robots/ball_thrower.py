"""Ball-throwing robot simulation (the cem / bo reward oracle).

The paper simulates a 2-DoF arm throwing a ball toward a goal in V-REP and
uses the final ball-to-goal distance as the reinforcement-learning reward.
This module is the analytic substitute: release-point kinematics from the
2-DoF arm pose, then ballistic flight with gravity (and optional linear
drag), landing on the floor plane.  The policy parameters match the
paper's: the two joint angles and the throw force.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

GRAVITY = 9.81


@dataclass
class ThrowResult:
    """Outcome of one throw."""

    landing_x: float
    flight_time: float
    release_point: Tuple[float, float]
    release_velocity: Tuple[float, float]
    reward: float


class BallThrower:
    """A planar 2-DoF arm that throws a ball at a floor target.

    Policy parameters (the learned quantities, per section V.15):
    ``(q1, q2, force)`` — shoulder angle, elbow angle, and throw force.
    The release velocity points along the final link; speed is
    ``force / mass * impulse_time``.  Reward is the negative distance from
    the landing point to the goal (higher is better, 0 is perfect).
    """

    def __init__(
        self,
        link1: float = 0.4,
        link2: float = 0.4,
        base_height: float = 0.5,
        ball_mass: float = 0.1,
        impulse_time: float = 0.05,
        max_force: float = 20.0,
        goal_x: float = 3.0,
        drag: float = 0.0,
    ) -> None:
        if min(link1, link2, base_height, ball_mass, impulse_time) <= 0:
            raise ValueError("physical parameters must be positive")
        self.link1 = float(link1)
        self.link2 = float(link2)
        self.base_height = float(base_height)
        self.ball_mass = float(ball_mass)
        self.impulse_time = float(impulse_time)
        self.max_force = float(max_force)
        self.goal_x = float(goal_x)
        self.drag = float(drag)

    @property
    def parameter_bounds(self) -> np.ndarray:
        """``(3, 2)`` lower/upper bounds for (q1, q2, force)."""
        return np.array(
            [
                [0.0, math.pi],
                [-math.pi / 2.0, math.pi / 2.0],
                [0.1, self.max_force],
            ]
        )

    def release_state(
        self, q1: float, q2: float, force: float
    ) -> Tuple[Tuple[float, float], Tuple[float, float]]:
        """Release position and velocity for a parameter triple."""
        x1 = self.link1 * math.cos(q1)
        y1 = self.base_height + self.link1 * math.sin(q1)
        tip_angle = q1 + q2
        x2 = x1 + self.link2 * math.cos(tip_angle)
        y2 = y1 + self.link2 * math.sin(tip_angle)
        speed = force / self.ball_mass * self.impulse_time
        vx = speed * math.cos(tip_angle)
        vy = speed * math.sin(tip_angle)
        return (x2, y2), (vx, vy)

    def throw(self, params: np.ndarray) -> ThrowResult:
        """Simulate one throw; returns landing point and reward.

        Parameters are clipped to :attr:`parameter_bounds` (the simulator
        rejects impossible commands rather than faulting, like V-REP).
        """
        bounds = self.parameter_bounds
        q1, q2, force = np.clip(np.asarray(params, dtype=float),
                                bounds[:, 0], bounds[:, 1])
        (rx, ry), (vx, vy) = self.release_state(q1, q2, force)
        if self.drag > 0.0:
            landing_x, flight_time = self._integrate_with_drag(rx, ry, vx, vy)
        else:
            # Closed-form ballistic landing: solve ry + vy t - g t^2 / 2 = 0.
            disc = vy * vy + 2.0 * GRAVITY * ry
            flight_time = (vy + math.sqrt(max(0.0, disc))) / GRAVITY
            landing_x = rx + vx * flight_time
        reward = -abs(landing_x - self.goal_x)
        return ThrowResult(
            landing_x=landing_x,
            flight_time=flight_time,
            release_point=(rx, ry),
            release_velocity=(vx, vy),
            reward=reward,
        )

    def reward(self, params: np.ndarray) -> float:
        """Black-box reward of a parameter triple (higher is better)."""
        return self.throw(params).reward

    def _integrate_with_drag(
        self, x: float, y: float, vx: float, vy: float, dt: float = 1e-3
    ) -> Tuple[float, float]:
        """Euler-integrate flight with linear drag until ground contact."""
        t = 0.0
        while y > 0.0 and t < 30.0:
            ax = -self.drag * vx
            ay = -GRAVITY - self.drag * vy
            vx += ax * dt
            vy += ay * dt
            x += vx * dt
            y += vy * dt
            t += dt
        return x, t
