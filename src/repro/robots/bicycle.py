"""Kinematic bicycle model — the MPC plant (self-driving car)."""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.geometry.transforms import wrap_angle


@dataclass
class BicycleState:
    """Car state: position, heading, and longitudinal speed."""

    x: float = 0.0
    y: float = 0.0
    theta: float = 0.0
    v: float = 0.0

    def as_array(self) -> np.ndarray:
        """``[x, y, theta, v]`` as a numpy vector."""
        return np.array([self.x, self.y, self.theta, self.v])

    @staticmethod
    def from_array(s: np.ndarray) -> "BicycleState":
        """Inverse of :meth:`as_array`."""
        return BicycleState(float(s[0]), float(s[1]), float(s[2]), float(s[3]))


class BicycleModel:
    """Kinematic bicycle with acceleration and steering-angle inputs.

    Controls are ``(a, delta)``: longitudinal acceleration (m/s^2) and
    front-wheel steering angle (rad).  Both are saturated, as are speed
    limits — these become the MPC constraints ("not exceeding predefined
    velocity and acceleration values", paper section V.14).
    """

    def __init__(
        self,
        wheelbase: float = 2.7,
        max_speed: float = 15.0,
        max_accel: float = 3.0,
        max_steer: float = 0.6,
    ) -> None:
        if wheelbase <= 0:
            raise ValueError("wheelbase must be positive")
        self.wheelbase = float(wheelbase)
        self.max_speed = float(max_speed)
        self.max_accel = float(max_accel)
        self.max_steer = float(max_steer)

    def clamp_control(self, a: float, delta: float) -> tuple:
        """Saturate a control to the actuator limits."""
        return (
            max(-self.max_accel, min(self.max_accel, a)),
            max(-self.max_steer, min(self.max_steer, delta)),
        )

    def step(
        self, state: BicycleState, a: float, delta: float, dt: float
    ) -> BicycleState:
        """Integrate one timestep with forward Euler."""
        a, delta = self.clamp_control(a, delta)
        v = max(0.0, min(self.max_speed, state.v + a * dt))
        theta = wrap_angle(
            state.theta + state.v / self.wheelbase * math.tan(delta) * dt
        )
        return BicycleState(
            x=state.x + state.v * math.cos(state.theta) * dt,
            y=state.y + state.v * math.sin(state.theta) * dt,
            theta=theta,
            v=v,
        )

    def rollout(
        self, state: BicycleState, controls: np.ndarray, dt: float
    ) -> np.ndarray:
        """Simulate a control sequence; returns ``(T+1, 4)`` state array.

        ``controls`` is ``(T, 2)`` of (a, delta) pairs; row 0 of the result
        is the initial state.
        """
        controls = np.asarray(controls, dtype=float)
        states = np.empty((len(controls) + 1, 4))
        states[0] = state.as_array()
        current = state
        for t, (a, delta) in enumerate(controls):
            current = self.step(current, float(a), float(delta), dt)
            states[t + 1] = current.as_array()
        return states

    def linearize(
        self, state: BicycleState, a: float, delta: float, dt: float
    ) -> tuple:
        """Discrete-time Jacobians (A, B, c) of :meth:`step` at a point.

        Returns matrices such that ``x' ~= A x + B u + c``; used by the
        MPC's iterative LQR-style solver.
        """
        v, theta = state.v, state.theta
        ct, st = math.cos(theta), math.sin(theta)
        tan_d = math.tan(delta)
        A = np.array(
            [
                [1, 0, -v * st * dt, ct * dt],
                [0, 1, v * ct * dt, st * dt],
                [0, 0, 1, tan_d / self.wheelbase * dt],
                [0, 0, 0, 1],
            ]
        )
        B = np.array(
            [
                [0.0, 0.0],
                [0.0, 0.0],
                [0.0, v / (self.wheelbase * math.cos(delta) ** 2) * dt],
                [dt, 0.0],
            ]
        )
        x = state.as_array()
        u = np.array([a, delta])
        next_state = self.step(state, a, delta, dt).as_array()
        c = next_state - A @ x - B @ u
        return A, B, c
