"""Planar n-DoF arm kinematics.

The arm-planning kernels (prm, rrt, rrtstar, rrtpp) plan in joint-angle
space; this model provides forward kinematics — joint angles to link
endpoint positions — plus joint limits and the workspace polyline the
collision checker tests (paper Fig. 8).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np


class PlanarArm:
    """A serial chain of revolute joints in the plane.

    ``link_lengths`` are the segment lengths in meters; joint ``i``'s angle
    is measured relative to the previous link (relative angles), so the
    configuration space is a box of joint angles with limits
    ``joint_limits`` (default +-pi).
    """

    def __init__(
        self,
        link_lengths: Sequence[float],
        joint_limits: Optional[Sequence[Tuple[float, float]]] = None,
    ) -> None:
        if not link_lengths:
            raise ValueError("arm needs at least one link")
        if any(length <= 0 for length in link_lengths):
            raise ValueError("link lengths must be positive")
        self.link_lengths = [float(v) for v in link_lengths]
        if joint_limits is None:
            joint_limits = [(-math.pi, math.pi)] * len(self.link_lengths)
        if len(joint_limits) != len(self.link_lengths):
            raise ValueError("one joint limit pair per link required")
        self.joint_limits = [(float(lo), float(hi)) for lo, hi in joint_limits]

    @property
    def dof(self) -> int:
        """Number of joints (degrees of freedom)."""
        return len(self.link_lengths)

    @property
    def reach(self) -> float:
        """Maximum end-effector distance from the base."""
        return sum(self.link_lengths)

    def within_limits(self, q: Sequence[float]) -> bool:
        """Whether every joint angle respects its limits."""
        return all(
            lo <= angle <= hi
            for angle, (lo, hi) in zip(q, self.joint_limits)
        )

    def clamp(self, q: Sequence[float]) -> np.ndarray:
        """Clip a configuration into the joint limits."""
        lows = np.array([lo for lo, _ in self.joint_limits])
        highs = np.array([hi for _, hi in self.joint_limits])
        return np.clip(np.asarray(q, dtype=float), lows, highs)

    def link_points(
        self, q: Sequence[float], base: Tuple[float, float] = (0.0, 0.0)
    ) -> List[Tuple[float, float]]:
        """Workspace positions of the base and every joint/end-effector.

        Returns ``dof + 1`` points; consecutive pairs are the links the
        collision checker must keep clear.
        """
        if len(q) != self.dof:
            raise ValueError(f"expected {self.dof} joint angles, got {len(q)}")
        x, y = base
        theta = 0.0
        points = [(x, y)]
        for angle, length in zip(q, self.link_lengths):
            theta += angle
            x += length * math.cos(theta)
            y += length * math.sin(theta)
            points.append((x, y))
        return points

    def end_effector(
        self, q: Sequence[float], base: Tuple[float, float] = (0.0, 0.0)
    ) -> Tuple[float, float]:
        """Workspace position of the arm tip."""
        return self.link_points(q, base)[-1]

    def sample_configuration(self, rng: np.random.Generator) -> np.ndarray:
        """A uniform random configuration within the joint limits."""
        return np.array(
            [rng.uniform(lo, hi) for lo, hi in self.joint_limits]
        )
