"""Differential-drive kinematics (the pfl indoor robot)."""

from __future__ import annotations

import math
from typing import Tuple

from repro.geometry.transforms import SE2, wrap_angle


class DifferentialDrive:
    """A two-wheeled robot integrated with the unicycle model.

    State is an :class:`~repro.geometry.transforms.SE2` pose; controls are
    linear velocity v (m/s) and angular velocity w (rad/s).
    """

    def __init__(self, max_v: float = 1.0, max_w: float = 1.5) -> None:
        if max_v <= 0 or max_w <= 0:
            raise ValueError("velocity limits must be positive")
        self.max_v = float(max_v)
        self.max_w = float(max_w)

    def clamp(self, v: float, w: float) -> Tuple[float, float]:
        """Saturate a control to the robot's limits."""
        return (
            max(-self.max_v, min(self.max_v, v)),
            max(-self.max_w, min(self.max_w, w)),
        )

    def step(self, pose: SE2, v: float, w: float, dt: float) -> SE2:
        """Integrate the unicycle model for ``dt`` seconds.

        Uses the exact arc solution when turning, falling back to a
        straight-line step when |w| is negligible.
        """
        v, w = self.clamp(v, w)
        if abs(w) < 1e-9:
            return SE2(
                pose.x + v * dt * math.cos(pose.theta),
                pose.y + v * dt * math.sin(pose.theta),
                pose.theta,
            )
        radius = v / w
        theta_new = pose.theta + w * dt
        return SE2(
            pose.x + radius * (math.sin(theta_new) - math.sin(pose.theta)),
            pose.y - radius * (math.cos(theta_new) - math.cos(pose.theta)),
            wrap_angle(theta_new),
        )

    def odometry_between(self, before: SE2, after: SE2) -> Tuple[float, float, float]:
        """The classic odometry decomposition (rot1, trans, rot2).

        Decomposes a pose change into an initial rotation, a straight
        translation, and a final rotation — the standard parameterization
        of the probabilistic odometry motion model used by the particle
        filter.
        """
        dx = after.x - before.x
        dy = after.y - before.y
        trans = math.hypot(dx, dy)
        if trans < 1e-9:
            rot1 = 0.0
        else:
            rot1 = wrap_angle(math.atan2(dy, dx) - before.theta)
        rot2 = wrap_angle(after.theta - before.theta - rot1)
        return rot1, trans, rot2
