"""Robot models: kinematics and simple physics plants.

The kernels share a handful of robot embodiments — a differential-drive
indoor robot (pfl), a car-like vehicle (pp2d, mpc), a planar n-DoF arm
(prm, rrt family), and a 2-DoF ball thrower (cem, bo, standing in for the
paper's V-REP simulation).
"""

from repro.robots.arm import PlanarArm
from repro.robots.ball_thrower import BallThrower, ThrowResult
from repro.robots.bicycle import BicycleModel, BicycleState
from repro.robots.differential import DifferentialDrive

__all__ = [
    "PlanarArm",
    "BallThrower",
    "ThrowResult",
    "BicycleModel",
    "BicycleState",
    "DifferentialDrive",
]
