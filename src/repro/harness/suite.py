"""End-to-end suite execution (``rtrbench suite``).

Runs the suite-level workloads the paper reports — the Table I
characterization of all 16 kernels, the hot-path perf bench, the
Fig. 21 scale comparison — plus periodic real-time tasks for a fast
kernel subset (:mod:`repro.rt`), as one flat task list dispatched
through :func:`repro.harness.parallel.map_tasks`:

* every kernel / bench phase / sweep point is an isolated task; one that
  raises or hangs becomes a failure row in the report while the rest of
  the suite completes (the pool respawns lost workers);
* workload setup goes through the content-keyed cache
  (:mod:`repro.envs.cache`); with ``jobs > 1`` the parent additionally
  publishes its cached artifacts into a shared-memory plane
  (:mod:`repro.harness.shm`) that workers attach zero-copy, and orders
  dispatch longest-first using per-task durations from the previous run
  record;
* the serial baseline is opt-in (``baseline=True`` runs the task list a
  second time, inline) or derived from the latest comparable serial
  record in the result store; either way the run cross-checks per-task
  fingerprints (operation counters — the timing-free part of each
  result) against the baseline, the suite's determinism guarantee.

``run_suite`` returns a machine-readable report with per-task ROI,
queue-wait, and execution time, cache hit/miss accounting, wall clocks,
and an executor breakdown (worker utilization, dispatch overhead);
``rtrbench suite`` wraps it into a
:class:`~repro.results.record.RunRecord` (``BENCH_suite.json``) whose
measurements — ``suite.failures``, ``suite.parallel_speedup``,
``determinism.match``, ``cache.hit_speedup``, per-task ROI times — feed
the declarative suite gates in :data:`repro.results.gates.DEFAULT_GATES`
(the successors of the ``check_suite_floors`` checker that used to live
here).
"""

from __future__ import annotations

import fnmatch
import hashlib
import json
import time
from typing import Any, Dict, List, Optional, Sequence

from repro.harness.parallel import TaskResult, derive_seed, map_tasks

#: Fast kernels for ``--smoke`` runs (sub-second at default configs).
SMOKE_KERNELS = (
    "02.ekfslam",
    "11.sym-blkw",
    "12.sym-fext",
    "13.dmp",
    "15.cem",
    "16.bo",
)

#: Kernels scheduled as periodic rt tasks alongside characterization,
#: as ``(kernel, granularity)`` pairs.  ``"run"`` granularity releases
#: full kernel runs as jobs, so only fast kernels qualify — the suite's
#: job is to exercise the rt pipeline, not to time every kernel twice.
#: ``"step"`` granularity releases single iterations on a persistent
#: session, which is how slow kernels (pfl, mpc) become rt-schedulable;
#: their per-job cost is one scan update / control tick.  ``rtrbench
#: rt`` covers the rest on demand.
RT_SUITE_KERNELS = (
    ("13.dmp", "run"),
    ("15.cem", "run"),
    ("16.bo", "run"),
    ("01.pfl", "step"),
    ("14.mpc", "step"),
)
RT_SUITE_KERNELS_SMOKE = (
    ("13.dmp", "run"),
    ("15.cem", "run"),
    ("13.dmp", "step"),
)


def _fingerprint(payload: Any) -> str:
    """Short stable digest of a task's timing-free output."""
    text = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(text.encode()).hexdigest()[:16]


def suite_tasks(
    smoke: bool = False,
    seed: int = 7,
    kernels: Optional[Sequence[str]] = None,
) -> List[Dict[str, Any]]:
    """The suite's task list: characterization + bench + Fig. 21 sweep.

    Each task is a small picklable dict carrying its complete
    configuration, including a content-derived seed where the workload
    takes one — task identity, not worker assignment, decides every
    random stream.
    """
    from repro.experiments.characterization import EXPECTATIONS
    from repro.harness.bench import BENCH_PHASES

    if kernels is None:
        kernels = (
            list(SMOKE_KERNELS)
            if smoke
            else [e.kernel for e in EXPECTATIONS]
        )
    tasks: List[Dict[str, Any]] = [
        {
            "section": "characterize",
            "name": f"characterize:{kernel}",
            "kernel": kernel,
        }
        for kernel in kernels
    ]
    tasks.extend(
        {
            "section": "bench",
            "name": f"bench:{phase}",
            "phase": phase,
            "smoke": smoke,
            "seed": derive_seed(seed, "bench", phase) % 2**31,
        }
        for phase in BENCH_PHASES
    )
    scales = [1, 2] if smoke else [1, 2, 4, 8]
    educational_max_scale = 1 if smoke else 2
    tasks.extend(
        {
            "section": "fig21",
            "name": f"fig21:x{scale}",
            "scale": scale,
            "educational_max_scale": educational_max_scale,
        }
        for scale in scales
    )
    from repro.harness.config import rt_defaults

    tasks.extend(
        {
            "section": "rt",
            "name": (
                f"rt:{kernel}"
                if granularity == "run"
                else f"rt:{kernel}:step"
            ),
            "kernel": kernel,
            "granularity": granularity,
            "smoke": smoke,
            "jobs": rt_defaults(kernel).resolved_suite_jobs(smoke),
        }
        for kernel, granularity in (
            RT_SUITE_KERNELS_SMOKE if smoke else RT_SUITE_KERNELS
        )
    )
    return tasks


def run_suite_task(task: Dict[str, Any]) -> Dict[str, Any]:
    """Execute one suite task (worker-process entry); returns a report row.

    The row carries ROI/setup wall clock, a timing-free ``fingerprint``
    (operation counters / deterministic work counts) for determinism
    checks, section-specific detail, and the *delta* of this process's
    cache statistics attributable to the task.
    """
    from repro.envs.cache import default_cache

    stats = default_cache().stats
    before = stats.as_dict()
    section = task["section"]
    if section == "characterize":
        from repro.experiments.characterization import (
            characterize_kernel_by_name,
        )

        row = characterize_kernel_by_name(task["kernel"])
        payload: Dict[str, Any] = {
            "roi_s": row.roi_time,
            "setup_s": row.setup_time,
            "fingerprint": _fingerprint(row.counters),
            "detail": {
                "stage": row.stage,
                "dominant_phase": row.dominant_phase,
                "combined_share": row.combined_share,
                "matches_paper": row.matches_paper,
                "counters": row.counters,
            },
        }
    elif section == "bench":
        from repro.harness.bench import BENCH_PHASES

        metrics = BENCH_PHASES[task["phase"]](
            smoke=task["smoke"], seed=task["seed"]
        )
        payload = {
            "roi_s": metrics["reference_s"] + metrics["vectorized_s"],
            "setup_s": 0.0,
            "fingerprint": _fingerprint(metrics["ops"]),
            "detail": metrics,
        }
    elif section == "rt":
        from repro.rt.run import run_rt

        report = run_rt(
            task["kernel"],
            period_ms=0,  # auto-calibrate: suite runs on unknown machines
            jobs=task["jobs"],
            smoke=task["smoke"],
            granularity=task.get("granularity", "run"),
        )
        unloaded = report["conditions"]["unloaded"]
        payload = {
            "roi_s": unloaded["busy_s"],
            "setup_s": 0.0,
            # Timing-only task: no deterministic counters to fingerprint.
            "fingerprint": None,
            "detail": {
                "granularity": report["rt"]["granularity"],
                "period_ms": report["rt"]["period_ms"],
                "deadline_ms": report["rt"]["deadline_ms"],
                "miss_rate": unloaded["miss_rate"],
                "response_p50_ms": unloaded["response_ms"]["p50"],
                "response_p99_ms": unloaded["response_ms"]["p99"],
                "jitter_p99_ms": unloaded["jitter_ms"]["p99"],
                "slo": report["slo"]["verdict"],
            },
        }
    elif section == "fig21":
        from repro.experiments.fig21_comparison import run_fig21_point

        point = run_fig21_point(
            task["scale"], task["educational_max_scale"]
        )
        payload = {
            "roi_s": point.optimized_time,
            "setup_s": 0.0,
            # Timing-only task: no deterministic counters to fingerprint.
            "fingerprint": None,
            "detail": {
                "scale": point.scale,
                "optimized_s": point.optimized_time,
                "educational_s": point.educational_time,
                "speedup": point.speedup,
            },
        }
    else:
        raise ValueError(f"unknown suite task section {section!r}")
    after = stats.as_dict()
    payload["cache"] = {
        # Scalar counters only: ``per_category`` nests a dict and is a
        # process-wide observability breakdown, not a per-task delta.
        key: after[key] - before.get(key, 0)
        for key in after
        if not isinstance(after[key], dict)
    }
    return payload


def _cache_probe(smoke: bool = False, seed: int = 7) -> Dict[str, Any]:
    """Measure cold-build vs cache-hit setup time for a suite workload.

    Uses the pfl building map (the suite's most expensive procedural
    artifact): one bypassed build for the cold number, then a cached call
    served from the warmed cache for the hit number.
    """
    from repro.envs.mapgen import wean_hall_like

    if smoke:
        params = dict(rows=160, cols=200, resolution=0.25, seed=seed)
    else:
        params = dict(rows=320, cols=400, resolution=0.125, seed=seed)
    t0 = time.perf_counter()
    wean_hall_like.build_uncached(**params)
    cold_s = time.perf_counter() - t0
    wean_hall_like(**params)  # warm both cache layers
    t0 = time.perf_counter()
    wean_hall_like(**params)
    warm_s = time.perf_counter() - t0
    return {
        "workload": "wean_hall_like",
        "params": params,
        "cold_build_s": cold_s,
        "warm_hit_s": warm_s,
        "hit_speedup": cold_s / warm_s if warm_s > 0 else float("inf"),
    }


def _rows(results: Sequence[TaskResult]) -> List[Dict[str, Any]]:
    """TaskResults -> report rows (failure rows keep the worker traceback).

    Each row carries the executor's per-task accounting alongside the
    task payload: ``exec_s`` (worker-measured execution), ``wall_s``
    (parent-observed dispatch-to-result, so ``wall_s - exec_s`` is the
    dispatch overhead), ``queue_wait_s`` (time spent scheduled but not
    yet dispatched), and ``worker`` (which pool worker ran it).
    """
    rows = []
    for result in results:
        row: Dict[str, Any] = {
            "task": result.name,
            "section": result.name.split(":", 1)[0],
            "ok": result.ok,
            "wall_s": result.duration,
            "timed_out": result.timed_out,
        }
        if result.ok:
            row.update(result.value)
        else:
            row["error"] = result.error
        row["exec_s"] = result.exec_s
        row["queue_wait_s"] = result.queue_wait_s
        row["worker"] = result.worker_id
        rows.append(row)
    return rows


def _aggregate_cache(rows: Sequence[Dict[str, Any]]) -> Dict[str, float]:
    """Sum the per-task cache deltas reported by the workers."""
    total: Dict[str, float] = {}
    for row in rows:
        for key, value in (row.get("cache") or {}).items():
            total[key] = total.get(key, 0) + value
    return total


def filter_tasks(
    tasks: Sequence[Dict[str, Any]], pattern: Optional[str]
) -> List[Dict[str, Any]]:
    """Select tasks whose name matches a glob (``None`` keeps everything).

    Matches the full task name (``characterize:04.pp2d``) and, for
    convenience, the bare kernel/point suffix after the section colon —
    so ``--filter 'rt:*'``, ``--filter '*pp2d*'`` and ``--filter pp2d``
    all do what they look like.  Raises ``ValueError`` when the pattern
    selects nothing, so a typo cannot silently run an empty suite.
    """
    if pattern is None:
        return list(tasks)
    selected = [
        task
        for task in tasks
        if fnmatch.fnmatchcase(task["name"], pattern)
        or fnmatch.fnmatchcase(task["name"].split(":", 1)[-1], pattern)
    ]
    if not selected:
        names = ", ".join(t["name"] for t in tasks)
        raise ValueError(
            f"--filter {pattern!r} matches no suite tasks (have: {names})"
        )
    return selected


def _task_priorities(
    tasks: Sequence[Dict[str, Any]], store: Any
) -> Optional[List[float]]:
    """Per-task duration hints from the newest stored suite record.

    Feeds longest-first scheduling: a task's priority is its execution
    time the last time the suite ran (``tasks.<name>.exec_s``, falling
    back to ``wall_s`` for older records), 0.0 when unknown.  Returns
    ``None`` — input order — when no record knows any of these tasks.
    """
    if store is None:
        return None
    try:
        record = store.latest("suite")
    except Exception:
        return None
    if record is None:
        return None
    priorities: List[float] = []
    known = 0
    for task in tasks:
        name = task["name"]
        measurement = record.measurements.get(
            f"tasks.{name}.exec_s"
        ) or record.measurements.get(f"tasks.{name}.wall_s")
        if measurement is None:
            priorities.append(0.0)
        else:
            priorities.append(float(measurement.value))
            known += 1
    return priorities if known else None


def _find_serial_baseline(
    store: Any, names: Sequence[str], smoke: bool, seed: int
) -> Optional[Dict[str, Any]]:
    """Newest stored record usable as a serial baseline for this run.

    Comparable means: same smoke mode, same seed, the exact same task
    list, and no failed rows.  A ``jobs <= 1`` record contributes its
    own wall clock; a parallel record is usable only when it measured an
    inline serial pass *and* that pass matched fingerprints (which makes
    its stored per-task fingerprints valid serial fingerprints too).
    Returns ``{"serial_wall_s", "source", "fingerprints"}`` or ``None``.
    """
    if store is None:
        return None
    want = sorted(names)
    try:
        history = store.history("suite")
    except Exception:
        return None
    for path in reversed(history):
        try:
            record = store.load(path)
        except Exception:
            continue
        detail = record.detail or {}
        suite = detail.get("suite") or {}
        if bool(suite.get("smoke", False)) != bool(smoke):
            continue
        if suite.get("seed") != seed:
            continue
        rows = detail.get("tasks") or []
        if sorted(row.get("task") for row in rows) != want:
            continue
        if any(not row.get("ok") for row in rows):
            continue
        if (suite.get("jobs") or 1) <= 1:
            serial_wall = suite.get("wall_s")
        else:
            serial_wall = suite.get("serial_wall_s")
            if not (detail.get("determinism") or {}).get("matches"):
                continue
        if not serial_wall:
            continue
        return {
            "serial_wall_s": float(serial_wall),
            "source": getattr(record, "run_id", path),
            "fingerprints": {
                row["task"]: row.get("fingerprint") for row in rows
            },
        }
    return None


def _fingerprint_mismatches(
    results: Sequence[TaskResult], expected: Dict[str, Any]
) -> List[str]:
    """Task names whose fingerprint differs from the expected mapping.

    Tasks without a deterministic fingerprint on either side (timing-only
    sections, failed rows) are skipped — they carry no evidence.
    """
    mismatches = []
    for result in results:
        if not result.ok:
            continue
        ours = result.value.get("fingerprint")
        theirs = expected.get(result.name)
        if ours is not None and theirs is not None and ours != theirs:
            mismatches.append(result.name)
    return mismatches


def run_suite(
    jobs: int = 1,
    smoke: bool = False,
    seed: int = 7,
    kernels: Optional[Sequence[str]] = None,
    timeout: Optional[float] = None,
    baseline: bool = False,
    task_filter: Optional[str] = None,
    results_dir: Optional[str] = None,
) -> Dict[str, Any]:
    """Run the whole suite and return the ``BENCH_suite.json`` payload.

    With ``jobs > 1`` the task list runs once on a persistent worker
    pool, scheduled longest-first when a previous run record knows the
    task durations, with the parent's cached workloads published into a
    shared-memory plane that workers attach zero-copy.  The serial
    comparison is **opt-in**: ``baseline=True`` re-runs the task list
    inline (doubling wall time) and cross-checks fingerprints; otherwise
    the comparison is derived from the latest comparable serial record
    in the result store, and when none exists ``parallel_speedup`` is
    ``null`` with ``parallel_speedup_reason`` saying why.
    ``task_filter`` selects a task subset by name glob (see
    :func:`filter_tasks`).
    """
    import functools

    from repro.envs.cache import default_cache, install_shared_plane

    tasks = filter_tasks(
        suite_tasks(smoke=smoke, seed=seed, kernels=kernels), task_filter
    )
    names = [t["name"] for t in tasks]

    store = None
    try:
        from repro.results import ResultStore

        store = ResultStore(results_dir)
    except Exception:  # pragma: no cover - results layer unavailable
        store = None
    priorities = _task_priorities(tasks, store)

    plane = None
    shm_segments = 0
    shm_bytes = 0
    initializer = None
    if jobs > 1:
        try:
            from repro.harness.shm import SharedWorkloadPlane

            plane = SharedWorkloadPlane()
            default_cache().publish_entries(plane)
            mapping = plane.mapping()
            shm_segments = len(plane)
            shm_bytes = plane.total_bytes
            if mapping:
                install_shared_plane(mapping)
                initializer = functools.partial(
                    install_shared_plane, mapping
                )
        except Exception:  # pragma: no cover - plane is an optimization
            plane = None

    pool_stats: Dict[str, Any] = {}
    try:
        t0 = time.perf_counter()
        results = map_tasks(
            run_suite_task,
            tasks,
            jobs=jobs,
            timeout=timeout,
            names=names,
            priorities=priorities,
            initializer=initializer,
            pool_stats=pool_stats,
        )
        wall_s = time.perf_counter() - t0
        rows = _rows(results)

        serial_wall_s = None
        speedup_reason: Optional[str] = None
        baseline_source: Optional[str] = None
        determinism: Dict[str, Any] = {"checked": False}
        if jobs > 1:
            if baseline:
                t0 = time.perf_counter()
                serial_results = map_tasks(
                    run_suite_task, tasks, jobs=1, names=names
                )
                serial_wall_s = time.perf_counter() - t0
                baseline_source = "inline"
                expected = {
                    r.name: r.value.get("fingerprint")
                    for r in serial_results
                    if r.ok
                }
                mismatches = _fingerprint_mismatches(results, expected)
                determinism = {
                    "checked": True,
                    "matches": not mismatches,
                    "mismatches": mismatches,
                    "source": "inline",
                }
            else:
                found = _find_serial_baseline(
                    store, names, smoke=smoke, seed=seed
                )
                if found is None:
                    speedup_reason = (
                        "no comparable serial baseline in the result "
                        "store; run once with --baseline (or -j 1) to "
                        "record one"
                    )
                else:
                    serial_wall_s = found["serial_wall_s"]
                    baseline_source = f"record:{found['source']}"
                    mismatches = _fingerprint_mismatches(
                        results, found["fingerprints"]
                    )
                    determinism = {
                        "checked": True,
                        "matches": not mismatches,
                        "mismatches": mismatches,
                        "source": baseline_source,
                    }
        else:
            speedup_reason = "serial run (jobs <= 1): nothing to compare"
    finally:
        install_shared_plane(None)
        if plane is not None:
            plane.close()

    ok_results = [r for r in results if r.ok]
    exec_total = sum(r.exec_s for r in ok_results)
    duration_total = sum(r.duration for r in ok_results)
    dispatch_overhead_s = sum(
        max(0.0, r.duration - r.exec_s) for r in ok_results
    )
    workers = pool_stats.get("workers") or 1
    probe = _cache_probe(smoke=smoke, seed=seed)
    return {
        "suite": {
            "jobs": jobs,
            "smoke": smoke,
            "seed": seed,
            "filter": task_filter,
            "task_count": len(tasks),
            "failures": sum(1 for row in rows if not row["ok"]),
            "wall_s": wall_s,
            "serial_wall_s": serial_wall_s,
            "parallel_speedup": (
                serial_wall_s / wall_s
                if serial_wall_s and wall_s > 0
                else None
            ),
            "parallel_speedup_reason": speedup_reason,
            "baseline_source": baseline_source,
            "dispatch_overhead_s": dispatch_overhead_s,
            "dispatch_overhead_share": (
                dispatch_overhead_s / duration_total
                if duration_total > 0
                else None
            ),
            "worker_utilization": (
                exec_total / (workers * wall_s)
                if workers and wall_s > 0
                else None
            ),
            "executor": {
                "workers": workers,
                "respawns": pool_stats.get("respawns", 0),
                "crashes": pool_stats.get("crashes", 0),
                "timeouts": pool_stats.get("timeouts", 0),
                "scheduling": (
                    "longest-first" if priorities else "input-order"
                ),
                "shm_segments": shm_segments,
                "shm_bytes": shm_bytes,
            },
        },
        "cache": {
            "probe": probe,
            "workers": _aggregate_cache(rows),
        },
        "determinism": determinism,
        "tasks": rows,
    }
