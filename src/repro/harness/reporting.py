"""Reporting helpers: text tables for kernel results, JSON suite reports."""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Sequence

from repro.harness.runner import KernelResult


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render a fixed-width text table with a header rule."""
    materialized: List[List[str]] = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def render(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    lines = [render(list(headers)), render(["-" * w for w in widths])]
    lines.extend(render(row) for row in materialized)
    return "\n".join(lines)


def result_summary(result: KernelResult) -> str:
    """One-paragraph summary of a kernel run: ROI time + phase breakdown."""
    lines = [
        f"kernel {result.kernel} ({result.stage})",
        f"ROI time: {result.roi_time:.4f}s",
        result.profiler.report(),
    ]
    if result.metrics:
        lines.append("metrics:")
        for key, value in sorted(result.metrics.items()):
            lines.append(f"  {key} = {value:.6g}")
    return "\n".join(lines)


def characterization_table(results: Iterable[KernelResult]) -> str:
    """Table-I-style view: kernel, stage, dominant phase, its share."""
    rows = []
    for result in results:
        dominant = result.profiler.dominant_phase() or "-"
        share = result.profiler.fraction(dominant) if dominant != "-" else 0.0
        rows.append(
            [result.kernel, result.stage, dominant, f"{share:.0%}",
             f"{result.roi_time:.4f}s"]
        )
    return format_table(
        ["kernel", "stage", "dominant phase", "share", "ROI time"], rows
    )


def fractions_table(fractions_by_kernel: Dict[str, Dict[str, float]]) -> str:
    """Render a kernel -> {phase: share} mapping as a text table."""
    rows = []
    for kernel, fractions in fractions_by_kernel.items():
        for phase, share in sorted(fractions.items(), key=lambda kv: -kv[1]):
            rows.append([kernel, phase, f"{share:.1%}"])
    return format_table(["kernel", "phase", "share"], rows)


def write_json_report(payload: Any, path: str) -> None:
    """Write a machine-readable report as pretty-printed, sorted JSON."""
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True, default=repr)
        fh.write("\n")


def render_record(record: Any) -> str:
    """Human view of a :class:`~repro.results.record.RunRecord`.

    Header (identity + provenance), environment fingerprint, then the
    flat measurement table — the same names ``rtrbench gate`` and
    ``rtrbench compare`` address.
    """
    env = record.environment
    lines = [
        f"{record.kind} record {record.run_id} "
        f"(schema v{record.schema_version}, {record.created_at})"
    ]
    if record.tags:
        lines.append(f"tags: {', '.join(record.tags)}")
    if record.provenance:
        provenance = ", ".join(
            f"{key}={value}"
            for key, value in sorted(record.provenance.items())
            if value is not None
        )
        lines.append(f"provenance: {provenance}")
    thread_env = (
        ", ".join(f"{k}={v}" for k, v in sorted(env.thread_env.items()))
        or "unpinned"
    )
    lines.append(
        f"environment: python {env.python or '?'}, numpy {env.numpy or '?'}, "
        f"{env.cpu_count or '?'} cpus, git {(env.git_sha or 'unknown')[:12]}, "
        f"threads: {thread_env} [{env.digest()}]"
    )
    rows = [
        [name, f"{m.value:.6g}", m.unit or "-"]
        for name, m in sorted(record.measurements.items())
    ]
    lines.append(format_table(["measurement", "value", "unit"], rows))
    return "\n".join(lines)


def render_rt_report(report: Dict[str, Any]) -> str:
    """Human view of a ``run_rt`` report: per-condition latency table + SLO."""
    rt = report["rt"]
    header = (
        f"rt {rt['kernel']} ({rt['stage']}): "
        f"period {rt['period_ms']:.3g}ms, deadline {rt['deadline_ms']:.3g}ms, "
        f"{rt['jobs']} jobs (+{rt['warmup']} warmup), overrun={rt['overrun']}"
    )
    if rt.get("granularity") == "step":
        header += (
            f" [per-step, {rt.get('steps_per_episode', '?')} steps/episode]"
        )
    if rt.get("calibrated"):
        header += " [calibrated]"
    if rt.get("smoke"):
        header += " [smoke]"
    rows = []
    for condition, summary in report["conditions"].items():
        response = summary["response_ms"]
        rows.append(
            [
                condition,
                f"{response['p50']:.3f}",
                f"{response['p90']:.3f}",
                f"{response['p99']:.3f}",
                f"{response['max']:.3f}",
                f"{summary['jitter_ms']['p99']:.3f}",
                f"{summary['miss_rate']:.1%}",
                str(summary["skipped_releases"]),
            ]
        )
    lines = [
        header,
        format_table(
            [
                "condition",
                "p50 (ms)",
                "p90 (ms)",
                "p99 (ms)",
                "max (ms)",
                "jitter p99",
                "miss rate",
                "skipped",
            ],
            rows,
        ),
    ]
    degradation = report.get("degradation")
    if degradation:
        lines.append(
            f"antagonists ({rt['antagonists']}x {rt['antagonist_kind']}): "
            f"p50 {degradation['p50_ratio']:.2f}x, "
            f"p99 {degradation['p99_ratio']:.2f}x, "
            f"miss rate {degradation['miss_rate_delta']:+.1%}"
        )
    if rt.get("granularity") == "step":
        unloaded = report["conditions"]["unloaded"]
        lines.append(
            f"episodes: {unloaded.get('episodes', 0)} opened, last at "
            f"step {unloaded.get('last_episode_steps', 0)}/"
            f"{rt.get('steps_per_episode', '?')}"
        )
    breakdown = report["conditions"]["unloaded"]["phase_breakdown"]
    if breakdown.get("dominant"):
        dominant = breakdown["phases"][breakdown["dominant"]]
        lines.append(
            f"dominant phase: {breakdown['dominant']} "
            f"({dominant['share']:.0%}, per-job "
            f"{dominant['min_ms']:.3f}..{dominant['max_ms']:.3f}ms)"
        )
    slo = report["slo"]
    lines.append(f"SLO: {slo['verdict'].upper()}")
    lines.extend(f"  - {reason}" for reason in slo["reasons"])
    return "\n".join(lines)


def render_suite_report(report: Dict[str, Any]) -> str:
    """Human view of a ``run_suite`` report: task table + executor summary."""
    rows = []
    for row in report["tasks"]:
        if row["ok"]:
            status = "ok"
        elif row.get("timed_out"):
            status = "TIMEOUT"
        else:
            status = "FAIL"
        rows.append(
            [
                row["task"],
                status,
                f"{row['wall_s']:.3f}s",
                f"{row.get('exec_s', 0.0):.3f}s",
                f"{row.get('queue_wait_s', 0.0):.3f}s",
                f"{row.get('roi_s', 0.0):.3f}s" if row["ok"] else "-",
                "-" if row.get("worker") is None else f"w{row['worker']}",
            ]
        )
    lines = [
        format_table(
            ["task", "status", "wall", "exec", "queued", "ROI", "worker"],
            rows,
        )
    ]
    suite = report["suite"]
    lines.append(
        f"suite: {suite['task_count']} tasks, {suite['failures']} failures, "
        f"jobs={suite['jobs']}, wall={suite['wall_s']:.2f}s"
    )
    executor = suite.get("executor")
    if executor:
        extras = []
        if executor.get("respawns"):
            extras.append(f"{executor['respawns']} respawns")
        if executor.get("shm_segments"):
            extras.append(
                f"{executor['shm_segments']} shm segments "
                f"({executor['shm_bytes'] / 1e6:.1f} MB)"
            )
        utilization = suite.get("worker_utilization")
        share = suite.get("dispatch_overhead_share")
        lines.append(
            f"executor: {executor['workers']} workers "
            f"({executor['scheduling']}), "
            f"utilization {utilization:.0%}, "
            f"dispatch overhead {suite['dispatch_overhead_s']:.3f}s "
            f"({share:.1%} of task time)"
            + ("; " + ", ".join(extras) if extras else "")
            if utilization is not None and share is not None
            else f"executor: {executor['workers']} workers "
            f"({executor['scheduling']})"
        )
    if suite.get("serial_wall_s"):
        source = suite.get("baseline_source")
        lines.append(
            f"serial baseline: {suite['serial_wall_s']:.2f}s "
            f"(parallel speedup {suite['parallel_speedup']:.2f}x"
            + (f", from {source}" if source else "")
            + ")"
        )
    elif suite.get("parallel_speedup_reason"):
        lines.append(
            f"parallel speedup: n/a ({suite['parallel_speedup_reason']})"
        )
    probe = report["cache"]["probe"]
    lines.append(
        f"cache: cold build {probe['cold_build_s'] * 1e3:.2f}ms, "
        f"warm hit {probe['warm_hit_s'] * 1e3:.2f}ms "
        f"({probe['hit_speedup']:.0f}x); workers "
        + json.dumps(report["cache"]["workers"], sort_keys=True)
    )
    determinism = report.get("determinism", {})
    if determinism.get("checked"):
        lines.append(
            "determinism: parallel == serial"
            if determinism.get("matches")
            else "determinism: MISMATCH in "
            + ", ".join(determinism.get("mismatches", []))
        )
    return "\n".join(lines)
