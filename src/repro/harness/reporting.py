"""Plain-text reporting helpers for kernel results and experiment tables."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.harness.runner import KernelResult


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render a fixed-width text table with a header rule."""
    materialized: List[List[str]] = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def render(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    lines = [render(list(headers)), render(["-" * w for w in widths])]
    lines.extend(render(row) for row in materialized)
    return "\n".join(lines)


def result_summary(result: KernelResult) -> str:
    """One-paragraph summary of a kernel run: ROI time + phase breakdown."""
    lines = [
        f"kernel {result.kernel} ({result.stage})",
        f"ROI time: {result.roi_time:.4f}s",
        result.profiler.report(),
    ]
    if result.metrics:
        lines.append("metrics:")
        for key, value in sorted(result.metrics.items()):
            lines.append(f"  {key} = {value:.6g}")
    return "\n".join(lines)


def characterization_table(results: Iterable[KernelResult]) -> str:
    """Table-I-style view: kernel, stage, dominant phase, its share."""
    rows = []
    for result in results:
        dominant = result.profiler.dominant_phase() or "-"
        share = result.profiler.fraction(dominant) if dominant != "-" else 0.0
        rows.append(
            [result.kernel, result.stage, dominant, f"{share:.0%}",
             f"{result.roi_time:.4f}s"]
        )
    return format_table(
        ["kernel", "stage", "dominant phase", "share", "ROI time"], rows
    )


def fractions_table(fractions_by_kernel: Dict[str, Dict[str, float]]) -> str:
    """Render a kernel -> {phase: share} mapping as a text table."""
    rows = []
    for kernel, fractions in fractions_by_kernel.items():
        for phase, share in sorted(fractions.items(), key=lambda kv: -kv[1]):
            rows.append([kernel, phase, f"{share:.1%}"])
    return format_table(["kernel", "phase", "share"], rows)
