"""Shared-memory workload plane: publish once, attach zero-copy.

The suite's large read-only workloads — occupancy grids, voxel volumes,
point clouds — are pure functions of their parameters and are already
content-keyed by :mod:`repro.envs.cache`.  Before this layer, every
worker process re-read them from the disk cache (one unpickle *per
worker per artifact*).  Here the parent **publishes** each artifact once
into a POSIX shared-memory segment and workers **attach** zero-copy:

* :func:`serialize` pickles the value with protocol 5, extracting every
  large contiguous buffer (numpy arrays) out of band; the segment holds
  ``[header][meta pickle][buffer bytes...]`` with no copies on attach —
  :func:`attach_value` reconstructs the object with its arrays as views
  straight into the mapped segment.
* :class:`SharedWorkloadPlane` is the parent-side registry.  Segments
  are unlinked on :meth:`close`, at interpreter exit (``atexit``), and —
  because creation registers with ``multiprocessing.resource_tracker`` —
  even when the parent is SIGKILLed.
* :class:`AttachedSegmentCache` is the per-worker LRU of attached
  segments: repeat hits cost a dict lookup, eviction detaches (and is
  safe against values still referencing the mapping).

Attaching processes skip resource-tracker registration entirely (the
well-known attach-side tracker over-eagerness, fixed only in Python
3.13's ``track=False``) so a worker's exit can never unlink — nor its
tracker bookkeeping ever shadow — a segment the parent still serves.

Segment names carry the :data:`SEGMENT_PREFIX` plus the creating
process id, so :func:`list_segments` can audit a machine for leaks (CI
asserts the list is empty after a suite run).
"""

from __future__ import annotations

import atexit
import os
import pickle
import struct
from collections import OrderedDict
from contextlib import contextmanager
from typing import Any, Dict, List, Optional, Tuple

try:  # pragma: no cover - shared_memory ships with CPython >= 3.8
    from multiprocessing import resource_tracker, shared_memory

    HAVE_SHARED_MEMORY = True
except ImportError:  # pragma: no cover - exotic minimal builds
    HAVE_SHARED_MEMORY = False

#: Every segment this suite creates starts with this prefix.
SEGMENT_PREFIX = "rtrbench"

#: Default ceiling on the bytes one plane may publish (512 MiB).
DEFAULT_MAX_PLANE_BYTES = 512 * 1024 * 1024

#: ``struct`` format for the one fixed-size field: the header length.
_LEN = struct.Struct(">Q")


def segment_name(key: str) -> str:
    """Segment name for a content key: prefix + creator pid + key."""
    return f"{SEGMENT_PREFIX}-{os.getpid():x}-{key[:24]}"


def serialize(value: Any) -> Tuple[bytes, List[Any]]:
    """Split a value into a meta pickle and its out-of-band buffers.

    Returns ``(header, chunks)`` where ``chunks[0]`` is the protocol-5
    meta pickle and the rest are the raw buffers it references; the
    header records every chunk's byte length.  Values whose buffers are
    not contiguous fall back to a single in-band pickle chunk.
    """
    buffers: List[Any] = []
    try:
        meta = pickle.dumps(
            value, protocol=5, buffer_callback=buffers.append
        )
        chunks: List[Any] = [meta]
        chunks.extend(b.raw() for b in buffers)
    except (pickle.PicklingError, BufferError, TypeError, ValueError):
        chunks = [pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)]
    lengths = [memoryview(chunk).nbytes for chunk in chunks]
    header = pickle.dumps(lengths)
    return header, chunks


def deserialize(buf: memoryview) -> Any:
    """Rebuild a value from a segment buffer, arrays as zero-copy views.

    The reconstructed object's buffers alias ``buf`` — the mapping must
    outlive the value (the attach cache guarantees that).
    """
    (header_len,) = _LEN.unpack_from(buf, 0)
    offset = _LEN.size
    lengths = pickle.loads(bytes(buf[offset:offset + header_len]))
    offset += header_len
    views: List[memoryview] = []
    for length in lengths:
        views.append(buf[offset:offset + length])
        offset += length
    meta = bytes(views[0])
    return pickle.loads(meta, buffers=views[1:])


@contextmanager
def _untracked_attach() -> Any:
    """Suppress resource-tracker registration for the duration of an attach.

    ``SharedMemory(name=...)`` registers the segment even when merely
    attaching (fixed only in Python 3.13's ``track=False``).  That
    registration is wrong in both process models: a *spawned* attacher's
    private tracker would unlink the segment when the attacher exits,
    and a *forked* attacher shares the parent's tracker, where a
    compensating unregister would instead erase the creator's own
    registration (losing hard-kill cleanup).  Not registering at all is
    the only behavior correct under both.
    """
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        yield
    finally:
        resource_tracker.register = original


def attach_segment(name: str) -> Any:
    """Attach an existing segment (tracker-neutral); caller must close."""
    with _untracked_attach():
        return shared_memory.SharedMemory(name=name)


def attach_value(name: str) -> Tuple[Any, Any]:
    """Attach a segment and rebuild its value; returns ``(value, shm)``.

    The caller owns the ``shm`` handle and must keep it open for as long
    as the value (or any view of it) is alive.
    """
    shm = attach_segment(name)
    try:
        return deserialize(shm.buf), shm
    except Exception:
        try:
            shm.close()
        except Exception:  # pragma: no cover
            pass
        raise


def list_segments(prefix: str = SEGMENT_PREFIX) -> List[str]:
    """Names of live shared-memory segments carrying ``prefix``.

    Reads ``/dev/shm`` (Linux); on platforms without it the scan returns
    empty rather than guessing.  This is the leak audit CI runs after
    the suite: a clean shutdown leaves nothing to list.
    """
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):  # pragma: no cover - non-Linux
        return []
    try:
        return sorted(
            name for name in os.listdir(shm_dir) if name.startswith(prefix)
        )
    except OSError:  # pragma: no cover - racing teardown
        return []


class SharedWorkloadPlane:
    """Parent-side registry of published segments with guaranteed unlink.

    ``publish`` lays one value into one segment; ``mapping`` hands the
    ``{content key -> segment name}`` table to workers (installed before
    the pool forks, so children inherit it).  ``close`` — idempotent,
    registered with ``atexit``, and additionally covered by the resource
    tracker against hard kills — unlinks everything.
    """

    def __init__(self, max_bytes: int = DEFAULT_MAX_PLANE_BYTES) -> None:
        self.max_bytes = max_bytes
        self.total_bytes = 0
        self._segments: Dict[str, Any] = {}   # key -> SharedMemory
        self._names: Dict[str, str] = {}      # key -> segment name
        self._closed = False
        if HAVE_SHARED_MEMORY:
            atexit.register(self.close)

    def __len__(self) -> int:
        return len(self._segments)

    def publish(self, key: str, value: Any) -> bool:
        """Publish one value under a content key; False when skipped.

        Skips (without failing) when shared memory is unavailable, the
        plane is at its byte budget, the key is already published, or
        the OS refuses the segment — publication is an optimization,
        never a correctness requirement.
        """
        if not HAVE_SHARED_MEMORY or self._closed or key in self._segments:
            return False
        try:
            header, chunks = serialize(value)
        except Exception:
            return False
        size = (
            _LEN.size
            + len(header)
            + sum(memoryview(chunk).nbytes for chunk in chunks)
        )
        if size <= 0 or self.total_bytes + size > self.max_bytes:
            return False
        name = segment_name(key)
        try:
            shm = shared_memory.SharedMemory(
                name=name, create=True, size=size
            )
        except (OSError, ValueError):
            return False
        offset = 0
        _LEN.pack_into(shm.buf, offset, len(header))
        offset += _LEN.size
        shm.buf[offset:offset + len(header)] = header
        offset += len(header)
        for chunk in chunks:
            view = memoryview(chunk).cast("B")
            shm.buf[offset:offset + view.nbytes] = view
            offset += view.nbytes
        self._segments[key] = shm
        self._names[key] = name
        self.total_bytes += size
        return True

    def mapping(self) -> Dict[str, str]:
        """``{content key -> segment name}`` for worker installation."""
        return dict(self._names)

    def close(self) -> None:
        """Unlink every published segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for shm in self._segments.values():
            try:
                shm.close()
            except Exception:  # pragma: no cover
                pass
            try:
                shm.unlink()
            except Exception:  # pragma: no cover - already gone
                pass
        self._segments.clear()
        self._names.clear()
        if HAVE_SHARED_MEMORY:
            try:
                atexit.unregister(self.close)
            except Exception:  # pragma: no cover
                pass

    def __enter__(self) -> "SharedWorkloadPlane":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def _detach(shm: Any) -> None:
    """Close an attached handle, tolerating values that outlive it.

    When views into the mapping are still exported, ``close`` raises
    ``BufferError``; the handle is then neutralized so its ``__del__``
    does not retry (and noisily fail) — the live views keep the mapping
    alive and the OS reclaims it at process exit.
    """
    try:
        shm.close()
    except BufferError:
        shm._mmap = None
        shm._buf = None
    except Exception:  # pragma: no cover
        pass


class AttachedSegmentCache:
    """Per-process LRU of attached segments and their rebuilt values.

    ``get`` returns the shm-backed value (callers must copy before
    mutating — the workload cache deep-copies, preserving its existing
    contract).  Eviction detaches the mapping; a value still referenced
    elsewhere keeps its buffer exported, in which case the close is
    deferred to process exit rather than invalidating live views.
    """

    def __init__(self, max_items: int = 8) -> None:
        self.max_items = max_items
        self._entries: "OrderedDict[str, Tuple[Any, Any]]" = OrderedDict()
        self.attach_count = 0

    def get(self, name: str) -> Optional[Any]:
        """Value for a segment name, attaching on first use."""
        if not HAVE_SHARED_MEMORY:
            return None
        entry = self._entries.get(name)
        if entry is not None:
            self._entries.move_to_end(name)
            return entry[0]
        try:
            value, shm = attach_value(name)
        except (OSError, ValueError, pickle.UnpicklingError, EOFError,
                AttributeError, ImportError):
            return None
        self.attach_count += 1
        self._entries[name] = (value, shm)
        while len(self._entries) > self.max_items:
            _, (old_value, old_shm) = self._entries.popitem(last=False)
            del old_value
            _detach(old_shm)
        return value

    def close(self) -> None:
        """Detach everything (same deferred-close rule as eviction)."""
        while self._entries:
            _, (value, shm) = self._entries.popitem(last=False)
            del value
            _detach(shm)

    def __len__(self) -> int:
        return len(self._entries)
