"""Kernel runner protocol and registry.

Every RTRBench kernel is exposed as a :class:`Kernel` subclass that knows
its pipeline stage, its configuration dataclass, and how to run itself
under a :class:`~repro.harness.profiler.PhaseProfiler`.  The registry maps
the paper's kernel names (``01.pfl`` ... ``16.bo``) to implementations so
experiments and the ``rtrbench`` CLI can enumerate the whole suite.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Type

from repro.harness.config import KernelConfig
from repro.harness.profiler import PhaseProfiler
from repro.harness.roi import roi_begin, roi_end


@dataclass
class KernelResult:
    """Outcome of one kernel run.

    ``output`` is kernel-specific (a path, an estimate trace, a policy...);
    ``profiler`` holds the phase breakdown measured inside the ROI;
    ``roi_time`` is the wall-clock duration of the region of interest and
    ``setup_time`` the wall clock of workload construction outside it.
    With ``config.repeats > 1`` both reflect the final measured repeat,
    and ``metrics`` gains ``roi_min_s`` / ``roi_median_s`` /
    ``roi_mean_s`` / ``roi_repeats`` summarizing the whole series.
    """

    kernel: str
    stage: str
    output: Any
    profiler: PhaseProfiler
    roi_time: float
    config: Optional[KernelConfig] = None
    metrics: Dict[str, float] = field(default_factory=dict)
    setup_time: float = 0.0

    def fraction(self, phase: str) -> float:
        """Convenience passthrough to the profiler's phase share."""
        return self.profiler.fraction(phase)


@dataclass
class StepSession:
    """One in-progress ROI execution, advanced one :meth:`step` at a time.

    A session pins the episode-scoped pieces together: the kernel, its
    configuration and workload ``state``, the profiler every step reports
    into, and ``payload`` — whatever :meth:`Kernel.begin_roi` built (the
    live filter, the controller's tracking state, ...).  ``steps_done``
    advances monotonically; once :attr:`exhausted`, :meth:`finish` runs
    the kernel's ``finalize`` exactly once and caches ``output``.

    The batch path (``Kernel.run_roi`` of a steppable kernel) and the
    per-iteration real-time path (:mod:`repro.rt.run` with
    ``granularity="step"``) drive the same session object, so both
    produce bitwise-identical outputs from identical configurations.
    """

    kernel: "Kernel"
    config: KernelConfig
    state: Any
    profiler: PhaseProfiler
    payload: Any = None
    total_steps: int = 1
    steps_done: int = 0
    output: Any = None
    finalized: bool = False

    @property
    def exhausted(self) -> bool:
        """True once every step of this episode has run."""
        return self.steps_done >= self.total_steps

    def step(self) -> int:
        """Run the next iteration; returns the index it executed."""
        if self.finalized:
            raise RuntimeError("step() on a finalized session")
        if self.exhausted:
            raise RuntimeError(
                f"step() beyond the episode: {self.steps_done}/"
                f"{self.total_steps} steps already ran"
            )
        index = self.steps_done
        self.kernel.step(index, self, self.profiler)
        self.steps_done += 1
        return index

    def finish(self) -> Any:
        """Finalize the episode (idempotent); returns the kernel output."""
        if not self.finalized:
            self.output = self.kernel.finalize(self)
            self.finalized = True
        return self.output


class Kernel:
    """Base class for suite kernels.

    Subclasses set :attr:`name` (paper id, e.g. ``"04.pp2d"``),
    :attr:`stage` (``perception`` / ``planning`` / ``control``), and
    :attr:`config_cls`, then implement the measured region one of two
    ways.  Workload construction the paper treats as outside the ROI
    (map loading, offline phases explicitly noted as offline) belongs in
    :meth:`setup` either way.

    *Batch kernels* override :meth:`run_roi`, which receives the
    configuration and a profiler and returns the kernel output in one
    opaque call.

    *Steppable kernels* instead override the per-iteration protocol —
    :meth:`begin_roi` / :meth:`num_steps` / :meth:`step` /
    :meth:`finalize` — and inherit ``run_roi``: the base class drives
    all steps in one loop, so batch execution is just the degenerate
    schedule of the steppable protocol and the two paths cannot drift
    apart.  Conversely a kernel that overrides neither ``step`` nor
    ``run_roi`` is incomplete, and the base ``run_roi`` raises
    ``NotImplementedError`` rather than recursing into the single-step
    fallback.
    """

    name: str = "kernel"
    stage: str = "unknown"
    config_cls: Type[KernelConfig] = KernelConfig
    description: str = ""

    @classmethod
    def is_steppable(cls) -> bool:
        """True when the kernel implements the per-iteration protocol."""
        return cls.step is not Kernel.step

    def setup(self, config: KernelConfig) -> Any:
        """Build the workload (outside the ROI).  Returns setup state."""
        return None

    def begin_roi(
        self, config: KernelConfig, state: Any, profiler: PhaseProfiler
    ) -> Any:
        """Build episode-scoped objects (inside the ROI); returns payload.

        Runs once per episode, before the first :meth:`step`.  Anything
        the steps mutate — the live filter, the solver, accumulators —
        belongs here rather than in :meth:`setup`, so reopening a session
        on the same workload state replays the episode from scratch.
        """
        return None

    def num_steps(self, config: KernelConfig, state: Any) -> int:
        """How many iterations one episode runs (1 for batch kernels)."""
        return 1

    def step(
        self, index: int, session: StepSession, profiler: PhaseProfiler
    ) -> None:
        """Run iteration ``index`` of the episode.

        The base implementation makes every batch kernel a single-step
        steppable: the whole ``run_roi`` body is the one step.
        """
        session.output = self.run_roi(
            session.config, session.state, profiler
        )

    def finalize(self, session: StepSession) -> Any:
        """Assemble the kernel output after the last step."""
        return session.output

    def open_session(
        self,
        config: Optional[KernelConfig] = None,
        state: Any = None,
        profiler: Optional[PhaseProfiler] = None,
    ) -> StepSession:
        """Start one episode: run ``begin_roi`` and size the step count.

        ``state=None`` builds the workload via :meth:`setup` first (an
        explicit ``state`` lets callers reuse one workload across many
        episodes — the persistent-session real-time mode).
        """
        if config is None:
            config = self.config_cls()
        if state is None:
            state = self.setup(config)
        if profiler is None:
            profiler = PhaseProfiler()
        session = StepSession(
            kernel=self, config=config, state=state, profiler=profiler
        )
        session.payload = self.begin_roi(config, state, profiler)
        session.total_steps = int(self.num_steps(config, state))
        return session

    def run_roi(
        self, config: KernelConfig, state: Any, profiler: PhaseProfiler
    ) -> Any:
        """Execute the measured region.

        Steppable kernels inherit this: it opens a session and drives
        every step back-to-back.  Batch kernels must override it.
        """
        if not self.is_steppable():
            raise NotImplementedError
        session = StepSession(
            kernel=self, config=config, state=state, profiler=profiler
        )
        session.payload = self.begin_roi(config, state, profiler)
        session.total_steps = int(self.num_steps(config, state))
        while not session.exhausted:
            session.step()
        return session.finish()

    def _run_once(self, config: KernelConfig) -> KernelResult:
        """One setup + ROI execution under a fresh profiler."""
        t0 = time.perf_counter()
        state = self.setup(config)
        setup_time = time.perf_counter() - t0
        profiler = PhaseProfiler()
        roi_begin(self.name)
        t0 = time.perf_counter()
        output = self.run_roi(config, state, profiler)
        roi_time = time.perf_counter() - t0
        roi_end(self.name)
        return KernelResult(
            kernel=self.name,
            stage=self.stage,
            output=output,
            profiler=profiler,
            roi_time=roi_time,
            config=config,
            setup_time=setup_time,
        )

    def run(self, config: Optional[KernelConfig] = None) -> KernelResult:
        """Set up, execute the ROI, and package results.

        ``config.warmup`` untimed executions precede ``config.repeats``
        measured ones; each repeat rebuilds its workload from the same
        configuration (cheap once the setup cache is warm) so repeats are
        independent and identically distributed.  The returned result is
        the final repeat's — deterministic kernels produce the same output
        every repeat — with the ROI wall-clock series summarized in
        ``metrics``.
        """
        if config is None:
            config = self.config_cls()
        repeats = max(1, int(getattr(config, "repeats", 1)))
        warmup = max(0, int(getattr(config, "warmup", 0)))
        for _ in range(warmup):
            self._run_once(config)
        roi_times: List[float] = []
        result = None
        for _ in range(repeats):
            result = self._run_once(config)
            roi_times.append(result.roi_time)
        assert result is not None
        if repeats > 1 or warmup > 0:
            result.metrics["roi_min_s"] = min(roi_times)
            result.metrics["roi_median_s"] = statistics.median(roi_times)
            result.metrics["roi_mean_s"] = statistics.fmean(roi_times)
            result.metrics["roi_repeats"] = float(repeats)
        return result


class KernelRegistry:
    """Name -> kernel class mapping for the whole suite."""

    def __init__(self) -> None:
        self._kernels: Dict[str, Type[Kernel]] = {}

    def register(self, cls: Type[Kernel]) -> Type[Kernel]:
        """Class decorator: add ``cls`` to the registry under ``cls.name``."""
        if cls.name in self._kernels:
            raise ValueError(f"duplicate kernel name {cls.name!r}")
        self._kernels[cls.name] = cls
        return cls

    def unregister(self, name: str) -> None:
        """Remove a kernel by exact name (for tests and plugins)."""
        self._kernels.pop(name, None)

    def get(self, name: str) -> Type[Kernel]:
        """Look up a kernel by exact name or unique suffix (``pp2d``).

        An unknown name raises a ``KeyError`` carrying close-match
        suggestions (full names and bare suffixes), and an ambiguous
        suffix lists every candidate — so a CLI typo like ``rrtt`` or
        ``pfll`` answers with the kernel the user meant instead of a
        bare error.
        """
        if name in self._kernels:
            return self._kernels[name]
        matches = [
            cls
            for key, cls in self._kernels.items()
            if key.split(".", 1)[-1] == name
        ]
        if len(matches) == 1:
            return matches[0]
        if matches:
            candidates = sorted(
                key
                for key in self._kernels
                if key.split(".", 1)[-1] == name
            )
            raise KeyError(
                f"ambiguous kernel name {name!r}; candidates: "
                + ", ".join(candidates)
            )
        import difflib

        vocabulary = sorted(
            set(self._kernels)
            | {key.split(".", 1)[-1] for key in self._kernels}
        )
        close = difflib.get_close_matches(name, vocabulary, n=3, cutoff=0.5)
        hint = f"; did you mean: {', '.join(close)}?" if close else ""
        raise KeyError(f"unknown kernel {name!r}{hint}")

    def names(self) -> List[str]:
        """All registered kernel names, in paper order."""
        return sorted(self._kernels)

    def by_stage(self, stage: str) -> List[Type[Kernel]]:
        """All kernels belonging to one pipeline stage."""
        return [
            self._kernels[name]
            for name in self.names()
            if self._kernels[name].stage == stage
        ]


registry = KernelRegistry()


def run_kernel(
    name: str, config: Optional[KernelConfig] = None, **overrides: Any
) -> KernelResult:
    """Instantiate and run a registered kernel by name.

    ``overrides`` patch fields on the kernel's default configuration,
    mirroring command-line options.  The full suite is imported on first
    use, so callers never need to call :func:`load_all_kernels` first.
    """
    load_all_kernels()
    cls = registry.get(name)
    kernel = cls()
    if config is None:
        config = cls.config_cls(**overrides) if overrides else cls.config_cls()
    elif overrides:
        config = config.replace(**overrides)
    return kernel.run(config)


def load_all_kernels() -> None:
    """Import every kernel module so the full suite is registered."""
    # Imports are local so substrate modules stay importable standalone.
    import repro.perception.particle_filter  # noqa: F401
    import repro.perception.ekf_slam  # noqa: F401
    import repro.perception.scene_recon  # noqa: F401
    import repro.planning.pp2d  # noqa: F401
    import repro.planning.pp3d  # noqa: F401
    import repro.planning.moving_target  # noqa: F401
    import repro.planning.prm  # noqa: F401
    import repro.planning.rrt  # noqa: F401
    import repro.planning.rrt_star  # noqa: F401
    import repro.planning.rrt_postprocess  # noqa: F401
    import repro.planning.rrt_connect  # noqa: F401  (extension kernel)
    import repro.planning.symbolic.kernels  # noqa: F401
    import repro.control.dmp  # noqa: F401
    import repro.control.mpc  # noqa: F401
    import repro.control.cem  # noqa: F401
    import repro.control.bayesopt  # noqa: F401
