"""``rtrbench`` command-line entry point.

Usage mirrors the paper's per-kernel binaries (Fig. 20): every kernel gets
its own sub-command whose ``--help`` lists all configuration options with
defaults.

    rtrbench list
    rtrbench run pp2d --rows 256 --seed 7
    rtrbench run rrt --help
    rtrbench run pp2d --inputset dense-city
    rtrbench run pfl --repeats 5 --warmup 1
    rtrbench inputsets pp2d
    rtrbench characterize [-j N]
    rtrbench bench [--smoke] [-j N]
    rtrbench suite [-j N] [--smoke] [--filter GLOB]
    rtrbench rt pfl --period-ms 100 --deadline-ms 100 --jobs 200
    rtrbench rt cem --antagonists 4 --antagonist-kind membw
    rtrbench cache [stats|clear]
"""

from __future__ import annotations

import dataclasses
import sys
from typing import List, Optional

from repro.harness.config import build_arg_parser, config_from_args
from repro.harness.reporting import result_summary
from repro.harness.runner import load_all_kernels, registry


def _cmd_list() -> int:
    load_all_kernels()
    for name in registry.names():
        cls = registry.get(name)
        print(f"{name:<14} {cls.stage:<11} {cls.description}")
    return 0


def _cmd_run(argv: List[str]) -> int:
    if not argv:
        print("usage: rtrbench run <kernel> [options]", file=sys.stderr)
        return 2
    load_all_kernels()
    name, rest = argv[0], argv[1:]
    try:
        cls = registry.get(name)
    except KeyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    # --inputset <name> expands into configuration overrides before the
    # regular option parse, so explicit flags still win.
    if "--inputset" in rest:
        from repro.envs.inputsets import inputset_overrides

        i = rest.index("--inputset")
        try:
            inputset = rest[i + 1]
        except IndexError:
            print("error: --inputset requires a name", file=sys.stderr)
            return 2
        try:
            overrides = inputset_overrides(name, inputset)
        except KeyError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        # Field defaults matter for boolean overrides: argparse models a
        # bool field as a toggle flag, so ``str(value)`` positionals would
        # misparse — emit the bare flag only when the value differs from
        # the field's default (i.e. when the toggle actually fires).
        defaults = {}
        for f in dataclasses.fields(cls.config_cls):
            if f.default is not dataclasses.MISSING:
                defaults[f.name] = f.default
            elif f.default_factory is not dataclasses.MISSING:  # type: ignore[misc]
                defaults[f.name] = f.default_factory()  # type: ignore[misc]
        expanded = []
        for key, value in overrides.items():
            flag = "--" + key.replace("_", "-")
            if isinstance(value, bool):
                if value != defaults.get(key, False):
                    expanded.append(flag)
            else:
                expanded.append(flag)
                expanded.append(str(value))
        rest = expanded + rest[:i] + rest[i + 2 :]
    config = config_from_args(cls.config_cls, rest, prog=f"rtrbench run {name}")
    result = cls().run(config)
    print(result_summary(result))
    if config.output:
        with open(config.output, "w") as fh:
            fh.write(result_summary(result) + "\n")
    return 0


def _cmd_inputsets(argv: List[str]) -> int:
    from repro.envs.inputsets import INPUTSETS, inputset_names

    kernels = argv if argv else sorted(INPUTSETS)
    for kernel in kernels:
        try:
            names = inputset_names(kernel)
        except KeyError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(f"{kernel}: {', '.join(names)}")
    return 0


def _cmd_characterize(argv: List[str]) -> int:
    import argparse

    from repro.experiments.characterization import (
        render_characterization,
        run_characterization,
    )

    parser = argparse.ArgumentParser(
        prog="rtrbench characterize",
        description="Reproduce the Table I workload characterization.",
    )
    parser.add_argument(
        "kernels", nargs="*", help="kernel subset (default: whole suite)"
    )
    parser.add_argument(
        "-j", "--jobs", type=int, default=1,
        help="worker processes (default: 1, serial)",
    )
    args = parser.parse_args(argv)
    kernels = None
    if args.kernels:
        load_all_kernels()
        try:
            kernels = [registry.get(name).name for name in args.kernels]
        except KeyError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    rows = run_characterization(kernels, jobs=args.jobs)
    print(render_characterization(rows))
    return 0 if all(r.matches_paper for r in rows) else 1


def _cmd_bench(argv: List[str]) -> int:
    import argparse

    from repro.harness.bench import (
        check_floors,
        render_report,
        run_bench,
        write_report,
    )

    parser = argparse.ArgumentParser(
        prog="rtrbench bench",
        description=(
            "Benchmark the reference vs vectorized hot-path backends and "
            "assert per-phase speedup floors."
        ),
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small workloads, no floor enforcement (CI sanity run)",
    )
    parser.add_argument(
        "--seed", type=int, default=7, help="workload seed (default: 7)"
    )
    parser.add_argument(
        "--output",
        default="BENCH_hotpaths.json",
        help="report path (default: BENCH_hotpaths.json)",
    )
    parser.add_argument(
        "--no-check",
        action="store_true",
        help="write the report without enforcing speedup floors",
    )
    parser.add_argument(
        "-j", "--jobs", type=int, default=1,
        help="worker processes for the bench phases (default: 1, serial)",
    )
    args = parser.parse_args(argv)
    results = run_bench(smoke=args.smoke, seed=args.seed, jobs=args.jobs)
    write_report(results, args.output)
    print(render_report(results))
    print(f"report written to {args.output}")
    if args.smoke or args.no_check:
        return 0
    failures = check_floors(results)
    for failure in failures:
        print(f"FLOOR VIOLATION {failure}", file=sys.stderr)
    return 1 if failures else 0


def _cmd_suite(argv: List[str]) -> int:
    import argparse

    from repro.harness.reporting import render_suite_report, write_json_report
    from repro.harness.suite import check_suite_floors, run_suite

    parser = argparse.ArgumentParser(
        prog="rtrbench suite",
        description=(
            "Run characterization + hot-path bench + the Fig. 21 sweep "
            "end-to-end on a worker pool, with cached workload setup."
        ),
    )
    parser.add_argument(
        "-j", "--jobs", type=int, default=1,
        help="worker processes (default: 1, serial)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=(
            "fast-kernel subset, small workloads, no floor enforcement "
            "(CI sanity run)"
        ),
    )
    parser.add_argument(
        "--seed", type=int, default=7, help="suite seed (default: 7)"
    )
    parser.add_argument(
        "--timeout", type=float, default=None,
        help="per-task timeout in seconds (parallel runs only)",
    )
    parser.add_argument(
        "--output",
        default="BENCH_suite.json",
        help="report path (default: BENCH_suite.json)",
    )
    parser.add_argument(
        "--no-serial-compare",
        action="store_true",
        help="skip the serial comparison pass (no speedup/determinism row)",
    )
    parser.add_argument(
        "--no-check",
        action="store_true",
        help="write the report without enforcing suite floors",
    )
    parser.add_argument(
        "--filter",
        default=None,
        metavar="GLOB",
        help=(
            "run only tasks whose name matches this glob "
            "(e.g. 'characterize:*', 'rt:*', 'bench:raycast')"
        ),
    )
    args = parser.parse_args(argv)
    try:
        report = run_suite(
            jobs=args.jobs,
            smoke=args.smoke,
            seed=args.seed,
            timeout=args.timeout,
            compare_serial=not args.no_serial_compare,
            task_filter=args.filter,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    write_json_report(report, args.output)
    print(render_suite_report(report))
    print(f"report written to {args.output}")
    if args.smoke or args.no_check:
        return 0
    failures = check_suite_floors(report)
    for failure in failures:
        print(f"SUITE VIOLATION {failure}", file=sys.stderr)
    return 1 if failures else 0


def _cmd_rt(argv: List[str]) -> int:
    import argparse

    from repro.harness.reporting import render_rt_report, write_json_report
    from repro.rt.interference import ANTAGONIST_KINDS
    from repro.rt.run import check_rt_floors, run_rt
    from repro.rt.scheduler import OVERRUN_POLICIES

    parser = argparse.ArgumentParser(
        prog="rtrbench rt",
        description=(
            "Run a kernel as a periodic real-time task: fire jobs on a "
            "fixed period, record response-time quantiles, release "
            "jitter, and deadline misses, and judge the run against an "
            "SLO.  Unrecognized options are forwarded to the kernel's "
            "own configuration (same flags as 'rtrbench run')."
        ),
    )
    parser.add_argument("kernel", help="kernel name (e.g. pp2d or 04.pp2d)")
    parser.add_argument(
        "--period-ms", type=float, default=None,
        help=(
            "release period in ms (default: the kernel's entry in "
            "RT_KERNEL_DEFAULTS; 0 auto-calibrates from warmup jobs)"
        ),
    )
    parser.add_argument(
        "--deadline-ms", type=float, default=None,
        help="relative deadline in ms (default: the period)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="measured jobs (default: 50, or 12 with --smoke)",
    )
    parser.add_argument(
        "--warmup", type=int, default=None,
        help="excluded warmup jobs (default: 3, or 1 with --smoke)",
    )
    parser.add_argument(
        "--overrun", choices=OVERRUN_POLICIES, default="skip",
        help="policy when a job overruns the next release (default: skip)",
    )
    parser.add_argument(
        "--antagonists", type=int, default=0,
        help="also run under N antagonist processes and report both",
    )
    parser.add_argument(
        "--antagonist-kind", choices=ANTAGONIST_KINDS, default="cpu",
        help="antagonist workload (default: cpu)",
    )
    parser.add_argument(
        "--max-miss-rate", type=float, default=None,
        help="SLO miss-rate bound (default: 0.1, or 1.0 with --smoke)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="small job count, relaxed miss-rate bound, no floors",
    )
    parser.add_argument(
        "--output", default="BENCH_rt.json",
        help="report path (default: BENCH_rt.json)",
    )
    parser.add_argument(
        "--no-check", action="store_true",
        help="write the report without enforcing rt floors",
    )
    args, kernel_args = parser.parse_known_args(argv)

    from repro.harness.runner import load_all_kernels, registry

    load_all_kernels()
    try:
        cls = registry.get(args.kernel)
    except KeyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    config = None
    if kernel_args:
        config = config_from_args(
            cls.config_cls, kernel_args, prog=f"rtrbench rt {args.kernel}"
        )
    report = run_rt(
        cls.name,
        period_ms=args.period_ms,
        deadline_ms=args.deadline_ms,
        jobs=args.jobs,
        warmup=args.warmup,
        overrun=args.overrun,
        antagonists=args.antagonists,
        antagonist_kind=args.antagonist_kind,
        smoke=args.smoke,
        max_miss_rate=args.max_miss_rate,
        config=config,
    )
    write_json_report(report, args.output)
    print(render_rt_report(report))
    print(f"report written to {args.output}")
    if args.smoke or args.no_check:
        return 0
    failures = check_rt_floors(report)
    for failure in failures:
        print(f"RT VIOLATION {failure}", file=sys.stderr)
    return 1 if failures else 0


def _cmd_cache(argv: List[str]) -> int:
    import argparse

    from repro.envs.cache import default_cache

    parser = argparse.ArgumentParser(
        prog="rtrbench cache",
        description=(
            "Inspect or clear the content-keyed workload cache "
            "(.rtrbench_cache/ by default; RTRBENCH_CACHE_DIR relocates "
            "it)."
        ),
    )
    parser.add_argument(
        "action", nargs="?", default="stats", choices=("stats", "clear"),
        help="'stats' (default) prints disk usage; 'clear' empties the cache",
    )
    parser.add_argument(
        "--memory-only", action="store_true",
        help="with 'clear': drop only the in-process layer, keep disk",
    )
    args = parser.parse_args(argv)
    cache = default_cache()
    if args.action == "clear":
        before = cache.disk_stats()
        cache.clear(memory_only=args.memory_only)
        after = cache.disk_stats()
        print(
            f"cleared {before['entries'] - after['entries']} entries "
            f"({before['bytes'] - after['bytes']} bytes) from "
            f"{cache.cache_dir}"
        )
        return 0
    stats = cache.disk_stats()
    print(f"cache dir: {stats['cache_dir']}")
    print(f"enabled: {stats['enabled']}")
    print(f"entries: {stats['entries']}")
    print(f"bytes: {stats['bytes']}")
    process = cache.stats.as_dict()
    print(
        "this process: "
        f"{cache.stats.hits} hits ({process['memory_hits']} memory, "
        f"{process['disk_hits']} disk), {process['misses']} misses"
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI dispatcher; returns a process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__)
        return 0
    command, rest = argv[0], argv[1:]
    if command == "list":
        return _cmd_list()
    if command == "run":
        return _cmd_run(rest)
    if command == "inputsets":
        return _cmd_inputsets(rest)
    if command == "characterize":
        return _cmd_characterize(rest)
    if command == "bench":
        return _cmd_bench(rest)
    if command == "suite":
        return _cmd_suite(rest)
    if command == "rt":
        return _cmd_rt(rest)
    if command == "cache":
        return _cmd_cache(rest)
    print(f"error: unknown command {command!r}", file=sys.stderr)
    return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
