"""``rtrbench`` command-line entry point.

Usage mirrors the paper's per-kernel binaries (Fig. 20): every kernel gets
its own sub-command whose ``--help`` lists all configuration options with
defaults.

    rtrbench list [--json]
    rtrbench run pp2d --rows 256 --seed 7
    rtrbench run rrt --help
    rtrbench run pp2d --inputset dense-city
    rtrbench run pfl --repeats 5 --warmup 1
    rtrbench inputsets pp2d
    rtrbench characterize [-j N]
    rtrbench bench [--smoke] [-j N]
    rtrbench suite [-j N] [--smoke] [--filter GLOB]
    rtrbench rt pfl --period-ms 100 --deadline-ms 100 --jobs 200
    rtrbench rt pfl --granularity step
    rtrbench rt cem --antagonists 4 --antagonist-kind membw
    rtrbench cache [stats|clear] [--json]
    rtrbench report [bench@latest]
    rtrbench compare bench@latest BENCH_hotpaths.json
    rtrbench gate --strict

``bench`` / ``suite`` / ``rt`` emit schema-versioned run records: the
``--output`` file is a record, and a copy is appended to the
``.rtrbench_results/`` history (``--no-store`` skips that).  ``report``
lists or renders stored records, ``compare`` diffs two records with a
noise tolerance, and ``gate`` judges records against the declarative
regression gates (the single CI entry point replacing the old
per-subsystem floor checkers).
"""

from __future__ import annotations

import dataclasses
import sys
from typing import List, Optional

from repro.harness.config import build_arg_parser, config_from_args
from repro.harness.reporting import result_summary
from repro.harness.runner import load_all_kernels, registry


def _add_store_options(parser) -> None:
    """Record-store options shared by the record-emitting subcommands."""
    parser.add_argument(
        "--results-dir", default=None, metavar="DIR",
        help=(
            "record history directory (default: .rtrbench_results, or "
            "RTRBENCH_RESULTS_DIR)"
        ),
    )
    parser.add_argument(
        "--no-store", action="store_true",
        help="write only --output; skip appending to the result history",
    )


def _persist_record(record, args) -> None:
    """Append a record to the history store and write the --output file."""
    from repro.harness.reporting import write_json_report
    from repro.results import ResultStore

    if not args.no_store:
        path = ResultStore(args.results_dir).save(record)
        print(f"record stored at {path}")
    write_json_report(record.to_dict(), args.output)
    print(f"report written to {args.output}")


def _enforce_gates(record, args) -> int:
    """Judge a freshly produced record against the shipped gate policy."""
    from repro.results import ResultStore, evaluate_gates

    store = None if args.no_store else ResultStore(args.results_dir)
    failures = [
        r for r in evaluate_gates(record, store=store) if r.failed
    ]
    for failure in failures:
        print(f"GATE FAILURE {failure.gate}: {failure.reason}",
              file=sys.stderr)
    return 1 if failures else 0


def _cmd_list(argv: List[str]) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="rtrbench list",
        description=(
            "List every registered kernel with its pipeline stage, "
            "execution model (steppable kernels support 'rtrbench rt "
            "--granularity step'), and description."
        ),
    )
    parser.add_argument(
        "--json", action="store_true",
        help="machine-readable listing for tooling and the suite builder",
    )
    args = parser.parse_args(argv)
    load_all_kernels()
    if args.json:
        import json

        payload = [
            {
                "name": name,
                "stage": registry.get(name).stage,
                "steppable": registry.get(name).is_steppable(),
                "description": registry.get(name).description,
            }
            for name in registry.names()
        ]
        print(json.dumps(payload, indent=2))
        return 0
    for name in registry.names():
        cls = registry.get(name)
        model = "steppable" if cls.is_steppable() else "batch"
        print(f"{name:<14} {cls.stage:<11} {model:<10} {cls.description}")
    return 0


def _cmd_run(argv: List[str]) -> int:
    if not argv:
        print("usage: rtrbench run <kernel> [options]", file=sys.stderr)
        return 2
    load_all_kernels()
    name, rest = argv[0], argv[1:]
    try:
        cls = registry.get(name)
    except KeyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    # --inputset <name> expands into configuration overrides before the
    # regular option parse, so explicit flags still win.
    if "--inputset" in rest:
        from repro.envs.inputsets import inputset_overrides

        i = rest.index("--inputset")
        try:
            inputset = rest[i + 1]
        except IndexError:
            print("error: --inputset requires a name", file=sys.stderr)
            return 2
        try:
            overrides = inputset_overrides(name, inputset)
        except KeyError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        # Field defaults matter for boolean overrides: argparse models a
        # bool field as a toggle flag, so ``str(value)`` positionals would
        # misparse — emit the bare flag only when the value differs from
        # the field's default (i.e. when the toggle actually fires).
        defaults = {}
        for f in dataclasses.fields(cls.config_cls):
            if f.default is not dataclasses.MISSING:
                defaults[f.name] = f.default
            elif f.default_factory is not dataclasses.MISSING:  # type: ignore[misc]
                defaults[f.name] = f.default_factory()  # type: ignore[misc]
        expanded = []
        for key, value in overrides.items():
            flag = "--" + key.replace("_", "-")
            if isinstance(value, bool):
                if value != defaults.get(key, False):
                    expanded.append(flag)
            else:
                expanded.append(flag)
                expanded.append(str(value))
        rest = expanded + rest[:i] + rest[i + 2 :]
    config = config_from_args(cls.config_cls, rest, prog=f"rtrbench run {name}")
    result = cls().run(config)
    print(result_summary(result))
    if config.output:
        with open(config.output, "w") as fh:
            fh.write(result_summary(result) + "\n")
    return 0


def _cmd_inputsets(argv: List[str]) -> int:
    from repro.envs.inputsets import INPUTSETS, inputset_names

    kernels = argv if argv else sorted(INPUTSETS)
    for kernel in kernels:
        try:
            names = inputset_names(kernel)
        except KeyError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(f"{kernel}: {', '.join(names)}")
    return 0


def _cmd_characterize(argv: List[str]) -> int:
    import argparse

    from repro.experiments.characterization import (
        render_characterization,
        run_characterization,
    )

    parser = argparse.ArgumentParser(
        prog="rtrbench characterize",
        description="Reproduce the Table I workload characterization.",
    )
    parser.add_argument(
        "kernels", nargs="*", help="kernel subset (default: whole suite)"
    )
    parser.add_argument(
        "-j", "--jobs", type=int, default=1,
        help="worker processes (default: 1, serial)",
    )
    args = parser.parse_args(argv)
    kernels = None
    if args.kernels:
        load_all_kernels()
        try:
            kernels = [registry.get(name).name for name in args.kernels]
        except KeyError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    rows = run_characterization(kernels, jobs=args.jobs)
    print(render_characterization(rows))
    return 0 if all(r.matches_paper for r in rows) else 1


def _cmd_bench(argv: List[str]) -> int:
    import argparse

    from repro.harness.bench import render_report, run_bench_record

    parser = argparse.ArgumentParser(
        prog="rtrbench bench",
        description=(
            "Benchmark the reference vs vectorized hot-path backends "
            "under a pinned thread environment, emit a run record, and "
            "enforce the per-phase speedup-floor gates."
        ),
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small workloads, no gate enforcement (CI sanity run)",
    )
    parser.add_argument(
        "--seed", type=int, default=7, help="workload seed (default: 7)"
    )
    parser.add_argument(
        "--output",
        default="BENCH_hotpaths.json",
        help="record path (default: BENCH_hotpaths.json)",
    )
    parser.add_argument(
        "--no-check",
        action="store_true",
        help="write the record without enforcing the speedup-floor gates",
    )
    parser.add_argument(
        "-j", "--jobs", type=int, default=1,
        help="worker processes for the bench phases (default: 1, serial)",
    )
    parser.add_argument(
        "--phases", nargs="+", metavar="GLOB", default=None,
        help=(
            "run only the bench phases matching these glob patterns "
            "(e.g. 'search_*'); partial records skip gate enforcement"
        ),
    )
    _add_store_options(parser)
    args = parser.parse_args(argv)
    try:
        record = run_bench_record(
            smoke=args.smoke, seed=args.seed, jobs=args.jobs,
            phases=args.phases,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_report(record.detail))
    _persist_record(record, args)
    if args.phases:
        # A filtered record lacks the other phases' metrics; gates with
        # on_missing='fail' would misread that as a regression.
        print("phase filter active: skipping gate enforcement")
        return 0
    if args.smoke or args.no_check:
        return 0
    return _enforce_gates(record, args)


def _cmd_suite(argv: List[str]) -> int:
    import argparse

    from repro.harness.reporting import render_suite_report
    from repro.harness.suite import run_suite
    from repro.results import capture_environment, record_from_suite

    parser = argparse.ArgumentParser(
        prog="rtrbench suite",
        description=(
            "Run characterization + hot-path bench + the Fig. 21 sweep "
            "end-to-end on a worker pool, with cached workload setup."
        ),
    )
    parser.add_argument(
        "-j", "--jobs", type=int, default=1,
        help="worker processes (default: 1, serial)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=(
            "fast-kernel subset, small workloads, no floor enforcement "
            "(CI sanity run)"
        ),
    )
    parser.add_argument(
        "--seed", type=int, default=7, help="suite seed (default: 7)"
    )
    parser.add_argument(
        "--timeout", type=float, default=None,
        help="per-task timeout in seconds (parallel runs only)",
    )
    parser.add_argument(
        "--output",
        default="BENCH_suite.json",
        help="record path (default: BENCH_suite.json)",
    )
    parser.add_argument(
        "--baseline",
        action="store_true",
        help=(
            "re-run the task list serially after the parallel pass to "
            "measure speedup directly (doubles wall time); without it "
            "the comparison is derived from the latest comparable "
            "serial record in the result store"
        ),
    )
    parser.add_argument(
        "--no-check",
        action="store_true",
        help="write the record without enforcing the suite gates",
    )
    parser.add_argument(
        "--filter",
        default=None,
        metavar="GLOB",
        help=(
            "run only tasks whose name matches this glob "
            "(e.g. 'characterize:*', 'rt:*', 'bench:raycast')"
        ),
    )
    _add_store_options(parser)
    args = parser.parse_args(argv)
    try:
        report = run_suite(
            jobs=args.jobs,
            smoke=args.smoke,
            seed=args.seed,
            timeout=args.timeout,
            baseline=args.baseline,
            task_filter=args.filter,
            results_dir=args.results_dir,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    record = record_from_suite(report, env=capture_environment())
    print(render_suite_report(report))
    _persist_record(record, args)
    if args.smoke or args.no_check:
        return 0
    return _enforce_gates(record, args)


def _cmd_rt(argv: List[str]) -> int:
    import argparse

    from repro.harness.reporting import render_rt_report
    from repro.results import capture_environment, record_from_rt
    from repro.rt.interference import ANTAGONIST_KINDS
    from repro.rt.run import GRANULARITIES, run_rt
    from repro.rt.scheduler import OVERRUN_POLICIES

    parser = argparse.ArgumentParser(
        prog="rtrbench rt",
        description=(
            "Run a kernel as a periodic real-time task: fire jobs on a "
            "fixed period, record response-time quantiles, release "
            "jitter, and deadline misses, and judge the run against an "
            "SLO.  Unrecognized options are forwarded to the kernel's "
            "own configuration (same flags as 'rtrbench run')."
        ),
    )
    parser.add_argument("kernel", help="kernel name (e.g. pp2d or 04.pp2d)")
    parser.add_argument(
        "--granularity", choices=GRANULARITIES, default="run",
        help=(
            "job unit: 'run' releases full kernel runs, 'step' releases "
            "single iterations on a persistent session (steppable "
            "kernels only; see 'rtrbench list') (default: run)"
        ),
    )
    parser.add_argument(
        "--period-ms", type=float, default=None,
        help=(
            "release period in ms (default: the kernel's entry in "
            "RT_KERNEL_DEFAULTS; 0 auto-calibrates from warmup jobs)"
        ),
    )
    parser.add_argument(
        "--deadline-ms", type=float, default=None,
        help="relative deadline in ms (default: the period)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="measured jobs (default: 50, or 12 with --smoke)",
    )
    parser.add_argument(
        "--warmup", type=int, default=None,
        help="excluded warmup jobs (default: 3, or 1 with --smoke)",
    )
    parser.add_argument(
        "--overrun", choices=OVERRUN_POLICIES, default="skip",
        help="policy when a job overruns the next release (default: skip)",
    )
    parser.add_argument(
        "--antagonists", type=int, default=0,
        help="also run under N antagonist processes and report both",
    )
    parser.add_argument(
        "--antagonist-kind", choices=ANTAGONIST_KINDS, default="cpu",
        help="antagonist workload (default: cpu)",
    )
    parser.add_argument(
        "--max-miss-rate", type=float, default=None,
        help="SLO miss-rate bound (default: 0.1, or 1.0 with --smoke)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="small job count, relaxed miss-rate bound, no floors",
    )
    parser.add_argument(
        "--output", default="BENCH_rt.json",
        help="record path (default: BENCH_rt.json)",
    )
    parser.add_argument(
        "--no-check", action="store_true",
        help="write the record without enforcing the rt gates",
    )
    _add_store_options(parser)
    args, kernel_args = parser.parse_known_args(argv)

    from repro.harness.runner import load_all_kernels, registry

    load_all_kernels()
    try:
        cls = registry.get(args.kernel)
    except KeyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    config = None
    if kernel_args:
        config = config_from_args(
            cls.config_cls, kernel_args, prog=f"rtrbench rt {args.kernel}"
        )
    try:
        report = run_rt(
            cls.name,
            period_ms=args.period_ms,
            deadline_ms=args.deadline_ms,
            jobs=args.jobs,
            warmup=args.warmup,
            overrun=args.overrun,
            antagonists=args.antagonists,
            antagonist_kind=args.antagonist_kind,
            smoke=args.smoke,
            max_miss_rate=args.max_miss_rate,
            config=config,
            granularity=args.granularity,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    record = record_from_rt(report, env=capture_environment())
    print(render_rt_report(report))
    _persist_record(record, args)
    if args.smoke or args.no_check:
        return 0
    return _enforce_gates(record, args)


def _cmd_cache(argv: List[str]) -> int:
    import argparse

    from repro.envs.cache import default_cache

    parser = argparse.ArgumentParser(
        prog="rtrbench cache",
        description=(
            "Inspect or clear the content-keyed workload cache "
            "(.rtrbench_cache/ by default; RTRBENCH_CACHE_DIR relocates "
            "it)."
        ),
    )
    parser.add_argument(
        "action", nargs="?", default="stats", choices=("stats", "clear"),
        help="'stats' (default) prints disk usage; 'clear' empties the cache",
    )
    parser.add_argument(
        "--memory-only", action="store_true",
        help="with 'clear': drop only the in-process layer, keep disk",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="with 'stats': machine-readable output for suite tooling/CI",
    )
    args = parser.parse_args(argv)
    cache = default_cache()
    if args.action == "stats" and args.json:
        import json

        payload = dict(cache.disk_stats())
        payload["process"] = cache.stats.as_dict()
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    if args.action == "clear":
        before = cache.disk_stats()
        cache.clear(memory_only=args.memory_only)
        after = cache.disk_stats()
        print(
            f"cleared {before['entries'] - after['entries']} entries "
            f"({before['bytes'] - after['bytes']} bytes) from "
            f"{cache.cache_dir}"
        )
        return 0
    stats = cache.disk_stats()
    print(f"cache dir: {stats['cache_dir']}")
    print(f"enabled: {stats['enabled']}")
    print(f"entries: {stats['entries']}")
    print(f"bytes: {stats['bytes']}")
    process = cache.stats.as_dict()
    print(
        "this process: "
        f"{cache.stats.hits} hits ({process['memory_hits']} memory, "
        f"{process['disk_hits']} disk), {process['misses']} misses"
    )
    per_category = process.get("per_category") or {}
    for category in sorted(per_category):
        print(f"  {category}: {per_category[category]} lookups")
    return 0


def _cmd_report(argv: List[str]) -> int:
    import argparse
    import json

    from repro.harness.reporting import render_record
    from repro.results import ResultStore

    parser = argparse.ArgumentParser(
        prog="rtrbench report",
        description=(
            "List the stored run-record history, or render one record "
            "(by path, '<kind>', '<kind>@latest', or '<kind>@<run_id>')."
        ),
    )
    parser.add_argument(
        "ref", nargs="?", default=None,
        help="record reference (default: list the whole history)",
    )
    parser.add_argument(
        "--results-dir", default=None, metavar="DIR",
        help="record history directory (default: .rtrbench_results)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print the raw record document instead of the table view",
    )
    args = parser.parse_args(argv)
    store = ResultStore(args.results_dir)
    if args.ref is None:
        kinds = store.kinds()
        if not kinds:
            print(f"no records stored under {store.root}")
            return 0
        for kind in kinds:
            history = store.history(kind)
            latest = store.latest_path(kind)
            latest_name = (
                latest.rsplit("/", 1)[-1][:-5] if latest else "?"
            )
            print(
                f"{kind:<12} {len(history)} record(s), latest {latest_name}"
            )
        return 0
    try:
        record = store.load(args.ref)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(record.to_dict(), indent=2, sort_keys=True))
    else:
        print(render_record(record))
    return 0


def _cmd_compare(argv: List[str]) -> int:
    import argparse

    from repro.results import ResultStore, compare_records
    from repro.results.compare import DEFAULT_TOLERANCE, render_comparison

    parser = argparse.ArgumentParser(
        prog="rtrbench compare",
        description=(
            "Metric-by-metric delta between two run records (store "
            "references or file paths; legacy BENCH_*.json load too), "
            "with a relative noise tolerance."
        ),
    )
    parser.add_argument("baseline", help="record A (the baseline)")
    parser.add_argument("candidate", help="record B (the candidate)")
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help=(
            "relative noise tolerance, e.g. 0.05 = 5%% "
            f"(default: {DEFAULT_TOLERANCE})"
        ),
    )
    parser.add_argument(
        "--metrics", default=None, metavar="GLOB",
        help="compare only metric names matching this glob ('*.speedup')",
    )
    parser.add_argument(
        "--fail-on-regression", action="store_true",
        help="exit 1 when any directional metric regressed beyond tolerance",
    )
    parser.add_argument(
        "--results-dir", default=None, metavar="DIR",
        help="record history directory (default: .rtrbench_results)",
    )
    args = parser.parse_args(argv)
    store = ResultStore(args.results_dir)
    try:
        a = store.load(args.baseline)
        b = store.load(args.candidate)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    comparison = compare_records(
        a, b, tolerance=args.tolerance, metrics=args.metrics
    )
    print(render_comparison(comparison))
    if args.fail_on_regression and comparison.regressions():
        return 1
    return 0


def _cmd_gate(argv: List[str]) -> int:
    import argparse

    from repro.results import ResultStore, evaluate_gates, render_gate_results
    from repro.results.gates import gate_failures, gates_from_file

    parser = argparse.ArgumentParser(
        prog="rtrbench gate",
        description=(
            "Judge run records against the declarative regression gates. "
            "With no references, every kind's latest stored record is "
            "gated — the single CI entry point that replaced the "
            "per-subsystem floor checkers."
        ),
    )
    parser.add_argument(
        "refs", nargs="*",
        help=(
            "records to gate: store references or file paths "
            "(default: the latest record of every stored kind)"
        ),
    )
    parser.add_argument(
        "--gates", default=None, metavar="FILE",
        help="JSON file with gate declarations (default: shipped policy)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help=(
            "fail when there is nothing to gate or a reference cannot "
            "be loaded (CI mode: an empty store must not pass silently)"
        ),
    )
    parser.add_argument(
        "--results-dir", default=None, metavar="DIR",
        help="record history directory (default: .rtrbench_results)",
    )
    args = parser.parse_args(argv)
    store = ResultStore(args.results_dir)
    gates = None
    if args.gates is not None:
        try:
            gates = gates_from_file(args.gates)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    refs = args.refs or store.kinds()
    failed = False
    gated = 0
    for ref in refs:
        try:
            record = store.load(ref)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            if args.strict:
                failed = True
            continue
        results = evaluate_gates(record, gates=gates, store=store)
        print(render_gate_results(record, results))
        gated += 1
        if gate_failures(results):
            failed = True
    if gated == 0:
        print(
            f"no records to gate under {store.root}",
            file=sys.stderr if args.strict else sys.stdout,
        )
        if args.strict:
            return 1
    return 1 if failed else 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI dispatcher; returns a process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__)
        return 0
    command, rest = argv[0], argv[1:]
    if command == "list":
        return _cmd_list(rest)
    if command == "run":
        return _cmd_run(rest)
    if command == "inputsets":
        return _cmd_inputsets(rest)
    if command == "characterize":
        return _cmd_characterize(rest)
    if command == "bench":
        return _cmd_bench(rest)
    if command == "suite":
        return _cmd_suite(rest)
    if command == "rt":
        return _cmd_rt(rest)
    if command == "cache":
        return _cmd_cache(rest)
    if command == "report":
        return _cmd_report(rest)
    if command == "compare":
        return _cmd_compare(rest)
    if command == "gate":
        return _cmd_gate(rest)
    print(f"error: unknown command {command!r}", file=sys.stderr)
    return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
