"""``rtrbench`` command-line entry point.

Usage mirrors the paper's per-kernel binaries (Fig. 20): every kernel gets
its own sub-command whose ``--help`` lists all configuration options with
defaults.

    rtrbench list
    rtrbench run pp2d --rows 256 --seed 7
    rtrbench run rrt --help
    rtrbench run pp2d --inputset dense-city
    rtrbench inputsets pp2d
    rtrbench characterize
    rtrbench bench [--smoke]
"""

from __future__ import annotations

import sys
from typing import List, Optional

from repro.harness.config import build_arg_parser, config_from_args
from repro.harness.reporting import result_summary
from repro.harness.runner import load_all_kernels, registry


def _cmd_list() -> int:
    load_all_kernels()
    for name in registry.names():
        cls = registry.get(name)
        print(f"{name:<14} {cls.stage:<11} {cls.description}")
    return 0


def _cmd_run(argv: List[str]) -> int:
    if not argv:
        print("usage: rtrbench run <kernel> [options]", file=sys.stderr)
        return 2
    load_all_kernels()
    name, rest = argv[0], argv[1:]
    try:
        cls = registry.get(name)
    except KeyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    # --inputset <name> expands into configuration overrides before the
    # regular option parse, so explicit flags still win.
    if "--inputset" in rest:
        from repro.envs.inputsets import inputset_overrides

        i = rest.index("--inputset")
        try:
            inputset = rest[i + 1]
        except IndexError:
            print("error: --inputset requires a name", file=sys.stderr)
            return 2
        try:
            overrides = inputset_overrides(name, inputset)
        except KeyError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        expanded = []
        for key, value in overrides.items():
            expanded.append("--" + key.replace("_", "-"))
            expanded.append(str(value))
        rest = expanded + rest[:i] + rest[i + 2 :]
    config = config_from_args(cls.config_cls, rest, prog=f"rtrbench run {name}")
    result = cls().run(config)
    print(result_summary(result))
    if config.output:
        with open(config.output, "w") as fh:
            fh.write(result_summary(result) + "\n")
    return 0


def _cmd_inputsets(argv: List[str]) -> int:
    from repro.envs.inputsets import INPUTSETS, inputset_names

    kernels = argv if argv else sorted(INPUTSETS)
    for kernel in kernels:
        try:
            names = inputset_names(kernel)
        except KeyError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(f"{kernel}: {', '.join(names)}")
    return 0


def _cmd_characterize(argv: List[str]) -> int:
    from repro.experiments.characterization import (
        render_characterization,
        run_characterization,
    )

    kernels = None
    if argv:
        load_all_kernels()
        kernels = [registry.get(name).name for name in argv]
    rows = run_characterization(kernels)
    print(render_characterization(rows))
    return 0 if all(r.matches_paper for r in rows) else 1


def _cmd_bench(argv: List[str]) -> int:
    import argparse

    from repro.harness.bench import (
        check_floors,
        render_report,
        run_bench,
        write_report,
    )

    parser = argparse.ArgumentParser(
        prog="rtrbench bench",
        description=(
            "Benchmark the reference vs vectorized hot-path backends and "
            "assert per-phase speedup floors."
        ),
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small workloads, no floor enforcement (CI sanity run)",
    )
    parser.add_argument(
        "--seed", type=int, default=7, help="workload seed (default: 7)"
    )
    parser.add_argument(
        "--output",
        default="BENCH_hotpaths.json",
        help="report path (default: BENCH_hotpaths.json)",
    )
    parser.add_argument(
        "--no-check",
        action="store_true",
        help="write the report without enforcing speedup floors",
    )
    args = parser.parse_args(argv)
    results = run_bench(smoke=args.smoke, seed=args.seed)
    write_report(results, args.output)
    print(render_report(results))
    print(f"report written to {args.output}")
    if args.smoke or args.no_check:
        return 0
    failures = check_floors(results)
    for failure in failures:
        print(f"FLOOR VIOLATION {failure}", file=sys.stderr)
    return 1 if failures else 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI dispatcher; returns a process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__)
        return 0
    command, rest = argv[0], argv[1:]
    if command == "list":
        return _cmd_list()
    if command == "run":
        return _cmd_run(rest)
    if command == "inputsets":
        return _cmd_inputsets(rest)
    if command == "characterize":
        return _cmd_characterize(rest)
    if command == "bench":
        return _cmd_bench(rest)
    print(f"error: unknown command {command!r}", file=sys.stderr)
    return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
