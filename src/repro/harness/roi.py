"""Region-of-interest (ROI) markers.

RTRBench delimits each kernel's measured region with zsim "magic" hooks;
outside a simulator those hooks execute safely as no-ops (paper section VI).
This module reproduces that contract: kernels call :func:`roi_begin` /
:func:`roi_end` (or use the :class:`ROI` context manager), and whatever
backend is registered via :func:`set_hooks` observes the markers.  The
default backend does nothing, so kernels run unperturbed; the test suite and
the characterization experiments install recording backends.
"""

from __future__ import annotations

import time
from typing import List, Optional, Protocol, Tuple


class SimulatorHooks(Protocol):
    """Backend notified when a kernel enters/leaves its region of interest."""

    def on_roi_begin(self, name: str) -> None:
        """Called when the ROI named ``name`` starts."""

    def on_roi_end(self, name: str) -> None:
        """Called when the ROI named ``name`` ends."""


class _NullHooks:
    """Default backend: ROI markers are safe no-ops (real-execution mode)."""

    def on_roi_begin(self, name: str) -> None:
        pass

    def on_roi_end(self, name: str) -> None:
        pass


class RecordingHooks:
    """Backend that records ROI intervals with wall-clock timestamps.

    Useful in tests and experiments to verify ROI placement and to measure
    ROI-only execution time, mirroring how zsim reports only the ROI.

    The begin/end pairing is hardened against imperfectly structured
    markers: an end closes the *nearest* open ROI with the same name, so
    same-name nesting closes innermost-first and interleaved regions
    (``begin(a) begin(b) end(a) end(b)``) both record correct intervals
    instead of raising on the first out-of-order end.  An end with no
    matching begin anywhere still raises — silently dropping it would
    corrupt ROI totals.  :meth:`open_rois` / :meth:`assert_balanced`
    expose begins that were never closed.
    """

    def __init__(self) -> None:
        self.events: List[Tuple[str, str, float]] = []
        self._open: List[Tuple[str, float]] = []
        self.intervals: List[Tuple[str, float]] = []

    def on_roi_begin(self, name: str) -> None:
        """Record an ROI start event."""
        now = time.perf_counter()
        self.events.append(("begin", name, now))
        self._open.append((name, now))

    def on_roi_end(self, name: str) -> None:
        """Record an ROI end event; closes the nearest matching begin."""
        now = time.perf_counter()
        self.events.append(("end", name, now))
        for i in range(len(self._open) - 1, -1, -1):
            open_name, start = self._open[i]
            if open_name == name:
                del self._open[i]
                self.intervals.append((name, now - start))
                return
        open_names = [n for n, _ in self._open]
        raise RuntimeError(
            f"roi_end({name!r}) without matching roi_begin "
            f"(open: {open_names or 'none'})"
        )

    def open_rois(self) -> List[str]:
        """Names of ROIs begun but not yet ended, outermost first."""
        return [name for name, _ in self._open]

    def assert_balanced(self) -> None:
        """Raise if any ROI is still open (a begin was never matched)."""
        if self._open:
            raise RuntimeError(
                f"unbalanced ROI markers: still open {self.open_rois()}"
            )

    def total_time(self, name: Optional[str] = None) -> float:
        """Total recorded ROI seconds, optionally filtered by ROI name."""
        return sum(dt for n, dt in self.intervals if name is None or n == name)


_hooks: SimulatorHooks = _NullHooks()


def set_hooks(hooks: Optional[SimulatorHooks]) -> SimulatorHooks:
    """Install a simulator-hook backend; ``None`` restores the no-op backend.

    Returns the previously installed backend so callers can restore it.
    """
    global _hooks
    previous = _hooks
    _hooks = hooks if hooks is not None else _NullHooks()
    return previous


def roi_begin(name: str = "roi") -> None:
    """Mark the start of a region of interest."""
    _hooks.on_roi_begin(name)


def roi_end(name: str = "roi") -> None:
    """Mark the end of a region of interest."""
    _hooks.on_roi_end(name)


class ROI:
    """Context manager marking a region of interest.

    >>> with ROI("planning"):
    ...     pass  # measured region
    """

    def __init__(self, name: str = "roi") -> None:
        self.name = name

    def __enter__(self) -> "ROI":
        roi_begin(self.name)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        roi_end(self.name)
