"""Kernel configuration and command-line interface building.

The paper stresses flexibility: "all of the configuration/execution
parameters can be set/changed from the command line" with proper defaults
and a ``--help`` message per kernel (Fig. 20).  Kernels here declare their
parameters as dataclass fields with metadata; :func:`build_arg_parser`
turns any such dataclass into an ``argparse`` parser whose ``--help``
output mirrors the paper's usage message.
"""

from __future__ import annotations

import argparse
import dataclasses
from dataclasses import dataclass, field, fields
from typing import Any, Dict, Optional, Type, TypeVar

C = TypeVar("C", bound="KernelConfig")


@dataclass(frozen=True)
class RTTaskDefaults:
    """Default periodic-task parameters for one kernel (milliseconds).

    ``deadline_ms`` defaults to the period (implicit-deadline tasks, the
    common model for robot control loops).  ``step_period_ms`` is the
    per-iteration release period for steppable kernels run with
    ``granularity="step"`` (one job = one ``step()`` on a persistent
    session); ``None`` means auto-calibrate from unpaced steps.
    ``suite_jobs`` / ``suite_jobs_smoke`` are the measured job counts
    ``rtrbench suite`` schedules for this kernel's rt tasks.
    """

    period_ms: float
    deadline_ms: Optional[float] = None
    step_period_ms: Optional[float] = None
    suite_jobs: int = 25
    suite_jobs_smoke: int = 8

    def resolved_deadline_ms(self) -> float:
        """The effective deadline: explicit value or the period itself."""
        return self.period_ms if self.deadline_ms is None else self.deadline_ms

    def resolved_suite_jobs(self, smoke: bool) -> int:
        """Measured rt jobs the suite schedules in the given mode."""
        return self.suite_jobs_smoke if smoke else self.suite_jobs


#: Per-kernel default periods/deadlines for ``rtrbench rt``.  Stylized
#: from each pipeline stage's natural rate — perception at sensor rate,
#: planners at replanning cadence, controllers at actuation rate — then
#: scaled to this Python reproduction's measured default-config ROI
#: times (roughly 2-3x headroom on the reference machine), so the
#: unloaded default run is schedulable but not trivially so.  Override
#: from the command line with ``--period-ms`` / ``--deadline-ms``;
#: ``--period-ms 0`` auto-calibrates from warmup jobs.  Step periods
#: (``step_period_ms``, used by ``rtrbench rt --granularity step``) are
#: scaled the same way from measured per-iteration wall clocks of the
#: steppable kernels; non-steppable kernels leave them ``None``.
RT_KERNEL_DEFAULTS: Dict[str, RTTaskDefaults] = {
    "01.pfl": RTTaskDefaults(period_ms=10_000.0, step_period_ms=120.0),
    "02.ekfslam": RTTaskDefaults(period_ms=500.0, step_period_ms=1.0),
    "03.srec": RTTaskDefaults(period_ms=30_000.0, step_period_ms=1_200.0),
    "04.pp2d": RTTaskDefaults(period_ms=20_000.0),
    "05.pp3d": RTTaskDefaults(period_ms=20_000.0),
    "06.movtar": RTTaskDefaults(period_ms=20_000.0),
    "07.prm": RTTaskDefaults(period_ms=100.0),
    "08.rrt": RTTaskDefaults(period_ms=20_000.0),
    "09.rrtstar": RTTaskDefaults(period_ms=30_000.0),
    "10.rrtpp": RTTaskDefaults(period_ms=20_000.0),
    "11.sym-blkw": RTTaskDefaults(period_ms=10.0),
    "12.sym-fext": RTTaskDefaults(period_ms=250.0),
    "13.dmp": RTTaskDefaults(period_ms=100.0, step_period_ms=1.0),
    "14.mpc": RTTaskDefaults(period_ms=3_000.0, step_period_ms=8.0),
    "15.cem": RTTaskDefaults(period_ms=50.0, step_period_ms=1.0),
    "16.bo": RTTaskDefaults(period_ms=250.0),
}

#: Used for kernels not in :data:`RT_KERNEL_DEFAULTS` (e.g. plugins).
RT_FALLBACK_DEFAULTS = RTTaskDefaults(period_ms=1_000.0)


def rt_defaults(kernel_name: str) -> RTTaskDefaults:
    """Default period/deadline for a kernel (full paper id, e.g. ``04.pp2d``)."""
    return RT_KERNEL_DEFAULTS.get(kernel_name, RT_FALLBACK_DEFAULTS)


def option(default: Any, help: str, **kwargs: Any) -> Any:
    """Declare a configurable kernel parameter with CLI help text."""
    if callable(default) and not isinstance(default, type):
        return field(default_factory=default, metadata={"help": help, **kwargs})
    return field(default=default, metadata={"help": help, **kwargs})


@dataclass
class KernelConfig:
    """Base class for per-kernel configuration.

    Subclasses add fields via :func:`option`; every field becomes a
    ``--field-name`` command-line option.  ``seed`` is common to all
    kernels so every run is reproducible.
    """

    seed: int = option(0, "Random number generation seed")
    output: Optional[str] = option(None, "Output file for kernel results")
    backend: str = option(
        "reference",
        "Hot-path execution backend: 'reference' (scalar/loop code), "
        "'vectorized' (batched numpy), or — for the planning kernels — "
        "'array' (flat-array search core with bucketed/lazy-heap queues)",
    )
    repeats: int = option(
        1,
        "Measured ROI executions; with N > 1 the min/median wall clock "
        "lands in the result metrics so one noisy run cannot pass for "
        "steady state",
    )
    warmup: int = option(
        0, "Untimed warmup executions before the measured repeats"
    )

    def replace(self: C, **changes: Any) -> C:
        """Return a copy of this config with ``changes`` applied."""
        return dataclasses.replace(self, **changes)

    def describe(self) -> str:
        """One-line ``key=value`` description of the configuration."""
        parts = [
            f"{f.name}={getattr(self, f.name)!r}" for f in fields(self)
        ]
        return ", ".join(parts)


def _cli_type(py_type: Any) -> Any:
    """Map a dataclass field annotation to an argparse type callable."""
    if py_type in (int, float, str):
        return py_type
    if py_type == bool:
        return None  # handled as store_true/store_false flags
    # Optional[X] / "Optional[X]" string annotations fall back to str.
    text = str(py_type)
    if "int" in text:
        return int
    if "float" in text:
        return float
    return str


def build_arg_parser(
    config_cls: Type[KernelConfig],
    prog: str,
    description: str = "",
) -> argparse.ArgumentParser:
    """Build an argparse parser for ``config_cls``.

    Every dataclass field becomes ``--<name-with-dashes>``; booleans become
    flags.  Defaults come from the dataclass, matching the paper's "proper
    default values for the configuration parameters".
    """
    parser = argparse.ArgumentParser(prog=prog, description=description)
    for f in fields(config_cls):
        opt = "--" + f.name.replace("_", "-")
        help_text = f.metadata.get("help", f.name)
        if f.default is not dataclasses.MISSING:
            default = f.default
        elif f.default_factory is not dataclasses.MISSING:  # type: ignore[misc]
            default = f.default_factory()  # type: ignore[misc]
        else:
            default = None
        if f.type in (bool, "bool"):
            parser.add_argument(
                opt,
                action="store_false" if default else "store_true",
                dest=f.name,
                help=help_text,
            )
        else:
            parser.add_argument(
                opt,
                type=_cli_type(f.type),
                default=default,
                dest=f.name,
                help=f"{help_text} (default: {default})",
                metavar="<val>",
            )
    return parser


def config_from_args(
    config_cls: Type[C], argv: Optional[list] = None, prog: str = "kernel"
) -> C:
    """Parse ``argv`` (or ``sys.argv``) into a config instance."""
    parser = build_arg_parser(config_cls, prog=prog, description=config_cls.__doc__ or "")
    namespace = parser.parse_args(argv)
    kwargs = {f.name: getattr(namespace, f.name) for f in fields(config_cls)}
    return config_cls(**kwargs)
