"""Process-pool suite executor with crash isolation and per-task timeouts.

The paper runs RTRBench as a *suite* — 16 kernels, per-kernel sweeps, a
scale comparison — and suite-level orchestration is where wall clock is
won or lost.  :func:`map_tasks` dispatches independent tasks over a
bounded pool of worker *processes* (one process per task, at most
``jobs`` alive at once) so that:

* a task that raises returns a structured :class:`TaskResult` failure
  carrying the worker's traceback, not a dead suite;
* a task that hangs past its ``timeout`` is terminated and reported as a
  timeout failure while every other task completes;
* a task that dies without reporting (segfault, ``os._exit``) surfaces
  as a failure row with the worker's exit code.

Results always come back in input order, one row per task.

Determinism
-----------
Parallel execution must not change results.  Tasks here are
self-contained (each carries its full configuration, including its
seed), and :func:`derive_seed` derives per-task seeds by *content* (a
stable hash of the base seed plus the task's identity), never by worker
id or submission timing — so ``jobs=4`` and ``jobs=1`` run bit-identical
task payloads and produce bit-identical task outputs.

With ``jobs <= 1`` tasks run inline in the calling process (no workers
are spawned); exceptions are still captured as failure rows, but
timeouts cannot preempt inline execution and are not enforced.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import time
import traceback
from dataclasses import dataclass
from multiprocessing.connection import wait as _connection_wait
from typing import Any, Callable, Dict, List, Optional, Sequence


@dataclass
class TaskResult:
    """Outcome of one task dispatched through :func:`map_tasks`.

    ``value`` holds the callable's return value when ``ok``; otherwise
    ``error`` carries the worker's formatted traceback (or a description
    of the crash/timeout).  ``duration`` is the parent-observed wall
    clock for the task, including process start-up in parallel mode.
    """

    index: int
    name: str
    ok: bool
    value: Any = None
    error: Optional[str] = None
    duration: float = 0.0
    timed_out: bool = False
    exitcode: Optional[int] = None


def derive_seed(base_seed: int, *parts: object) -> int:
    """Deterministic 63-bit seed from a base seed and task-identity parts.

    Content-keyed (SHA-256 of the base seed plus ``parts``), so the seed a
    task receives depends only on *which task it is*, never on worker
    assignment or completion order — the property that makes parallel and
    serial suite runs bit-identical.
    """
    payload = repr((int(base_seed),) + tuple(parts)).encode()
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def _task_worker(fn: Callable[[Any], Any], item: Any, conn: Any) -> None:
    """Run one task in a child process and ship the outcome over a pipe."""
    try:
        payload = (True, fn(item), None)
    except BaseException:
        payload = (False, None, traceback.format_exc())
    try:
        conn.send(payload)
    except Exception:
        # The value itself failed to pickle — report that instead of dying
        # silently (the parent would otherwise see an opaque crash).
        try:
            conn.send((False, None, "task result not sendable:\n"
                       + traceback.format_exc()))
        except Exception:  # pragma: no cover - pipe already gone
            pass
    finally:
        conn.close()


def _default_start_method() -> str:
    """``fork`` where available (fast, no pickling of the callable)."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


def _run_inline(
    fn: Callable[[Any], Any], item: Any, index: int, name: str
) -> TaskResult:
    """Serial fallback: run one task in-process, capturing exceptions."""
    t0 = time.perf_counter()
    try:
        value = fn(item)
    except Exception:
        return TaskResult(
            index=index,
            name=name,
            ok=False,
            error=traceback.format_exc(),
            duration=time.perf_counter() - t0,
        )
    return TaskResult(
        index=index,
        name=name,
        ok=True,
        value=value,
        duration=time.perf_counter() - t0,
    )


@dataclass
class _Running:
    process: Any
    conn: Any
    started: float
    deadline: Optional[float]


def map_tasks(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    jobs: int = 1,
    timeout: Optional[float] = None,
    names: Optional[Sequence[str]] = None,
    start_method: Optional[str] = None,
) -> List[TaskResult]:
    """Run ``fn`` over ``items`` on a bounded pool of worker processes.

    Returns one :class:`TaskResult` per item, in input order, regardless
    of completion order or failures.  ``jobs`` bounds concurrent worker
    processes; ``jobs <= 1`` runs inline (see module docstring for the
    timeout caveat).  ``timeout`` is per task, in seconds; an expired
    worker is terminated and reported with ``timed_out=True``.

    With the default ``fork`` start method the callable and items are
    inherited, not pickled; only *results* cross the process boundary
    (and a result that cannot pickle becomes a failure row, not a hang).
    """
    items = list(items)
    if names is None:
        names = [f"task{i}" for i in range(len(items))]
    names = [str(n) for n in names]
    if len(names) != len(items):
        raise ValueError(
            f"{len(names)} names for {len(items)} items"
        )
    if jobs <= 1:
        return [
            _run_inline(fn, item, i, names[i])
            for i, item in enumerate(items)
        ]

    ctx = multiprocessing.get_context(start_method or _default_start_method())
    results: List[Optional[TaskResult]] = [None] * len(items)
    pending = list(range(len(items)))
    running: Dict[int, _Running] = {}

    def finish(index: int, result: TaskResult) -> None:
        results[index] = result
        task = running.pop(index)
        try:
            task.conn.close()
        except Exception:  # pragma: no cover - close is best-effort
            pass
        task.process.join()

    def reap(index: int) -> None:
        """A worker's pipe is ready: collect its payload or its corpse."""
        task = running[index]
        duration = time.perf_counter() - task.started
        try:
            ok, value, error = task.conn.recv()
        except (EOFError, OSError):
            # Died without sending: crash (signal, os._exit, OOM-kill).
            task.process.join()
            finish(
                index,
                TaskResult(
                    index=index,
                    name=names[index],
                    ok=False,
                    error=(
                        f"worker died without reporting "
                        f"(exit code {task.process.exitcode})"
                    ),
                    duration=duration,
                    exitcode=task.process.exitcode,
                ),
            )
            return
        finish(
            index,
            TaskResult(
                index=index,
                name=names[index],
                ok=ok,
                value=value,
                error=error,
                duration=duration,
            ),
        )

    def kill(index: int) -> None:
        task = running[index]
        duration = time.perf_counter() - task.started
        task.process.terminate()
        task.process.join(5.0)
        if task.process.is_alive():  # pragma: no cover - stubborn worker
            task.process.kill()
            task.process.join()
        exitcode = task.process.exitcode
        results[index] = TaskResult(
            index=index,
            name=names[index],
            ok=False,
            error=f"task exceeded timeout of {timeout}s and was terminated",
            duration=duration,
            timed_out=True,
            exitcode=exitcode,
        )
        try:
            task.conn.close()
        except Exception:  # pragma: no cover
            pass
        del running[index]

    try:
        while pending or running:
            while pending and len(running) < jobs:
                index = pending.pop(0)
                parent_conn, child_conn = ctx.Pipe(duplex=False)
                process = ctx.Process(
                    target=_task_worker,
                    args=(fn, items[index], child_conn),
                    daemon=True,
                )
                now = time.perf_counter()
                process.start()
                child_conn.close()
                running[index] = _Running(
                    process=process,
                    conn=parent_conn,
                    started=now,
                    deadline=None if timeout is None else now + timeout,
                )
            # Sleep until a worker reports, dies (its pipe hits EOF and
            # becomes ready too), or the nearest deadline expires.
            wait_for = 0.1
            now = time.perf_counter()
            for task in running.values():
                if task.deadline is not None:
                    wait_for = min(wait_for, max(0.0, task.deadline - now))
            by_conn = {task.conn: idx for idx, task in running.items()}
            ready = _connection_wait(list(by_conn), timeout=wait_for)
            for conn in ready:
                reap(by_conn[conn])
            now = time.perf_counter()
            for index in list(running):
                task = running[index]
                if task.deadline is not None and now >= task.deadline:
                    kill(index)
    finally:
        for index in list(running):  # pragma: no cover - only on error paths
            kill(index)
    assert all(r is not None for r in results)
    return results  # type: ignore[return-value]
