"""Persistent worker-pool suite executor with crash and timeout isolation.

The paper runs RTRBench as a *suite* — 16 kernels, per-kernel sweeps, a
scale comparison — and suite-level orchestration is where wall clock is
won or lost.  :func:`map_tasks` dispatches independent tasks over a
**persistent pool** of worker processes: workers are forked once per
call and *reused* across tasks, so interpreter start-up, imports, and
numpy initialization are paid ``jobs`` times per run instead of once per
task.  The guarantees of the earlier process-per-task executor are kept:

* a task that raises returns a structured :class:`TaskResult` failure
  carrying the worker's traceback, not a dead suite;
* a task that hangs past its ``timeout`` gets its worker terminated and
  is reported as a timeout failure while every other task completes;
* a worker that dies without reporting (segfault, ``os._exit``,
  OOM-kill) surfaces as a failure row with the worker's exit code, and a
  **replacement worker is spawned** so the remaining tasks still run.

Results always come back in input order, one row per task.

Scheduling
----------
``priorities`` (one float per task, typically the task's duration from a
previous run) orders dispatch longest-first, which cuts the
straggler-dominated makespan of heterogeneous task lists.  Ordering is
a pure scheduling hint: result order, task payloads, and task seeds are
unaffected.  Without priorities, tasks dispatch in input order.

Determinism
-----------
Parallel execution must not change results.  Tasks here are
self-contained (each carries its full configuration, including its
seed), and :func:`derive_seed` derives per-task seeds by *content* (a
stable hash of the base seed plus the task's identity), never by worker
id, pool assignment, or submission timing — so ``jobs=4`` and ``jobs=1``
run bit-identical task payloads and produce bit-identical task outputs.

With ``jobs <= 1`` tasks run inline in the calling process (no workers
are spawned); exceptions are still captured as failure rows, but
timeouts cannot preempt inline execution and are not enforced — a
one-time :class:`RuntimeWarning` is emitted when a timeout is configured
inline so a sweep cannot silently lose its hang protection.

Unlike the earlier one-process-per-task executor, task *items* cross the
pipe to their worker (the callable itself is still inherited by fork),
so items must be picklable — the suite's task dicts are.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import time
import traceback
import warnings
from collections import deque
from dataclasses import dataclass
from multiprocessing.connection import wait as _connection_wait
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
)

#: How long a shutdown/terminate is given before escalating to SIGKILL.
_JOIN_GRACE_S = 5.0


@dataclass
class TaskResult:
    """Outcome of one task dispatched through :func:`map_tasks`.

    ``value`` holds the callable's return value when ``ok``; otherwise
    ``error`` carries the worker's formatted traceback (or a description
    of the crash/timeout).  ``duration`` is the parent-observed wall
    clock from dispatch to result; ``exec_s`` is the worker-measured
    execution time of the callable alone, so ``duration - exec_s`` is
    the executor's per-task dispatch overhead; ``queue_wait_s`` is how
    long the task sat in the parent's ready queue before dispatch.
    """

    index: int
    name: str
    ok: bool
    value: Any = None
    error: Optional[str] = None
    duration: float = 0.0
    timed_out: bool = False
    exitcode: Optional[int] = None
    exec_s: float = 0.0
    queue_wait_s: float = 0.0
    worker_id: Optional[int] = None


def derive_seed(base_seed: int, *parts: object) -> int:
    """Deterministic 63-bit seed from a base seed and task-identity parts.

    Content-keyed (SHA-256 of the base seed plus ``parts``), so the seed a
    task receives depends only on *which task it is*, never on worker
    assignment or completion order — the property that makes parallel and
    serial suite runs bit-identical.
    """
    payload = repr((int(base_seed),) + tuple(parts)).encode()
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def schedule_order(
    count: int, priorities: Optional[Sequence[float]] = None
) -> List[int]:
    """Dispatch order for ``count`` tasks: longest-first by priority.

    ``None`` keeps input order.  The sort is stable, so tasks without a
    known duration (priority 0.0) retain their relative input order and
    run after every task that has one.
    """
    if priorities is None:
        return list(range(count))
    if len(priorities) != count:
        raise ValueError(
            f"{len(priorities)} priorities for {count} tasks"
        )
    return sorted(range(count), key=lambda i: (-float(priorities[i]), i))


_warned_inline_timeout = False


def _warn_inline_timeout() -> None:
    """One-time warning: inline execution cannot preempt a hung task."""
    global _warned_inline_timeout
    if _warned_inline_timeout:
        return
    _warned_inline_timeout = True
    warnings.warn(
        "map_tasks(jobs<=1) runs tasks inline and cannot enforce the "
        "configured timeout; use jobs >= 2 for hang protection",
        RuntimeWarning,
        stacklevel=3,
    )


def _pool_worker(
    fn: Callable[[Any], Any],
    conn: Any,
    initializer: Optional[Callable[[], None]] = None,
) -> None:
    """Worker main loop: serve tasks off the pipe until told to stop.

    Protocol: parent sends ``(index, item)`` tuples (``None`` to shut
    down); the worker replies ``(index, ok, value, error, exec_s)``.  A
    result that cannot pickle is reported as a failure row instead of
    killing the worker, so one bad task never costs a respawn.
    """
    if initializer is not None:
        try:
            initializer()
        except Exception:  # pragma: no cover - init is best-effort
            traceback.print_exc()
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):  # parent went away
            break
        if message is None:
            break
        index, item = message
        t0 = time.perf_counter()
        try:
            payload = (index, True, fn(item), None)
        except BaseException:
            payload = (index, False, None, traceback.format_exc())
        exec_s = time.perf_counter() - t0
        try:
            conn.send(payload + (exec_s,))
        except Exception:
            # The value itself failed to pickle — report that instead of
            # dying silently (the parent would otherwise see a crash and
            # burn a respawn).
            try:
                conn.send(
                    (index, False, None,
                     "task result not sendable:\n" + traceback.format_exc(),
                     exec_s)
                )
            except Exception:  # pragma: no cover - pipe already gone
                break
    try:
        conn.close()
    except Exception:  # pragma: no cover
        pass


def _default_start_method() -> str:
    """``fork`` where available (fast, no pickling of the callable)."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


def _run_inline(
    fn: Callable[[Any], Any], item: Any, index: int, name: str
) -> TaskResult:
    """Serial fallback: run one task in-process, capturing exceptions."""
    t0 = time.perf_counter()
    try:
        value = fn(item)
    except Exception:
        duration = time.perf_counter() - t0
        return TaskResult(
            index=index,
            name=name,
            ok=False,
            error=traceback.format_exc(),
            duration=duration,
            exec_s=duration,
        )
    duration = time.perf_counter() - t0
    return TaskResult(
        index=index,
        name=name,
        ok=True,
        value=value,
        duration=duration,
        exec_s=duration,
    )


class _Worker:
    """Parent-side handle for one pool worker process."""

    __slots__ = ("process", "conn", "id", "current", "dispatched_at",
                 "deadline")

    def __init__(self, process: Any, conn: Any, worker_id: int) -> None:
        self.process = process
        self.conn = conn
        self.id = worker_id
        self.current: Optional[int] = None   # index of the task in flight
        self.dispatched_at: float = 0.0
        self.deadline: Optional[float] = None


class WorkerPool:
    """A fixed-size pool of persistent, respawnable worker processes.

    Workers are forked once and reused across tasks; a worker lost to a
    crash or a timeout kill is replaced so pool capacity never decays
    mid-run.  :meth:`shutdown` (also run by ``__exit__``) always joins
    every worker process and closes every parent pipe end, so repeated
    pool lifecycles — including timeout-heavy sweeps — cannot leak file
    descriptors or zombies.
    """

    def __init__(
        self,
        fn: Callable[[Any], Any],
        jobs: int,
        start_method: Optional[str] = None,
        initializer: Optional[Callable[[], None]] = None,
    ) -> None:
        self.fn = fn
        self.jobs = max(2, jobs)
        self.initializer = initializer
        self._ctx = multiprocessing.get_context(
            start_method or _default_start_method()
        )
        self._workers: List[_Worker] = []
        self._next_id = 0
        self.respawns = 0
        self.crashes = 0
        self.timeouts = 0

    # -- lifecycle -------------------------------------------------------------

    def start(self, count: int) -> None:
        """Fork ``count`` workers (bounded by the pool's ``jobs``)."""
        for _ in range(min(count, self.jobs)):
            self._spawn()

    def _spawn(self) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_pool_worker,
            args=(self.fn, child_conn, self.initializer),
            daemon=True,
        )
        process.start()
        child_conn.close()
        worker = _Worker(process, parent_conn, self._next_id)
        self._next_id += 1
        self._workers.append(worker)
        return worker

    def _retire(self, worker: _Worker, kill: bool = False) -> None:
        """Remove a worker, always joining it and closing the pipe end."""
        if kill and worker.process.is_alive():
            worker.process.terminate()
            worker.process.join(_JOIN_GRACE_S)
            if worker.process.is_alive():  # pragma: no cover - stubborn
                worker.process.kill()
        worker.process.join()
        try:
            worker.conn.close()
        except Exception:  # pragma: no cover - close is best-effort
            pass
        self._workers.remove(worker)

    def shutdown(self) -> None:
        """Stop every worker: polite sentinel first, then escalate."""
        for worker in list(self._workers):
            try:
                worker.conn.send(None)
            except Exception:
                pass
        for worker in list(self._workers):
            worker.process.join(_JOIN_GRACE_S)
            self._retire(worker, kill=worker.process.is_alive())

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()

    # -- views -----------------------------------------------------------------

    @property
    def workers(self) -> List[_Worker]:
        """Live workers (mutated by spawn/retire)."""
        return self._workers

    def idle(self) -> List[_Worker]:
        """Workers with no task in flight."""
        return [w for w in self._workers if w.current is None]

    def busy(self) -> List[_Worker]:
        """Workers with a task in flight."""
        return [w for w in self._workers if w.current is not None]


def map_tasks(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    jobs: int = 1,
    timeout: Optional[float] = None,
    names: Optional[Sequence[str]] = None,
    start_method: Optional[str] = None,
    priorities: Optional[Sequence[float]] = None,
    initializer: Optional[Callable[[], None]] = None,
    pool_stats: Optional[Dict[str, Any]] = None,
) -> List[TaskResult]:
    """Run ``fn`` over ``items`` on a persistent pool of worker processes.

    Returns one :class:`TaskResult` per item, in input order, regardless
    of completion order, scheduling order, or failures.  ``jobs`` bounds
    concurrent workers; ``jobs <= 1`` runs inline (see module docstring
    for the timeout caveat).  ``timeout`` is per task, measured from
    dispatch; an expired worker is terminated (and replaced while tasks
    remain) and its task reported with ``timed_out=True``.
    ``priorities`` orders dispatch longest-first (see
    :func:`schedule_order`).  ``initializer`` runs once in each worker
    before it serves tasks (and again in any respawned replacement).
    ``pool_stats``, when given, is filled in place with executor
    counters: ``workers``, ``respawns``, ``crashes``, ``timeouts``.
    """
    items = list(items)
    if names is None:
        names = [f"task{i}" for i in range(len(items))]
    names = [str(n) for n in names]
    if len(names) != len(items):
        raise ValueError(
            f"{len(names)} names for {len(items)} items"
        )
    order = schedule_order(len(items), priorities)
    if pool_stats is None:
        pool_stats = {}
    pool_stats.update(
        {"workers": 0, "respawns": 0, "crashes": 0, "timeouts": 0}
    )

    if jobs <= 1:
        if timeout is not None:
            _warn_inline_timeout()
        if initializer is not None:
            initializer()
        pool_stats["workers"] = 1
        results_inline: List[Optional[TaskResult]] = [None] * len(items)
        for index in order:
            results_inline[index] = _run_inline(
                fn, items[index], index, names[index]
            )
        return results_inline  # type: ignore[return-value]

    results: List[Optional[TaskResult]] = [None] * len(items)
    pending = deque(order)
    pool = WorkerPool(
        fn, jobs, start_method=start_method, initializer=initializer
    )
    t_ready = time.perf_counter()

    def dispatch(worker: _Worker, index: int) -> None:
        now = time.perf_counter()
        worker.current = index
        worker.dispatched_at = now
        worker.deadline = None if timeout is None else now + timeout
        try:
            worker.conn.send((index, items[index]))
        except (BrokenPipeError, OSError):
            # The worker died while idle; the task was never delivered,
            # so it is safe to requeue on a replacement.
            worker.current = None
            pending.appendleft(index)
            pool.crashes += 1
            pool._retire(worker)
            pool._spawn()
            pool.respawns += 1
        except Exception:
            # The item itself failed to pickle: a task-level failure,
            # not a dead worker.
            worker.current = None
            results[index] = TaskResult(
                index=index,
                name=names[index],
                ok=False,
                error="task item not sendable:\n" + traceback.format_exc(),
                queue_wait_s=now - t_ready,
                worker_id=worker.id,
            )

    def reap(worker: _Worker) -> None:
        """A busy worker's pipe is ready: collect its result or corpse."""
        index = worker.current
        assert index is not None
        now = time.perf_counter()
        try:
            r_index, ok, value, error, exec_s = worker.conn.recv()
        except (EOFError, OSError):
            # Died without reporting (signal, os._exit, OOM-kill).
            worker.process.join()
            exitcode = worker.process.exitcode
            results[index] = TaskResult(
                index=index,
                name=names[index],
                ok=False,
                error=(
                    f"worker died without reporting "
                    f"(exit code {exitcode})"
                ),
                duration=now - worker.dispatched_at,
                exitcode=exitcode,
                queue_wait_s=worker.dispatched_at - t_ready,
                worker_id=worker.id,
            )
            pool.crashes += 1
            pool._retire(worker)
            if pending:
                pool._spawn()
                pool.respawns += 1
            return
        assert r_index == index, "worker answered out of protocol"
        results[index] = TaskResult(
            index=index,
            name=names[index],
            ok=ok,
            value=value,
            error=error,
            duration=now - worker.dispatched_at,
            exec_s=exec_s,
            queue_wait_s=worker.dispatched_at - t_ready,
            worker_id=worker.id,
        )
        worker.current = None
        worker.deadline = None

    def expire(worker: _Worker) -> None:
        """A busy worker blew its deadline: kill, report, replace."""
        index = worker.current
        assert index is not None
        now = time.perf_counter()
        pool._retire(worker, kill=True)
        results[index] = TaskResult(
            index=index,
            name=names[index],
            ok=False,
            error=f"task exceeded timeout of {timeout}s and was terminated",
            duration=now - worker.dispatched_at,
            timed_out=True,
            exitcode=worker.process.exitcode,
            queue_wait_s=worker.dispatched_at - t_ready,
            worker_id=worker.id,
        )
        pool.timeouts += 1
        if pending:
            pool._spawn()
            pool.respawns += 1

    try:
        pool.start(min(jobs, len(items)))
        pool_stats["workers"] = len(pool.workers)
        while any(r is None for r in results):
            for worker in pool.idle():
                if not pending:
                    break
                dispatch(worker, pending.popleft())
            busy = pool.busy()
            if not busy:
                # Results may have been filled by unsendable-item rows
                # without any worker in flight.
                if pending:
                    continue
                break
            wait_for: Optional[float] = None
            now = time.perf_counter()
            for worker in busy:
                if worker.deadline is not None:
                    remaining = max(0.0, worker.deadline - now)
                    wait_for = (
                        remaining
                        if wait_for is None
                        else min(wait_for, remaining)
                    )
            by_conn = {worker.conn: worker for worker in busy}
            ready = _connection_wait(list(by_conn), timeout=wait_for)
            for conn in ready:
                reap(by_conn[conn])
            now = time.perf_counter()
            for worker in pool.busy():
                if worker.deadline is not None and now >= worker.deadline:
                    expire(worker)
    finally:
        pool.shutdown()
        pool_stats["respawns"] = pool.respawns
        pool_stats["crashes"] = pool.crashes
        pool_stats["timeouts"] = pool.timeouts

    assert all(r is not None for r in results)
    return results  # type: ignore[return-value]
