"""Deterministic phase profiler.

The paper characterizes each kernel by where its execution time goes
("ray-casting takes 67-78% of pfl", "collision detection takes >65% of
pp2d", ...).  Kernels in this suite wrap their algorithmic phases in
``profiler.phase("name")`` sections; the profiler accumulates *exclusive*
wall-clock time per phase (a child phase pauses its parent's clock) plus
arbitrary operation counters (ray steps, cells checked, heap pushes, ...),
so both a time breakdown and an architecture-independent work breakdown are
available for every run.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from contextlib import contextmanager


@dataclass
class PhaseStats:
    """Accumulated statistics for one named phase.

    Besides the exclusive/inclusive *totals*, each phase tracks the
    per-call inclusive duration extremes (``min_time`` / ``max_time``)
    and the most recent call (``last_time``), so jitter-style reports —
    "how variable is one iteration of this phase?" — come from the same
    stats path as the characterization totals.  ``min_time`` is ``inf``
    until the phase has run at least once.
    """

    name: str
    exclusive_time: float = 0.0
    inclusive_time: float = 0.0
    calls: int = 0
    min_time: float = math.inf
    max_time: float = 0.0
    last_time: float = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PhaseStats({self.name!r}, excl={self.exclusive_time:.6f}s, "
            f"incl={self.inclusive_time:.6f}s, calls={self.calls})"
        )


@dataclass
class _Frame:
    name: str
    entered: float
    child_time: float = 0.0


class PhaseProfiler:
    """Accumulates exclusive per-phase time and operation counters.

    Phases may nest; time spent in a child is subtracted from the parent's
    exclusive time, so ``fractions()`` partitions total measured time.

    >>> prof = PhaseProfiler()
    >>> with prof.phase("outer"):
    ...     with prof.phase("inner"):
    ...         pass
    >>> sorted(prof.stats)
    ['inner', 'outer']
    """

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self.stats: Dict[str, PhaseStats] = {}
        self.counters: Dict[str, int] = {}
        self._stack: List[_Frame] = []

    # -- timing ----------------------------------------------------------

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Measure the enclosed block under phase ``name``."""
        self.begin(name)
        try:
            yield
        finally:
            self.end(name)

    def begin(self, name: str) -> None:
        """Imperative phase entry (for code where ``with`` is awkward)."""
        self._stack.append(_Frame(name=name, entered=self._clock()))

    def end(self, name: str) -> None:
        """Imperative phase exit; must match the innermost open phase."""
        now = self._clock()
        if not self._stack:
            raise RuntimeError(f"phase end({name!r}) with no open phase")
        frame = self._stack.pop()
        if frame.name != name:
            raise RuntimeError(
                f"mismatched phases: open {frame.name!r} closed by {name!r}"
            )
        inclusive = now - frame.entered
        exclusive = inclusive - frame.child_time
        st = self.stats.get(name)
        if st is None:
            st = self.stats[name] = PhaseStats(name)
        st.exclusive_time += exclusive
        st.inclusive_time += inclusive
        st.calls += 1
        st.min_time = min(st.min_time, inclusive)
        st.max_time = max(st.max_time, inclusive)
        st.last_time = inclusive
        if self._stack:
            self._stack[-1].child_time += inclusive

    # -- counters ----------------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to operation counter ``name``."""
        self.counters[name] = self.counters.get(name, 0) + n

    # -- reporting ---------------------------------------------------------

    def total_time(self) -> float:
        """Sum of exclusive phase times (== total instrumented time)."""
        return sum(s.exclusive_time for s in self.stats.values())

    def fractions(self) -> Dict[str, float]:
        """Each phase's share of total instrumented time (sums to 1)."""
        total = self.total_time()
        if total <= 0.0:
            return {name: 0.0 for name in self.stats}
        return {
            name: st.exclusive_time / total for name, st in self.stats.items()
        }

    def fraction(self, name: str) -> float:
        """Share of total instrumented time spent in phase ``name``.

        A phase that never ran — including on a profiler with no phases at
        all — contributes 0.0 rather than raising, so report code can ask
        about phases a backend or configuration happened to skip.
        """
        st = self.stats.get(name)
        if st is None:
            return 0.0
        total = self.total_time()
        if total <= 0.0:
            return 0.0
        return st.exclusive_time / total

    def dominant_phase(self) -> Optional[str]:
        """Name of the phase with the largest exclusive time, if any."""
        if not self.stats:
            return None
        return max(self.stats.values(), key=lambda s: s.exclusive_time).name

    def merge(self, other: "PhaseProfiler") -> None:
        """Fold another profiler's totals into this one."""
        for name, st in other.stats.items():
            mine = self.stats.get(name)
            if mine is None:
                mine = self.stats[name] = PhaseStats(name)
            mine.exclusive_time += st.exclusive_time
            mine.inclusive_time += st.inclusive_time
            mine.calls += st.calls
            mine.min_time = min(mine.min_time, st.min_time)
            mine.max_time = max(mine.max_time, st.max_time)
            if st.calls:
                mine.last_time = st.last_time
        for name, n in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + n

    def reset(self) -> None:
        """Clear all accumulated statistics (open phases must be closed)."""
        if self._stack:
            raise RuntimeError("cannot reset profiler with open phases")
        self.stats.clear()
        self.counters.clear()

    def report(self) -> str:
        """Human-readable per-phase breakdown."""
        lines = ["phase                     excl (s)    share   calls"]
        fracs = self.fractions()
        for name, st in sorted(
            self.stats.items(), key=lambda kv: -kv[1].exclusive_time
        ):
            lines.append(
                f"{name:<24} {st.exclusive_time:>9.4f}  {fracs[name]:>6.1%}"
                f"  {st.calls:>6d}"
            )
        if self.counters:
            lines.append("counters:")
            for name, n in sorted(self.counters.items()):
                lines.append(f"  {name:<24} {n}")
        return "\n".join(lines)
