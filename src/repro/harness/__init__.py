"""Benchmark harness: ROI hooks, phase profiling, configuration, and runners.

This package is the Python analog of RTRBench's simulation harness.  The C++
suite communicates regions of interest (ROIs) to the zsim simulator through
magic-instruction hooks; here the ROI markers drive a deterministic phase
profiler instead, so every kernel reports where its execution time goes
(the paper's per-kernel characterization) without a micro-architectural
simulator.
"""

from repro.harness.config import KernelConfig, build_arg_parser, config_from_args
from repro.harness.profiler import PhaseProfiler, PhaseStats
from repro.harness.roi import ROI, roi_begin, roi_end, set_hooks, SimulatorHooks
from repro.harness.runner import Kernel, KernelResult, registry, run_kernel

__all__ = [
    "KernelConfig",
    "build_arg_parser",
    "config_from_args",
    "PhaseProfiler",
    "PhaseStats",
    "ROI",
    "roi_begin",
    "roi_end",
    "set_hooks",
    "SimulatorHooks",
    "Kernel",
    "KernelResult",
    "registry",
    "run_kernel",
]
