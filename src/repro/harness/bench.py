"""Perf-regression harness for the vectorized hot-path backends.

The suite's dominant phases — ray casting (67-78% of pfl), footprint
collision checking (>65% of pp2d), and nearest-neighbor correspondence
(>68% of srec's ICP) — each have a ``reference`` implementation (the
scalar/loop code the characterization uses) and a ``vectorized`` numpy
backend.  This module times both on fixed representative workloads,
verifies that the backends agree on every workload before trusting the
timings, and asserts per-phase speedup floors so a regression in the
vectorized paths fails loudly instead of silently eroding.

``rtrbench bench`` drives it from the command line and writes
``BENCH_hotpaths.json`` as a schema-versioned
:class:`~repro.results.record.RunRecord` whose measurements are the flat
``<phase>.speedup`` / ``<phase>.reference_s`` / ``<phase>.ops`` names the
gate engine addresses; the raw ``phase -> metrics`` mapping rides in the
record's ``detail``.  ``ops`` is the architecture-independent work count
for the workload (boundary crossings / cells checked / candidate
comparisons) and is deterministic for a given seed; the timings are
wall-clock minima over interleaved repeats, the most load-robust point
estimate on a shared machine.  The per-phase speedup floors that used to
live here as ``check_floors`` are now gate declarations in
:data:`repro.results.gates.DEFAULT_GATES`.
"""

from __future__ import annotations

import fnmatch
import gc
import time
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.envs.costmap import synthetic_costmap
from repro.envs.mapgen import campus_like_3d, wean_hall_like
from repro.geometry.collision import (
    footprint_points,
    oriented_footprint_collides,
    oriented_footprints_collide_batch,
)
from repro.geometry.kdtree import KDTree, nearest_neighbors_batch
from repro.geometry.raycast import (
    _cast_tables,
    cast_rays_batch,
    cast_rays_dda_batch,
)
from repro.planning.pp3d import far_apart_free_voxels, plan_3d
from repro.search.dijkstra import backward_dijkstra_grid
from repro.results import (
    RunRecord,
    capture_environment,
    pinned_thread_env,
    record_from_bench,
)


def _interleaved_min(
    reference: Callable[[], object],
    vectorized: Callable[[], object],
    repeats: int,
) -> tuple:
    """Min wall and CPU clock of each callable over alternating repeats.

    Alternation exposes both backends to the same machine-load episodes;
    the minimum discards the repeats that lost the CPU to other work.
    The garbage collector is paused across the timed sections so a cycle
    collection landing inside one backend's window cannot skew the
    comparison; ``process_time`` is recorded alongside ``perf_counter``
    so wall-vs-CPU divergence (scheduler pressure, denormal stalls) is
    visible in the report.

    Returns ``(ref_wall, vec_wall, ref_cpu, vec_cpu)`` minima in seconds.
    """
    ref_times: List[float] = []
    vec_times: List[float] = []
    ref_cpu: List[float] = []
    vec_cpu: List[float] = []
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            c0 = time.process_time()
            t0 = time.perf_counter()
            reference()
            ref_times.append(time.perf_counter() - t0)
            ref_cpu.append(time.process_time() - c0)
            c0 = time.process_time()
            t0 = time.perf_counter()
            vectorized()
            vec_times.append(time.perf_counter() - t0)
            vec_cpu.append(time.process_time() - c0)
    finally:
        if gc_was_enabled:
            gc.enable()
    return min(ref_times), min(vec_times), min(ref_cpu), min(vec_cpu)


# -- workloads -----------------------------------------------------------------


def bench_raycast(smoke: bool = False, seed: int = 7) -> Dict[str, float]:
    """Time both ray casters on a particle-filter-shaped batch.

    Full mode: 256 particles x 60 beams over a 320x400 building map at
    0.125 m resolution (a standard indoor mapping resolution; the
    reference marcher's cost grows as 1/resolution while the vectorized
    caster's clearance jumps are metric, so this is also where the
    backend choice matters most).  Rays are capped at 12 m like the pfl
    lidar.
    """
    if smoke:
        grid = wean_hall_like(rows=160, cols=200, resolution=0.25, seed=seed)
        n_particles, n_beams, repeats = 64, 30, 2
    else:
        grid = wean_hall_like(rows=320, cols=400, resolution=0.125, seed=seed)
        n_particles, n_beams, repeats = 256, 60, 5
    max_range = 12.0
    rng = np.random.default_rng(42)
    free = np.argwhere(~grid.cells)
    sel = free[rng.integers(0, len(free), n_particles)]
    res = grid.resolution
    ox, oy = grid.origin
    px = (sel[:, 1] + 0.5) * res + ox
    py = (sel[:, 0] + 0.5) * res + oy
    headings = rng.uniform(-np.pi, np.pi, n_particles)
    beams = np.linspace(-np.pi, np.pi, n_beams, endpoint=False)
    xs = np.repeat(px, n_beams)
    ys = np.repeat(py, n_beams)
    angles = (headings[:, None] + beams[None, :]).ravel()

    ops_box = {"n": 0}

    def count(name: str, k: int) -> None:
        ops_box["n"] += k

    _cast_tables(grid)  # table build is one-time per map; not a per-call cost
    ref_out = cast_rays_batch(grid, xs, ys, angles, max_range, count=count)
    vec_out = cast_rays_dda_batch(grid, xs, ys, angles, max_range)
    worst = float(np.abs(ref_out - vec_out).max())
    if worst > res:
        raise AssertionError(
            f"raycast backends disagree by {worst:.6f} m (> {res} m)"
        )
    ref_s, vec_s, ref_cpu, vec_cpu = _interleaved_min(
        lambda: cast_rays_batch(grid, xs, ys, angles, max_range),
        lambda: cast_rays_dda_batch(grid, xs, ys, angles, max_range),
        repeats,
    )
    return {
        "reference_s": ref_s,
        "vectorized_s": vec_s,
        "reference_cpu_s": ref_cpu,
        "vectorized_cpu_s": vec_cpu,
        "speedup": ref_s / vec_s,
        "ops": ops_box["n"],
    }


def bench_collision(smoke: bool = False, seed: int = 7) -> Dict[str, float]:
    """Time oriented-footprint checks, scalar loop vs one batched call.

    The workload is pp2d-shaped: the paper's 4.8 m x 1.8 m car footprint
    placed at random free poses of the building map, the same per-pose
    sample points and cell lookups either way.
    """
    grid = wean_hall_like(rows=160, cols=200, resolution=0.25, seed=seed)
    n_poses = 300 if smoke else 2000
    repeats = 2 if smoke else 5
    rng = np.random.default_rng(seed * 7 + 1)
    free = np.argwhere(~grid.cells)
    sel = free[rng.integers(0, len(free), n_poses)]
    res = grid.resolution
    ox, oy = grid.origin
    xs = (sel[:, 1] + rng.random(n_poses)) * res + ox
    ys = (sel[:, 0] + rng.random(n_poses)) * res + oy
    thetas = rng.uniform(-np.pi, np.pi, n_poses)
    body = footprint_points(4.8, 1.8, res)

    def reference() -> np.ndarray:
        return np.array(
            [
                oriented_footprint_collides(grid, x, y, t, body)
                for x, y, t in zip(xs, ys, thetas)
            ]
        )

    def vectorized() -> np.ndarray:
        return oriented_footprints_collide_batch(grid, xs, ys, thetas, body)

    if not np.array_equal(reference(), vectorized()):
        raise AssertionError("collision backends return different verdicts")
    ref_s, vec_s, ref_cpu, vec_cpu = _interleaved_min(
        reference, vectorized, repeats
    )
    return {
        "reference_s": ref_s,
        "vectorized_s": vec_s,
        "reference_cpu_s": ref_cpu,
        "vectorized_cpu_s": vec_cpu,
        "speedup": ref_s / vec_s,
        "ops": n_poses * len(body),
    }


def bench_nn(smoke: bool = False, seed: int = 7) -> Dict[str, float]:
    """Time nearest-neighbor correspondence, kd-tree loop vs batched brute.

    ICP-correspondence-shaped: each of the query points (a subsampled
    scan) finds its nearest model point.  The tree is built outside the
    timed region — ICP builds it once per registration but queries every
    iteration — so this measures the per-iteration inner loop.
    """
    n_target, n_query = (800, 400) if smoke else (3000, 1500)
    repeats = 1 if smoke else 2
    rng = np.random.default_rng(seed * 7 + 2)
    target = rng.random((n_target, 3)) * 4.0
    queries = rng.random((n_query, 3)) * 4.0
    tree = KDTree.build(target)

    def reference() -> np.ndarray:
        dists = np.empty(n_query)
        for i, q in enumerate(queries):
            dists[i] = tree.nearest(q)[2]
        return dists

    def vectorized() -> np.ndarray:
        return nearest_neighbors_batch(target, queries)[1]

    if not np.allclose(reference(), vectorized(), atol=1e-9):
        raise AssertionError("nn backends return different distances")
    ref_s, vec_s, ref_cpu, vec_cpu = _interleaved_min(
        reference, vectorized, repeats
    )
    return {
        "reference_s": ref_s,
        "vectorized_s": vec_s,
        "reference_cpu_s": ref_cpu,
        "vectorized_cpu_s": vec_cpu,
        "speedup": ref_s / vec_s,
        "ops": n_target * n_query,
    }


def bench_search_dijkstra(
    smoke: bool = False, seed: int = 7
) -> Dict[str, float]:
    """Time a full-grid backward-Dijkstra sweep, heapq vs bucketed core.

    This is movtar's heuristic-table recompute (the whole-map cost-to-go
    sweep it reruns whenever the table invalidates), sized up to a large
    costmap where the sweep — not the WA* search — dominates.  The
    ``vectorized`` contestant is the Dial-style bucketed batch engine of
    :mod:`repro.search.grid_core`; both backends must produce the same
    cost-to-go table before the timings are trusted.
    """
    size, repeats = (96, 2) if smoke else (384, 5)
    field = synthetic_costmap(rows=size, cols=size, n_bumps=8, seed=seed)
    free = np.argwhere(~field.obstacles)
    goals = [tuple(int(v) for v in free[0]), tuple(int(v) for v in free[-1])]

    ref_out = backward_dijkstra_grid(
        field.cost, goals, field.obstacles, backend="reference"
    )
    vec_out = backward_dijkstra_grid(
        field.cost, goals, field.obstacles, backend="bucketed"
    )
    if not np.array_equal(np.isfinite(ref_out), np.isfinite(vec_out)):
        raise AssertionError("dijkstra backends disagree on reachability")
    finite = np.isfinite(ref_out)
    if not np.allclose(ref_out[finite], vec_out[finite], atol=1e-9):
        raise AssertionError("dijkstra backends disagree on cost-to-go")
    ref_s, vec_s, ref_cpu, vec_cpu = _interleaved_min(
        lambda: backward_dijkstra_grid(
            field.cost, goals, field.obstacles, backend="reference"
        ),
        lambda: backward_dijkstra_grid(
            field.cost, goals, field.obstacles, backend="bucketed"
        ),
        repeats,
    )
    return {
        "reference_s": ref_s,
        "vectorized_s": vec_s,
        "reference_cpu_s": ref_cpu,
        "vectorized_cpu_s": vec_cpu,
        "speedup": ref_s / vec_s,
        "ops": int(finite.sum()),
    }


def bench_search_pp3d(smoke: bool = False, seed: int = 7) -> Dict[str, float]:
    """Time end-to-end pp3d planning, heapq/dict reference vs array core.

    The suite's standard pp3d inputset (96x96x24 campus volume,
    corner-to-corner query): the whole kernel ROI including collision
    handling, so this is the user-visible planning latency, not just the
    open-list microcost.  Both backends must return identical costs,
    paths, and expansion counts before the timings are trusted.
    """
    if smoke:
        nx, ny, nz, repeats = 48, 48, 12, 2
    else:
        nx, ny, nz, repeats = 96, 96, 24, 3
    grid = campus_like_3d(nx=nx, ny=ny, nz=nz, resolution=1.0, seed=seed)
    start, goal = far_apart_free_voxels(grid)

    ref_out = plan_3d(grid, start, goal, backend="reference")
    arr_out = plan_3d(grid, start, goal, backend="array")
    if (
        ref_out.found != arr_out.found
        or ref_out.cost != arr_out.cost
        or ref_out.path != arr_out.path
        or ref_out.expansions != arr_out.expansions
    ):
        raise AssertionError("pp3d backends return different plans")
    ref_s, vec_s, ref_cpu, vec_cpu = _interleaved_min(
        lambda: plan_3d(grid, start, goal, backend="reference"),
        lambda: plan_3d(grid, start, goal, backend="array"),
        repeats,
    )
    return {
        "reference_s": ref_s,
        "vectorized_s": vec_s,
        "reference_cpu_s": ref_cpu,
        "vectorized_cpu_s": vec_cpu,
        "speedup": ref_s / vec_s,
        "ops": ref_out.expansions,
    }


# -- driver --------------------------------------------------------------------

#: phase name -> benchmark callable, in report order.
BENCH_PHASES: Dict[str, Callable[..., Dict[str, float]]] = {
    "raycast": bench_raycast,
    "collision": bench_collision,
    "nn": bench_nn,
    "search_dijkstra": bench_search_dijkstra,
    "search_pp3d": bench_search_pp3d,
}


def select_phases(
    patterns: Optional[List[str]],
) -> Dict[str, Callable[..., Dict[str, float]]]:
    """Subset of :data:`BENCH_PHASES` matching the given glob patterns.

    ``None``/empty selects everything; an unmatched pattern set raises
    so a typo cannot silently bench nothing.
    """
    if not patterns:
        return dict(BENCH_PHASES)
    selected = {
        name: fn
        for name, fn in BENCH_PHASES.items()
        if any(fnmatch.fnmatch(name, pattern) for pattern in patterns)
    }
    if not selected:
        raise ValueError(
            f"no bench phases match {patterns!r}; "
            f"available: {', '.join(BENCH_PHASES)}"
        )
    return selected


def _bench_task(task: tuple) -> Dict[str, float]:
    """Worker entry: run one named bench phase (module-level, fork-safe)."""
    phase, smoke, seed = task
    return BENCH_PHASES[phase](smoke=smoke, seed=seed)


def run_bench(
    smoke: bool = False,
    seed: int = 7,
    jobs: int = 1,
    phases: Optional[List[str]] = None,
) -> Dict[str, Dict[str, float]]:
    """Run the hot-path benchmarks; returns ``phase -> metrics``.

    ``phases`` optionally restricts the run to the phase names matching
    the given glob patterns (e.g. ``["search_*"]``).  ``jobs > 1``
    dispatches the phases over worker processes via
    :func:`repro.harness.parallel.map_tasks`.  Per-phase timings from a
    parallel run share the machine with sibling phases and are noisier
    than a serial run's; the suite report records them as such, while
    floor gates (``rtrbench gate``) are intended for serial runs.
    A phase that fails raises, as in serial mode.
    """
    selected = select_phases(phases)
    if jobs <= 1:
        return {
            phase: fn(smoke=smoke, seed=seed)
            for phase, fn in selected.items()
        }
    from repro.harness.parallel import map_tasks

    phase_names = list(selected)
    results = map_tasks(
        _bench_task,
        [(phase, smoke, seed) for phase in phase_names],
        jobs=jobs,
        names=[f"bench:{phase}" for phase in phase_names],
    )
    failed = [r for r in results if not r.ok]
    if failed:
        raise RuntimeError(
            "bench phase failures:\n"
            + "\n".join(f"{r.name}: {r.error}" for r in failed)
        )
    return {phase: r.value for phase, r in zip(phase_names, results)}


def run_bench_record(
    smoke: bool = False,
    seed: int = 7,
    jobs: int = 1,
    phases: Optional[List[str]] = None,
) -> RunRecord:
    """Run the bench under a pinned thread environment; return a record.

    Thread-count variables (``OMP_NUM_THREADS`` and friends) are pinned
    to 1 for the duration of the run — unset BLAS thread pools are the
    single largest source of run-to-run hot-path noise — unless the user
    set them, in which case their values win.  Either way the observed
    mapping lands in the record's environment fingerprint, so two
    records' timings are never compared without knowing the thread
    configuration each was measured under.  Parallel workers fork while
    the pin is active and inherit it.
    """
    with pinned_thread_env() as thread_env:
        results = run_bench(smoke=smoke, seed=seed, jobs=jobs, phases=phases)
        env = capture_environment(thread_env=thread_env)
    return record_from_bench(
        results, smoke=smoke, seed=seed, jobs=jobs, env=env
    )


def render_report(results: Dict[str, Dict[str, float]]) -> str:
    """Fixed-width table of the benchmark results (wall and CPU clock)."""
    lines = [
        f"{'phase':<12} {'reference':>11} {'vectorized':>11} "
        f"{'ref (cpu)':>11} {'vec (cpu)':>11} {'speedup':>8} {'ops':>12}"
    ]
    for phase, row in results.items():
        ref_cpu = row.get("reference_cpu_s", 0.0)
        vec_cpu = row.get("vectorized_cpu_s", 0.0)
        lines.append(
            f"{phase:<12} {row['reference_s'] * 1e3:>9.2f}ms "
            f"{row['vectorized_s'] * 1e3:>9.2f}ms "
            f"{ref_cpu * 1e3:>9.2f}ms {vec_cpu * 1e3:>9.2f}ms "
            f"{row['speedup']:>7.2f}x {row['ops']:>12d}"
        )
    return "\n".join(lines)
