"""Kernel 07.prm — probabilistic roadmaps for arm planning (section V.7).

High-dimensional arm planning samples the configuration space instead of
enumerating it.  PRM's *offline* phase samples collision-free
configurations and connects near neighbors into a roadmap graph; the
*online* phase (the paper's region of interest — "the online search
process ... is on the critical path") attaches the start and goal
configurations and runs A* over the roadmap, with L2-norm joint-space
distances as both edge costs and heuristic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.envs.arm_maps import ArmWorkspace, default_arm, map_c, map_f
from repro.geometry.distance import euclidean
from repro.geometry.kdtree import KDTree
from repro.harness.config import KernelConfig, option
from repro.harness.profiler import PhaseProfiler
from repro.harness.runner import Kernel, registry
from repro.robots.arm import PlanarArm
from repro.search.astar import SearchResult, astar


class ProbabilisticRoadmap:
    """A PRM over an arm's joint space.

    Nodes are joint configurations (numpy vectors, stored by index);
    edges connect each node to its k nearest collision-free-reachable
    neighbors.  Build work is profiled under ``sampling`` / ``connect`` /
    ``collision``; queries under ``search`` / ``l2_norm``.
    """

    def __init__(
        self,
        arm: PlanarArm,
        workspace: ArmWorkspace,
        k_neighbors: int = 8,
        edge_step: float = 0.1,
        profiler: Optional[PhaseProfiler] = None,
    ) -> None:
        self.arm = arm
        self.workspace = workspace
        self.k_neighbors = int(k_neighbors)
        self.edge_step = float(edge_step)
        self.profiler = profiler if profiler is not None else PhaseProfiler()
        self.nodes: List[np.ndarray] = []
        self.edges: Dict[int, List[Tuple[int, float]]] = {}
        self._tree = KDTree(arm.dof)

    @property
    def n_nodes(self) -> int:
        """Number of roadmap nodes."""
        return len(self.nodes)

    @property
    def n_edges(self) -> int:
        """Number of undirected roadmap edges."""
        return sum(len(adj) for adj in self.edges.values()) // 2

    # -- offline phase ---------------------------------------------------------

    def build(self, n_samples: int, rng: np.random.Generator) -> None:
        """Offline roadmap construction: sample, test, connect."""
        prof = self.profiler
        accepted: List[np.ndarray] = []
        while len(accepted) < n_samples:
            with prof.phase("sampling"):
                q = self.arm.sample_configuration(rng)
                prof.count("prm_samples_drawn", 1)
            with prof.phase("collision"):
                collides = self.workspace.config_collides(
                    self.arm, q, count=prof.count
                )
            if not collides:
                accepted.append(q)
        for q in accepted:
            self._add_and_connect(q)

    def _add_and_connect(self, q: np.ndarray) -> int:
        """Insert a configuration and wire it to its nearest neighbors."""
        prof = self.profiler
        index = len(self.nodes)
        self.nodes.append(q)
        self.edges.setdefault(index, [])
        if index > 0:
            with prof.phase("connect"):
                neighbors = self._tree.k_nearest(
                    q, min(self.k_neighbors, index), count=prof.count
                )
            for _, j, dist in neighbors:
                with prof.phase("collision"):
                    blocked = self.workspace.edge_collides(
                        self.arm,
                        q,
                        self.nodes[j],
                        step=self.edge_step,
                        count=prof.count,
                    )
                if not blocked:
                    self.edges[index].append((j, dist))
                    self.edges[j].append((index, dist))
        self._tree.insert(q, index)
        return index

    # -- online phase -------------------------------------------------------------

    def query(
        self, start: np.ndarray, goal: np.ndarray
    ) -> Tuple[SearchResult, List[np.ndarray]]:
        """Online planning: attach start/goal, A* over the roadmap.

        Returns the raw search result plus the joint-space waypoints.
        """
        prof = self.profiler
        start = np.asarray(start, dtype=float)
        goal = np.asarray(goal, dtype=float)
        for name, q in (("start", start), ("goal", goal)):
            if self.workspace.config_collides(self.arm, q):
                raise ValueError(f"{name} configuration collides")
        start_idx = self._add_and_connect(start)
        goal_idx = self._add_and_connect(goal)
        roadmap = self

        class _RoadmapSpace:
            def successors(self, state: int) -> Iterable[Tuple[int, float]]:
                return iter(roadmap.edges.get(state, ()))

            def heuristic(self, state: int) -> float:
                with prof.phase("l2_norm"):
                    prof.count("l2_norm_evals", 1)
                    return euclidean(roadmap.nodes[state], roadmap.nodes[goal_idx])

            def is_goal(self, state: int) -> bool:
                return state == goal_idx

        result = astar(_RoadmapSpace(), start_idx, profiler=prof)
        waypoints = [self.nodes[i] for i in result.path] if result.found else []
        return result, waypoints


def find_free_configuration(
    arm: PlanarArm,
    workspace: ArmWorkspace,
    rng: np.random.Generator,
    toward: Optional[Sequence[float]] = None,
    attempts: int = 2000,
    clearance_sigma: float = 0.2,
    clearance_checks: int = 4,
) -> np.ndarray:
    """Sample a collision-free configuration, optionally near ``toward``.

    ``clearance_checks`` random perturbations (std ``clearance_sigma``)
    must also be collision-free, so endpoints never sit in configuration-
    space pockets too narrow for the sampling planners to enter.
    """
    for _ in range(attempts):
        q = arm.sample_configuration(rng)
        if toward is not None:
            q = arm.clamp(0.5 * (q + np.asarray(toward)))
        if workspace.config_collides(arm, q):
            continue
        clear = all(
            not workspace.config_collides(
                arm, arm.clamp(q + rng.normal(0, clearance_sigma, arm.dof))
            )
            for _ in range(clearance_checks)
        )
        if clear:
            return q
    raise RuntimeError("could not sample a collision-free configuration")


def distant_free_pair(
    arm: PlanarArm,
    workspace: ArmWorkspace,
    rng: np.random.Generator,
    min_distance: float = 2.0,
    max_distance: float = 4.0,
    attempts: int = 200,
) -> Tuple[np.ndarray, np.ndarray]:
    """Two well-cleared configurations a substantial distance apart.

    Joint-space distance is kept in ``[min_distance, max_distance]``: far
    enough that the plan is non-trivial, but bounded so a 5-DoF query
    remains solvable in the paper's sample budgets (unboundedly distant
    pairs force the arm to sweep the entire workspace).
    """
    best: Optional[Tuple[np.ndarray, np.ndarray]] = None
    best_gap = float("inf")
    mid = 0.5 * (min_distance + max_distance)
    for _ in range(attempts):
        a = find_free_configuration(arm, workspace, rng)
        b = find_free_configuration(arm, workspace, rng)
        d = float(np.linalg.norm(a - b))
        gap = abs(d - mid)
        if gap < best_gap:
            best, best_gap = (a, b), gap
        if min_distance <= d <= max_distance:
            return a, b
    assert best is not None
    return best


def select_workspace(name: str) -> ArmWorkspace:
    """Map a config string (``map-c`` / ``map-f``) to a workspace."""
    key = name.strip().lower().replace("_", "-")
    if key in ("map-c", "c", "cluttered"):
        return map_c()
    if key in ("map-f", "f", "free"):
        return map_f()
    raise ValueError(f"unknown workspace {name!r} (use map-c or map-f)")


@dataclass
class PrmConfig(KernelConfig):
    """Configuration of the prm kernel."""

    dof: int = option(5, "Arm degrees of freedom")
    samples: int = option(300, "Offline roadmap samples")
    neighbors: int = option(8, "k nearest neighbors to connect")
    map: str = option("map-c", "Workspace: map-c (cluttered) or map-f (free)")
    edge_step: float = option(0.15, "Edge collision-check step (rad)")


@dataclass
class PrmWorkload:
    """A built roadmap plus a start/goal query pair."""

    roadmap: ProbabilisticRoadmap
    start: np.ndarray
    goal: np.ndarray
    offline_profiler: PhaseProfiler


@registry.register
class PrmKernel(Kernel):
    """PRM arm planning; the ROI is the online query (paper section V.7)."""

    name = "07.prm"
    stage = "planning"
    config_cls = PrmConfig
    description = "Probabilistic roadmap arm planning (search + L2 bound)"

    def setup(self, config: PrmConfig) -> PrmWorkload:
        workspace = select_workspace(config.map)
        arm = default_arm(dof=config.dof, size=workspace.size)
        rng = np.random.default_rng(config.seed)
        offline_profiler = PhaseProfiler()
        roadmap = ProbabilisticRoadmap(
            arm,
            workspace,
            k_neighbors=config.neighbors,
            edge_step=config.edge_step,
            profiler=offline_profiler,
        )
        roadmap.build(config.samples, rng)
        start, goal = distant_free_pair(arm, workspace, rng)
        return PrmWorkload(
            roadmap=roadmap,
            start=start,
            goal=goal,
            offline_profiler=offline_profiler,
        )

    def run_roi(
        self, config: PrmConfig, state: PrmWorkload, profiler: PhaseProfiler
    ) -> dict:
        # Swap in the ROI profiler so online phases are measured separately
        # from the offline build (which the paper treats as paid once).
        state.roadmap.profiler = profiler
        result, waypoints = state.roadmap.query(state.start, state.goal)
        return {
            "result": result,
            "waypoints": waypoints,
            "roadmap_nodes": state.roadmap.n_nodes,
            "roadmap_edges": state.roadmap.n_edges,
            "offline_time": state.offline_profiler.total_time(),
        }
