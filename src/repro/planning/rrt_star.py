"""Kernel 09.rrtstar — asymptotically optimal RRT* (paper section V.9).

RRT* adds two operations to every RRT extension: choosing the best parent
among *near* neighbors, and *rewiring* — reconnecting near nodes through
the new sample when that shortens their path.  Both hit the
nearest-neighbor index (its share of time grows to ~49% in the paper) and
add collision checks.  The paper finds RRT* up to ~8x slower than RRT but
producing ~1.6x shorter paths on average.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.geometry.distance import path_length
from repro.harness.config import KernelConfig, option
from repro.harness.profiler import PhaseProfiler
from repro.harness.runner import Kernel, registry
from repro.planning.rrt import (
    RRT,
    ArmPlanWorkload,
    RrtConfig,
    SamplingPlanResult,
    _Tree,
    make_arm_workload,
)


class RRTStar(RRT):
    """RRT* — RRT with best-parent selection and rewiring.

    The near-set radius shrinks as the tree grows:
    ``r(n) = gamma * (log n / n)^(1/d)`` (Karaman & Frazzoli), floored at
    the extension step so rewiring never starves.
    """

    def __init__(self, *args, gamma: float = 3.0, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if gamma <= 0:
            raise ValueError("gamma must be positive")
        self.gamma = float(gamma)

    def _near_radius(self, n: int) -> float:
        d = self.arm.dof
        if n < 2:
            return self.epsilon
        return max(
            self.epsilon, self.gamma * (math.log(n) / n) ** (1.0 / d)
        )

    def _near(self, tree: _Tree, q: np.ndarray, radius: float):
        """All tree nodes within ``radius`` of ``q`` (profiled as NN work)."""
        prof = self.profiler
        with prof.phase("nn_search"):
            return tree.index.within_radius(q, radius, count=prof.count)

    def plan(
        self, start: np.ndarray, goal: np.ndarray
    ) -> SamplingPlanResult:
        """Grow an RRT* tree; keeps improving until the sample budget ends.

        Unlike RRT, finding the goal does not stop the loop — later
        samples keep rewiring the tree, so the returned path is the best
        found within ``max_samples`` (the asymptotic-optimality behaviour
        the paper measures as slower-but-shorter).
        """
        start = np.asarray(start, dtype=float)
        goal = np.asarray(goal, dtype=float)
        tree = _Tree(self.arm.dof, self.nn_strategy)
        tree.add(start, parent=-1, cost=0.0)
        goal_idx: Optional[int] = None
        samples = 0
        while samples < self.max_samples:
            samples += 1
            q_rand = self._sample(goal)
            near_idx, _ = self._nearest(tree, q_rand)
            q_new = self._steer(tree.configs[near_idx], q_rand)
            if not self._edge_free(tree.configs[near_idx], q_new):
                continue
            radius = self._near_radius(len(tree))
            near_set = self._near(tree, q_new, radius)
            # Choose the parent minimizing cost-to-come through a free edge.
            best_parent = near_idx
            best_cost = tree.costs[near_idx] + float(
                np.linalg.norm(q_new - tree.configs[near_idx])
            )
            for _, j, dist in near_set:
                if j == near_idx:
                    continue
                candidate = tree.costs[j] + dist
                if candidate < best_cost and self._edge_free(
                    tree.configs[j], q_new
                ):
                    best_parent = j
                    best_cost = candidate
            new_idx = tree.add(q_new, parent=best_parent, cost=best_cost)
            # Rewire: route near nodes through the new sample when shorter.
            for _, j, dist in near_set:
                if j in (best_parent, new_idx):
                    continue
                through_new = best_cost + dist
                if through_new < tree.costs[j] and self._edge_free(
                    q_new, tree.configs[j]
                ):
                    tree.reparent(j, new_idx)
                    self._propagate_cost(tree, j, through_new)
                    self.profiler.count("rrtstar_rewires", 1)
            # Goal connection (kept live: cost can keep improving).
            goal_dist = float(np.linalg.norm(q_new - goal))
            if goal_dist <= self.goal_threshold:
                candidate_cost = best_cost + goal_dist
                if goal_idx is None:
                    if self._edge_free(q_new, goal):
                        goal_idx = tree.add(goal, new_idx, candidate_cost)
                elif candidate_cost < tree.costs[goal_idx] and self._edge_free(
                    q_new, goal
                ):
                    tree.reparent(goal_idx, new_idx)
                    tree.costs[goal_idx] = candidate_cost
        if goal_idx is None:
            return SamplingPlanResult(
                found=False, samples_drawn=samples, tree_size=len(tree)
            )
        path = tree.path_to(goal_idx)
        return SamplingPlanResult(
            found=True,
            path=path,
            cost=path_length(np.vstack(path)),
            samples_drawn=samples,
            tree_size=len(tree),
        )

    def _propagate_cost(self, tree: _Tree, root: int, new_cost: float) -> None:
        """Update subtree costs after a rewire (children inherit the delta)."""
        delta = new_cost - tree.costs[root]
        if abs(delta) < 1e-15:
            return
        tree.costs[root] = new_cost
        stack = list(tree.children[root])
        while stack:
            idx = stack.pop()
            tree.costs[idx] += delta
            stack.extend(tree.children[idx])


@dataclass
class RrtStarConfig(RrtConfig):
    """Configuration of the rrtstar kernel."""

    gamma: float = option(3.0, "Rewiring radius scale factor")
    star_samples: int = option(4000, "Sample budget for RRT*")


@registry.register
class RrtStarKernel(Kernel):
    """RRT* arm planning (rewiring raises the NN-search share)."""

    name = "09.rrtstar"
    stage = "planning"
    config_cls = RrtStarConfig
    description = "RRT* arm planning (collision + NN bound, rewiring)"

    def setup(self, config: RrtStarConfig) -> ArmPlanWorkload:
        return make_arm_workload(config.dof, config.map, config.seed)

    def run_roi(
        self,
        config: RrtStarConfig,
        state: ArmPlanWorkload,
        profiler: PhaseProfiler,
    ) -> SamplingPlanResult:
        planner = RRTStar(
            state.arm,
            state.workspace,
            epsilon=config.epsilon,
            goal_bias=config.bias,
            goal_threshold=config.radius,
            max_samples=config.star_samples,
            nn_strategy=config.nn_strategy,
            gamma=config.gamma,
            rng=np.random.default_rng(config.seed),
            profiler=profiler,
        )
        return planner.plan(state.start, state.goal)
