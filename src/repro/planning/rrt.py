"""Kernel 08.rrt — rapidly-exploring random trees (paper section V.8).

RRT plans for the arm in *dynamic* environments: no offline phase, the
whole tree is built online, so collision detection (up to 62% of time in
the paper) and nearest-neighbor search (up to 31%) both land on the
critical path.  The implementation profiles exactly those phases.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.envs.arm_maps import ArmWorkspace, default_arm
from repro.geometry.distance import path_length
from repro.geometry.kdtree import KDTree, LinearNN
from repro.harness.config import KernelConfig, option
from repro.harness.profiler import PhaseProfiler
from repro.harness.runner import Kernel, registry
from repro.planning.prm import distant_free_pair, select_workspace
from repro.robots.arm import PlanarArm


@dataclass
class SamplingPlanResult:
    """Outcome of a sampling-based planning run."""

    found: bool
    path: List[np.ndarray] = field(default_factory=list)
    cost: float = float("inf")
    samples_drawn: int = 0
    tree_size: int = 0

    def __bool__(self) -> bool:
        return self.found


class _Tree:
    """The planner's tree: configurations, parents, and path costs."""

    def __init__(self, dof: int, nn_strategy: str) -> None:
        if nn_strategy == "kdtree":
            self.index = KDTree(dof)
        elif nn_strategy == "linear":
            self.index = LinearNN(dof)
        else:
            raise ValueError("nn_strategy must be 'kdtree' or 'linear'")
        self.configs: List[np.ndarray] = []
        self.parents: List[int] = []
        self.costs: List[float] = []
        self.children: List[List[int]] = []

    def __len__(self) -> int:
        return len(self.configs)

    def add(self, q: np.ndarray, parent: int, cost: float) -> int:
        idx = len(self.configs)
        self.configs.append(q)
        self.parents.append(parent)
        self.costs.append(cost)
        self.children.append([])
        if parent >= 0:
            self.children[parent].append(idx)
        self.index.insert(q, idx)
        return idx

    def reparent(self, idx: int, new_parent: int) -> None:
        """Move a node under a new parent (RRT* rewiring)."""
        old = self.parents[idx]
        if old >= 0:
            self.children[old].remove(idx)
        self.parents[idx] = new_parent
        self.children[new_parent].append(idx)

    def path_to(self, idx: int) -> List[np.ndarray]:
        path = []
        while idx >= 0:
            path.append(self.configs[idx])
            idx = self.parents[idx]
        path.reverse()
        return path


class RRT:
    """Rapidly-exploring random tree in the arm's joint space."""

    def __init__(
        self,
        arm: PlanarArm,
        workspace: ArmWorkspace,
        epsilon: float = 0.5,
        goal_bias: float = 0.1,
        goal_threshold: float = 0.5,
        max_samples: int = 3000,
        edge_step: float = 0.15,
        nn_strategy: str = "kdtree",
        rng: Optional[np.random.Generator] = None,
        profiler: Optional[PhaseProfiler] = None,
    ) -> None:
        if epsilon <= 0:
            raise ValueError("epsilon (extension step) must be positive")
        if not 0.0 <= goal_bias <= 1.0:
            raise ValueError("goal_bias must be in [0, 1]")
        if nn_strategy not in ("kdtree", "linear"):
            raise ValueError("nn_strategy must be 'kdtree' or 'linear'")
        self.arm = arm
        self.workspace = workspace
        self.epsilon = float(epsilon)
        self.goal_bias = float(goal_bias)
        self.goal_threshold = float(goal_threshold)
        self.max_samples = int(max_samples)
        self.edge_step = float(edge_step)
        self.nn_strategy = nn_strategy
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.profiler = profiler if profiler is not None else PhaseProfiler()

    # -- shared helpers (also used by RRT*) --------------------------------------

    def _sample(self, goal: np.ndarray) -> np.ndarray:
        """Uniform sample with goal biasing."""
        prof = self.profiler
        with prof.phase("sampling"):
            prof.count("rrt_samples_drawn", 1)
            if self.rng.random() < self.goal_bias:
                return goal.copy()
            return self.arm.sample_configuration(self.rng)

    def _steer(self, from_q: np.ndarray, toward: np.ndarray) -> np.ndarray:
        """Move at most epsilon from ``from_q`` toward ``toward``."""
        with self.profiler.phase("extend"):
            delta = toward - from_q
            dist = float(np.linalg.norm(delta))
            if dist <= self.epsilon:
                return toward.copy()
            return from_q + delta * (self.epsilon / dist)

    def _edge_free(self, q0: np.ndarray, q1: np.ndarray) -> bool:
        """Collision check of the straight joint-space edge q0 -> q1."""
        prof = self.profiler
        with prof.phase("collision"):
            return not self.workspace.edge_collides(
                self.arm, q0, q1, step=self.edge_step, count=prof.count
            )

    def _nearest(self, tree: _Tree, q: np.ndarray) -> Tuple[int, float]:
        """Index of and distance to the tree node nearest ``q``."""
        prof = self.profiler
        with prof.phase("nn_search"):
            _, idx, dist = tree.index.nearest(q, count=prof.count)
        return idx, dist

    # -- planning ------------------------------------------------------------------

    def plan(
        self, start: np.ndarray, goal: np.ndarray
    ) -> SamplingPlanResult:
        """Grow a tree from ``start`` until it connects to ``goal``."""
        start = np.asarray(start, dtype=float)
        goal = np.asarray(goal, dtype=float)
        tree = _Tree(self.arm.dof, self.nn_strategy)
        tree.add(start, parent=-1, cost=0.0)
        samples = 0
        while samples < self.max_samples:
            samples += 1
            q_rand = self._sample(goal)
            near_idx, _ = self._nearest(tree, q_rand)
            q_new = self._steer(tree.configs[near_idx], q_rand)
            if not self._edge_free(tree.configs[near_idx], q_new):
                continue
            step = float(np.linalg.norm(q_new - tree.configs[near_idx]))
            new_idx = tree.add(
                q_new, parent=near_idx, cost=tree.costs[near_idx] + step
            )
            # Goal connection attempt.
            goal_dist = float(np.linalg.norm(q_new - goal))
            if goal_dist <= self.goal_threshold and self._edge_free(q_new, goal):
                goal_idx = tree.add(
                    goal, parent=new_idx, cost=tree.costs[new_idx] + goal_dist
                )
                path = tree.path_to(goal_idx)
                return SamplingPlanResult(
                    found=True,
                    path=path,
                    cost=path_length(np.vstack(path)),
                    samples_drawn=samples,
                    tree_size=len(tree),
                )
        return SamplingPlanResult(
            found=False, samples_drawn=samples, tree_size=len(tree)
        )


# -- kernel ---------------------------------------------------------------------------


@dataclass
class RrtConfig(KernelConfig):
    """Configuration of the rrt kernel (mirrors the paper's Fig. 20 CLI)."""

    dof: int = option(5, "Arm degrees of freedom")
    map: str = option("map-c", "Workspace: map-c (cluttered) or map-f (free)")
    epsilon: float = option(0.5, "Epsilon (minimum movement, rad)")
    bias: float = option(0.1, "Random number generation bias (goal bias)")
    samples: int = option(4000, "Maximum samples")
    radius: float = option(0.8, "Neighborhood distance (goal threshold)")
    nn_strategy: str = option("kdtree", "Nearest-neighbor index: kdtree|linear")


@dataclass
class ArmPlanWorkload:
    """Arm, workspace, and a start/goal configuration pair."""

    arm: PlanarArm
    workspace: ArmWorkspace
    start: np.ndarray
    goal: np.ndarray


def make_arm_workload(
    dof: int, map_name: str, seed: int
) -> ArmPlanWorkload:
    """Build the arm-planning workload shared by rrt/rrtstar/rrtpp."""
    workspace = select_workspace(map_name)
    arm = default_arm(dof=dof, size=workspace.size)
    rng = np.random.default_rng(seed)
    start, goal = distant_free_pair(arm, workspace, rng)
    return ArmPlanWorkload(arm=arm, workspace=workspace, start=start, goal=goal)


@registry.register
class RrtKernel(Kernel):
    """RRT arm planning (collision + nearest-neighbor bound)."""

    name = "08.rrt"
    stage = "planning"
    config_cls = RrtConfig
    description = "RRT arm planning (collision + NN bound)"

    def setup(self, config: RrtConfig) -> ArmPlanWorkload:
        return make_arm_workload(config.dof, config.map, config.seed)

    def run_roi(
        self, config: RrtConfig, state: ArmPlanWorkload, profiler: PhaseProfiler
    ) -> SamplingPlanResult:
        planner = RRT(
            state.arm,
            state.workspace,
            epsilon=config.epsilon,
            goal_bias=config.bias,
            goal_threshold=config.radius,
            max_samples=config.samples,
            nn_strategy=config.nn_strategy,
            rng=np.random.default_rng(config.seed),
            profiler=profiler,
        )
        return planner.plan(state.start, state.goal)
