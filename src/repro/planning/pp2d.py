"""Kernel 04.pp2d — 2D mobile-robot path planning (paper section V.4).

A car-like robot (the paper models a 4.8 m x 1.8 m self-driving car on a
snapshot of Boston) plans a collision-free route with A* over the city
grid.  Every candidate move collision-checks the full oriented footprint
against the occupancy grid — the phase the paper measures at >65% of
execution time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.envs.mapgen import city_like
from repro.geometry.collision import (
    footprint_points,
    oriented_footprint_collides,
    oriented_footprints_collide_batch,
)
from repro.geometry.grid2d import OccupancyGrid2D
from repro.harness.config import KernelConfig, option
from repro.harness.profiler import PhaseProfiler
from repro.harness.runner import Kernel, registry
from repro.search.astar import SearchResult, weighted_astar
from repro.search.grid_core import MOVES_2D_8, astar_grid_2d, pad_blocked_2d

_MOVES: Tuple[Tuple[int, int], ...] = MOVES_2D_8


class GridPlanningSpace2D:
    """A* search space over a 2D grid with an oriented-footprint robot.

    States are (row, col) cells; moves are 8-connected.  A move is valid
    when the robot footprint, oriented along the motion direction and
    placed at the destination cell center, clears all obstacles.
    """

    def __init__(
        self,
        grid: OccupancyGrid2D,
        goal: Tuple[int, int],
        robot_length: float = 4.8,
        robot_width: float = 1.8,
        profiler: Optional[PhaseProfiler] = None,
        footprint_resolution: Optional[float] = None,
        backend: str = "reference",
    ) -> None:
        if backend not in ("reference", "vectorized"):
            raise ValueError("backend must be 'reference' or 'vectorized'")
        self.grid = grid
        self.goal = goal
        self.profiler = profiler if profiler is not None else PhaseProfiler()
        res = (
            footprint_resolution
            if footprint_resolution is not None
            else grid.resolution
        )
        self.body_points = footprint_points(robot_length, robot_width, res)
        self.collision_checks = 0
        self.backend = backend

    def state_collides(self, row: int, col: int, theta: float) -> bool:
        """Footprint collision at a cell with a given heading."""
        x, y = self.grid.cell_to_world(row, col)
        self.collision_checks += 1
        with self.profiler.phase("collision"):
            return oriented_footprint_collides(
                self.grid, x, y, theta, self.body_points,
                count=self.profiler.count,
            )

    def successors(
        self, state: Tuple[int, int]
    ) -> Iterable[Tuple[Tuple[int, int], float]]:
        """8-connected moves whose destination footprint is clear."""
        if self.backend == "vectorized":
            yield from self._successors_vectorized(state)
            return
        row, col = state
        for dr, dc in _MOVES:
            nr, nc = row + dr, col + dc
            if not self.grid.in_bounds(nr, nc):
                continue
            theta = math.atan2(dr, dc)
            if self.state_collides(nr, nc, theta):
                continue
            step = math.hypot(dr, dc) * self.grid.resolution
            yield (nr, nc), step

    def _successors_vectorized(
        self, state: Tuple[int, int]
    ) -> Iterable[Tuple[Tuple[int, int], float]]:
        """One batched footprint check for all in-bounds moves at once."""
        row, col = state
        moves = [
            (row + dr, col + dc, math.atan2(dr, dc), math.hypot(dr, dc))
            for dr, dc in _MOVES
            if self.grid.in_bounds(row + dr, col + dc)
        ]
        if not moves:
            return
        res = self.grid.resolution
        ox, oy = self.grid.origin
        nrs = np.array([m[0] for m in moves])
        ncs = np.array([m[1] for m in moves])
        thetas = np.array([m[2] for m in moves])
        self.collision_checks += len(moves)
        with self.profiler.phase("collision"):
            collides = oriented_footprints_collide_batch(
                self.grid,
                ox + (ncs + 0.5) * res,
                oy + (nrs + 0.5) * res,
                thetas,
                self.body_points,
                count=self.profiler.count,
            )
        for (nr, nc, _, length), hit in zip(moves, collides):
            if not hit:
                yield (nr, nc), length * res

    def heuristic(self, state: Tuple[int, int]) -> float:
        """Euclidean distance to the goal, in meters (admissible)."""
        dr = state[0] - self.goal[0]
        dc = state[1] - self.goal[1]
        return math.hypot(dr, dc) * self.grid.resolution

    def is_goal(self, state: Tuple[int, int]) -> bool:
        """Whether the state is the goal cell."""
        return state == self.goal


def plan_2d(
    grid: OccupancyGrid2D,
    start: Tuple[int, int],
    goal: Tuple[int, int],
    robot_length: float = 4.8,
    robot_width: float = 1.8,
    epsilon: float = 1.0,
    profiler: Optional[PhaseProfiler] = None,
    max_expansions: Optional[int] = None,
    backend: str = "reference",
) -> SearchResult:
    """Plan a collision-free 2D route; thin wrapper over Weighted A*.

    ``backend="array"`` precomputes one full-grid footprint-collision
    mask per heading (a move's heading is fixed by its direction, so
    there are exactly 8) and runs the flat-array search core over them
    — identical successor sets, costs, paths, and search counters; the
    per-move scalar footprint test becomes a flat-array read.
    """
    if backend not in ("reference", "vectorized", "array"):
        raise ValueError(
            "backend must be 'reference', 'vectorized', or 'array'"
        )
    if backend == "array":
        return _plan_2d_array(
            grid, start, goal, robot_length, robot_width, epsilon=epsilon,
            profiler=profiler, max_expansions=max_expansions,
        )
    space = GridPlanningSpace2D(
        grid, goal, robot_length, robot_width, profiler=profiler,
        backend=backend,
    )
    return weighted_astar(
        space, start, epsilon=epsilon, profiler=space.profiler,
        max_expansions=max_expansions,
    )


def heading_blocked_masks(
    grid: OccupancyGrid2D,
    body_points: np.ndarray,
    profiler: Optional[PhaseProfiler] = None,
) -> List[np.ndarray]:
    """Per-heading destination-invalid masks for the canonical 8 moves.

    ``masks[i][r, c]`` is True when the robot footprint, oriented along
    move ``_MOVES[i]`` and placed at the center of cell (r, c), hits an
    obstacle — the same verdict ``GridPlanningSpace2D.state_collides``
    computes per candidate move, evaluated for every cell of the grid
    in one batched call per heading.  ``collision_cell_checks`` counts
    the full precompute (rows x cols x 8 poses), so it is *not*
    comparable with the reference backend's on-demand count; the search
    counters (expansions, pushes, pops) are.
    """
    prof = profiler if profiler is not None else PhaseProfiler()
    res = grid.resolution
    ox, oy = grid.origin
    rr, cc = np.meshgrid(
        np.arange(grid.rows), np.arange(grid.cols), indexing="ij"
    )
    xs = ox + (cc.ravel() + 0.5) * res
    ys = oy + (rr.ravel() + 0.5) * res
    masks = []
    with prof.phase("collision"):
        for dr, dc in _MOVES:
            theta = math.atan2(dr, dc)
            collides = oriented_footprints_collide_batch(
                grid, xs, ys, np.full(xs.shape, theta), body_points,
                count=prof.count,
            )
            masks.append(collides.reshape(grid.rows, grid.cols))
    return masks


def _plan_2d_array(
    grid: OccupancyGrid2D,
    start: Tuple[int, int],
    goal: Tuple[int, int],
    robot_length: float = 4.8,
    robot_width: float = 1.8,
    epsilon: float = 1.0,
    profiler: Optional[PhaseProfiler] = None,
    max_expansions: Optional[int] = None,
) -> SearchResult:
    """pp2d on the flat-array core with precomputed heading masks."""
    prof = profiler if profiler is not None else PhaseProfiler()
    body_points = footprint_points(robot_length, robot_width, grid.resolution)
    masks = heading_blocked_masks(grid, body_points, profiler=prof)
    blocked_by_move = [pad_blocked_2d(mask) for mask in masks]
    with prof.phase("search"):
        flat, path = astar_grid_2d(
            grid.cells, start, goal, resolution=grid.resolution,
            epsilon=epsilon, max_expansions=max_expansions,
            blocked_by_move=blocked_by_move,
        )
    prof.count("astar_expansions", flat.expansions)
    prof.count("search_pushes", flat.pushes)
    prof.count("search_pops", flat.pops)
    return SearchResult(
        found=flat.found, path=path, cost=flat.cost,
        expansions=flat.expansions, generated=flat.generated,
    )


def far_apart_free_cells(
    grid: OccupancyGrid2D,
    rng: np.random.Generator,
    clearance_points: Optional[np.ndarray] = None,
    attempts: int = 200,
) -> Tuple[Tuple[int, int], Tuple[int, int]]:
    """Pick start/goal free cells near opposite map corners.

    The paper chooses start/goal "such that the car traverses a long
    distance, observing different obstacle patterns"; this helper walks
    candidate cells outward from opposite corners until both are clear
    (footprint-clear when ``clearance_points`` is given).
    """

    def clear(cell: Tuple[int, int]) -> bool:
        if grid.cells[cell]:
            return False
        if clearance_points is None:
            return True
        x, y = grid.cell_to_world(*cell)
        return not oriented_footprint_collides(grid, x, y, 0.0, clearance_points)

    def find_near(target_r: int, target_c: int) -> Tuple[int, int]:
        free = np.argwhere(~grid.cells)
        order = np.argsort(
            np.abs(free[:, 0] - target_r) + np.abs(free[:, 1] - target_c)
        )
        for idx in order[:attempts]:
            cell = (int(free[idx][0]), int(free[idx][1]))
            if clear(cell):
                return cell
        raise RuntimeError("no clear cell found near the requested corner")

    start = find_near(int(grid.rows * 0.08), int(grid.cols * 0.08))
    goal = find_near(int(grid.rows * 0.92), int(grid.cols * 0.92))
    return start, goal


@dataclass
class Pp2dConfig(KernelConfig):
    """Configuration of the pp2d kernel."""

    rows: int = option(192, "Map height in cells")
    cols: int = option(192, "Map width in cells")
    resolution: float = option(1.0, "Cell size (m)")
    car_length: float = option(4.8, "Robot length (m)")
    car_width: float = option(1.8, "Robot width (m)")
    epsilon: float = option(1.0, "Weighted A* heuristic inflation")
    map_file: Optional[str] = option(
        None,
        "MovingAI .map file (e.g. Boston_1_1024.map); overrides the "
        "procedural city",
    )


@dataclass
class Pp2dWorkload:
    """Map plus endpoints for one planning query."""

    grid: OccupancyGrid2D
    start: Tuple[int, int]
    goal: Tuple[int, int]


@registry.register
class Pp2dKernel(Kernel):
    """2D path planning across the city-like map."""

    name = "04.pp2d"
    stage = "planning"
    config_cls = Pp2dConfig
    description = "A* city navigation (collision-detection bound)"

    def setup(self, config: Pp2dConfig) -> Pp2dWorkload:
        if config.map_file:
            from repro.envs.movingai import load_movingai

            grid = load_movingai(config.map_file, resolution=config.resolution)
        else:
            grid = city_like(
                rows=config.rows,
                cols=config.cols,
                resolution=config.resolution,
                seed=config.seed,
            )
        rng = np.random.default_rng(config.seed)
        clearance = footprint_points(
            config.car_length, config.car_length, grid.resolution
        )
        start, goal = far_apart_free_cells(grid, rng, clearance)
        return Pp2dWorkload(grid=grid, start=start, goal=goal)

    def run_roi(
        self, config: Pp2dConfig, state: Pp2dWorkload, profiler: PhaseProfiler
    ) -> SearchResult:
        return plan_2d(
            state.grid,
            state.start,
            state.goal,
            robot_length=config.car_length,
            robot_width=config.car_width,
            epsilon=config.epsilon,
            profiler=profiler,
            backend=config.backend,
        )
