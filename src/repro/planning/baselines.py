"""Educational-library baseline planner for the Fig. 21 comparison.

Section VII of the paper compares its optimized pp2d against
PythonRobotics' ``a_star.py`` and CppRobotics' ``a_star.cpp`` and
attributes their slowness to (i) interpreter-heavy, per-element code and
(ii) needless copying of large data structures.  :class:`EducationalAStar`
reproduces those pathologies faithfully *inside* Python so the comparison
is runtime-for-runtime:

* the obstacle map is rebuilt on **every** planning call, cell by cell,
  by scanning the full obstacle point list per cell (PythonRobotics'
  ``calc_obstacle_map``);
* the open set is a dict whose minimum is found with a linear scan per
  expansion (PythonRobotics' ``min(open_set, key=...)``);
* the obstacle map is deep-copied before the search (CppRobotics'
  pass-by-value).

The optimized counterpart is :func:`repro.planning.pp2d.plan_2d`.
"""

from __future__ import annotations

import copy
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.geometry.grid2d import OccupancyGrid2D


@dataclass
class EducationalPlanResult:
    """Outcome of an educational-baseline planning call."""

    found: bool
    path_x: List[float]
    path_y: List[float]
    expansions: int


class _Node:
    """Per-cell search node, allocated per expansion (as in P-Rob)."""

    def __init__(self, x: int, y: int, cost: float, parent: int) -> None:
        self.x = x
        self.y = y
        self.cost = cost
        self.parent = parent


def grid_to_obstacle_points(grid: OccupancyGrid2D) -> Tuple[List[float], List[float]]:
    """Flatten a grid's occupied cells into the point lists P-Rob consumes."""
    rows, cols = np.nonzero(grid.cells)
    xs = (cols + 0.5) * grid.resolution + grid.origin[0]
    ys = (rows + 0.5) * grid.resolution + grid.origin[1]
    return xs.tolist(), ys.tolist()


class EducationalAStar:
    """A deliberately naive A* in the style of PythonRobotics."""

    _MOTION = [
        (1, 0, 1.0), (0, 1, 1.0), (-1, 0, 1.0), (0, -1, 1.0),
        (-1, -1, math.sqrt(2)), (-1, 1, math.sqrt(2)),
        (1, -1, math.sqrt(2)), (1, 1, math.sqrt(2)),
    ]

    def __init__(
        self,
        obstacle_x: List[float],
        obstacle_y: List[float],
        resolution: float,
        robot_radius: float,
    ) -> None:
        if len(obstacle_x) != len(obstacle_y):
            raise ValueError("obstacle coordinate lists must match")
        self.obstacle_x = list(obstacle_x)
        self.obstacle_y = list(obstacle_y)
        self.resolution = float(resolution)
        self.robot_radius = float(robot_radius)

    # -- the P-Rob-style obstacle map, rebuilt per call ------------------------

    def _calc_obstacle_map(self) -> Tuple[List[List[bool]], float, float, int, int]:
        min_x = min(self.obstacle_x)
        min_y = min(self.obstacle_y)
        max_x = max(self.obstacle_x)
        max_y = max(self.obstacle_y)
        width = int(round((max_x - min_x) / self.resolution)) + 1
        height = int(round((max_y - min_y) / self.resolution)) + 1
        obstacle_map = [[False for _ in range(height)] for _ in range(width)]
        # The faithful O(cells * obstacle_points) double loop.
        for ix in range(width):
            x = ix * self.resolution + min_x
            for iy in range(height):
                y = iy * self.resolution + min_y
                for ox, oy in zip(self.obstacle_x, self.obstacle_y):
                    if math.hypot(ox - x, oy - y) <= self.robot_radius:
                        obstacle_map[ix][iy] = True
                        break
        return obstacle_map, min_x, min_y, width, height

    def plan(
        self, sx: float, sy: float, gx: float, gy: float
    ) -> EducationalPlanResult:
        """Plan from (sx, sy) to (gx, gy) in world coordinates."""
        obstacle_map, min_x, min_y, width, height = self._calc_obstacle_map()
        # C-Rob's pass-by-value: the map is copied into the search.
        obstacle_map = copy.deepcopy(obstacle_map)

        def to_index(x: float, minimum: float) -> int:
            return int(round((x - minimum) / self.resolution))

        start = _Node(to_index(sx, min_x), to_index(sy, min_y), 0.0, -1)
        goal = _Node(to_index(gx, min_x), to_index(gy, min_y), 0.0, -1)
        open_set: Dict[int, _Node] = {}
        closed_set: Dict[int, _Node] = {}
        open_set[start.y * width + start.x] = start
        expansions = 0

        while open_set:
            # The linear-scan argmin over the entire open set.
            current_id = min(
                open_set,
                key=lambda oid: open_set[oid].cost
                + math.hypot(
                    goal.x - open_set[oid].x, goal.y - open_set[oid].y
                )
                * self.resolution,
            )
            current = open_set.pop(current_id)
            expansions += 1
            if current.x == goal.x and current.y == goal.y:
                goal.parent = current.parent
                goal.cost = current.cost
                closed_set[current_id] = current
                path_x, path_y = self._final_path(
                    goal, closed_set, width, min_x, min_y
                )
                return EducationalPlanResult(
                    found=True,
                    path_x=path_x,
                    path_y=path_y,
                    expansions=expansions,
                )
            closed_set[current_id] = current
            for dx, dy, move_cost in self._MOTION:
                nx, ny = current.x + dx, current.y + dy
                node_id = ny * width + nx
                if not (0 <= nx < width and 0 <= ny < height):
                    continue
                if obstacle_map[nx][ny]:
                    continue
                if node_id in closed_set:
                    continue
                node = _Node(
                    nx, ny, current.cost + move_cost * self.resolution,
                    current_id,
                )
                if node_id not in open_set or open_set[node_id].cost > node.cost:
                    open_set[node_id] = node
        return EducationalPlanResult(
            found=False, path_x=[], path_y=[], expansions=expansions
        )

    def _final_path(
        self,
        goal: _Node,
        closed_set: Dict[int, _Node],
        width: int,
        min_x: float,
        min_y: float,
    ) -> Tuple[List[float], List[float]]:
        path_x = [goal.x * self.resolution + min_x]
        path_y = [goal.y * self.resolution + min_y]
        parent = goal.parent
        while parent != -1:
            node = closed_set[parent]
            path_x.append(node.x * self.resolution + min_x)
            path_y.append(node.y * self.resolution + min_y)
            parent = node.parent
        path_x.reverse()
        path_y.reverse()
        return path_x, path_y
