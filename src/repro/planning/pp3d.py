"""Kernel 05.pp3d — 3D UAV path planning (paper section V.5).

Identical in structure to pp2d but with the z dimension: a small drone
(one voxel, per the paper's assumption) plans through an outdoor campus
volume with 26-connected A*.  The paper finds collision detection *and*
the irregular, hard-to-parallelize graph search are the bottlenecks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.envs.mapgen import campus_like_3d
from repro.geometry.grid3d import OccupancyGrid3D
from repro.harness.config import KernelConfig, option
from repro.harness.profiler import PhaseProfiler
from repro.harness.runner import Kernel, registry
from repro.search.astar import SearchResult, weighted_astar
from repro.search.grid_core import MOVES_3D_26, astar_grid_3d

_MOVES_3D: Tuple[Tuple[int, int, int], ...] = MOVES_3D_26
_MOVES_3D_ARR = np.array(_MOVES_3D)
_MOVE_LENGTHS_3D = np.sqrt((_MOVES_3D_ARR**2).sum(axis=1))


class GridPlanningSpace3D:
    """26-connected A* space over a voxel grid for a one-voxel UAV."""

    def __init__(
        self,
        grid: OccupancyGrid3D,
        goal: Tuple[int, int, int],
        profiler: Optional[PhaseProfiler] = None,
        backend: str = "reference",
    ) -> None:
        if backend not in ("reference", "vectorized"):
            raise ValueError("backend must be 'reference' or 'vectorized'")
        self.grid = grid
        self.goal = goal
        self.profiler = profiler if profiler is not None else PhaseProfiler()
        self.backend = backend

    def successors(
        self, state: Tuple[int, int, int]
    ) -> Iterable[Tuple[Tuple[int, int, int], float]]:
        """26-connected moves into free voxels."""
        z, y, x = state
        grid = self.grid
        prof = self.profiler
        # One collision phase per expansion: check all 26 neighbors.
        with prof.phase("collision"):
            prof.count("collision_cell_checks", len(_MOVES_3D))
            if self.backend == "vectorized":
                occupied = grid.occupied_batch(
                    z + _MOVES_3D_ARR[:, 0],
                    y + _MOVES_3D_ARR[:, 1],
                    x + _MOVES_3D_ARR[:, 2],
                )
                valid = [
                    (move, length)
                    for move, length, occ in zip(
                        _MOVES_3D, _MOVE_LENGTHS_3D, occupied
                    )
                    if not occ
                ]
            else:
                valid = [
                    ((dz, dy, dx), math.sqrt(dz * dz + dy * dy + dx * dx))
                    for dz, dy, dx in _MOVES_3D
                    if not grid.is_occupied(z + dz, y + dy, x + dx)
                ]
        for (dz, dy, dx), length in valid:
            yield (z + dz, y + dy, x + dx), float(length) * grid.resolution

    def heuristic(self, state: Tuple[int, int, int]) -> float:
        """Euclidean distance to the goal voxel, in meters."""
        dz = state[0] - self.goal[0]
        dy = state[1] - self.goal[1]
        dx = state[2] - self.goal[2]
        return math.sqrt(dz * dz + dy * dy + dx * dx) * self.grid.resolution

    def is_goal(self, state: Tuple[int, int, int]) -> bool:
        """Whether the state is the goal voxel."""
        return state == self.goal


def plan_3d(
    grid: OccupancyGrid3D,
    start: Tuple[int, int, int],
    goal: Tuple[int, int, int],
    epsilon: float = 1.0,
    profiler: Optional[PhaseProfiler] = None,
    max_expansions: Optional[int] = None,
    backend: str = "reference",
) -> SearchResult:
    """Plan a 3D route; thin wrapper over Weighted A*.

    ``backend="array"`` runs the flat-array search core
    (:func:`repro.search.grid_core.astar_grid_3d`) instead of the
    heapq/dict reference — same algorithm, costs, paths, and operation
    counters; preallocated flat storage instead of per-node objects.
    """
    if backend not in ("reference", "vectorized", "array"):
        raise ValueError(
            "backend must be 'reference', 'vectorized', or 'array'"
        )
    if backend == "array":
        return _plan_3d_array(
            grid, start, goal, epsilon=epsilon, profiler=profiler,
            max_expansions=max_expansions,
        )
    space = GridPlanningSpace3D(grid, goal, profiler=profiler, backend=backend)
    return weighted_astar(
        space, start, epsilon=epsilon, profiler=space.profiler,
        max_expansions=max_expansions,
    )


def _plan_3d_array(
    grid: OccupancyGrid3D,
    start: Tuple[int, int, int],
    goal: Tuple[int, int, int],
    epsilon: float = 1.0,
    profiler: Optional[PhaseProfiler] = None,
    max_expansions: Optional[int] = None,
) -> SearchResult:
    """pp3d on the flat-array core: collision checks fused into search.

    Reports the same operation counters as the reference backend
    (``astar_expansions``, ``search_pushes``, ``search_pops``, and
    ``collision_cell_checks`` at 26 per expansion); there is no separate
    ``collision`` phase because occupancy lookups are single flat-array
    reads inside the search loop.
    """
    prof = profiler if profiler is not None else PhaseProfiler()
    with prof.phase("search"):
        flat, path = astar_grid_3d(
            grid.cells, start, goal, resolution=grid.resolution,
            epsilon=epsilon, max_expansions=max_expansions,
        )
    prof.count("astar_expansions", flat.expansions)
    prof.count("search_pushes", flat.pushes)
    prof.count("search_pops", flat.pops)
    prof.count("collision_cell_checks", len(_MOVES_3D) * flat.expansions)
    return SearchResult(
        found=flat.found, path=path, cost=flat.cost,
        expansions=flat.expansions, generated=flat.generated,
    )


def far_apart_free_voxels(
    grid: OccupancyGrid3D,
) -> Tuple[Tuple[int, int, int], Tuple[int, int, int]]:
    """Free voxels near opposite corners at low altitude."""
    free = np.argwhere(~grid.cells)
    nz, ny, nx = grid.shape

    def find_near(tz: int, ty: int, tx: int) -> Tuple[int, int, int]:
        target = np.array([tz, ty, tx])
        idx = np.argmin(np.abs(free - target).sum(axis=1))
        return tuple(int(v) for v in free[idx])

    start = find_near(1, int(ny * 0.08), int(nx * 0.08))
    goal = find_near(1, int(ny * 0.92), int(nx * 0.92))
    return start, goal


@dataclass
class Pp3dConfig(KernelConfig):
    """Configuration of the pp3d kernel."""

    nx: int = option(96, "Map x extent in voxels")
    ny: int = option(96, "Map y extent in voxels")
    nz: int = option(24, "Map z extent in voxels")
    resolution: float = option(1.0, "Voxel size (m)")
    epsilon: float = option(1.0, "Weighted A* heuristic inflation")


@dataclass
class Pp3dWorkload:
    """Volume plus endpoints for one planning query."""

    grid: OccupancyGrid3D
    start: Tuple[int, int, int]
    goal: Tuple[int, int, int]


@registry.register
class Pp3dKernel(Kernel):
    """3D UAV path planning across the campus-like volume."""

    name = "05.pp3d"
    stage = "planning"
    config_cls = Pp3dConfig
    description = "3D A* drone navigation (collision + search bound)"

    def setup(self, config: Pp3dConfig) -> Pp3dWorkload:
        grid = campus_like_3d(
            nx=config.nx,
            ny=config.ny,
            nz=config.nz,
            resolution=config.resolution,
            seed=config.seed,
        )
        start, goal = far_apart_free_voxels(grid)
        return Pp3dWorkload(grid=grid, start=start, goal=goal)

    def run_roi(
        self, config: Pp3dConfig, state: Pp3dWorkload, profiler: PhaseProfiler
    ) -> SearchResult:
        return plan_3d(
            state.grid,
            state.start,
            state.goal,
            epsilon=config.epsilon,
            profiler=profiler,
            backend=config.backend,
        )
