"""RRT-Connect — a bidirectional extension of the rrt kernel.

Not one of the paper's sixteen kernels, but the standard algorithmic
upgrade its RRT discussion points toward (Kuffner & LaValle 2000): two
trees grow toward each other, one from the start and one from the goal,
with a greedy *connect* step that extends repeatedly toward the newest
sample.  Included as an ablation — the accompanying benchmark shows how
much of RRT's critical-path cost the bidirectional strategy removes on
the same Map-C workloads, under identical collision/NN instrumentation.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.geometry.distance import path_length
from repro.harness.config import option
from repro.harness.profiler import PhaseProfiler
from repro.harness.runner import Kernel, registry
from repro.planning.rrt import (
    RRT,
    ArmPlanWorkload,
    RrtConfig,
    SamplingPlanResult,
    _Tree,
    make_arm_workload,
)


class RRTConnect(RRT):
    """Bidirectional RRT with the greedy connect heuristic."""

    def plan(
        self, start: np.ndarray, goal: np.ndarray
    ) -> SamplingPlanResult:
        start = np.asarray(start, dtype=float)
        goal = np.asarray(goal, dtype=float)
        tree_a = _Tree(self.arm.dof, self.nn_strategy)
        tree_b = _Tree(self.arm.dof, self.nn_strategy)
        tree_a.add(start, parent=-1, cost=0.0)
        tree_b.add(goal, parent=-1, cost=0.0)
        a_is_start = True
        samples = 0
        while samples < self.max_samples:
            samples += 1
            q_rand = self._sample_uniform()
            new_idx = self._extend(tree_a, q_rand)
            if new_idx is not None:
                q_new = tree_a.configs[new_idx]
                reached = self._connect(tree_b, q_new)
                if reached is not None:
                    path = self._join(
                        tree_a, new_idx, tree_b, reached, a_is_start
                    )
                    return SamplingPlanResult(
                        found=True,
                        path=path,
                        cost=path_length(np.vstack(path)),
                        samples_drawn=samples,
                        tree_size=len(tree_a) + len(tree_b),
                    )
            tree_a, tree_b = tree_b, tree_a
            a_is_start = not a_is_start
        return SamplingPlanResult(
            found=False,
            samples_drawn=samples,
            tree_size=len(tree_a) + len(tree_b),
        )

    def _sample_uniform(self) -> np.ndarray:
        """Uniform sample (connect replaces goal biasing)."""
        prof = self.profiler
        with prof.phase("sampling"):
            prof.count("rrt_samples_drawn", 1)
            return self.arm.sample_configuration(self.rng)

    def _extend(self, tree: _Tree, q_target: np.ndarray) -> Optional[int]:
        """One epsilon step of ``tree`` toward ``q_target``."""
        near_idx, _ = self._nearest(tree, q_target)
        q_new = self._steer(tree.configs[near_idx], q_target)
        if not self._edge_free(tree.configs[near_idx], q_new):
            return None
        step = float(np.linalg.norm(q_new - tree.configs[near_idx]))
        return tree.add(q_new, near_idx, tree.costs[near_idx] + step)

    def _connect(self, tree: _Tree, q_target: np.ndarray) -> Optional[int]:
        """Greedily extend ``tree`` toward ``q_target`` until blocked.

        Returns the index of the node that reached ``q_target`` (within
        the goal threshold), or ``None`` if an obstacle stopped the run.
        """
        while True:
            new_idx = self._extend(tree, q_target)
            if new_idx is None:
                return None
            dist = float(np.linalg.norm(tree.configs[new_idx] - q_target))
            if dist <= 1e-9:
                return new_idx
            if dist <= self.goal_threshold and self._edge_free(
                tree.configs[new_idx], q_target
            ):
                return tree.add(
                    q_target.copy(), new_idx, tree.costs[new_idx] + dist
                )

    @staticmethod
    def _join(
        tree_a: _Tree,
        a_idx: int,
        tree_b: _Tree,
        b_idx: int,
        a_is_start: bool,
    ) -> List[np.ndarray]:
        """Stitch the two half-paths into one start-to-goal path."""
        half_a = tree_a.path_to(a_idx)  # root(a) .. meeting point
        half_b = tree_b.path_to(b_idx)  # root(b) .. meeting point
        if a_is_start:
            return half_a + half_b[::-1][1:]
        return half_b + half_a[::-1][1:]


class RrtConnectConfig(RrtConfig):
    """Configuration of the rrtconnect extension kernel."""


@registry.register
class RrtConnectKernel(Kernel):
    """Bidirectional RRT-Connect (extension; ablation vs 08.rrt)."""

    name = "17.rrtconnect"
    stage = "planning"
    config_cls = RrtConnectConfig
    description = "RRT-Connect bidirectional planning (extension kernel)"

    def setup(self, config: RrtConnectConfig) -> ArmPlanWorkload:
        return make_arm_workload(config.dof, config.map, config.seed)

    def run_roi(
        self,
        config: RrtConnectConfig,
        state: ArmPlanWorkload,
        profiler: PhaseProfiler,
    ) -> SamplingPlanResult:
        planner = RRTConnect(
            state.arm,
            state.workspace,
            epsilon=config.epsilon,
            goal_bias=config.bias,
            goal_threshold=config.radius,
            max_samples=config.samples,
            nn_strategy=config.nn_strategy,
            rng=np.random.default_rng(config.seed),
            profiler=profiler,
        )
        return planner.plan(state.start, state.goal)
