"""Kernel 06.movtar — catching a moving target (paper section V.6).

The robot pursues a target whose trajectory is known, over a 2D costmap
where every location has a traversal cost.  Planning happens in 3D —
(row, col, time) — with Weighted A*; the heuristic is precomputed with
*backward Dijkstra* over the costmap from the target's future positions,
making it environment-aware (it accounts for obstacles and cost terrain).
The paper reports the kernel's bottleneck is input-dependent: in small
environments heuristic precomputation reaches ~62% of time, in large ones
search dominates like pp3d.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.envs.costmap import CostField, synthetic_costmap, target_trajectory
from repro.harness.config import KernelConfig, option
from repro.harness.profiler import PhaseProfiler
from repro.harness.runner import Kernel, registry
from repro.search.astar import SearchResult, weighted_astar
from repro.search.dijkstra import backward_dijkstra_grid

_MOVES: Tuple[Tuple[int, int, float], ...] = (
    (-1, 0, 1.0), (1, 0, 1.0), (0, -1, 1.0), (0, 1, 1.0),
    (-1, -1, math.sqrt(2)), (-1, 1, math.sqrt(2)),
    (1, -1, math.sqrt(2)), (1, 1, math.sqrt(2)),
    (0, 0, 1.0),  # waiting in place is allowed (and costs a step)
)

State = Tuple[int, int, int]  # (row, col, time)


class MovingTargetSpace:
    """(row, col, time) search space over a cost field.

    The goal condition is interception: being at the target's cell at the
    target's own timestep.  Edge cost is the step length times the
    destination cell's location cost.  The heuristic table must already be
    inflated-ready (plain cost-to-go; Weighted A* applies epsilon).
    """

    def __init__(
        self,
        field: CostField,
        trajectory: np.ndarray,
        heuristic_table: np.ndarray,
        profiler: Optional[PhaseProfiler] = None,
    ) -> None:
        self.field = field
        self.trajectory = trajectory
        self.horizon = len(trajectory)
        self.h_table = heuristic_table
        self.profiler = profiler if profiler is not None else PhaseProfiler()

    def successors(self, state: State) -> Iterable[Tuple[State, float]]:
        """Moves (including waiting) one timestep forward."""
        r, c, t = state
        if t + 1 >= self.horizon:
            return
        field = self.field
        for dr, dc, step in _MOVES:
            nr, nc = r + dr, c + dc
            if not field.is_free(nr, nc):
                continue
            yield (nr, nc, t + 1), step * float(field.cost[nr, nc])

    def heuristic(self, state: State) -> float:
        """Precomputed backward-Dijkstra cost-to-go (time-independent)."""
        return float(self.h_table[state[0], state[1]])

    def is_goal(self, state: State) -> bool:
        """Interception: at the target's cell at the target's time."""
        r, c, t = state
        tr, tc = self.trajectory[min(t, self.horizon - 1)]
        return r == int(tr) and c == int(tc)


class MovingTargetPlanner:
    """Two-phase movtar planner: heuristic precompute, then WA* search."""

    def __init__(
        self,
        field: CostField,
        trajectory: np.ndarray,
        epsilon: float = 2.0,
        profiler: Optional[PhaseProfiler] = None,
        backend: str = "reference",
    ) -> None:
        if epsilon < 1.0:
            raise ValueError("epsilon must be >= 1.0")
        self.field = field
        self.trajectory = np.asarray(trajectory, dtype=int)
        self.epsilon = float(epsilon)
        self.profiler = profiler if profiler is not None else PhaseProfiler()
        # 'reference' keeps the scalar heapq sweep for the precompute;
        # any other backend ('vectorized', 'array') runs the bucketed
        # batch engine, falling back automatically if unquantizable.
        self.dijkstra_backend = "reference" if backend == "reference" else "auto"
        self._h_table: Optional[np.ndarray] = None

    def precompute_heuristic(self) -> np.ndarray:
        """Backward Dijkstra from every cell the target will visit.

        Seeding all future target cells keeps the heuristic a lower bound
        on the cost to *any* interception point.
        """
        with self.profiler.phase("heuristic_precompute"):
            goals = [
                (int(r), int(c))
                for r, c in {(int(r), int(c)) for r, c in self.trajectory}
            ]
            self._h_table = backward_dijkstra_grid(
                self.field.cost, goals, self.field.obstacles,
                backend=self.dijkstra_backend,
            )
            self.profiler.count(
                "dijkstra_cells", int(np.isfinite(self._h_table).sum())
            )
        return self._h_table

    def plan(self, start: Tuple[int, int]) -> SearchResult:
        """Plan an interception path from ``start`` at time 0."""
        if self._h_table is None:
            self.precompute_heuristic()
        space = MovingTargetSpace(
            self.field, self.trajectory, self._h_table, self.profiler
        )
        return weighted_astar(
            space,
            (int(start[0]), int(start[1]), 0),
            epsilon=self.epsilon,
            profiler=self.profiler,
        )


def free_start_far_from(
    field: CostField, cell: Tuple[int, int], rng: np.random.Generator
) -> Tuple[int, int]:
    """A free cell far (Manhattan) from ``cell`` — the pursuit start."""
    free = np.argwhere(~field.obstacles)
    dists = np.abs(free - np.asarray(cell)).sum(axis=1)
    candidates = free[dists >= np.quantile(dists, 0.8)]
    r, c = candidates[int(rng.integers(len(candidates)))]
    return int(r), int(c)


@dataclass
class MovtarConfig(KernelConfig):
    """Configuration of the movtar kernel."""

    rows: int = option(96, "Environment height in cells")
    cols: int = option(96, "Environment width in cells")
    horizon: int = option(256, "Target trajectory length (timesteps)")
    epsilon: float = option(2.0, "Weighted A* heuristic inflation")
    bumps: int = option(6, "Number of cost-terrain bumps")


@dataclass
class MovtarWorkload:
    """Cost field, target trajectory, and pursuit start."""

    field: CostField
    trajectory: np.ndarray
    start: Tuple[int, int]


@registry.register
class MovingTargetKernel(Kernel):
    """Moving-target pursuit over a synthetic costmap."""

    name = "06.movtar"
    stage = "planning"
    config_cls = MovtarConfig
    description = "Moving-target WA* with backward-Dijkstra heuristic"

    def setup(self, config: MovtarConfig) -> MovtarWorkload:
        field = synthetic_costmap(
            rows=config.rows,
            cols=config.cols,
            n_bumps=config.bumps,
            seed=config.seed,
        )
        trajectory = target_trajectory(field, config.horizon, seed=config.seed)
        rng = np.random.default_rng(config.seed + 7)
        start = free_start_far_from(field, tuple(trajectory[0]), rng)
        return MovtarWorkload(field=field, trajectory=trajectory, start=start)

    def run_roi(
        self, config: MovtarConfig, state: MovtarWorkload, profiler: PhaseProfiler
    ) -> SearchResult:
        planner = MovingTargetPlanner(
            state.field,
            state.trajectory,
            epsilon=config.epsilon,
            profiler=profiler,
            backend=config.backend,
        )
        planner.precompute_heuristic()
        return planner.plan(state.start)
