"""Performance-first grid A* (the suite's "real-time" implementation).

This is the optimized contestant in the Fig. 21 library comparison — the
Python equivalent of RTRBench's tuned C++ pp2d.  Every implementation
choice targets speed the way the paper's C++ does:

* the robot footprint is handled by inflating the grid **once** (numpy
  dilation) instead of per-expansion footprint checks;
* the map is a flat numpy array indexed by integers — no per-node objects,
  no copies (the exact opposite of the educational baseline's
  pass-by-value maps);
* the open list is a binary heap of ``(f, index)`` tuples with lazy
  stale-entry skipping; g-values and parents live in preallocated arrays.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.geometry.grid2d import OccupancyGrid2D

_SQRT2 = math.sqrt(2.0)


@dataclass
class FastPlanResult:
    """Outcome of a fast grid A* call."""

    found: bool
    path: List[Tuple[int, int]]
    cost: float
    expansions: int


def fast_grid_astar(
    grid: OccupancyGrid2D,
    start: Tuple[int, int],
    goal: Tuple[int, int],
    robot_radius: float = 0.0,
) -> FastPlanResult:
    """8-connected A* over an (optionally inflated) occupancy grid.

    ``robot_radius`` inflates obstacles once up front, the standard
    real-time treatment of a (near-)circular footprint.
    """
    work = grid.inflate(robot_radius) if robot_radius > 0.0 else grid
    cells = work.cells
    rows, cols = cells.shape
    blocked = cells.ravel()

    def flat(cell: Tuple[int, int]) -> int:
        return cell[0] * cols + cell[1]

    start_i = flat(start)
    goal_i = flat(goal)
    if blocked[start_i]:
        raise ValueError(f"start cell {start} is occupied (after inflation)")
    if blocked[goal_i]:
        raise ValueError(f"goal cell {goal} is occupied (after inflation)")

    res = grid.resolution
    # (flat offset, column delta, step cost); the explicit column delta
    # guards against wrapping across row boundaries.
    offsets = (
        (-cols, 0, res), (cols, 0, res), (-1, -1, res), (1, 1, res),
        (-cols - 1, -1, res * _SQRT2), (-cols + 1, 1, res * _SQRT2),
        (cols - 1, -1, res * _SQRT2), (cols + 1, 1, res * _SQRT2),
    )
    goal_r, goal_c = goal
    n = rows * cols
    g = np.full(n, np.inf)
    parent = np.full(n, -1, dtype=np.int64)
    closed = np.zeros(n, dtype=bool)
    g[start_i] = 0.0
    h0 = math.hypot(start[0] - goal_r, start[1] - goal_c) * res
    heap: List[Tuple[float, int]] = [(h0, start_i)]
    expansions = 0

    while heap:
        f, idx = heapq.heappop(heap)
        if closed[idx]:
            continue
        if idx == goal_i:
            path = []
            while idx != -1:
                path.append((idx // cols, idx % cols))
                idx = int(parent[idx])
            path.reverse()
            return FastPlanResult(
                found=True, path=path, cost=float(g[goal_i]),
                expansions=expansions,
            )
        closed[idx] = True
        expansions += 1
        row = idx // cols
        col = idx % cols
        g_here = g[idx]
        for off, dc, step in offsets:
            nidx = idx + off
            ncol = col + dc
            if ncol < 0 or ncol >= cols or nidx < 0 or nidx >= n:
                continue
            if blocked[nidx] or closed[nidx]:
                continue
            tentative = g_here + step
            if tentative < g[nidx]:
                g[nidx] = tentative
                parent[nidx] = idx
                nrow = nidx // cols
                h = math.hypot(nrow - goal_r, ncol - goal_c) * res
                heapq.heappush(heap, (tentative + h, nidx))
    return FastPlanResult(found=False, path=[], cost=float("inf"),
                          expansions=expansions)
