"""Performance-first grid A* (the suite's "real-time" implementation).

This is the optimized contestant in the Fig. 21 library comparison — the
Python equivalent of RTRBench's tuned C++ pp2d.  Every implementation
choice targets speed the way the paper's C++ does:

* the robot footprint is handled by inflating the grid **once** (numpy
  dilation, memoized through the workload cache) instead of
  per-expansion footprint checks;
* the search itself is :mod:`repro.search.grid_core`'s flat-array A*:
  a halo-padded flat occupancy table, preallocated g/parent/closed
  storage, and a lazy binary heap — no per-node objects, no dict maps
  (the exact opposite of the educational baseline's pass-by-value maps).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.geometry.grid2d import OccupancyGrid2D
from repro.search.grid_core import astar_grid_2d


@dataclass
class FastPlanResult:
    """Outcome of a fast grid A* call."""

    found: bool
    path: List[Tuple[int, int]]
    cost: float
    expansions: int


def fast_grid_astar(
    grid: OccupancyGrid2D,
    start: Tuple[int, int],
    goal: Tuple[int, int],
    robot_radius: float = 0.0,
) -> FastPlanResult:
    """8-connected A* over an (optionally inflated) occupancy grid.

    ``robot_radius`` inflates obstacles once up front, the standard
    real-time treatment of a (near-)circular footprint.
    """
    work = grid.inflate(robot_radius) if robot_radius > 0.0 else grid
    cells = work.cells
    if cells[start]:
        raise ValueError(f"start cell {start} is occupied (after inflation)")
    if cells[goal]:
        raise ValueError(f"goal cell {goal} is occupied (after inflation)")
    flat, path = astar_grid_2d(
        cells, start, goal, resolution=grid.resolution, epsilon=1.0
    )
    return FastPlanResult(
        found=flat.found, path=path, cost=flat.cost, expansions=flat.expansions
    )
