"""Planning kernels: graph-search, sampling-based, and symbolic planners.

The suite's planning stage (paper Table I):

* ``04.pp2d``   — 2D mobile-robot path planning (:mod:`.pp2d`)
* ``05.pp3d``   — 3D UAV path planning (:mod:`.pp3d`)
* ``06.movtar`` — moving-target pursuit with Weighted A* (:mod:`.moving_target`)
* ``07.prm``    — probabilistic roadmaps for an arm (:mod:`.prm`)
* ``08.rrt``    — rapidly-exploring random trees (:mod:`.rrt`)
* ``09.rrtstar``— asymptotically optimal RRT* (:mod:`.rrt_star`)
* ``10.rrtpp``  — RRT with shortcutting post-processing (:mod:`.rrt_postprocess`)
* ``11.sym-blkw`` / ``12.sym-fext`` — symbolic planning (:mod:`.symbolic`)

:mod:`.baselines` holds the deliberately naive "educational" planner used
by the Fig. 21 library comparison.
"""

from repro.planning.moving_target import MovingTargetKernel, MovingTargetPlanner
from repro.planning.pp2d import GridPlanningSpace2D, Pp2dKernel
from repro.planning.pp3d import GridPlanningSpace3D, Pp3dKernel
from repro.planning.prm import PrmKernel, ProbabilisticRoadmap
from repro.planning.rrt import RRT, RrtKernel
from repro.planning.rrt_postprocess import RrtPpKernel, shortcut_path
from repro.planning.rrt_star import RRTStar, RrtStarKernel

__all__ = [
    "MovingTargetKernel",
    "MovingTargetPlanner",
    "GridPlanningSpace2D",
    "Pp2dKernel",
    "GridPlanningSpace3D",
    "Pp3dKernel",
    "PrmKernel",
    "ProbabilisticRoadmap",
    "RRT",
    "RrtKernel",
    "RRTStar",
    "RrtStarKernel",
    "RrtPpKernel",
    "shortcut_path",
]
