"""The two symbolic domains of the paper: blocks world and firefighting.

* :func:`blocks_world` — the classic stacking domain of Fig. 13: blocks on
  a table, a ``Move`` action family, and a goal rearrangement.
* :func:`firefighter` — the Fig. 14 problem from MIT's cognitive-robotics
  summer school: a mobile robot ferries a quadcopter between locations;
  the quadcopter must pour water on a fire three times (``ExtThree``),
  refilling its tank and recharging its battery between pours.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.planning.symbolic.actions import ActionSchema, State, ground_schemas
from repro.planning.symbolic.language import atom
from repro.planning.symbolic.planner import SymbolicProblem


def blocks_world(
    n_blocks: int = 4, goal: str = "reverse"
) -> SymbolicProblem:
    """The blocks world problem of the paper's Fig. 13.

    Blocks start in one stack (A on B on C ... on Table); the goal
    rearranges them (default: the reversed stack).  Schemas follow the
    figure: moving a block requires it and its destination to be clear.
    """
    if n_blocks < 2:
        raise ValueError("need at least two blocks")
    blocks = [chr(ord("A") + i) for i in range(n_blocks)]
    objects = blocks + ["Table"]

    schemas = [
        # Move a block from atop another block onto a third block.
        ActionSchema(
            name="Move",
            parameters=["b", "x", "y"],
            preconditions=[
                "Block(?b)", "Block(?x)", "Block(?y)",
                "On(?b,?x)", "Clear(?b)", "Clear(?y)",
            ],
            effects=[
                "On(?b,?y)", "Clear(?x)", "!On(?b,?x)", "!Clear(?y)",
            ],
        ),
        # Move a block from atop another block onto the table.
        ActionSchema(
            name="MoveToTable",
            parameters=["b", "x"],
            preconditions=[
                "Block(?b)", "Block(?x)", "On(?b,?x)", "Clear(?b)",
            ],
            effects=["On(?b,Table)", "Clear(?x)", "!On(?b,?x)"],
        ),
        # Move a block from the table onto a block.
        ActionSchema(
            name="MoveFromTable",
            parameters=["b", "y"],
            preconditions=[
                "Block(?b)", "Block(?y)", "On(?b,Table)",
                "Clear(?b)", "Clear(?y)",
            ],
            effects=["On(?b,?y)", "!On(?b,Table)", "!Clear(?y)"],
        ),
    ]

    initial_atoms = {atom("Block", b) for b in blocks}
    # One stack: A on B, B on C, ..., last on Table.
    for upper, lower in zip(blocks[:-1], blocks[1:]):
        initial_atoms.add(atom("On", upper, lower))
    initial_atoms.add(atom("On", blocks[-1], "Table"))
    initial_atoms.add(atom("Clear", blocks[0]))
    initial_state: State = frozenset(initial_atoms)

    if goal == "reverse":
        goal_atoms = {
            atom("On", lower, upper)
            for upper, lower in zip(blocks[:-1], blocks[1:])
        }
        goal_atoms.add(atom("On", blocks[0], "Table"))
    elif goal == "spread":
        goal_atoms = {atom("On", b, "Table") for b in blocks}
    else:
        raise ValueError(f"unknown goal preset {goal!r}")

    actions = ground_schemas(schemas, objects, initial_state)
    # Static atoms (Block(...)) are pruned from preconditions by
    # ground_schemas; drop them from the state too so nodes stay small.
    dynamic_state = frozenset(
        a for a in initial_state if not a.startswith("Block(")
    )
    return SymbolicProblem(
        initial_state=dynamic_state,
        goal=frozenset(goal_atoms),
        actions=actions,
    )


def firefighter(n_locations: int = 5) -> SymbolicProblem:
    """The firefighting problem of the paper's Fig. 14.

    Locations ``L1..Ln`` plus the water source ``W`` and the fire ``F``.
    The quadcopter ``Q`` starts in the air at one location; the mobile
    robot ``R`` starts elsewhere.  Landing on the robot lets the pair
    travel together; pouring water requires a full tank and a charged
    battery and consumes both.  Goal: ``ExtThree(F)`` — three pours.
    """
    if n_locations < 2:
        raise ValueError("need at least two generic locations")
    generic = [f"L{i+1}" for i in range(n_locations)]
    locations = generic + ["W", "F"]
    charger = generic[0]  # the charging dock lives at L1

    schemas = [
        # The robot drives alone (quadcopter must be airborne elsewhere).
        ActionSchema(
            name="MoveToLoc",
            parameters=["x", "y"],
            preconditions=["Loc(?x)", "Loc(?y)", "AtR(?x)", "InAir"],
            effects=["AtR(?y)", "!AtR(?x)"],
        ),
        # The robot drives carrying the landed quadcopter.
        ActionSchema(
            name="MoveTogether",
            parameters=["x", "y"],
            preconditions=[
                "Loc(?x)", "Loc(?y)", "AtR(?x)", "AtQ(?x)", "OnRob",
            ],
            effects=["AtR(?y)", "AtQ(?y)", "!AtR(?x)", "!AtQ(?x)"],
        ),
        # The quadcopter flies on its own battery.
        ActionSchema(
            name="Fly",
            parameters=["x", "y"],
            preconditions=[
                "Loc(?x)", "Loc(?y)", "AtQ(?x)", "InAir", "BattHigh",
            ],
            effects=["AtQ(?y)", "!AtQ(?x)"],
        ),
        ActionSchema(
            name="Land",
            parameters=["x"],
            preconditions=["Loc(?x)", "AtQ(?x)", "AtR(?x)", "InAir"],
            effects=["OnRob", "!InAir"],
        ),
        ActionSchema(
            name="TakeOff",
            parameters=["x"],
            preconditions=["Loc(?x)", "AtQ(?x)", "OnRob", "BattHigh"],
            effects=["InAir", "!OnRob"],
        ),
        ActionSchema(
            name="FillWater",
            parameters=[],
            preconditions=["OnRob", "EmptyTank", "AtR(W)", "AtQ(W)"],
            effects=["FullTank", "!EmptyTank"],
        ),
        ActionSchema(
            name="ChargeBattery",
            parameters=[],
            preconditions=["OnRob", "BattLow", f"AtR({charger})",
                           f"AtQ({charger})"],
            effects=["BattHigh", "!BattLow"],
        ),
    ]
    # Pouring water: three chained pours, each consuming tank and battery.
    for level, (before, after) in enumerate(
        (("ExtZero", "ExtOne"), ("ExtOne", "ExtTwo"), ("ExtTwo", "ExtThree"))
    ):
        schemas.append(
            ActionSchema(
                name=f"PourWater{level + 1}",
                parameters=[],
                preconditions=[
                    "OnRob", "FullTank", "BattHigh", "AtR(F)", "AtQ(F)",
                    f"{before}(F)",
                ],
                effects=[
                    f"{after}(F)", f"!{before}(F)",
                    "EmptyTank", "!FullTank",
                    "BattLow", "!BattHigh",
                ],
            )
        )

    initial_atoms = {atom("Loc", loc) for loc in locations}
    initial_atoms.update(
        {
            "AtQ(" + generic[1] + ")",  # quadcopter airborne at L2
            "AtR(" + generic[0] + ")",  # robot at the charging dock L1
            "InAir",
            "EmptyTank",
            "BattHigh",
            "ExtZero(F)",
        }
    )
    initial_state: State = frozenset(initial_atoms)
    actions = ground_schemas(schemas, locations, initial_state)
    dynamic_state = frozenset(
        a for a in initial_state if not a.startswith("Loc(")
    )
    return SymbolicProblem(
        initial_state=dynamic_state,
        goal=frozenset({"ExtThree(F)"}),
        actions=actions,
    )
