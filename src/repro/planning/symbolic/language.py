"""The symbolic language: ground atoms as strings.

Atoms look like ``On(A,B)``; variables in schema templates are marked
with ``?`` (``On(?b,?x)``).  Keeping atoms as strings mirrors the paper's
implementation, whose planning kernels spend significant time in "string
manipulation inside nodes" — substitution, formatting, and matching here
are genuine string operations.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple


def atom(predicate: str, *args: str) -> str:
    """Format a ground atom: ``atom("On", "A", "B") == "On(A,B)"``."""
    if not predicate:
        raise ValueError("predicate name must be non-empty")
    if not args:
        return predicate
    return f"{predicate}({','.join(args)})"


def parse_atom(text: str) -> Tuple[str, List[str]]:
    """Split an atom string into (predicate, arguments).

    >>> parse_atom("On(A,B)")
    ('On', ['A', 'B'])
    >>> parse_atom("HandEmpty")
    ('HandEmpty', [])
    """
    text = text.strip()
    if "(" not in text:
        return text, []
    if not text.endswith(")"):
        raise ValueError(f"malformed atom: {text!r}")
    predicate, _, rest = text.partition("(")
    inner = rest[:-1]
    args = [a.strip() for a in inner.split(",")] if inner else []
    return predicate, args


def substitute(template: str, binding: Dict[str, str]) -> str:
    """Replace ``?var`` occurrences in a template with bound objects.

    Longer variable names are substituted first so ``?block`` is never
    clobbered by a substitution for ``?b``.
    """
    out = template
    for var in sorted(binding, key=len, reverse=True):
        out = out.replace("?" + var, binding[var])
    if "?" in out:
        raise ValueError(f"unbound variable remains in {out!r}")
    return out


def variables_in(template: str) -> List[str]:
    """All ``?var`` names appearing in a template, in order, deduplicated."""
    names: List[str] = []
    i = 0
    while i < len(template):
        if template[i] == "?":
            j = i + 1
            while j < len(template) and (template[j].isalnum() or template[j] == "_"):
                j += 1
            name = template[i + 1 : j]
            if name and name not in names:
                names.append(name)
            i = j
        else:
            i += 1
    return names
