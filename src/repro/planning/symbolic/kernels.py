"""Kernels 11.sym-blkw and 12.sym-fext — symbolic planning benchmarks."""

from __future__ import annotations

from dataclasses import dataclass

from repro.harness.config import KernelConfig, option
from repro.harness.profiler import PhaseProfiler
from repro.harness.runner import Kernel, registry
from repro.planning.symbolic.domains import blocks_world, firefighter
from repro.planning.symbolic.planner import (
    PlanResult,
    SymbolicPlanner,
    SymbolicProblem,
)


@dataclass
class SymBlkwConfig(KernelConfig):
    """Configuration of the sym-blkw kernel."""

    blocks: int = option(5, "Number of blocks")
    goal: str = option("reverse", "Goal preset: reverse or spread")
    epsilon: float = option(1.0, "Weighted A* heuristic inflation")


@registry.register
class SymBlkwKernel(Kernel):
    """Blocks world under the symbolic planner (graph search + strings)."""

    name = "11.sym-blkw"
    stage = "planning"
    config_cls = SymBlkwConfig
    description = "Symbolic planning: blocks world"

    def setup(self, config: SymBlkwConfig) -> SymbolicProblem:
        return blocks_world(n_blocks=config.blocks, goal=config.goal)

    def run_roi(
        self, config: SymBlkwConfig, state: SymbolicProblem, profiler: PhaseProfiler
    ) -> PlanResult:
        planner = SymbolicPlanner(state, epsilon=config.epsilon, profiler=profiler)
        return planner.plan()


@dataclass
class SymFextConfig(KernelConfig):
    """Configuration of the sym-fext kernel."""

    locations: int = option(5, "Number of generic locations")
    epsilon: float = option(1.0, "Weighted A* heuristic inflation")


@registry.register
class SymFextKernel(Kernel):
    """Firefighting robots under the same symbolic planner.

    Exhibits ~3x the branching factor of sym-blkw (the paper's measured
    parallelism headroom) because far more ground actions are valid per
    state.
    """

    name = "12.sym-fext"
    stage = "planning"
    config_cls = SymFextConfig
    description = "Symbolic planning: firefighter robots"

    def setup(self, config: SymFextConfig) -> SymbolicProblem:
        return firefighter(n_locations=config.locations)

    def run_roi(
        self, config: SymFextConfig, state: SymbolicProblem, profiler: PhaseProfiler
    ) -> PlanResult:
        planner = SymbolicPlanner(state, epsilon=config.epsilon, profiler=profiler)
        return planner.plan()
