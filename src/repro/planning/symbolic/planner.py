"""The symbolic planner: A* over the grounded state graph.

States are frozensets of ground-atom strings; successors are the
applicable ground actions.  The profiler separates ``search`` (the graph
search the paper compares to pp2d/pp3d/prm), ``string_ops`` (precondition
matching and effect application over atom strings), and
``successor_gen``.  The planner also records the per-node branching
factor, which the paper uses to compare sym-fext's available parallelism
(~3.2x) against sym-blkw.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.harness.profiler import PhaseProfiler
from repro.planning.symbolic.actions import GroundAction, State
from repro.search.astar import SearchResult, weighted_astar


@dataclass
class SymbolicProblem:
    """A grounded planning problem."""

    initial_state: State
    goal: FrozenSet[str]
    actions: List[GroundAction]

    def goal_satisfied(self, state: State) -> bool:
        """Whether all goal atoms hold in ``state``."""
        return self.goal <= state


@dataclass
class PlanResult:
    """Outcome of a symbolic planning run."""

    found: bool
    plan: List[str] = field(default_factory=list)
    cost: float = float("inf")
    expansions: int = 0
    mean_branching: float = 0.0

    def __bool__(self) -> bool:
        return self.found


class SymbolicPlanner:
    """Weighted A* over symbolic states.

    ``heuristic`` selects the estimator: ``"goal-count"`` (unsatisfied
    goal atoms — cheap, weakly informed), or the delete-relaxation
    heuristics ``"hmax"`` (admissible) and ``"hadd"`` (better informed,
    inadmissible) from :mod:`.heuristics`.  With ``epsilon=1`` and
    goal-count the search is optimal only when no action achieves two
    goal atoms at once; the suite's domains satisfy that.
    """

    def __init__(
        self,
        problem: SymbolicProblem,
        epsilon: float = 1.0,
        heuristic: str = "goal-count",
        profiler: Optional[PhaseProfiler] = None,
    ) -> None:
        from repro.planning.symbolic.heuristics import make_heuristic

        self.problem = problem
        self.epsilon = float(epsilon)
        self.heuristic_kind = heuristic
        self._heuristic_fn = make_heuristic(
            problem.goal, problem.actions, heuristic
        )
        self.profiler = profiler if profiler is not None else PhaseProfiler()
        self._action_by_edge: dict = {}
        self._branching_total = 0
        self._branching_nodes = 0

    def plan(self) -> PlanResult:
        """Search for a plan from the initial state to the goal."""
        problem = self.problem
        prof = self.profiler
        planner = self

        class _SymbolicSpace:
            def successors(self, state: State) -> Iterable[Tuple[State, float]]:
                with prof.phase("successor_gen"):
                    with prof.phase("string_ops"):
                        applicable = [
                            a for a in problem.actions if a.applicable(state)
                        ]
                        prof.count("applicability_checks", len(problem.actions))
                    planner._branching_total += len(applicable)
                    planner._branching_nodes += 1
                    out = []
                    for action in applicable:
                        with prof.phase("string_ops"):
                            succ = action.apply(state)
                            prof.count("effect_applications", 1)
                        planner._action_by_edge[(state, succ)] = action.name
                        out.append((succ, action.cost))
                return out

            def heuristic(self, state: State) -> float:
                with prof.phase("string_ops"):
                    return float(planner._heuristic_fn(state))

            def is_goal(self, state: State) -> bool:
                return problem.goal_satisfied(state)

        result: SearchResult = weighted_astar(
            _SymbolicSpace(),
            problem.initial_state,
            epsilon=self.epsilon,
            profiler=prof,
        )
        mean_branching = (
            self._branching_total / self._branching_nodes
            if self._branching_nodes
            else 0.0
        )
        if not result.found:
            return PlanResult(
                found=False,
                expansions=result.expansions,
                mean_branching=mean_branching,
            )
        plan = [
            self._action_by_edge[(a, b)]
            for a, b in zip(result.path[:-1], result.path[1:])
        ]
        return PlanResult(
            found=True,
            plan=plan,
            cost=result.cost,
            expansions=result.expansions,
            mean_branching=mean_branching,
        )


def execute_plan(problem: SymbolicProblem, plan: Sequence[str]) -> State:
    """Apply a named plan from the initial state; raises if any step fails.

    Validation helper used by tests and examples: confirms a returned
    plan is actually executable and reaches the goal.
    """
    by_name = {a.name: a for a in problem.actions}
    state = problem.initial_state
    for step in plan:
        action = by_name.get(step)
        if action is None:
            raise KeyError(f"unknown action {step!r}")
        if not action.applicable(state):
            raise ValueError(f"action {step!r} not applicable")
        state = action.apply(state)
    return state
