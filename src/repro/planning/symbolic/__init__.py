"""Symbolic (STRIPS-style) planning (paper sections V.11-V.12).

Problems are described with human-readable ground atoms ("On(A, B)"),
action schemas with preconditions and effects, and goal conditions; the
planner searches the induced state graph.  Ground atoms are plain strings
throughout — matching and substitution are string manipulation, which is
exactly the second bottleneck the paper reports for these kernels.
"""

from repro.planning.symbolic.actions import ActionSchema, GroundAction, ground_schemas
from repro.planning.symbolic.domains import blocks_world, firefighter
from repro.planning.symbolic.language import atom, parse_atom, substitute
from repro.planning.symbolic.planner import PlanResult, SymbolicPlanner, SymbolicProblem

__all__ = [
    "ActionSchema",
    "GroundAction",
    "ground_schemas",
    "blocks_world",
    "firefighter",
    "atom",
    "parse_atom",
    "substitute",
    "PlanResult",
    "SymbolicPlanner",
    "SymbolicProblem",
]
