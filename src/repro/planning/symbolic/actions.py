"""Action schemas and grounding.

An :class:`ActionSchema` is a lifted action (the paper's Fig. 13/14
``Move(b, x, y)`` with preconditions and effects over variables); a
:class:`GroundAction` is one fully substituted instance.  Grounding
enumerates object tuples, substitutes them into the templates (string
manipulation), and prunes instances whose *static* preconditions — atoms
no action ever changes, like ``Loc(A)`` — are false in the initial state.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.planning.symbolic.language import substitute, variables_in

State = FrozenSet[str]


@dataclass(frozen=True)
class GroundAction:
    """A fully instantiated action."""

    name: str
    preconditions: FrozenSet[str]
    negative_preconditions: FrozenSet[str]
    add_effects: FrozenSet[str]
    delete_effects: FrozenSet[str]
    cost: float = 1.0

    def applicable(self, state: State) -> bool:
        """Whether every precondition holds (and no negative one does)."""
        return self.preconditions <= state and not (
            self.negative_preconditions & state
        )

    def apply(self, state: State) -> State:
        """The successor state: delete, then add."""
        return frozenset((state - self.delete_effects) | self.add_effects)


@dataclass
class ActionSchema:
    """A lifted action over ``?``-variables.

    ``preconditions`` / ``effects`` entries are atom templates; effect
    templates prefixed with ``!`` are delete effects (the paper's
    notation, e.g. ``!On(b, x)``); precondition templates prefixed with
    ``!`` are negative preconditions.  ``distinct`` requires all bound
    objects to differ, matching blocks-world-style schemas.
    """

    name: str
    parameters: List[str]
    preconditions: List[str]
    effects: List[str]
    cost: float = 1.0
    distinct: bool = True

    def __post_init__(self) -> None:
        declared = set(self.parameters)
        used: Set[str] = set()
        for template in self.preconditions + self.effects:
            used.update(variables_in(template))
        undeclared = used - declared
        if undeclared:
            raise ValueError(
                f"schema {self.name}: undeclared variables {sorted(undeclared)}"
            )

    def ground(self, binding: Dict[str, str]) -> GroundAction:
        """Instantiate the schema with one variable binding."""
        pos_pre, neg_pre, adds, dels = [], [], [], []
        for template in self.preconditions:
            if template.startswith("!"):
                neg_pre.append(substitute(template[1:], binding))
            else:
                pos_pre.append(substitute(template, binding))
        for template in self.effects:
            if template.startswith("!"):
                dels.append(substitute(template[1:], binding))
            else:
                adds.append(substitute(template, binding))
        args = ",".join(binding[p] for p in self.parameters)
        name = f"{self.name}({args})" if self.parameters else self.name
        return GroundAction(
            name=name,
            preconditions=frozenset(pos_pre),
            negative_preconditions=frozenset(neg_pre),
            add_effects=frozenset(adds),
            delete_effects=frozenset(dels),
            cost=self.cost,
        )

    def ground_all(self, objects: Sequence[str]) -> Iterable[GroundAction]:
        """Every grounding of this schema over ``objects``."""
        if not self.parameters:
            yield self.ground({})
            return
        for combo in itertools.product(objects, repeat=len(self.parameters)):
            if self.distinct and len(set(combo)) != len(combo):
                continue
            yield self.ground(dict(zip(self.parameters, combo)))


def static_atoms(
    schemas: Sequence[ActionSchema], initial_state: State
) -> FrozenSet[str]:
    """Atoms of predicates no schema ever adds or deletes.

    These are facts like type declarations (``Loc(A)``, ``Block(B)``)
    that hold forever; grounded actions whose static preconditions fail in
    the initial state can never fire and are pruned.
    """
    changed_predicates: Set[str] = set()
    for schema in schemas:
        for template in schema.effects:
            body = template[1:] if template.startswith("!") else template
            predicate = body.partition("(")[0]
            changed_predicates.add(predicate)
    return frozenset(
        a for a in initial_state
        if a.partition("(")[0] not in changed_predicates
    )


def ground_schemas(
    schemas: Sequence[ActionSchema],
    objects: Sequence[str],
    initial_state: State,
) -> List[GroundAction]:
    """Ground every schema, pruning statically impossible instances.

    Static atoms are removed from the surviving actions' preconditions
    (they are known true forever), shrinking states and speeding matching.
    """
    statics = static_atoms(schemas, initial_state)
    static_predicates = {a.partition("(")[0] for a in statics}
    grounded: List[GroundAction] = []
    for schema in schemas:
        for action in schema.ground_all(objects):
            static_pre = {
                p for p in action.preconditions
                if p.partition("(")[0] in static_predicates
            }
            if not static_pre <= statics:
                continue
            grounded.append(
                GroundAction(
                    name=action.name,
                    preconditions=frozenset(action.preconditions - static_pre),
                    negative_preconditions=action.negative_preconditions,
                    add_effects=action.add_effects,
                    delete_effects=action.delete_effects,
                    cost=action.cost,
                )
            )
    return grounded
