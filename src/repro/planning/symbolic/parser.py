"""A parser for textual symbolic problem descriptions.

The paper presents its symbolic problems in a compact human-readable
notation (Fig. 13 and Fig. 14)::

    Symbols: A, B, C, Table
    Initial conditions: On(A, B), On(B, Table), Clear(A), ...
    Goal conditions: On(B, C), On(C, A)
    Actions:
      Move(b, x, y)
        Preconditions: On(b, x), Clear(b), Clear(y)
        Effects: On(b, y), Clear(x), !On(b, x), !Clear(y)

This module parses exactly that notation into a grounded
:class:`~repro.planning.symbolic.planner.SymbolicProblem`, so new domains
can be written as text files instead of Python — "one symbolic planner
can solve any problem that can be described in the symbolic language".
Action parameter names act as the ``?``-variables; any identifier in a
template that matches a parameter name is treated as a variable,
everything else as a constant symbol.
"""

from __future__ import annotations

import re
from typing import Dict, List, Sequence, Tuple

from repro.planning.symbolic.actions import ActionSchema, ground_schemas
from repro.planning.symbolic.planner import SymbolicProblem

_SECTION_RE = re.compile(
    r"^(symbols|initial conditions|goal conditions|actions)\s*:\s*(.*)$",
    re.IGNORECASE,
)
_ACTION_HEAD_RE = re.compile(r"^([A-Za-z_][\w-]*)\s*\(([^)]*)\)\s*$")
_CLAUSE_RE = re.compile(
    r"^(preconditions|effects)\s*:\s*(.*)$", re.IGNORECASE
)


def _split_atoms(text: str) -> List[str]:
    """Split a comma-separated atom list, respecting parentheses.

    ``"On(A, B), Clear(C)"`` -> ``["On(A,B)", "Clear(C)"]``; a trailing
    ``...`` ellipsis (used in the paper's figures) is dropped.
    """
    atoms: List[str] = []
    depth = 0
    current: List[str] = []
    for ch in text:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth < 0:
                raise ValueError(f"unbalanced parentheses in {text!r}")
        if ch == "," and depth == 0:
            atoms.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    if depth != 0:
        raise ValueError(f"unbalanced parentheses in {text!r}")
    atoms.append("".join(current).strip())
    return [a.replace(" ", "") for a in atoms if a and a != "..."]


def _mark_variables(template: str, parameters: Sequence[str]) -> str:
    """Prefix occurrences of parameter names with ``?`` inside a template."""
    negated = template.startswith("!")
    body = template[1:] if negated else template
    if "(" in body:
        predicate, _, rest = body.partition("(")
        if not rest.endswith(")"):
            raise ValueError(f"malformed atom template {body!r}")
        args = [a.strip() for a in rest[:-1].split(",")] if rest[:-1] else []
        args = [f"?{a}" if a in parameters else a for a in args]
        body = f"{predicate}({','.join(args)})"
    return ("!" if negated else "") + body


def parse_problem_text(text: str) -> SymbolicProblem:
    """Parse a full problem description into a grounded problem."""
    symbols: List[str] = []
    initial: List[str] = []
    goal: List[str] = []
    schemas: List[ActionSchema] = []

    lines = [ln.rstrip() for ln in text.splitlines()]
    section = None
    current_action: Dict[str, object] = {}

    def flush_action() -> None:
        if not current_action:
            return
        schemas.append(
            ActionSchema(
                name=str(current_action["name"]),
                parameters=list(current_action["parameters"]),  # type: ignore[arg-type]
                preconditions=list(current_action.get("preconditions", [])),  # type: ignore[arg-type]
                effects=list(current_action.get("effects", [])),  # type: ignore[arg-type]
            )
        )
        current_action.clear()

    for raw in lines:
        line = raw.strip()
        if not line:
            continue
        header = _SECTION_RE.match(line)
        if header:
            flush_action()
            section = header.group(1).lower()
            remainder = header.group(2).strip()
            if remainder:
                if section == "symbols":
                    symbols.extend(_split_atoms(remainder))
                elif section == "initial conditions":
                    initial.extend(_split_atoms(remainder))
                elif section == "goal conditions":
                    goal.extend(_split_atoms(remainder))
            continue
        if section in ("symbols", "initial conditions", "goal conditions"):
            target = {
                "symbols": symbols,
                "initial conditions": initial,
                "goal conditions": goal,
            }[section]
            target.extend(_split_atoms(line))
            continue
        if section == "actions":
            clause = _CLAUSE_RE.match(line)
            if clause:
                if not current_action:
                    raise ValueError(
                        f"{clause.group(1)} before any action header"
                    )
                params = current_action["parameters"]
                templates = [
                    _mark_variables(a, params)  # type: ignore[arg-type]
                    for a in _split_atoms(clause.group(2))
                ]
                key = clause.group(1).lower()
                current_action[key] = templates
                continue
            head = _ACTION_HEAD_RE.match(line)
            if head:
                flush_action()
                params = [
                    p.strip() for p in head.group(2).split(",") if p.strip()
                ]
                current_action.update(
                    {"name": head.group(1), "parameters": params}
                )
                continue
            raise ValueError(f"cannot parse action line {line!r}")
        raise ValueError(f"content outside any section: {line!r}")
    flush_action()

    if not symbols:
        raise ValueError("problem text declares no symbols")
    if not goal:
        raise ValueError("problem text declares no goal conditions")
    initial_state = frozenset(initial)
    actions = ground_schemas(schemas, symbols, initial_state)
    # Drop static atoms from the state (ground_schemas already stripped
    # them from the surviving actions' preconditions).
    changed = set()
    for schema in schemas:
        for template in schema.effects:
            body = template[1:] if template.startswith("!") else template
            changed.add(body.partition("(")[0])
    dynamic_state = frozenset(
        a for a in initial_state if a.partition("(")[0] in changed
    )
    return SymbolicProblem(
        initial_state=dynamic_state,
        goal=frozenset(goal),
        actions=actions,
    )
