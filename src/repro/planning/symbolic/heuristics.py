"""Delete-relaxation heuristics for symbolic planning (HSP-style).

The suite's default symbolic heuristic counts unsatisfied goal atoms; it
is cheap but weakly informed.  These classic alternatives reason over
the *delete relaxation* — the problem with delete effects ignored — by a
fixpoint cost propagation over atoms:

* ``h_max`` — an action becomes available at the cost of its most
  expensive precondition; admissible (never overestimates).
* ``h_add`` — preconditions cost the *sum* of their atoms; better
  informed, not admissible (the classic HSP trade-off).

Both run one fixpoint per evaluated state, so they trade per-node work
for fewer expansions — exactly the kind of design trade-off the paper's
graph-search characterization motivates measuring (see the symbolic
ablation benchmark).
"""

from __future__ import annotations

import heapq
from typing import Dict, FrozenSet, Iterable, List, Sequence

from repro.planning.symbolic.actions import GroundAction, State


def relaxed_cost(
    state: State,
    goal: FrozenSet[str],
    actions: Sequence[GroundAction],
    mode: str = "max",
) -> float:
    """Delete-relaxation cost estimate from ``state`` to ``goal``.

    Generalized Dijkstra over atoms: an atom's cost is the cheapest way
    to achieve it, where an action fires once all its positive
    preconditions are achieved and costs ``combine(preconditions) +
    action.cost``.  ``combine`` is max (``mode="max"``) or sum
    (``mode="add"``).  Returns ``inf`` when some goal atom is
    unreachable even ignoring deletes — a sound dead-end detector.
    """
    if mode not in ("max", "add"):
        raise ValueError("mode must be 'max' or 'add'")
    cost: Dict[str, float] = {atom: 0.0 for atom in state}
    # Precompute which actions wait on each atom, and how many
    # unsatisfied preconditions each action still has.
    remaining: List[int] = []
    waiting: Dict[str, List[int]] = {}
    heap: List = []
    counter = 0

    def combine(action: GroundAction) -> float:
        values = [cost[p] for p in action.preconditions]
        if not values:
            return 0.0
        return max(values) if mode == "max" else sum(values)

    for i, action in enumerate(actions):
        unsatisfied = 0
        for p in action.preconditions:
            if p not in cost:
                unsatisfied += 1
                waiting.setdefault(p, []).append(i)
        remaining.append(unsatisfied)
        if unsatisfied == 0:
            counter += 1
            heapq.heappush(heap, (combine(action) + action.cost, counter, i))

    achieved_goal = {atom for atom in goal if atom in cost}
    while heap and len(achieved_goal) < len(goal):
        trigger_cost, _, i = heapq.heappop(heap)
        action = actions[i]
        stale = combine(action) + action.cost
        if trigger_cost > stale + 1e-12:
            continue  # superseded by a cheaper firing
        for atom in action.add_effects:
            if atom in cost and cost[atom] <= trigger_cost:
                continue
            cost[atom] = trigger_cost
            if atom in goal:
                achieved_goal.add(atom)
            for j in waiting.get(atom, ()):  # newly satisfied preconditions
                remaining[j] -= 1
                if remaining[j] == 0:
                    counter += 1
                    heapq.heappush(
                        heap,
                        (combine(actions[j]) + actions[j].cost, counter, j),
                    )
            # Cheaper re-achievement can lower downstream costs: re-queue
            # ready actions that consume this atom.
            for j in _consumers(actions, atom):
                if remaining[j] == 0:
                    counter += 1
                    heapq.heappush(
                        heap,
                        (combine(actions[j]) + actions[j].cost, counter, j),
                    )
    if len(achieved_goal) < len(goal):
        return float("inf")
    values = [cost[atom] for atom in goal]
    if not values:
        return 0.0
    return max(values) if mode == "max" else sum(values)


_CONSUMER_CACHE: Dict[int, Dict[str, List[int]]] = {}


def _consumers(
    actions: Sequence[GroundAction], atom: str
) -> Iterable[int]:
    """Indices of actions having ``atom`` as a positive precondition."""
    key = id(actions)
    table = _CONSUMER_CACHE.get(key)
    if table is None:
        table = {}
        for i, action in enumerate(actions):
            for p in action.preconditions:
                table.setdefault(p, []).append(i)
        _CONSUMER_CACHE.clear()  # keep at most one problem cached
        _CONSUMER_CACHE[key] = table
    return table.get(atom, ())


def make_heuristic(
    goal: FrozenSet[str], actions: Sequence[GroundAction], kind: str
):
    """Heuristic factory: ``goal-count`` | ``hmax`` | ``hadd``."""
    if kind == "goal-count":
        return lambda state: float(len(goal - state))
    if kind == "hmax":
        return lambda state: relaxed_cost(state, goal, actions, mode="max")
    if kind == "hadd":
        return lambda state: relaxed_cost(state, goal, actions, mode="add")
    raise ValueError(f"unknown heuristic {kind!r}")
