"""Kernel 10.rrtpp — RRT with shortcutting post-processing (section V.10).

Runs baseline RRT, then repeatedly tries to *shortcut* the returned path:
two nodes are connected directly whenever the straight joint-space edge
between them is collision-free (the triangle inequality guarantees this
never lengthens the path).  The paper finds rrtpp's run time and path
cost land between RRT and RRT*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.envs.arm_maps import ArmWorkspace
from repro.geometry.distance import path_length
from repro.harness.config import KernelConfig, option
from repro.harness.profiler import PhaseProfiler
from repro.harness.runner import Kernel, registry
from repro.planning.rrt import (
    RRT,
    ArmPlanWorkload,
    RrtConfig,
    SamplingPlanResult,
    make_arm_workload,
)
from repro.robots.arm import PlanarArm


def shortcut_path(
    arm: PlanarArm,
    workspace: ArmWorkspace,
    path: List[np.ndarray],
    iterations: int = 100,
    edge_step: float = 0.15,
    rng: Optional[np.random.Generator] = None,
    profiler: Optional[PhaseProfiler] = None,
) -> List[np.ndarray]:
    """Iteratively shortcut a joint-space path.

    Each iteration picks two random non-adjacent waypoints and splices
    them together if the direct edge is collision-free.  All edge checks
    are charged to the ``collision`` phase nested inside ``shortcut``.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    prof = profiler if profiler is not None else PhaseProfiler()
    current = [np.asarray(q, dtype=float) for q in path]
    with prof.phase("shortcut"):
        for _ in range(iterations):
            if len(current) < 3:
                break
            i = int(rng.integers(0, len(current) - 2))
            j = int(rng.integers(i + 2, len(current)))
            with prof.phase("collision"):
                blocked = workspace.edge_collides(
                    arm, current[i], current[j], step=edge_step,
                    count=prof.count,
                )
            if not blocked:
                current = current[: i + 1] + current[j:]
                prof.count("shortcuts_applied", 1)
    return current


@dataclass
class RrtPpConfig(RrtConfig):
    """Configuration of the rrtpp kernel."""

    shortcut_iterations: int = option(150, "Shortcutting attempts")


@registry.register
class RrtPpKernel(Kernel):
    """RRT + path shortcutting (between rrt and rrtstar in cost/time)."""

    name = "10.rrtpp"
    stage = "planning"
    config_cls = RrtPpConfig
    description = "RRT with shortcutting post-processing"

    def setup(self, config: RrtPpConfig) -> ArmPlanWorkload:
        return make_arm_workload(config.dof, config.map, config.seed)

    def run_roi(
        self, config: RrtPpConfig, state: ArmPlanWorkload, profiler: PhaseProfiler
    ) -> SamplingPlanResult:
        rng = np.random.default_rng(config.seed)
        planner = RRT(
            state.arm,
            state.workspace,
            epsilon=config.epsilon,
            goal_bias=config.bias,
            goal_threshold=config.radius,
            max_samples=config.samples,
            nn_strategy=config.nn_strategy,
            rng=rng,
            profiler=profiler,
        )
        result = planner.plan(state.start, state.goal)
        if not result.found:
            return result
        improved = shortcut_path(
            state.arm,
            state.workspace,
            result.path,
            iterations=config.shortcut_iterations,
            rng=rng,
            profiler=profiler,
        )
        return SamplingPlanResult(
            found=True,
            path=improved,
            cost=path_length(np.vstack(improved)),
            samples_drawn=result.samples_drawn,
            tree_size=result.tree_size,
        )
