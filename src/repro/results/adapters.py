"""Producer payloads -> :class:`~repro.results.record.RunRecord`.

One adapter per producer, used in two places: at production time (the
``rtrbench`` commands convert their freshly computed nested payload into
a record, attaching the live environment fingerprint) and at load time
(:mod:`repro.results.store` routes the three pre-record report layouts —
schema generation 0 — through the same adapters with an *unknown*
environment, so every historical ``BENCH_*.json`` remains loadable,
comparable, and gateable).

The measurement names minted here are the layer's public contract: gate
declarations and ``rtrbench compare`` address metrics by these dotted
names, so renames are schema changes and belong with a
``RECORD_SCHEMA_VERSION`` bump.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Mapping, Optional

from repro.results.record import (
    EnvironmentFingerprint,
    Measurement,
    RunRecord,
    capture_environment,
)


def _jsonable(payload: Any) -> Dict[str, Any]:
    """Round-trip a payload through JSON so ``detail`` always serializes."""
    return json.loads(json.dumps(payload, default=repr))


def _seconds(value: float) -> Measurement:
    return Measurement(float(value), unit="s", higher_is_better=False)


def _ratio(value: float, higher_is_better: Optional[bool] = True) -> Measurement:
    return Measurement(
        float(value), unit="ratio", higher_is_better=higher_is_better
    )


def _count(value: float, higher_is_better: Optional[bool] = None) -> Measurement:
    return Measurement(
        float(value), unit="count", higher_is_better=higher_is_better
    )


def _flag(value: bool) -> Measurement:
    """A pass/fail bit as 1.0/0.0 (gateable with ``== 1``)."""
    return Measurement(1.0 if value else 0.0, unit="bool", higher_is_better=True)


def _env(env: Optional[EnvironmentFingerprint]) -> EnvironmentFingerprint:
    return EnvironmentFingerprint.unknown() if env is None else env


# -- bench ---------------------------------------------------------------------

#: Unit assignment for the per-phase bench metric keys.
_BENCH_FIELD_UNITS = {
    "reference_s": _seconds,
    "vectorized_s": _seconds,
    "reference_cpu_s": _seconds,
    "vectorized_cpu_s": _seconds,
}


def record_from_bench(
    results: Mapping[str, Mapping[str, float]],
    smoke: Optional[bool] = None,
    seed: Optional[int] = None,
    jobs: Optional[int] = None,
    env: Optional[EnvironmentFingerprint] = None,
) -> RunRecord:
    """Record for a hot-path bench run (``phase -> metrics`` mapping).

    Mints ``<phase>.speedup`` / ``<phase>.reference_s`` /
    ``<phase>.vectorized_s`` / ``<phase>.ops`` measurements per phase.
    ``smoke=None`` (a legacy report: the old layout never recorded its
    mode) leaves the record untagged, which is exactly how the old
    checker treated the same data — floors applied.
    """
    measurements: Dict[str, Measurement] = {}
    for phase, row in results.items():
        for key, value in row.items():
            if key == "speedup":
                measurements[f"{phase}.speedup"] = _ratio(value)
            elif key == "ops":
                measurements[f"{phase}.ops"] = _count(value)
            elif key in _BENCH_FIELD_UNITS:
                measurements[f"{phase}.{key}"] = _BENCH_FIELD_UNITS[key](value)
    provenance: Dict[str, Any] = {"phases": sorted(results)}
    if seed is not None:
        provenance["seed"] = seed
    if jobs is not None:
        provenance["jobs"] = jobs
    if smoke is not None:
        provenance["smoke"] = smoke
    return RunRecord(
        kind="bench",
        environment=_env(env),
        provenance=provenance,
        tags=["smoke"] if smoke else [],
        measurements=measurements,
        detail=_jsonable(dict(results)),
    )


# -- suite ---------------------------------------------------------------------


def record_from_suite(
    report: Mapping[str, Any],
    env: Optional[EnvironmentFingerprint] = None,
) -> RunRecord:
    """Record for a ``run_suite`` report (the old ``BENCH_suite.json``)."""
    suite = report["suite"]
    measurements: Dict[str, Measurement] = {
        "suite.task_count": _count(suite["task_count"]),
        "suite.failures": _count(suite["failures"], higher_is_better=False),
        "suite.wall_s": _seconds(suite["wall_s"]),
    }
    if suite.get("serial_wall_s") is not None:
        measurements["suite.serial_wall_s"] = _seconds(suite["serial_wall_s"])
    if suite.get("parallel_speedup") is not None:
        measurements["suite.parallel_speedup"] = _ratio(
            suite["parallel_speedup"]
        )
    if suite.get("dispatch_overhead_s") is not None:
        measurements["suite.dispatch_overhead_s"] = _seconds(
            suite["dispatch_overhead_s"]
        )
    if suite.get("dispatch_overhead_share") is not None:
        measurements["suite.dispatch_overhead_share"] = _ratio(
            suite["dispatch_overhead_share"], higher_is_better=False
        )
    if suite.get("worker_utilization") is not None:
        measurements["suite.worker_utilization"] = _ratio(
            suite["worker_utilization"]
        )
    determinism = report.get("determinism", {})
    if determinism.get("checked"):
        measurements["determinism.match"] = _flag(
            bool(determinism.get("matches"))
        )
    probe = report.get("cache", {}).get("probe", {})
    if "hit_speedup" in probe:
        measurements["cache.hit_speedup"] = _ratio(probe["hit_speedup"])
    if "cold_build_s" in probe:
        measurements["cache.cold_build_s"] = _seconds(probe["cold_build_s"])
    if "warm_hit_s" in probe:
        measurements["cache.warm_hit_s"] = _seconds(probe["warm_hit_s"])
    for row in report.get("tasks", []):
        if row.get("ok"):
            name = row["task"]
            measurements[f"tasks.{name}.wall_s"] = _seconds(row["wall_s"])
            measurements[f"tasks.{name}.roi_s"] = _seconds(
                row.get("roi_s", 0.0)
            )
            if row.get("exec_s") is not None:
                measurements[f"tasks.{name}.exec_s"] = _seconds(
                    row["exec_s"]
                )
            if row.get("queue_wait_s") is not None:
                measurements[f"tasks.{name}.queue_wait_s"] = _seconds(
                    row["queue_wait_s"]
                )
    environment = _env(env)
    tags = ["smoke"] if suite.get("smoke") else []
    # A box with one usable CPU cannot express parallel speedup or keep
    # N workers busy; the tag lets timing-floor gates skip with an
    # explicit reason instead of failing on hardware limits.
    if environment.cpu_count == 1:
        tags.append("single-core")
    return RunRecord(
        kind="suite",
        environment=environment,
        provenance={
            "jobs": suite.get("jobs"),
            "seed": suite.get("seed"),
            "smoke": suite.get("smoke", False),
            "filter": suite.get("filter"),
            "baseline_source": suite.get("baseline_source"),
        },
        tags=tags,
        measurements=measurements,
        detail=_jsonable(dict(report)),
    )


# -- rt ------------------------------------------------------------------------


def record_from_rt(
    report: Mapping[str, Any],
    env: Optional[EnvironmentFingerprint] = None,
) -> RunRecord:
    """Record for a ``run_rt`` report (the old ``BENCH_rt.json``)."""
    rt = report["rt"]
    measurements: Dict[str, Measurement] = {
        "rt.period_ms": Measurement(float(rt["period_ms"]), unit="ms"),
        "rt.deadline_ms": Measurement(float(rt["deadline_ms"]), unit="ms"),
        "slo.pass": _flag(report["slo"]["verdict"] == "pass"),
    }
    # Step-granularity runs additionally expose the per-iteration SLO
    # numbers under stable ``rt.step.*`` names for the rt.step-* gates.
    if rt.get("granularity") == "step":
        unloaded = report.get("conditions", {}).get("unloaded", {})
        step_response = unloaded.get("response_ms", {})
        if "p99" in step_response:
            measurements["rt.step.p99_ms"] = Measurement(
                float(step_response["p99"]),
                unit="ms",
                higher_is_better=False,
            )
            deadline_ms = float(rt["deadline_ms"])
            if deadline_ms > 0:
                measurements["rt.step.p99_deadline_ratio"] = _ratio(
                    float(step_response["p99"]) / deadline_ms,
                    higher_is_better=False,
                )
        if "miss_rate" in unloaded:
            measurements["rt.step.miss_rate"] = _ratio(
                unloaded["miss_rate"], higher_is_better=False
            )
    for condition, summary in report.get("conditions", {}).items():
        response = summary.get("response_ms", {})
        jitter = summary.get("jitter_ms", {})
        measurements[f"{condition}.miss_rate"] = _ratio(
            summary["miss_rate"], higher_is_better=False
        )
        for quantile in ("p50", "p99", "max"):
            if quantile in response:
                measurements[f"{condition}.response_{quantile}_ms"] = (
                    Measurement(
                        float(response[quantile]),
                        unit="ms",
                        higher_is_better=False,
                    )
                )
        if "p99" in jitter:
            measurements[f"{condition}.jitter_p99_ms"] = Measurement(
                float(jitter["p99"]), unit="ms", higher_is_better=False
            )
        if "busy_s" in summary:
            measurements[f"{condition}.busy_s"] = _seconds(summary["busy_s"])
    degradation = report.get("degradation")
    if degradation is not None:
        measurements["degradation.p50_ratio"] = _ratio(
            degradation["p50_ratio"], higher_is_better=None
        )
        measurements["degradation.p99_ratio"] = _ratio(
            degradation["p99_ratio"], higher_is_better=None
        )
        measurements["degradation.miss_rate_delta"] = Measurement(
            float(degradation["miss_rate_delta"]),
            unit="ratio",
            higher_is_better=False,
        )
    return RunRecord(
        kind="rt",
        environment=_env(env),
        provenance={
            "kernel": rt.get("kernel"),
            "stage": rt.get("stage"),
            "granularity": rt.get("granularity", "run"),
            "jobs": rt.get("jobs"),
            "warmup": rt.get("warmup"),
            "overrun": rt.get("overrun"),
            "smoke": rt.get("smoke", False),
            "calibrated": rt.get("calibrated", False),
            "antagonists": rt.get("antagonists", 0),
            "antagonist_kind": rt.get("antagonist_kind"),
            "config": rt.get("config"),
        },
        tags=["smoke"] if rt.get("smoke") else [],
        measurements=measurements,
        detail=_jsonable(dict(report)),
    )


# -- experiments ---------------------------------------------------------------


def record_from_experiment(
    experiment_id: str,
    wall_s: float,
    payload: Any,
    env: Optional[EnvironmentFingerprint] = None,
) -> RunRecord:
    """Record for one experiment-registry run (wall clock + raw payload)."""
    if env is None:
        env = capture_environment()
    return RunRecord(
        kind="experiment",
        environment=env,
        provenance={"experiment": experiment_id},
        measurements={"experiment.wall_s": _seconds(wall_s)},
        detail={"experiment": experiment_id, "payload": _jsonable(payload)},
    )


# -- legacy dispatch -----------------------------------------------------------


def detect_schema(payload: Mapping[str, Any]) -> str:
    """Classify a loaded JSON document: ``record`` or a legacy layout."""
    if "schema_version" in payload:
        return "record"
    keys = set(payload)
    if {"rt", "conditions", "slo"} <= keys:
        return "rt"
    if {"suite", "cache", "tasks"} <= keys:
        return "suite"
    if payload and all(
        isinstance(row, Mapping) and "speedup" in row
        for row in payload.values()
    ):
        return "bench"
    raise ValueError(
        "unrecognized report document: neither a RunRecord nor one of the "
        "three legacy BENCH_*.json layouts"
    )


def record_from_payload(payload: Mapping[str, Any]) -> RunRecord:
    """Load any supported document — current or legacy — as a record.

    Legacy documents get an :meth:`EnvironmentFingerprint.unknown`
    environment (they never recorded one) and a ``legacy-schema`` tag so
    downstream tooling can tell upgraded history from native records.
    """
    schema = detect_schema(payload)
    if schema == "record":
        return RunRecord.from_dict(payload)
    if schema == "bench":
        record = record_from_bench(payload)
    elif schema == "suite":
        record = record_from_suite(payload)
    else:
        record = record_from_rt(payload)
    record.schema_version = 0
    record.tags.append("legacy-schema")
    return record
