"""Append-only, versioned result history (``.rtrbench_results/``).

Layout::

    .rtrbench_results/
      bench/
        20260806T114210Z-3fa9c1.json    # one RunRecord per run, never rewritten
        LATEST                          # filename of the newest record
      suite/ ...
      rt/ ...

Writes are atomic (temp file + ``os.replace`` in the destination
directory) so concurrent runs and abrupt kills can corrupt nothing; the
``LATEST`` pointer is replaced the same way after the record lands, so it
always names a complete file.  ``RTRBENCH_RESULTS_DIR`` relocates the
store (tests point it at a temp directory).

Loading accepts plain paths as well as store references —
``bench@latest`` (or just ``bench``), ``bench@<run_id>`` — and routes
pre-record documents (the three legacy ``BENCH_*.json`` layouts) through
:func:`repro.results.adapters.record_from_payload`, so the whole history
of a repository stays readable regardless of which schema generation
wrote each file.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Dict, List, Optional

from repro.results.adapters import record_from_payload
from repro.results.record import RunRecord

DEFAULT_RESULTS_DIR = ".rtrbench_results"

#: Name of the per-kind pointer file (not a record; skipped by history).
LATEST_POINTER = "LATEST"


def _atomic_write(path: str, text: str) -> None:
    """Write ``text`` to ``path`` via a same-directory temp file + rename."""
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class ResultStore:
    """Filesystem-backed record history, one subdirectory per record kind."""

    def __init__(self, root: Optional[str] = None) -> None:
        if root is None:
            root = os.environ.get("RTRBENCH_RESULTS_DIR", DEFAULT_RESULTS_DIR)
        self.root = root

    # -- writing ---------------------------------------------------------------

    def save(self, record: RunRecord) -> str:
        """Append a record to its kind's history; returns the file path.

        Run ids are never overwritten: a collision (same second, same
        content digest) gets a numeric suffix, preserving append-only
        semantics.  The kind's ``LATEST`` pointer is updated after the
        record file is durably in place.
        """
        directory = os.path.join(self.root, record.kind)
        os.makedirs(directory, exist_ok=True)
        run_id = record.run_id
        path = os.path.join(directory, f"{run_id}.json")
        bump = 1
        while os.path.exists(path):
            bump += 1
            run_id = f"{record.run_id}-{bump}"
            path = os.path.join(directory, f"{run_id}.json")
        record.run_id = run_id
        payload = json.dumps(record.to_dict(), indent=2, sort_keys=True)
        _atomic_write(path, payload + "\n")
        _atomic_write(
            os.path.join(directory, LATEST_POINTER), f"{run_id}.json\n"
        )
        return path

    # -- enumeration -----------------------------------------------------------

    def kinds(self) -> List[str]:
        """Record kinds with at least one stored record."""
        if not os.path.isdir(self.root):
            return []
        return sorted(
            name
            for name in os.listdir(self.root)
            if os.path.isdir(os.path.join(self.root, name))
            and self.history(name)
        )

    def history(self, kind: str) -> List[str]:
        """All record paths for a kind, oldest first.

        Run ids start with a UTC timestamp, so lexicographic filename
        order is chronological order.
        """
        directory = os.path.join(self.root, kind)
        if not os.path.isdir(directory):
            return []
        return [
            os.path.join(directory, name)
            for name in sorted(os.listdir(directory))
            if name.endswith(".json")
        ]

    def latest_path(self, kind: str) -> Optional[str]:
        """Path of the newest record for a kind (via the LATEST pointer)."""
        pointer = os.path.join(self.root, kind, LATEST_POINTER)
        try:
            with open(pointer) as fh:
                name = fh.read().strip()
        except OSError:
            history = self.history(kind)
            return history[-1] if history else None
        path = os.path.join(self.root, kind, name)
        return path if os.path.exists(path) else None

    def latest(self, kind: str) -> Optional[RunRecord]:
        """The newest record for a kind, or ``None`` when none stored."""
        path = self.latest_path(kind)
        return None if path is None else self.load(path)

    # -- loading ---------------------------------------------------------------

    def load(self, ref: str) -> RunRecord:
        """Load a record by path or store reference.

        Accepted forms: a filesystem path (current or legacy schema),
        ``<kind>`` / ``<kind>@latest`` (newest record of that kind), and
        ``<kind>@<run_id>``.
        """
        if os.path.exists(ref):
            return self._load_file(ref)
        kind, _, selector = ref.partition("@")
        directory = os.path.join(self.root, kind)
        if not os.path.isdir(directory):
            raise FileNotFoundError(
                f"no such record reference {ref!r}: neither a file nor a "
                f"kind in {self.root!r}"
            )
        if selector in ("", "latest"):
            path = self.latest_path(kind)
            if path is None:
                raise FileNotFoundError(
                    f"no records stored for kind {kind!r} in {self.root!r}"
                )
            return self._load_file(path)
        path = os.path.join(directory, f"{selector}.json")
        if not os.path.exists(path):
            raise FileNotFoundError(
                f"no record {selector!r} for kind {kind!r} in {self.root!r}"
            )
        return self._load_file(path)

    @staticmethod
    def _load_file(path: str) -> RunRecord:
        with open(path) as fh:
            payload: Dict[str, Any] = json.load(fh)
        return record_from_payload(payload)
