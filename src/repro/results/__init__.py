"""Unified run-record pipeline: typed results, versioned storage, gates.

Every result producer in the suite — the hot-path perf bench, the
parallel suite executor, the periodic real-time runner, the experiment
registry — emits one :class:`~repro.results.record.RunRecord`: a typed,
schema-versioned document holding flat named measurements, kernel/config
provenance, and an environment fingerprint (interpreter, numpy, CPU
count, git sha, thread-env pinning).  Records are appended to a local
history store (:mod:`repro.results.store`, ``.rtrbench_results/``),
compared across runs and machines (:mod:`repro.results.compare`), and
judged by a *declarative* gate engine (:mod:`repro.results.gates`) that
replaces the three generations of hand-rolled floor checkers the suite
grew before this layer existed.

The layer is self-contained: nothing in here imports from
``repro.harness`` or ``repro.rt``, so producers depend on results and
never the other way around.
"""

from repro.results.adapters import (
    record_from_bench,
    record_from_experiment,
    record_from_payload,
    record_from_rt,
    record_from_suite,
)
from repro.results.compare import MetricDelta, RecordComparison, compare_records
from repro.results.gates import (
    DEFAULT_GATES,
    Gate,
    GateResult,
    default_gates,
    evaluate_gate,
    evaluate_gates,
    gates_from_dicts,
    render_gate_results,
)
from repro.results.record import (
    RECORD_SCHEMA_VERSION,
    THREAD_ENV_VARS,
    EnvironmentFingerprint,
    Measurement,
    RunRecord,
    capture_environment,
    pinned_thread_env,
)
from repro.results.store import ResultStore

__all__ = [
    "RECORD_SCHEMA_VERSION",
    "THREAD_ENV_VARS",
    "DEFAULT_GATES",
    "EnvironmentFingerprint",
    "Gate",
    "GateResult",
    "Measurement",
    "MetricDelta",
    "RecordComparison",
    "ResultStore",
    "RunRecord",
    "capture_environment",
    "compare_records",
    "default_gates",
    "evaluate_gate",
    "evaluate_gates",
    "gates_from_dicts",
    "pinned_thread_env",
    "record_from_bench",
    "record_from_experiment",
    "record_from_payload",
    "record_from_rt",
    "record_from_suite",
    "render_gate_results",
]
