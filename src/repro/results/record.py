"""Typed run records: the one result schema every producer emits.

A :class:`RunRecord` is the suite's unit of reporting: a flat mapping of
named :class:`Measurement` values plus the context needed to interpret
them later — which producer made it (``kind``), with what configuration
(``provenance``), on what machine (``environment``), and under which
schema generation (``schema_version``).  The measurement namespace is
flat and dotted (``raycast.speedup``, ``unloaded.response_p99_ms``) so
the gate engine and the comparator can address metrics as data without
knowing any producer's nested report layout; the producer's full nested
payload rides along untouched in ``detail`` for the human renderers.

Schema generations:

* 0 — the three ad-hoc report layouts (``BENCH_hotpaths.json``,
  ``BENCH_suite.json``, ``BENCH_rt.json``) written before this layer
  existed; :mod:`repro.results.adapters` upgrades them on load.
* 2 — the current ``RunRecord`` document (1 is skipped so a missing
  ``schema_version`` key can never be confused with the first typed
  generation).
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import platform
import subprocess
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional

#: Current generation of the RunRecord document.
RECORD_SCHEMA_VERSION = 2

#: Thread-count environment variables that change numpy/BLAS timing.
#: Pinning them (see :func:`pinned_thread_env`) keeps hot-path numbers
#: stable run to run; recording them makes the fingerprint explain why
#: two machines' timings differ when they weren't pinned.
THREAD_ENV_VARS = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
)


@contextlib.contextmanager
def pinned_thread_env(threads: int = 1) -> Iterator[Dict[str, str]]:
    """Pin every :data:`THREAD_ENV_VARS` entry for the enclosed block.

    Variables the user already set are respected (their value is what
    gets recorded); unset ones are pinned to ``threads`` and restored to
    unset on exit.  Yields the effective mapping so callers can stash it
    in the environment fingerprint.  Pinning is best-effort — BLAS
    libraries read some of these at import time — which is exactly why
    the *observed* values are recorded rather than assumed.
    """
    pinned: Dict[str, Optional[str]] = {}
    effective: Dict[str, str] = {}
    try:
        for var in THREAD_ENV_VARS:
            if var in os.environ:
                effective[var] = os.environ[var]
            else:
                pinned[var] = None
                os.environ[var] = str(threads)
                effective[var] = str(threads)
        yield effective
    finally:
        for var in pinned:
            os.environ.pop(var, None)


def _git_sha() -> Optional[str]:
    """Current git HEAD sha, or ``None`` outside a repository."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


@dataclass
class EnvironmentFingerprint:
    """Where a record was produced: the axes timings vary along."""

    python: str = ""
    numpy: str = ""
    platform: str = ""
    cpu_count: int = 0
    git_sha: Optional[str] = None
    thread_env: Dict[str, str] = field(default_factory=dict)

    def digest(self) -> str:
        """Short stable hash of the fingerprint, for quick comparability."""
        payload = json.dumps(asdict(self), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()[:12]

    def differences(self, other: "EnvironmentFingerprint") -> List[str]:
        """Names of the fields on which two fingerprints disagree."""
        mine, theirs = asdict(self), asdict(other)
        return sorted(key for key in mine if mine[key] != theirs[key])

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict form for JSON serialization."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "EnvironmentFingerprint":
        """Rebuild a fingerprint from its ``as_dict`` form."""
        return cls(
            python=payload.get("python", ""),
            numpy=payload.get("numpy", ""),
            platform=payload.get("platform", ""),
            cpu_count=int(payload.get("cpu_count", 0) or 0),
            git_sha=payload.get("git_sha"),
            thread_env=dict(payload.get("thread_env", {}) or {}),
        )

    @classmethod
    def unknown(cls) -> "EnvironmentFingerprint":
        """Placeholder for legacy reports that recorded no environment."""
        return cls()


def capture_environment(
    thread_env: Optional[Mapping[str, str]] = None,
) -> EnvironmentFingerprint:
    """Fingerprint the current process's environment.

    ``thread_env`` overrides the observed thread variables — pass the
    mapping yielded by :func:`pinned_thread_env` so the fingerprint
    records the values that were actually in force during measurement.
    """
    try:
        import numpy

        numpy_version = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dependency
        numpy_version = ""
    if thread_env is None:
        thread_env = {
            var: os.environ[var]
            for var in THREAD_ENV_VARS
            if var in os.environ
        }
    return EnvironmentFingerprint(
        python=platform.python_version(),
        numpy=numpy_version,
        platform=platform.platform(),
        cpu_count=os.cpu_count() or 0,
        git_sha=_git_sha(),
        thread_env=dict(thread_env),
    )


@dataclass
class Measurement:
    """One named scalar: a timing, a ratio, a count, a pass bit.

    ``higher_is_better`` orients regression detection (``None`` means
    direction-free, e.g. an operation count that should simply match).
    """

    value: float
    unit: str = ""
    higher_is_better: Optional[bool] = None

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict form for JSON serialization."""
        return {
            "value": self.value,
            "unit": self.unit,
            "higher_is_better": self.higher_is_better,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Measurement":
        """Rebuild a measurement from its ``as_dict`` form."""
        return cls(
            value=float(payload["value"]),
            unit=payload.get("unit", ""),
            higher_is_better=payload.get("higher_is_better"),
        )


@dataclass
class RunRecord:
    """A schema-versioned, self-describing result document."""

    kind: str
    run_id: str = ""
    created_at: str = ""
    schema_version: int = RECORD_SCHEMA_VERSION
    environment: EnvironmentFingerprint = field(
        default_factory=EnvironmentFingerprint.unknown
    )
    provenance: Dict[str, Any] = field(default_factory=dict)
    tags: List[str] = field(default_factory=list)
    measurements: Dict[str, Measurement] = field(default_factory=dict)
    detail: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.created_at:
            self.created_at = time.strftime(
                "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
            )
        if not self.run_id:
            stamp = time.strftime("%Y%m%dT%H%M%SZ", time.gmtime())
            digest = hashlib.sha256(
                json.dumps(
                    {
                        "kind": self.kind,
                        "measurements": {
                            name: m.value
                            for name, m in self.measurements.items()
                        },
                        "provenance": self.provenance,
                    },
                    sort_keys=True,
                    default=repr,
                ).encode()
            ).hexdigest()[:6]
            self.run_id = f"{stamp}-{digest}"

    # -- metric access ---------------------------------------------------------

    def metric(self, name: str) -> Optional[float]:
        """Value of one measurement, or ``None`` when absent."""
        measurement = self.measurements.get(name)
        return None if measurement is None else measurement.value

    def metric_names(self) -> List[str]:
        """All measurement names, sorted."""
        return sorted(self.measurements)

    def has_tag(self, tag: str) -> bool:
        """Whether the record carries ``tag`` (e.g. ``smoke``)."""
        return tag in self.tags

    # -- serialization ---------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """The canonical JSON document (what the store writes)."""
        return {
            "schema_version": self.schema_version,
            "kind": self.kind,
            "run_id": self.run_id,
            "created_at": self.created_at,
            "environment": self.environment.as_dict(),
            "provenance": self.provenance,
            "tags": list(self.tags),
            "measurements": {
                name: m.as_dict()
                for name, m in sorted(self.measurements.items())
            },
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RunRecord":
        """Rebuild a record from its ``to_dict`` document.

        Rejects pre-record (legacy) layouts — those go through
        :func:`repro.results.adapters.record_from_payload` instead.
        """
        if "schema_version" not in payload or "kind" not in payload:
            raise ValueError(
                "not a RunRecord document (missing schema_version/kind); "
                "use repro.results.adapters.record_from_payload for legacy "
                "reports"
            )
        return cls(
            kind=payload["kind"],
            run_id=payload.get("run_id", ""),
            created_at=payload.get("created_at", ""),
            schema_version=int(payload["schema_version"]),
            environment=EnvironmentFingerprint.from_dict(
                payload.get("environment", {}) or {}
            ),
            provenance=dict(payload.get("provenance", {}) or {}),
            tags=list(payload.get("tags", []) or []),
            measurements={
                name: Measurement.from_dict(m)
                for name, m in (payload.get("measurements", {}) or {}).items()
            },
            detail=dict(payload.get("detail", {}) or {}),
        )
