"""Declarative regression gates: floors and invariants as data, not code.

Before this layer the suite had three hand-rolled checkers — bench
speedup floors, suite determinism/speedup floors, rt SLO floors — each a
bespoke function over its own report layout.  A :class:`Gate` re-expresses
one such check as a datum: *which* records it applies to (``kind`` +
``skip_tags``), *which* metric it reads, and *what* must hold — either a
fixed threshold (``op`` + ``threshold``) or a bounded regression against
a stored baseline (``baseline`` + ``max_regression``).  The engine
(:func:`evaluate_gates`) is the single generic interpreter, so a new
subsystem adds gates by appending dicts, not by writing another checker.

:data:`DEFAULT_GATES` carries the suite's shipped policy and reproduces
every pass/fail verdict the three retired ad-hoc checkers gave on the
same data (``tests/test_results_gates.py`` proves this against frozen
copies of the old logic on pre-migration fixtures).
"""

from __future__ import annotations

import json
import math
import operator
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional

from repro.results.record import RunRecord
from repro.results.store import ResultStore

#: Comparators a gate may name.  ``==`` / ``!=`` are exact — meant for
#: pass-bits and counts, not timings.
OPS: Dict[str, Callable[[float, float], bool]] = {
    ">=": operator.ge,
    ">": operator.gt,
    "<=": operator.le,
    "<": operator.lt,
    "==": operator.eq,
    "!=": operator.ne,
}

#: Policies for a gate whose metric is absent from the record.
ON_MISSING = ("fail", "skip")


@dataclass(frozen=True)
class Gate:
    """One declarative check against a record's metric.

    Exactly one of ``threshold`` (fixed bound) or ``baseline`` (a store
    reference such as ``"latest"`` or a run id, compared via the
    measurement's ``higher_is_better`` direction with ``max_regression``
    slack) must be set.
    """

    name: str
    kind: str
    metric: str
    op: str = ">="
    threshold: Optional[float] = None
    baseline: Optional[str] = None
    max_regression: float = 0.0
    on_missing: str = "fail"
    skip_tags: tuple = ()

    def __post_init__(self) -> None:
        if self.op not in OPS:
            raise ValueError(
                f"gate {self.name!r}: unknown op {self.op!r} "
                f"(have: {', '.join(OPS)})"
            )
        if self.on_missing not in ON_MISSING:
            raise ValueError(
                f"gate {self.name!r}: on_missing must be one of "
                f"{ON_MISSING}, got {self.on_missing!r}"
            )
        if (self.threshold is None) == (self.baseline is None):
            raise ValueError(
                f"gate {self.name!r}: exactly one of threshold/baseline "
                "must be set"
            )

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Gate":
        """Parse one gate declaration (e.g. an entry of a gates file)."""
        return cls(
            name=payload["name"],
            kind=payload["kind"],
            metric=payload["metric"],
            op=payload.get("op", ">="),
            threshold=payload.get("threshold"),
            baseline=payload.get("baseline"),
            max_regression=float(payload.get("max_regression", 0.0)),
            on_missing=payload.get("on_missing", "fail"),
            skip_tags=tuple(payload.get("skip_tags", ())),
        )

    def to_dict(self) -> Dict[str, Any]:
        """Serialize back to the declaration form ``from_dict`` accepts."""
        payload: Dict[str, Any] = {
            "name": self.name,
            "kind": self.kind,
            "metric": self.metric,
            "op": self.op,
            "on_missing": self.on_missing,
        }
        if self.threshold is not None:
            payload["threshold"] = self.threshold
        if self.baseline is not None:
            payload["baseline"] = self.baseline
            payload["max_regression"] = self.max_regression
        if self.skip_tags:
            payload["skip_tags"] = list(self.skip_tags)
        return payload


@dataclass
class GateResult:
    """Outcome of one gate against one record."""

    gate: str
    metric: str
    status: str  # "pass" | "fail" | "skip"
    value: Optional[float] = None
    reason: str = ""

    @property
    def failed(self) -> bool:
        """Whether this gate ruled FAIL."""
        return self.status == "fail"

    @property
    def passed(self) -> bool:
        """Whether this gate ruled PASS (skips are neither)."""
        return self.status == "pass"


#: The shipped gate policy.  These declarations are the successors of
#: ``harness.bench.check_floors`` (speedup floors), ``harness.suite.
#: check_suite_floors`` (failed tasks, determinism, parallel/cache
#: floors), and ``rt.run.check_rt_floors`` (SLO + interference), with the
#: old smoke exemptions expressed as ``skip_tags``.  Structural suite
#: gates (failed tasks, determinism) stay active even on smoke records:
#: they are machine-independent, so CI smoke runs can enforce them.
DEFAULT_GATES: List[Dict[str, Any]] = [
    # bench: vectorized-over-reference speedup floors (PR 1).
    {"name": "bench.raycast-speedup-floor", "kind": "bench",
     "metric": "raycast.speedup", "op": ">=", "threshold": 5.0,
     "on_missing": "fail", "skip_tags": ["smoke"]},
    {"name": "bench.collision-speedup-floor", "kind": "bench",
     "metric": "collision.speedup", "op": ">=", "threshold": 3.0,
     "on_missing": "fail", "skip_tags": ["smoke"]},
    {"name": "bench.nn-speedup-floor", "kind": "bench",
     "metric": "nn.speedup", "op": ">=", "threshold": 2.0,
     "on_missing": "fail", "skip_tags": ["smoke"]},
    # Flat-array search core floors (PR 7).  ``on_missing: skip`` (not
    # fail): pre-PR-7 bench records have no search_* metrics and the
    # shipped policy must keep reproducing their legacy verdicts.
    {"name": "bench.search-dijkstra-speedup-floor", "kind": "bench",
     "metric": "search_dijkstra.speedup", "op": ">=", "threshold": 5.0,
     "on_missing": "skip", "skip_tags": ["smoke"]},
    {"name": "bench.search-pp3d-speedup-floor", "kind": "bench",
     "metric": "search_pp3d.speedup", "op": ">=", "threshold": 2.0,
     "on_missing": "skip", "skip_tags": ["smoke"]},
    # suite: structural invariants (active in smoke) + timing floors.
    {"name": "suite.no-failed-tasks", "kind": "suite",
     "metric": "suite.failures", "op": "==", "threshold": 0.0,
     "on_missing": "fail"},
    {"name": "suite.determinism", "kind": "suite",
     "metric": "determinism.match", "op": "==", "threshold": 1.0,
     "on_missing": "skip"},
    # Parallel-executor floors (PR 6): speedup, worker utilization, and
    # dispatch overhead.  All skip on single-core hardware — one usable
    # CPU cannot express parallelism — and in smoke mode (tiny tasks,
    # overhead-dominated); the dispatch-overhead ceiling is structural
    # enough to stay active wherever a pool actually ran.
    {"name": "suite.parallel-speedup-floor", "kind": "suite",
     "metric": "suite.parallel_speedup", "op": ">=", "threshold": 2.0,
     "on_missing": "skip", "skip_tags": ["smoke", "single-core"]},
    {"name": "suite.worker-utilization-floor", "kind": "suite",
     "metric": "suite.worker_utilization", "op": ">=", "threshold": 0.4,
     "on_missing": "skip", "skip_tags": ["smoke", "single-core"]},
    {"name": "suite.dispatch-overhead-ceiling", "kind": "suite",
     "metric": "suite.dispatch_overhead_share", "op": "<=",
     "threshold": 0.15, "on_missing": "skip", "skip_tags": ["smoke"]},
    {"name": "suite.cache-hit-speedup-floor", "kind": "suite",
     "metric": "cache.hit_speedup", "op": ">=", "threshold": 5.0,
     "on_missing": "fail", "skip_tags": ["smoke"]},
    # rt: the SLO verdict and honest interference degradation.
    {"name": "rt.slo-pass", "kind": "rt",
     "metric": "slo.pass", "op": "==", "threshold": 1.0,
     "on_missing": "fail", "skip_tags": ["smoke"]},
    {"name": "rt.interference-degrades", "kind": "rt",
     "metric": "degradation.p99_ratio", "op": ">", "threshold": 1.0,
     "on_missing": "skip", "skip_tags": ["smoke"]},
    # rt, step granularity: per-iteration SLO numbers.  ``on_missing:
    # skip`` keeps run-granularity records (which never emit rt.step.*)
    # judged exactly as before.
    {"name": "rt.step-miss-rate-ceiling", "kind": "rt",
     "metric": "rt.step.miss_rate", "op": "<=", "threshold": 0.1,
     "on_missing": "skip", "skip_tags": ["smoke"]},
    {"name": "rt.step-p99-deadline-ceiling", "kind": "rt",
     "metric": "rt.step.p99_deadline_ratio", "op": "<=", "threshold": 1.0,
     "on_missing": "skip", "skip_tags": ["smoke"]},
]


def gates_from_dicts(payloads: Iterable[Mapping[str, Any]]) -> List[Gate]:
    """Parse a list of gate declarations (e.g. loaded from JSON)."""
    return [Gate.from_dict(p) for p in payloads]


def gates_from_file(path: str) -> List[Gate]:
    """Load gate declarations from a JSON file (a list of gate dicts)."""
    with open(path) as fh:
        payloads = json.load(fh)
    if not isinstance(payloads, list):
        raise ValueError(f"{path}: expected a JSON list of gate objects")
    return gates_from_dicts(payloads)


def default_gates() -> List[Gate]:
    """The shipped policy, parsed."""
    return gates_from_dicts(DEFAULT_GATES)


def _evaluate_threshold(gate: Gate, value: float) -> GateResult:
    bound = gate.threshold
    assert bound is not None
    if OPS[gate.op](value, bound):
        return GateResult(
            gate.name, gate.metric, "pass", value,
            f"{value:.6g} {gate.op} {bound:.6g}",
        )
    return GateResult(
        gate.name, gate.metric, "fail", value,
        f"{gate.metric} = {value:.6g} violates {gate.op} {bound:.6g}",
    )


def _evaluate_baseline(
    gate: Gate, record: RunRecord, value: float, store: Optional[ResultStore]
) -> GateResult:
    if store is None:
        return _missing(
            gate, value, "baseline gate evaluated without a result store"
        )
    assert gate.baseline is not None
    ref = (
        f"{record.kind}@{gate.baseline}"
        if "@" not in gate.baseline and not gate.baseline.count("/")
        else gate.baseline
    )
    try:
        baseline = store.load(ref)
    except (OSError, ValueError) as exc:
        return _missing(gate, value, f"no baseline record ({exc})")
    if baseline.run_id == record.run_id:
        history = store.history(record.kind)
        if len(history) < 2:
            return _missing(
                gate, value, "baseline is the record under test"
            )
        baseline = store._load_file(history[-2])
    base_value = baseline.metric(gate.metric)
    if base_value is None or math.isnan(base_value):
        return _missing(
            gate, value,
            f"baseline {baseline.run_id} lacks metric {gate.metric!r}",
        )
    measurement = record.measurements[gate.metric]
    higher = measurement.higher_is_better
    if higher is None:
        return _missing(
            gate, value,
            f"{gate.metric!r} is direction-free; baseline gates need "
            "higher_is_better",
        )
    slack = abs(base_value) * gate.max_regression
    bound = base_value - slack if higher else base_value + slack
    ok = value >= bound if higher else value <= bound
    verb = ">=" if higher else "<="
    detail = (
        f"{value:.6g} {verb} {bound:.6g} "
        f"(baseline {baseline.run_id}: {base_value:.6g}, "
        f"slack {gate.max_regression:.1%})"
    )
    if ok:
        return GateResult(gate.name, gate.metric, "pass", value, detail)
    return GateResult(
        gate.name, gate.metric, "fail", value,
        f"{gate.metric} regressed vs baseline: {detail}",
    )


def _missing(gate: Gate, value: Optional[float], why: str) -> GateResult:
    if gate.on_missing == "fail":
        return GateResult(gate.name, gate.metric, "fail", value, why)
    return GateResult(gate.name, gate.metric, "skip", value, why)


def evaluate_gate(
    gate: Gate, record: RunRecord, store: Optional[ResultStore] = None
) -> GateResult:
    """Judge one gate against one record (kind/tag filtering included)."""
    if gate.kind != record.kind:
        return GateResult(
            gate.name, gate.metric, "skip", None,
            f"gate targets kind {gate.kind!r}, record is {record.kind!r}",
        )
    for tag in gate.skip_tags:
        if record.has_tag(tag):
            return GateResult(
                gate.name, gate.metric, "skip", None,
                f"record tagged {tag!r}",
            )
    value = record.metric(gate.metric)
    if value is None:
        return _missing(
            gate, None, f"metric {gate.metric!r} absent from record"
        )
    if math.isnan(value):
        # NaN never satisfies a bound; surface it explicitly instead of
        # relying on comparison semantics.
        return GateResult(
            gate.name, gate.metric, "fail", value,
            f"metric {gate.metric!r} is NaN",
        )
    if gate.threshold is not None:
        return _evaluate_threshold(gate, value)
    return _evaluate_baseline(gate, record, value, store)


def evaluate_gates(
    record: RunRecord,
    gates: Optional[Iterable[Gate]] = None,
    store: Optional[ResultStore] = None,
) -> List[GateResult]:
    """Judge a record against a gate set (default: the shipped policy).

    Gates declared for other record kinds are dropped from the result
    (rather than reported as skips) so one shared policy list can cover
    every producer without cluttering each verdict table.
    """
    if gates is None:
        gates = default_gates()
    return [
        evaluate_gate(gate, record, store)
        for gate in gates
        if gate.kind == record.kind
    ]


def gate_failures(results: Iterable[GateResult]) -> List[GateResult]:
    """The failing subset of a gate evaluation (empty = verdict PASS)."""
    return [r for r in results if r.failed]


def render_gate_results(
    record: RunRecord, results: Iterable[GateResult]
) -> str:
    """Text verdict table for one record's gate evaluation."""
    results = list(results)
    lines = [
        f"gate {record.kind}@{record.run_id} "
        f"(schema v{record.schema_version}"
        + (f", tags: {', '.join(record.tags)}" if record.tags else "")
        + ")"
    ]
    width = max([len(r.gate) for r in results] or [4])
    for r in results:
        lines.append(f"  {r.gate:<{width}}  {r.status.upper():<4}  {r.reason}")
    failures = gate_failures(results)
    applicable = [r for r in results if r.status != "skip"]
    lines.append(
        f"  -> {'FAIL' if failures else 'PASS'} "
        f"({len(applicable)} applicable, {len(failures)} failed, "
        f"{len(results) - len(applicable)} skipped)"
    )
    return "\n".join(lines)
