"""Record-vs-record metric comparison with noise tolerance.

Timing measurements on shared machines are noisy; a raw delta table
would cry wolf on every run.  :func:`compare_records` therefore labels
each shared metric as within or outside a configurable *relative* noise
tolerance, flags directional regressions using each measurement's
``higher_is_better`` orientation, and reports the environment-fingerprint
fields on which the two records disagree — the first thing to check when
two runs' numbers diverge.
"""

from __future__ import annotations

import fnmatch
import math
from dataclasses import dataclass, field
from typing import List, Optional

from repro.results.record import RunRecord

#: Default relative noise tolerance (5%): well above timer jitter on a
#: quiet machine, well below any speedup floor's margin.
DEFAULT_TOLERANCE = 0.05


@dataclass
class MetricDelta:
    """One shared metric's movement from record A to record B."""

    name: str
    unit: str
    a: float
    b: float
    delta: float
    #: ``(b - a) / |a|``; ``None`` when A is zero or either side is NaN.
    rel_delta: Optional[float]
    #: Whether the movement is inside the noise tolerance.
    within_tolerance: bool
    #: True when the metric moved outside tolerance *in the bad
    #: direction* for its ``higher_is_better`` orientation (always False
    #: for direction-free metrics).
    regression: bool


@dataclass
class RecordComparison:
    """Full comparison result, ready for rendering or gating."""

    a_id: str
    b_id: str
    kind: str
    tolerance: float
    deltas: List[MetricDelta] = field(default_factory=list)
    only_in_a: List[str] = field(default_factory=list)
    only_in_b: List[str] = field(default_factory=list)
    environment_differences: List[str] = field(default_factory=list)

    def regressions(self) -> List[MetricDelta]:
        """Deltas that moved in the bad direction beyond tolerance."""
        return [d for d in self.deltas if d.regression]

    def outside_tolerance(self) -> List[MetricDelta]:
        """Deltas that moved beyond tolerance in either direction."""
        return [d for d in self.deltas if not d.within_tolerance]


def _delta(
    name: str,
    unit: str,
    higher_is_better: Optional[bool],
    a: float,
    b: float,
    tolerance: float,
) -> MetricDelta:
    if math.isnan(a) or math.isnan(b):
        # Two NaNs are "equal enough"; one NaN is always a real change.
        within = math.isnan(a) and math.isnan(b)
        return MetricDelta(
            name, unit, a, b, b - a, None, within, regression=not within
        )
    delta = b - a
    rel = delta / abs(a) if a != 0.0 else None
    if rel is not None:
        within = abs(rel) <= tolerance
    else:
        within = delta == 0.0
    regression = False
    if not within and higher_is_better is not None:
        regression = (delta < 0.0) if higher_is_better else (delta > 0.0)
    return MetricDelta(name, unit, a, b, delta, rel, within, regression)


def compare_records(
    a: RunRecord,
    b: RunRecord,
    tolerance: float = DEFAULT_TOLERANCE,
    metrics: Optional[str] = None,
) -> RecordComparison:
    """Compare B against baseline A metric by metric.

    ``metrics`` restricts the comparison to names matching a glob
    (``'*.speedup'``, ``'unloaded.*'``).  Comparing records of different
    kinds is allowed (their shared-metric set is typically empty) so the
    CLI can fail gracefully instead of refusing.
    """
    names_a = set(a.measurements)
    names_b = set(b.measurements)
    if metrics is not None:
        names_a = {n for n in names_a if fnmatch.fnmatchcase(n, metrics)}
        names_b = {n for n in names_b if fnmatch.fnmatchcase(n, metrics)}
    shared = sorted(names_a & names_b)
    deltas = []
    for name in shared:
        ma, mb = a.measurements[name], b.measurements[name]
        deltas.append(
            _delta(
                name,
                ma.unit or mb.unit,
                ma.higher_is_better,
                ma.value,
                mb.value,
                tolerance,
            )
        )
    return RecordComparison(
        a_id=a.run_id,
        b_id=b.run_id,
        kind=a.kind if a.kind == b.kind else f"{a.kind}-vs-{b.kind}",
        tolerance=tolerance,
        deltas=deltas,
        only_in_a=sorted(names_a - names_b),
        only_in_b=sorted(names_b - names_a),
        environment_differences=a.environment.differences(b.environment),
    )


def render_comparison(comparison: RecordComparison) -> str:
    """Fixed-width text view of a comparison, regressions flagged."""
    lines = [
        f"compare {comparison.a_id} (A) -> {comparison.b_id} (B) "
        f"[{comparison.kind}], tolerance {comparison.tolerance:.1%}"
    ]
    if comparison.environment_differences:
        lines.append(
            "environment differs: "
            + ", ".join(comparison.environment_differences)
        )
    header = f"{'metric':<40} {'A':>12} {'B':>12} {'delta':>9} {'':<10}"
    lines.append(header)
    lines.append("-" * len(header))
    for d in comparison.deltas:
        rel = f"{d.rel_delta:+.1%}" if d.rel_delta is not None else "n/a"
        if d.regression:
            label = f"REGRESSED {rel}"
        elif not d.within_tolerance:
            label = f"changed {rel}"
        else:
            label = f"~ {rel}"
        lines.append(
            f"{d.name:<40} {d.a:>12.6g} {d.b:>12.6g} {d.delta:>+9.3g} {label}"
        )
    for name in comparison.only_in_a:
        lines.append(f"{name:<40} only in A")
    for name in comparison.only_in_b:
        lines.append(f"{name:<40} only in B")
    summary = (
        f"{len(comparison.deltas)} shared metrics, "
        f"{len(comparison.outside_tolerance())} outside tolerance, "
        f"{len(comparison.regressions())} regressions"
    )
    lines.append(summary)
    return "\n".join(lines)
