"""Range-bearing landmark sensor (the ekfslam measurement model).

The paper's EKF-SLAM robot "constantly reads its distance and angle with
the landmarks from its sensors" with Gaussian noise added to each
measurement — exactly what this sensor produces.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.geometry.transforms import SE2, wrap_angle


@dataclass(frozen=True)
class RangeBearing:
    """One landmark observation: distance, relative angle, landmark id."""

    range: float
    bearing: float
    landmark_id: int


class LandmarkSensor:
    """Observes point landmarks within range as (range, bearing) pairs.

    Landmark identity is known (the classic known-correspondence SLAM
    setting the paper's six-landmark scenario uses).
    """

    def __init__(
        self,
        landmarks: np.ndarray,
        max_range: float = 15.0,
        range_sigma: float = 0.1,
        bearing_sigma: float = 0.02,
    ) -> None:
        landmarks = np.asarray(landmarks, dtype=float)
        if landmarks.ndim != 2 or landmarks.shape[1] != 2:
            raise ValueError("landmarks must be an (n, 2) array")
        self.landmarks = landmarks
        self.max_range = float(max_range)
        self.range_sigma = float(range_sigma)
        self.bearing_sigma = float(bearing_sigma)

    @property
    def n_landmarks(self) -> int:
        """Number of landmarks in the environment."""
        return len(self.landmarks)

    def true_observation(self, pose: SE2, landmark_id: int) -> RangeBearing:
        """Noise-free observation of one landmark from ``pose``."""
        lx, ly = self.landmarks[landmark_id]
        dx, dy = lx - pose.x, ly - pose.y
        return RangeBearing(
            range=math.hypot(dx, dy),
            bearing=wrap_angle(math.atan2(dy, dx) - pose.theta),
            landmark_id=landmark_id,
        )

    def observe(
        self, pose: SE2, rng: Optional[np.random.Generator] = None
    ) -> List[RangeBearing]:
        """Noisy observations of all landmarks within ``max_range``."""
        observations = []
        for i in range(self.n_landmarks):
            obs = self.true_observation(pose, i)
            if obs.range > self.max_range:
                continue
            if rng is not None:
                obs = RangeBearing(
                    range=max(0.0, obs.range + float(rng.normal(0, self.range_sigma))),
                    bearing=wrap_angle(
                        obs.bearing + float(rng.normal(0, self.bearing_sigma))
                    ),
                    landmark_id=i,
                )
            observations.append(obs)
        return observations
