"""Sensor models: odometry, laser rangefinder, and landmark observations.

The perception kernels consume these: pfl fuses odometry with laser scans,
ekfslam fuses odometry with range-bearing landmark measurements.  All
models add configurable Gaussian noise, as the paper does ("We add
Gaussian-distributed noise to each sensor measurement").
"""

from repro.sensors.landmarks import LandmarkSensor, RangeBearing
from repro.sensors.lidar import Lidar
from repro.sensors.noise import GaussianNoise
from repro.sensors.odometry import OdometryModel, OdometryReading

__all__ = [
    "LandmarkSensor",
    "RangeBearing",
    "Lidar",
    "GaussianNoise",
    "OdometryModel",
    "OdometryReading",
]
