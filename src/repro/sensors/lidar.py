"""Laser rangefinder model built on grid ray casting."""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.geometry.grid2d import OccupancyGrid2D
from repro.geometry.raycast import cast_rays_batch, cast_rays_dda_batch


class Lidar:
    """A planar laser scanner: ``n_beams`` rays across ``fov`` radians.

    ``measure`` produces a noisy scan from the robot's true pose (workload
    generation); ``expected_ranges`` produces the noise-free ranges a
    hypothesis pose *would* see (the particle filter's ray-casting step).
    """

    def __init__(
        self,
        n_beams: int = 36,
        fov: float = 2.0 * math.pi,
        max_range: float = 20.0,
        noise_sigma: float = 0.05,
    ) -> None:
        if n_beams < 1:
            raise ValueError("n_beams must be >= 1")
        if max_range <= 0:
            raise ValueError("max_range must be positive")
        self.n_beams = int(n_beams)
        self.fov = float(fov)
        self.max_range = float(max_range)
        self.noise_sigma = float(noise_sigma)

    def beam_angles(self, theta: float) -> np.ndarray:
        """World-frame beam directions for a robot heading ``theta``."""
        offsets = np.linspace(
            -self.fov / 2.0, self.fov / 2.0, self.n_beams, endpoint=False
        )
        return theta + offsets

    def expected_ranges(
        self,
        grid: OccupancyGrid2D,
        x: float,
        y: float,
        theta: float,
        count=None,
        backend: str = "reference",
    ) -> np.ndarray:
        """Noise-free ranges from a pose (the measurement hypothesis)."""
        angles = self.beam_angles(theta)
        xs = np.full(self.n_beams, x)
        ys = np.full(self.n_beams, y)
        caster = (
            cast_rays_dda_batch if backend == "vectorized" else cast_rays_batch
        )
        return caster(grid, xs, ys, angles, self.max_range, count=count)

    def expected_ranges_batch(
        self,
        grid: OccupancyGrid2D,
        poses: np.ndarray,
        count=None,
        backend: str = "reference",
    ) -> np.ndarray:
        """Ranges for every pose in an ``(n, 3)`` array: ``(n, beams)``.

        Flattens all particle x beam rays into one vectorized cast — this
        is the hot loop the paper measures at 67-78% of pfl time.  With
        ``backend="vectorized"`` the rays go through the skip/scan DDA
        caster (:func:`~repro.geometry.raycast.cast_rays_dda_batch`)
        instead of the lock-step marcher.
        """
        poses = np.asarray(poses, dtype=float)
        n = len(poses)
        offsets = np.linspace(
            -self.fov / 2.0, self.fov / 2.0, self.n_beams, endpoint=False
        )
        angles = (poses[:, 2:3] + offsets[None, :]).ravel()
        xs = np.repeat(poses[:, 0], self.n_beams)
        ys = np.repeat(poses[:, 1], self.n_beams)
        caster = (
            cast_rays_dda_batch if backend == "vectorized" else cast_rays_batch
        )
        ranges = caster(grid, xs, ys, angles, self.max_range, count=count)
        return ranges.reshape(n, self.n_beams)

    def measure(
        self,
        grid: OccupancyGrid2D,
        x: float,
        y: float,
        theta: float,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """A noisy scan from the true pose, clipped to [0, max_range]."""
        ranges = self.expected_ranges(grid, x, y, theta)
        if rng is not None and self.noise_sigma > 0.0:
            ranges = ranges + rng.normal(0.0, self.noise_sigma, size=ranges.shape)
        return np.clip(ranges, 0.0, self.max_range)
