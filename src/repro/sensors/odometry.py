"""Probabilistic odometry motion model.

The standard (rot1, trans, rot2) odometry model from Thrun et al.'s
*Probabilistic Robotics*: a pose change is decomposed into an initial
rotation, a translation, and a final rotation; each component is corrupted
with motion-dependent Gaussian noise.  The particle filter uses
``sample_batch`` to propagate every particle hypothesis through one noisy
odometry reading.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.geometry.transforms import SE2, wrap_angle, wrap_angles


@dataclass(frozen=True)
class OdometryReading:
    """One odometry increment in (rot1, trans, rot2) form."""

    rot1: float
    trans: float
    rot2: float


class OdometryModel:
    """Noise model with the four classic alpha parameters.

    ``alpha1`` rotation noise from rotation, ``alpha2`` rotation noise from
    translation, ``alpha3`` translation noise from translation, ``alpha4``
    translation noise from rotation.
    """

    def __init__(
        self,
        alpha1: float = 0.05,
        alpha2: float = 0.005,
        alpha3: float = 0.05,
        alpha4: float = 0.005,
    ) -> None:
        for a in (alpha1, alpha2, alpha3, alpha4):
            if a < 0:
                raise ValueError("alpha parameters must be non-negative")
        self.alpha1 = alpha1
        self.alpha2 = alpha2
        self.alpha3 = alpha3
        self.alpha4 = alpha4

    @staticmethod
    def reading_between(before: SE2, after: SE2) -> OdometryReading:
        """Decompose a true pose change into an odometry reading."""
        dx = after.x - before.x
        dy = after.y - before.y
        trans = math.hypot(dx, dy)
        rot1 = 0.0 if trans < 1e-9 else wrap_angle(
            math.atan2(dy, dx) - before.theta
        )
        rot2 = wrap_angle(after.theta - before.theta - rot1)
        return OdometryReading(rot1, trans, rot2)

    def sample(
        self, pose: SE2, reading: OdometryReading, rng: np.random.Generator
    ) -> SE2:
        """One noisy pose propagated through ``reading``."""
        poses = self.sample_batch(
            np.array([[pose.x, pose.y, pose.theta]]), reading, rng
        )
        return SE2.from_array(poses[0])

    def sample_batch(
        self,
        poses: np.ndarray,
        reading: OdometryReading,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Propagate an ``(n, 3)`` pose array through one noisy reading.

        Each row gets independent noise, implementing the particle
        filter's motion update in one vectorized call.
        """
        poses = np.asarray(poses, dtype=float)
        n = len(poses)
        r1, t, r2 = reading.rot1, reading.trans, reading.rot2
        sd_r1 = math.sqrt(self.alpha1 * r1 * r1 + self.alpha2 * t * t)
        sd_t = math.sqrt(
            self.alpha3 * t * t + self.alpha4 * (r1 * r1 + r2 * r2)
        )
        sd_r2 = math.sqrt(self.alpha1 * r2 * r2 + self.alpha2 * t * t)
        r1_hat = r1 + rng.normal(0.0, sd_r1 or 1e-12, size=n)
        t_hat = t + rng.normal(0.0, sd_t or 1e-12, size=n)
        r2_hat = r2 + rng.normal(0.0, sd_r2 or 1e-12, size=n)
        heading = poses[:, 2] + r1_hat
        out = np.empty_like(poses)
        out[:, 0] = poses[:, 0] + t_hat * np.cos(heading)
        out[:, 1] = poses[:, 1] + t_hat * np.sin(heading)
        out[:, 2] = wrap_angles(heading + r2_hat)
        return out
