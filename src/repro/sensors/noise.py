"""Gaussian noise helpers shared by the sensor models."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class GaussianNoise:
    """Zero-mean Gaussian perturbation with a fixed standard deviation."""

    sigma: float

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ValueError("sigma must be non-negative")

    def perturb(self, value: float, rng: np.random.Generator) -> float:
        """One noisy sample of a scalar measurement."""
        if self.sigma == 0.0:
            return value
        return value + float(rng.normal(0.0, self.sigma))

    def perturb_array(
        self, values: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Element-wise noisy samples of an array of measurements."""
        values = np.asarray(values, dtype=float)
        if self.sigma == 0.0:
            return values.copy()
        return values + rng.normal(0.0, self.sigma, size=values.shape)
