"""Kernel 16.bo — Bayesian optimization policy search (section V.16).

Same ball-throwing task as cem, optimized data-efficiently: a Gaussian
process surrogate models reward as a function of the throw parameters and
an upper-confidence-bound acquisition picks each next trial.  The paper
runs 45 learning iterations; per iteration the acquisition is evaluated
over a candidate set and *sorted* to select the best — bo keeps more
metadata per candidate than cem, making its sort ~6x more expensive, and
the GP fit makes the kernel far more compute-intensive overall.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.control.gp import GaussianProcess
from repro.harness.config import KernelConfig, option
from repro.harness.profiler import PhaseProfiler
from repro.harness.runner import Kernel, registry
from repro.robots.ball_thrower import BallThrower


class BayesianOptimizer:
    """GP + UCB Bayesian optimization over a box-bounded parameter space."""

    def __init__(
        self,
        reward_fn: Callable[[np.ndarray], float],
        bounds: np.ndarray,
        n_candidates: int = 512,
        ucb_beta: float = 2.0,
        length_scale: float = 0.5,
        n_initial: int = 4,
        acquisition: str = "ucb",
        rng: Optional[np.random.Generator] = None,
        profiler: Optional[PhaseProfiler] = None,
    ) -> None:
        bounds = np.asarray(bounds, dtype=float)
        if bounds.ndim != 2 or bounds.shape[1] != 2:
            raise ValueError("bounds must be (dims, 2)")
        if acquisition not in ("ucb", "ei"):
            raise ValueError("acquisition must be 'ucb' or 'ei'")
        self.reward_fn = reward_fn
        self.bounds = bounds
        self.n_candidates = int(n_candidates)
        self.ucb_beta = float(ucb_beta)
        self.n_initial = max(1, int(n_initial))
        self.acquisition = acquisition
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.profiler = profiler if profiler is not None else PhaseProfiler()
        self.gp = GaussianProcess(length_scale=length_scale, signal_var=1.0,
                                  noise_var=1e-4)
        self.observed_x: List[np.ndarray] = []
        self.observed_y: List[float] = []
        self.reward_history: List[float] = []

    def _normalize(self, x: np.ndarray) -> np.ndarray:
        span = self.bounds[:, 1] - self.bounds[:, 0]
        return (x - self.bounds[:, 0]) / span

    def _sample_candidates(self) -> np.ndarray:
        return self.rng.uniform(
            self.bounds[:, 0],
            self.bounds[:, 1],
            size=(self.n_candidates, len(self.bounds)),
        )

    def _evaluate(self, x: np.ndarray) -> float:
        prof = self.profiler
        with prof.phase("rollout"):
            y = float(self.reward_fn(x))
            prof.count("rollouts", 1)
        self.observed_x.append(np.asarray(x, dtype=float))
        self.observed_y.append(y)
        self.reward_history.append(y)
        return y

    def step(self) -> float:
        """One BO iteration: fit GP, score candidates, pick, evaluate."""
        prof = self.profiler
        with prof.phase("gp_fit"):
            x_train = self._normalize(np.vstack(self.observed_x))
            self.gp.fit(x_train, np.asarray(self.observed_y))
            prof.count("gp_fits", 1)
        candidates = self._sample_candidates()
        with prof.phase("acquisition"):
            normalized = self._normalize(candidates)
            if self.acquisition == "ucb":
                scores = self.gp.ucb(normalized, self.ucb_beta)
            else:
                scores = self.gp.expected_improvement(
                    normalized, best_y=max(self.observed_y)
                )
            prof.count("acquisition_evals", self.n_candidates)
        with prof.phase("sort"):
            # bo keeps the full candidate metadata through the sort (the
            # paper's ~6x-more-expensive sort): candidates, means, and
            # scores travel together.
            order = np.argsort(scores)[::-1]
            ranked = candidates[order]
            prof.count("sort_elements", self.n_candidates)
        return self._evaluate(ranked[0])

    def optimize(self, n_iterations: int = 45) -> Tuple[np.ndarray, float]:
        """Run BO; returns (best parameters, best reward)."""
        for _ in range(min(self.n_initial, n_iterations)):
            x0 = self.rng.uniform(self.bounds[:, 0], self.bounds[:, 1])
            self._evaluate(x0)
        for _ in range(n_iterations - self.n_initial):
            self.step()
        best_idx = int(np.argmax(self.observed_y))
        return self.observed_x[best_idx], float(self.observed_y[best_idx])


@dataclass
class BoConfig(KernelConfig):
    """Configuration of the bo kernel (paper: 45 learning iterations)."""

    iterations: int = option(45, "Bayesian optimization iterations")
    candidates: int = option(512, "Acquisition candidate pool size")
    beta: float = option(2.0, "UCB exploration weight")
    goal_x: float = option(3.0, "Target landing distance (m)")
    acquisition: str = option("ucb", "Acquisition function: ucb or ei")


@registry.register
class BoKernel(Kernel):
    """Bayesian optimization policy search on the ball thrower."""

    name = "16.bo"
    stage = "control"
    config_cls = BoConfig
    description = "Bayesian optimization (GP + UCB; sort + GP bound)"

    def setup(self, config: BoConfig) -> BallThrower:
        return BallThrower(goal_x=config.goal_x)

    def run_roi(
        self, config: BoConfig, state: BallThrower, profiler: PhaseProfiler
    ) -> dict:
        bo = BayesianOptimizer(
            reward_fn=state.reward,
            bounds=state.parameter_bounds,
            n_candidates=config.candidates,
            ucb_beta=config.beta,
            acquisition=config.acquisition,
            rng=np.random.default_rng(config.seed),
            profiler=profiler,
        )
        best_params, best_reward = bo.optimize(config.iterations)
        return {
            "best_params": best_params,
            "best_reward": best_reward,
            "reward_history": bo.reward_history,
            "final_landing_error": -best_reward,
        }
