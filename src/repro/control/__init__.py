"""Control kernels: trajectory generation, tracking, and policy learning.

The suite's control stage (paper Table I):

* ``13.dmp`` — dynamic movement primitives (:mod:`.dmp`)
* ``14.mpc`` — model predictive control (:mod:`.mpc`)
* ``15.cem`` — cross-entropy method policy search (:mod:`.cem`)
* ``16.bo``  — Bayesian optimization policy search (:mod:`.bayesopt`)
"""

from repro.control.bayesopt import BayesianOptimizer, BoKernel
from repro.control.cem import CemKernel, CrossEntropyMethod
from repro.control.dmp import DmpKernel, DynamicMovementPrimitive
from repro.control.gp import GaussianProcess
from repro.control.mpc import ModelPredictiveController, MpcKernel

__all__ = [
    "BayesianOptimizer",
    "BoKernel",
    "CemKernel",
    "CrossEntropyMethod",
    "DmpKernel",
    "DynamicMovementPrimitive",
    "GaussianProcess",
    "ModelPredictiveController",
    "MpcKernel",
]
