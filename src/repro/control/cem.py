"""Kernel 15.cem — cross-entropy method policy search (section V.15).

The ball-throwing robot learns its throw parameters (two joint angles and
a force) by Monte Carlo optimization: draw parameter samples from a
Gaussian policy, roll them out in the simulator, *sort* by reward (the
phase the paper measures at roughly a third of execution time), and refit
the policy to the elite fraction.  The paper executes 5 iterations of 15
samples; those are the defaults.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.harness.config import KernelConfig, option
from repro.harness.profiler import PhaseProfiler
from repro.harness.runner import Kernel, registry
from repro.robots.ball_thrower import BallThrower


class CrossEntropyMethod:
    """Gaussian-policy CEM over a black-box reward function."""

    def __init__(
        self,
        reward_fn: Callable[[np.ndarray], float],
        bounds: np.ndarray,
        n_samples: int = 15,
        elite_fraction: float = 0.3,
        min_sigma: float = 1e-3,
        rng: Optional[np.random.Generator] = None,
        profiler: Optional[PhaseProfiler] = None,
    ) -> None:
        bounds = np.asarray(bounds, dtype=float)
        if bounds.ndim != 2 or bounds.shape[1] != 2:
            raise ValueError("bounds must be (dims, 2)")
        if not 0.0 < elite_fraction <= 1.0:
            raise ValueError("elite_fraction must be in (0, 1]")
        self.reward_fn = reward_fn
        self.bounds = bounds
        self.n_samples = int(n_samples)
        self.n_elite = max(1, int(round(n_samples * elite_fraction)))
        self.min_sigma = float(min_sigma)
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.profiler = profiler if profiler is not None else PhaseProfiler()
        self.mean = bounds.mean(axis=1)
        self.sigma = (bounds[:, 1] - bounds[:, 0]) / 4.0
        self.reward_history: List[float] = []
        self.sample_rewards: List[float] = []

    def iterate(self) -> Tuple[np.ndarray, float]:
        """One CEM iteration; returns (elite mean, best reward)."""
        prof = self.profiler
        with prof.phase("rollout"):
            samples = self.rng.normal(
                self.mean, self.sigma, size=(self.n_samples, len(self.mean))
            )
            samples = np.clip(samples, self.bounds[:, 0], self.bounds[:, 1])
            rewards = np.array([self.reward_fn(s) for s in samples])
            prof.count("rollouts", self.n_samples)
        with prof.phase("sort"):
            order = np.argsort(rewards)[::-1]  # descending: best first
            prof.count("sort_elements", self.n_samples)
        with prof.phase("refit"):
            elite = samples[order[: self.n_elite]]
            self.mean = elite.mean(axis=0)
            self.sigma = np.maximum(elite.std(axis=0), self.min_sigma)
        self.sample_rewards.extend(rewards[order].tolist())
        best = float(rewards[order[0]])
        self.reward_history.append(best)
        return self.mean.copy(), best

    def optimize(self, n_iterations: int = 5) -> Tuple[np.ndarray, float]:
        """Run CEM; returns (final policy mean, best reward seen)."""
        best = -float("inf")
        for _ in range(n_iterations):
            _, reward = self.iterate()
            best = max(best, reward)
        return self.mean.copy(), best


@dataclass
class CemConfig(KernelConfig):
    """Configuration of the cem kernel (paper: 5 iterations x 15 samples)."""

    iterations: int = option(5, "CEM iterations")
    samples: int = option(15, "Samples per iteration")
    elite_fraction: float = option(0.3, "Elite fraction refit each iteration")
    goal_x: float = option(3.0, "Target landing distance (m)")


@registry.register
class CemKernel(Kernel):
    """CEM policy search on the ball-throwing robot."""

    name = "15.cem"
    stage = "control"
    config_cls = CemConfig
    description = "Cross-entropy method policy search (sort bound)"

    def setup(self, config: CemConfig) -> BallThrower:
        return BallThrower(goal_x=config.goal_x)

    # Steppable protocol: one step is one CEM generation (sample,
    # evaluate, sort, refit) — the unit ``optimize`` loops over.

    def begin_roi(
        self, config: CemConfig, state: BallThrower, profiler: PhaseProfiler
    ) -> dict:
        cem = CrossEntropyMethod(
            reward_fn=state.reward,
            bounds=state.parameter_bounds,
            n_samples=config.samples,
            elite_fraction=config.elite_fraction,
            rng=np.random.default_rng(config.seed),
            profiler=profiler,
        )
        return {"cem": cem, "best": -float("inf")}

    def num_steps(self, config: CemConfig, state: BallThrower) -> int:
        return config.iterations

    def step(self, index, session, profiler) -> None:
        _, reward = session.payload["cem"].iterate()
        session.payload["best"] = max(session.payload["best"], reward)

    def finalize(self, session) -> dict:
        cem = session.payload["cem"]
        best = session.payload["best"]
        return {
            "policy": cem.mean.copy(),
            "best_reward": best,
            "reward_history": cem.reward_history,
            "sample_rewards": cem.sample_rewards,
            "final_landing_error": -best,
        }
