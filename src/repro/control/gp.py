"""Gaussian process regression (the bo kernel's surrogate model).

A standard RBF-kernel GP with Cholesky-based fitting.  The paper's bo
kernel trains and tests "using a Gaussian process"; this is that
substrate, kept minimal but numerically careful (jitter on the diagonal,
triangular solves instead of explicit inverses).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from scipy.linalg import cho_factor, cho_solve


def rbf_kernel(
    a: np.ndarray, b: np.ndarray, length_scale: float, signal_var: float
) -> np.ndarray:
    """Squared-exponential covariance between two point sets."""
    a = np.atleast_2d(a)
    b = np.atleast_2d(b)
    d2 = (
        np.sum(a * a, axis=1)[:, None]
        - 2.0 * a @ b.T
        + np.sum(b * b, axis=1)[None, :]
    )
    return signal_var * np.exp(-0.5 * np.maximum(d2, 0.0) / length_scale**2)


class GaussianProcess:
    """GP regression with an RBF kernel and Gaussian observation noise."""

    def __init__(
        self,
        length_scale: float = 1.0,
        signal_var: float = 1.0,
        noise_var: float = 1e-4,
    ) -> None:
        if length_scale <= 0 or signal_var <= 0 or noise_var < 0:
            raise ValueError("kernel hyperparameters must be positive")
        self.length_scale = float(length_scale)
        self.signal_var = float(signal_var)
        self.noise_var = float(noise_var)
        self._x: Optional[np.ndarray] = None
        self._y_mean = 0.0
        self._alpha: Optional[np.ndarray] = None
        self._cho = None

    @property
    def n_observations(self) -> int:
        """Number of conditioning observations."""
        return 0 if self._x is None else len(self._x)

    def fit(self, x: np.ndarray, y: np.ndarray) -> None:
        """Condition the GP on observations ``(x, y)``.

        O(n^3) Cholesky factorization — the compute cost the paper notes
        makes bo far more intensive than cem.
        """
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if len(x) != len(y):
            raise ValueError("x and y must have matching lengths")
        self._x = x
        self._y_mean = float(y.mean())
        k = rbf_kernel(x, x, self.length_scale, self.signal_var)
        k[np.diag_indices_from(k)] += self.noise_var + 1e-10
        self._cho = cho_factor(k, lower=True)
        self._alpha = cho_solve(self._cho, y - self._y_mean)

    def predict(
        self, x_query: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Posterior mean and variance at the query points."""
        if self._x is None:
            raise RuntimeError("predict() before fit()")
        x_query = np.atleast_2d(np.asarray(x_query, dtype=float))
        k_star = rbf_kernel(x_query, self._x, self.length_scale, self.signal_var)
        mean = self._y_mean + k_star @ self._alpha
        v = cho_solve(self._cho, k_star.T)
        prior_var = self.signal_var
        var = prior_var - np.einsum("ij,ji->i", k_star, v)
        return mean, np.maximum(var, 1e-12)

    def ucb(self, x_query: np.ndarray, beta: float = 2.0) -> np.ndarray:
        """Upper confidence bound acquisition values at the queries."""
        mean, var = self.predict(x_query)
        return mean + beta * np.sqrt(var)

    def expected_improvement(
        self, x_query: np.ndarray, best_y: float, xi: float = 0.01
    ) -> np.ndarray:
        """Expected improvement over ``best_y`` at the queries.

        EI(x) = (mu - best - xi) Phi(z) + sigma phi(z) with
        z = (mu - best - xi) / sigma — the standard closed form.
        """
        from scipy.stats import norm

        mean, var = self.predict(x_query)
        sigma = np.sqrt(var)
        improvement = mean - best_y - xi
        z = improvement / sigma
        return improvement * norm.cdf(z) + sigma * norm.pdf(z)
