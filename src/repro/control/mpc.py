"""Kernel 14.mpc — model predictive control (paper section V.14).

A self-driving car (kinematic bicycle plant) follows a long reference
trajectory under velocity/acceleration limits.  At every control step the
controller solves a finite-horizon optimal-control problem by iterative
linearization: linearize the dynamics around the current nominal
trajectory, solve the resulting time-varying LQR with a Riccati backward
pass, clamp controls to the constraints, and repeat.  That solver is the
``optimize`` phase — the paper measures >80% of the kernel there.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.geometry.transforms import wrap_angle
from repro.harness.config import KernelConfig, option
from repro.harness.profiler import PhaseProfiler
from repro.harness.runner import Kernel, registry
from repro.robots.bicycle import BicycleModel, BicycleState

N_STATE = 4  # x, y, theta, v
N_CONTROL = 2  # accel, steer


@dataclass
class TrackingSession:
    """Mutable state of one receding-horizon tracking episode."""

    state: BicycleState
    reference: np.ndarray
    n_steps: int
    driven: List[np.ndarray]
    applied: List[np.ndarray]
    errors: List[float]


class ModelPredictiveController:
    """Iterative-LQR MPC for the bicycle model."""

    def __init__(
        self,
        model: BicycleModel,
        horizon: int = 12,
        dt: float = 0.1,
        iterations: int = 3,
        q_weights: Tuple[float, float, float, float] = (1.0, 1.0, 0.5, 0.5),
        r_weights: Tuple[float, float] = (0.01, 0.1),
        profiler: Optional[PhaseProfiler] = None,
    ) -> None:
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        self.model = model
        self.horizon = int(horizon)
        self.dt = float(dt)
        self.iterations = int(iterations)
        self.q = np.diag(q_weights)
        self.r = np.diag(r_weights)
        self.profiler = profiler if profiler is not None else PhaseProfiler()

    def solve(
        self, state: BicycleState, reference: np.ndarray
    ) -> np.ndarray:
        """Optimal control sequence for the given reference window.

        ``reference`` is ``(horizon+1, 4)`` desired states.  Returns the
        ``(horizon, 2)`` control plan; callers apply the first row
        (receding horizon).
        """
        prof = self.profiler
        t_len = self.horizon
        controls = np.zeros((t_len, N_CONTROL))
        with prof.phase("optimize"):
            for _ in range(self.iterations):
                with prof.phase("dynamics"):
                    states = self.model.rollout(state, controls, self.dt)
                # Linearize along the nominal trajectory.
                a_mats = np.empty((t_len, N_STATE, N_STATE))
                b_mats = np.empty((t_len, N_STATE, N_CONTROL))
                for t in range(t_len):
                    st = BicycleState.from_array(states[t])
                    a_mats[t], b_mats[t], _ = self.model.linearize(
                        st, controls[t, 0], controls[t, 1], self.dt
                    )
                # Backward Riccati pass on the error system.
                s_mat = self.q.copy()
                s_vec = self.q @ self._state_error(states[t_len], reference[t_len])
                k_gains = np.empty((t_len, N_CONTROL, N_STATE))
                k_ff = np.empty((t_len, N_CONTROL))
                for t in range(t_len - 1, -1, -1):
                    a, b = a_mats[t], b_mats[t]
                    btsb = b.T @ s_mat @ b + self.r
                    inv = np.linalg.inv(btsb)
                    k_gains[t] = inv @ (b.T @ s_mat @ a)
                    k_ff[t] = inv @ (b.T @ s_vec + self.r @ controls[t])
                    a_cl = a - b @ k_gains[t]
                    s_vec = (
                        a_cl.T @ (s_vec - s_mat @ b @ k_ff[t])
                        + self.q @ self._state_error(states[t], reference[t])
                    )
                    s_mat = (
                        a_cl.T @ s_mat @ a_cl
                        + k_gains[t].T @ self.r @ k_gains[t]
                        + self.q
                    )
                    prof.count("riccati_steps", 1)
                # Forward pass: apply the affine policy, clamped.
                new_controls = np.empty_like(controls)
                current = state
                for t in range(t_len):
                    err = self._state_error(
                        current.as_array(), reference[t]
                    )
                    u = controls[t] - k_gains[t] @ err - 0.2 * k_ff[t]
                    u[0], u[1] = self.model.clamp_control(u[0], u[1])
                    new_controls[t] = u
                    with prof.phase("dynamics"):
                        current = self.model.step(
                            current, u[0], u[1], self.dt
                        )
                controls = new_controls
        return controls

    @staticmethod
    def _state_error(state: np.ndarray, reference: np.ndarray) -> np.ndarray:
        err = state - reference
        err[2] = wrap_angle(err[2])
        return err

    def track_begin(
        self,
        initial: BicycleState,
        reference: np.ndarray,
        steps: Optional[int] = None,
    ) -> "TrackingSession":
        """Start receding-horizon tracking; returns the mutable session."""
        n = len(reference) - 1 if steps is None else min(steps, len(reference) - 1)
        return TrackingSession(
            state=initial,
            reference=reference,
            n_steps=n,
            driven=[initial.as_array()],
            applied=[],
            errors=[],
        )

    def track_step(self, session: "TrackingSession", t: int) -> None:
        """One control tick: plan over the window, apply the first move."""
        prof = self.profiler
        with prof.phase("setup"):
            window = self._window(session.reference, t)
        plan = self.solve(session.state, window)
        u = plan[0]
        with prof.phase("dynamics"):
            session.state = self.model.step(
                session.state, u[0], u[1], self.dt
            )
        session.driven.append(session.state.as_array())
        session.applied.append(u.copy())
        session.errors.append(
            float(np.hypot(session.state.x - session.reference[t + 1, 0],
                           session.state.y - session.reference[t + 1, 1]))
        )

    def track_result(self, session: "TrackingSession") -> dict:
        """Package the driven trajectory a tracking session produced."""
        return {
            "states": np.vstack(session.driven),
            "controls": (
                np.vstack(session.applied)
                if session.applied
                else np.empty((0, 2))
            ),
            "errors": np.array(session.errors),
        }

    def track(
        self,
        initial: BicycleState,
        reference: np.ndarray,
        steps: Optional[int] = None,
    ) -> dict:
        """Receding-horizon tracking of a full reference trajectory.

        Returns the driven states, applied controls, and per-step
        cross-track error.  Implemented on the incremental
        ``track_begin`` / ``track_step`` / ``track_result`` API, so the
        batch call and a per-tick driver (the steppable kernel protocol)
        execute identical arithmetic.
        """
        session = self.track_begin(initial, reference, steps)
        for t in range(session.n_steps):
            self.track_step(session, t)
        return self.track_result(session)

    def _window(self, reference: np.ndarray, t: int) -> np.ndarray:
        end = t + self.horizon + 1
        window = reference[t:end]
        if len(window) < self.horizon + 1:
            pad = np.repeat(window[-1][None, :], self.horizon + 1 - len(window), axis=0)
            window = np.vstack([window, pad])
        return window


def reference_trajectory(
    n_steps: int = 150,
    dt: float = 0.1,
    speed: float = 8.0,
    curvature: float = 0.3,
) -> np.ndarray:
    """A long, smooth road: gentle S-curves at constant target speed.

    Returns ``(n_steps+1, 4)`` reference states (x, y, theta, v).
    """
    xs = [0.0]
    ys = [0.0]
    thetas = [0.0]
    theta = 0.0
    for t in range(n_steps):
        theta = curvature * math.sin(2.0 * math.pi * t / n_steps * 2.0)
        xs.append(xs[-1] + speed * dt * math.cos(theta))
        ys.append(ys[-1] + speed * dt * math.sin(theta))
        thetas.append(theta)
    ref = np.column_stack(
        [xs, ys, thetas, np.full(n_steps + 1, speed)]
    )
    return ref


@dataclass
class MpcConfig(KernelConfig):
    """Configuration of the mpc kernel."""

    steps: int = option(150, "Reference trajectory length (control steps)")
    horizon: int = option(12, "MPC lookahead horizon")
    dt: float = option(0.1, "Control period (s)")
    speed: float = option(8.0, "Reference speed (m/s)")
    iterations: int = option(3, "Linearize-solve iterations per step")


@registry.register
class MpcKernel(Kernel):
    """MPC trajectory tracking for a car (optimization bound)."""

    name = "14.mpc"
    stage = "control"
    config_cls = MpcConfig
    description = "Model predictive control tracking (optimization bound)"

    def setup(self, config: MpcConfig) -> np.ndarray:
        return reference_trajectory(
            n_steps=config.steps, dt=config.dt, speed=config.speed
        )

    # Steppable protocol: one step is one control tick — plan over the
    # receding window, apply the first control, advance the plant.

    def begin_roi(
        self, config: MpcConfig, state: np.ndarray, profiler: PhaseProfiler
    ) -> dict:
        model = BicycleModel(max_speed=config.speed * 1.5)
        controller = ModelPredictiveController(
            model,
            horizon=config.horizon,
            dt=config.dt,
            iterations=config.iterations,
            profiler=profiler,
        )
        initial = BicycleState(x=0.0, y=0.0, theta=0.0, v=config.speed)
        return {
            "controller": controller,
            "tracking": controller.track_begin(initial, state),
        }

    def num_steps(self, config: MpcConfig, state: np.ndarray) -> int:
        return len(state) - 1

    def step(self, index, session, profiler) -> None:
        session.payload["controller"].track_step(
            session.payload["tracking"], index
        )

    def finalize(self, session) -> dict:
        controller = session.payload["controller"]
        outcome = controller.track_result(session.payload["tracking"])
        outcome["mean_error"] = float(outcome["errors"].mean())
        outcome["max_error"] = float(outcome["errors"].max())
        return outcome
