"""Kernel 13.dmp — dynamic movement primitives (paper section V.13).

A DMP turns a single demonstrated trajectory into a parameterized
attractor system: a virtual spring-damper pulls toward the goal while a
learned forcing term (Gaussian basis functions weighted by imitation-
learned shape parameters) reproduces the demonstration's shape.  Rollout
is inherently sequential — position, velocity, and acceleration are
integrated step by step — which is why the paper measures IPC < 1 and
points at dataflow architectures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.harness.config import KernelConfig, option
from repro.harness.profiler import PhaseProfiler
from repro.harness.runner import Kernel, registry


@dataclass
class RolloutSession:
    """Mutable state of one DMP integration.

    ``ys``/``vs``/``accs`` are preallocated for the full episode and
    filled row ``t`` at a time; ``y``/``v``/``s`` are the live
    transformation-system and canonical-phase variables.
    """

    dt: float
    goal: np.ndarray
    tau: float
    steps: int
    ys: np.ndarray
    vs: np.ndarray
    accs: np.ndarray
    y: np.ndarray
    v: np.ndarray
    s: float
    t: int = 0


class DynamicMovementPrimitive:
    """A multi-dimensional discrete DMP (Schaal-style formulation).

    Transformation system (per dimension, time constant tau):

        tau * v' = K (g - y) - D v + f(s)
        tau * y' = v

    with the canonical phase ``tau * s' = -alpha_s * s`` decaying from 1
    to 0 and the forcing term ``f(s) = s * sum_i psi_i(s) w_i / sum_i
    psi_i(s)`` over Gaussian basis functions psi.  The forcing term is
    deliberately *not* scaled by (g - y0): the classic amplitude scaling
    divides by the demonstrated displacement, which explodes for any
    dimension whose start and goal coincide (e.g. a lateral S-curve that
    returns to center).
    """

    def __init__(
        self,
        n_basis: int = 30,
        k_gain: float = 400.0,
        alpha_s: float = 4.0,
        profiler: Optional[PhaseProfiler] = None,
    ) -> None:
        if n_basis < 2:
            raise ValueError("need at least two basis functions")
        self.n_basis = int(n_basis)
        self.k_gain = float(k_gain)
        self.d_gain = 2.0 * math.sqrt(self.k_gain)  # critical damping
        self.alpha_s = float(alpha_s)
        self.profiler = profiler if profiler is not None else PhaseProfiler()
        # Basis centers equally spaced in phase (log-spaced in time).
        self.centers = np.exp(
            -self.alpha_s * np.linspace(0.0, 1.0, self.n_basis)
        )
        self.widths = (np.diff(self.centers) ** 2)
        self.widths = 1.0 / np.concatenate([self.widths, self.widths[-1:]])
        self.weights: Optional[np.ndarray] = None  # (dims, n_basis)
        self.y0: Optional[np.ndarray] = None
        self.goal: Optional[np.ndarray] = None
        self.tau: float = 1.0

    # -- imitation learning --------------------------------------------------

    def _basis(self, s: np.ndarray) -> np.ndarray:
        """Basis activations for phase values ``s``: shape (len(s), n_basis)."""
        s = np.atleast_1d(s)
        return np.exp(
            -self.widths[None, :] * (s[:, None] - self.centers[None, :]) ** 2
        )

    def fit(self, demo: np.ndarray, dt: float) -> None:
        """Learn shape weights from one demonstration (imitation learning).

        ``demo`` is ``(T, dims)`` positions sampled every ``dt`` seconds.
        The target forcing term is recovered from the demonstration's
        derivatives and regressed per basis with locally weighted linear
        regression, the standard single-demonstration procedure.
        """
        prof = self.profiler
        with prof.phase("fit"):
            demo = np.asarray(demo, dtype=float)
            if demo.ndim != 2 or len(demo) < 3:
                raise ValueError("demo must be (T >= 3, dims)")
            steps, dims = demo.shape
            self.tau = (steps - 1) * dt
            self.y0 = demo[0].copy()
            self.goal = demo[-1].copy()
            vel = np.gradient(demo, dt, axis=0)
            acc = np.gradient(vel, dt, axis=0)
            t = np.arange(steps) * dt
            s = np.exp(-self.alpha_s * t / self.tau)
            # f_target from the inverse transformation system.
            f_target = (
                self.tau**2 * acc
                - self.k_gain * (self.goal[None, :] - demo)
                + self.d_gain * self.tau * vel
            )
            psi = self._basis(s)  # (T, n_basis)
            xi = s[:, None] * psi  # regressor per basis
            self.weights = np.empty((dims, self.n_basis))
            for i in range(self.n_basis):
                w_psi = psi[:, i]
                denominator = float(np.sum(w_psi * s * s)) + 1e-10
                for d in range(dims):
                    self.weights[d, i] = (
                        float(np.sum(w_psi * s * f_target[:, d])) / denominator
                    )
            prof.count("regression_solves", self.n_basis * dims)

    # -- rollout --------------------------------------------------------------

    def rollout_begin(
        self,
        dt: float,
        y0: Optional[np.ndarray] = None,
        goal: Optional[np.ndarray] = None,
        tau: Optional[float] = None,
    ) -> "RolloutSession":
        """Start an integration; returns the mutable rollout session."""
        if self.weights is None:
            raise RuntimeError("rollout() before fit()")
        y0 = self.y0.copy() if y0 is None else np.asarray(y0, dtype=float)
        goal = self.goal.copy() if goal is None else np.asarray(goal, dtype=float)
        tau = self.tau if tau is None else float(tau)
        steps = int(round(tau / dt)) + 1
        dims = len(y0)
        return RolloutSession(
            dt=dt,
            goal=goal,
            tau=tau,
            steps=steps,
            ys=np.empty((steps, dims)),
            vs=np.empty((steps, dims)),
            accs=np.empty((steps, dims)),
            y=y0.copy(),
            v=np.zeros(dims),
            s=1.0,
        )

    def rollout_step(self, session: "RolloutSession") -> None:
        """One Euler step of the transformation + canonical systems."""
        prof = self.profiler
        dt, tau, goal = session.dt, session.tau, session.goal
        with prof.phase("integrate"):
            with prof.phase("basis_eval"):
                psi = self._basis(np.array([session.s]))[0]
                denom = float(psi.sum()) + 1e-10
                f = (self.weights @ psi) * session.s / denom
                prof.count("basis_evaluations", self.n_basis)
            acc = (
                self.k_gain * (goal - session.y)
                - self.d_gain * session.v
                + f
            ) / (tau * tau)
            t = session.t
            session.ys[t] = session.y
            session.vs[t] = session.v / tau
            session.accs[t] = acc
            session.v = session.v + acc * dt * tau
            session.y = session.y + session.v * dt / tau
            session.s = session.s + (-self.alpha_s * session.s) * dt / tau
            session.t += 1

    def rollout_result(
        self, session: "RolloutSession"
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The (positions, velocities, accelerations) integrated so far.

        A complete session returns the full preallocated arrays; a
        partially driven one returns only the rows its steps filled.
        """
        if session.t >= session.steps:
            return session.ys, session.vs, session.accs
        return (
            session.ys[: session.t],
            session.vs[: session.t],
            session.accs[: session.t],
        )

    def rollout(
        self,
        dt: float,
        y0: Optional[np.ndarray] = None,
        goal: Optional[np.ndarray] = None,
        tau: Optional[float] = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Integrate the DMP; returns (positions, velocities, accelerations).

        Each sequential step is a measured ``integrate`` phase with a
        nested per-step ``basis_eval``.  Implemented on the incremental
        ``rollout_begin`` / ``rollout_step`` / ``rollout_result`` API, so
        the batch call and a per-timestep driver (the steppable kernel
        protocol) execute identical arithmetic.
        """
        session = self.rollout_begin(dt, y0=y0, goal=goal, tau=tau)
        while session.t < session.steps:
            self.rollout_step(session)
        return self.rollout_result(session)


def demonstration_trajectory(
    steps: int = 200, dt: float = 0.01, kind: str = "s_curve"
) -> np.ndarray:
    """A smooth synthetic demonstration (the in-house wheeled-robot demo).

    ``s_curve`` sweeps forward in x with a smooth lateral S in y using a
    minimum-jerk longitudinal profile — the shape of Fig. 15's reference.
    """
    t = np.linspace(0.0, 1.0, steps)
    min_jerk = 10 * t**3 - 15 * t**4 + 6 * t**5
    if kind == "s_curve":
        x = 15.0 * min_jerk
        y = 2.0 * np.sin(2.0 * math.pi * min_jerk)
        return np.column_stack([x, y])
    if kind == "reach":
        return np.column_stack([min_jerk, min_jerk**2])
    raise ValueError(f"unknown demonstration kind {kind!r}")


@dataclass
class DmpConfig(KernelConfig):
    """Configuration of the dmp kernel."""

    basis: int = option(30, "Number of Gaussian basis functions")
    demo_steps: int = option(200, "Demonstration length (samples)")
    dt: float = option(0.005, "Rollout integration step (s)")
    k_gain: float = option(400.0, "Spring constant of the attractor")


@registry.register
class DmpKernel(Kernel):
    """DMP trajectory generation (serial integration bound)."""

    name = "13.dmp"
    stage = "control"
    config_cls = DmpConfig
    description = "Dynamic movement primitives (serial dependency bound)"

    def setup(self, config: DmpConfig) -> np.ndarray:
        return demonstration_trajectory(steps=config.demo_steps, dt=0.01)

    #: Demonstration sampling interval (seconds); fixed by the workload.
    DEMO_DT = 0.01

    # Steppable protocol: one step is one Euler integration timestep of
    # the rollout — the serial-dependency unit the paper characterizes.
    # Fitting the demonstration happens in ``begin_roi`` (it is part of
    # the measured ROI, as before, but runs once per episode).

    def begin_roi(
        self, config: DmpConfig, state: np.ndarray, profiler: PhaseProfiler
    ) -> dict:
        dmp = DynamicMovementPrimitive(
            n_basis=config.basis, k_gain=config.k_gain, profiler=profiler
        )
        dmp.fit(state, dt=self.DEMO_DT)
        return {"dmp": dmp, "rollout": dmp.rollout_begin(dt=config.dt)}

    def num_steps(self, config: DmpConfig, state: np.ndarray) -> int:
        # Mirrors ``rollout_begin``: fit() sets tau from the demo length.
        tau = (len(state) - 1) * self.DEMO_DT
        return int(round(tau / config.dt)) + 1

    def step(self, index, session, profiler) -> None:
        session.payload["dmp"].rollout_step(session.payload["rollout"])

    def finalize(self, session) -> dict:
        state = session.state
        dmp = session.payload["dmp"]
        ys, vs, accs = dmp.rollout_result(session.payload["rollout"])
        # Tracking error against the (resampled) demonstration.
        demo_resampled = np.column_stack(
            [
                np.interp(
                    np.linspace(0, 1, len(ys)),
                    np.linspace(0, 1, len(state)),
                    state[:, d],
                )
                for d in range(state.shape[1])
            ]
        )
        rms = float(np.sqrt(np.mean((ys - demo_resampled) ** 2)))
        return {
            "trajectory": ys,
            "velocity": vs,
            "acceleration": accs,
            "reference": demo_resampled,
            "rms_error": rms,
            "endpoint_error": float(np.linalg.norm(ys[-1] - state[-1])),
        }
