"""End-to-end real-time benchmarking (``rtrbench rt``, ``BENCH_rt.json``).

Glue between the rt building blocks and the rest of the harness: resolve
a kernel from the registry, run it as a periodic task through
:class:`~repro.rt.scheduler.PeriodicScheduler`, optionally repeat the
run under antagonist load, and assemble the machine-readable report
with latency quantiles, release jitter, deadline-miss rate, an SLO
verdict, and a phase breakdown with per-phase min/max durations from
the shared profiler stats.

Two execution granularities (``granularity=``):

* ``"run"`` — each periodic job is one ``Kernel._run_once`` (setup +
  full ROI, the same path every other experiment uses).  The original
  model; works for every kernel.
* ``"step"`` — each periodic job is one ``step()`` on a persistent
  :class:`~repro.harness.runner.StepSession` over a workload built
  once.  This is the RT-Bench periodic-application model at the
  kernel's natural iteration rate (one scan, one control tick, one CEM
  generation...), so deadline/SLO accounting becomes per-iteration and
  slow kernels like pfl and mpc are rt-schedulable.  When a session
  exhausts its episode, the next job finalizes it and opens a fresh
  episode on the same workload state — that episode-boundary job also
  pays the kernel's ``begin_roi``, exactly like a deployed system
  re-initializing between missions.

The CI contract — outside smoke mode the unloaded SLO must pass, and an
antagonist run must actually degrade p99 latency — is expressed as the
``rt.*`` gate declarations in :data:`repro.results.gates.DEFAULT_GATES`
and enforced by ``rtrbench gate`` over the record that ``rtrbench rt``
emits (the ``check_rt_floors`` checker that used to live here); step
records additionally carry the ``rt.step.*`` measurements their own
``rt.step-*`` gates judge.
"""

from __future__ import annotations

import statistics
import time
from typing import Any, Dict, Optional

from repro.harness.config import KernelConfig, rt_defaults
from repro.harness.profiler import PhaseProfiler
from repro.harness.runner import Kernel, load_all_kernels, registry
from repro.rt.histogram import LatencyHistogram
from repro.rt.interference import AntagonistPool
from repro.rt.scheduler import JobOutput, PeriodicScheduler
from repro.rt.slo import SLOPolicy, evaluate_slo, summarize_jobs

#: Valid execution granularities, in documentation order.
GRANULARITIES = ("run", "step")

#: Deadline-miss budget outside smoke mode (10% of jobs may miss).
RT_DEFAULT_MAX_MISS_RATE = 0.1

#: Smoke mode never fails on misses: CI machines are noisy and shared.
RT_SMOKE_MAX_MISS_RATE = 1.0

#: Auto-calibrated period = headroom x median job wall clock.
CALIBRATION_HEADROOM = 2.0

#: Floor for auto-calibrated periods (seconds).
CALIBRATION_MIN_PERIOD_S = 1e-3


def calibrate_period_s(
    kernel: Kernel,
    config: KernelConfig,
    samples: int = 3,
    granularity: str = "run",
    state: Any = None,
) -> float:
    """Measure unpaced job wall clock and pick a schedulable period.

    One untimed job warms the workload cache, then the median of
    ``samples`` timed jobs — a full setup + ROI run for
    ``granularity="run"``, one session step (exactly what a periodic
    step job costs) for ``granularity="step"`` — is scaled by
    :data:`CALIBRATION_HEADROOM`, a period the unloaded machine can
    hold without being trivially loose.
    """
    if granularity == "step":
        if state is None:
            state = kernel.setup(config)
        session = kernel.open_session(config, state=state)
        if session.total_steps < 1:
            raise ValueError(
                f"kernel {kernel.name} produced an empty episode; "
                "cannot calibrate a step period"
            )
        session.step()  # untimed warm step (pays begin_roi cache effects)
        walls = []
        for _ in range(max(1, samples)):
            if session.exhausted:
                session = kernel.open_session(config, state=state)
            t0 = time.monotonic()
            session.step()
            walls.append(time.monotonic() - t0)
    else:
        kernel._run_once(config)
        walls = []
        for _ in range(max(1, samples)):
            t0 = time.monotonic()
            kernel._run_once(config)
            walls.append(time.monotonic() - t0)
    return max(
        CALIBRATION_MIN_PERIOD_S,
        CALIBRATION_HEADROOM * statistics.median(walls),
    )


def _phase_block(profiler: PhaseProfiler) -> Dict[str, Any]:
    """Aggregate phase breakdown with per-call min/max/last durations."""
    fractions = profiler.fractions()
    return {
        "dominant": profiler.dominant_phase(),
        "phases": {
            name: {
                "share": fractions[name],
                "calls": st.calls,
                "mean_ms": (
                    st.inclusive_time / st.calls * 1e3 if st.calls else 0.0
                ),
                "min_ms": st.min_time * 1e3,
                "max_ms": st.max_time * 1e3,
                "last_ms": st.last_time * 1e3,
            }
            for name, st in profiler.stats.items()
        },
    }


def run_condition(
    kernel: Kernel,
    config: KernelConfig,
    period_s: float,
    deadline_s: float,
    jobs: int,
    warmup: int = 0,
    overrun: str = "skip",
    granularity: str = "run",
    state: Any = None,
) -> Dict[str, Any]:
    """One periodic run of ``kernel`` under the current machine condition.

    ``granularity="run"``: every job is a fresh setup + full ROI.
    ``granularity="step"``: jobs advance a persistent step session over
    the caller-provided ``state``; exhausted episodes are finalized and
    reopened in place.  The per-step phase breakdown aggregates every
    step the condition executed (warmup steps share their episode's
    profiler, so unlike run granularity they are not excluded from the
    phase stats — only from the latency/response statistics).
    """
    aggregate = PhaseProfiler()
    roi_hist = LatencyHistogram()

    if granularity == "step":
        box: Dict[str, Any] = {"session": None, "episodes": 0}

        def job(index: int) -> JobOutput:
            session = box["session"]
            if session is None or session.exhausted:
                if session is not None:
                    session.finish()
                session = kernel.open_session(
                    config, state=state, profiler=aggregate
                )
                if session.total_steps < 1:
                    raise ValueError(
                        f"kernel {kernel.name} produced an empty episode"
                    )
                box["session"] = session
                box["episodes"] += 1
            t0 = time.monotonic()
            step_index = session.step()
            wall = time.monotonic() - t0
            if index >= warmup:
                roi_hist.record(wall)
            return JobOutput(
                meta={
                    "episode": box["episodes"] - 1,
                    "step": step_index,
                }
            )

    else:

        def job(index: int) -> None:
            result = kernel._run_once(config)
            if index >= warmup:
                aggregate.merge(result.profiler)
                roi_hist.record(result.roi_time)

    scheduler = PeriodicScheduler(
        period_s=period_s, deadline_s=deadline_s, overrun=overrun
    )
    schedule = scheduler.run(job, jobs=jobs, warmup=warmup)
    summary = summarize_jobs(
        schedule.records, deadline_s, schedule.skipped_releases
    )
    summary["roi_ms"] = roi_hist.summary(scale=1e3)
    summary["busy_s"] = sum(r.latency_s for r in schedule.measured())
    summary["phase_breakdown"] = _phase_block(aggregate)
    if granularity == "step":
        session = box["session"]
        if session is not None and session.exhausted:
            session.finish()
        summary["episodes"] = box["episodes"]
        summary["last_episode_steps"] = (
            0 if session is None else session.steps_done
        )
    return summary


def run_rt(
    kernel: str,
    period_ms: Optional[float] = None,
    deadline_ms: Optional[float] = None,
    jobs: Optional[int] = None,
    warmup: Optional[int] = None,
    overrun: str = "skip",
    antagonists: int = 0,
    antagonist_kind: str = "cpu",
    smoke: bool = False,
    max_miss_rate: Optional[float] = None,
    config: Optional[KernelConfig] = None,
    granularity: str = "run",
    **overrides: Any,
) -> Dict[str, Any]:
    """Run a registered kernel as a periodic task; return the rt report.

    ``granularity="run"`` schedules full kernel runs as jobs;
    ``granularity="step"`` (steppable kernels only) schedules single
    iterations on a persistent session over one shared workload.
    ``period_ms=None`` takes the kernel's default from
    :data:`repro.harness.config.RT_KERNEL_DEFAULTS` (``period_ms`` for
    run granularity, ``step_period_ms`` for step granularity, falling
    back to auto-calibration when the kernel has no step default);
    ``period_ms=0`` always auto-calibrates from unpaced warmup jobs.
    ``deadline_ms`` defaults to the period (implicit deadline).  With
    ``antagonists > 0`` the run executes twice — unloaded, then under
    the antagonist pool — and the report records both conditions side by
    side with degradation ratios.  ``overrides`` patch the kernel's
    configuration, mirroring ``rtrbench run`` flags.
    """
    if granularity not in GRANULARITIES:
        raise ValueError(
            f"unknown granularity {granularity!r}; "
            f"expected one of {GRANULARITIES}"
        )
    load_all_kernels()
    cls = registry.get(kernel)
    instance = cls()
    if granularity == "step" and not cls.is_steppable():
        raise ValueError(
            f"kernel {cls.name} is not steppable; use granularity='run'"
        )
    if config is None:
        config = cls.config_cls(**overrides) if overrides else cls.config_cls()
    elif overrides:
        config = config.replace(**overrides)

    jobs = (12 if smoke else 50) if jobs is None else int(jobs)
    warmup = (1 if smoke else 3) if warmup is None else max(0, int(warmup))
    defaults = rt_defaults(cls.name)
    # Step granularity builds the workload once, outside every job.
    state = instance.setup(config) if granularity == "step" else None
    calibrated = False
    if period_ms is None:
        if granularity == "step":
            if defaults.step_period_ms is not None:
                period_s = defaults.step_period_ms / 1e3
            else:
                period_s = calibrate_period_s(
                    instance, config, granularity="step", state=state
                )
                calibrated = True
        else:
            period_s = defaults.period_ms / 1e3
    elif period_ms <= 0.0:
        period_s = calibrate_period_s(
            instance, config, granularity=granularity, state=state
        )
        calibrated = True
    else:
        period_s = period_ms / 1e3
    if deadline_ms is None:
        deadline_s = (
            period_s
            if calibrated or period_ms is not None or granularity == "step"
            else defaults.resolved_deadline_ms() / 1e3
        )
    else:
        deadline_s = deadline_ms / 1e3

    conditions: Dict[str, Any] = {
        "unloaded": run_condition(
            instance,
            config,
            period_s,
            deadline_s,
            jobs=jobs,
            warmup=warmup,
            overrun=overrun,
            granularity=granularity,
            state=state,
        )
    }
    degradation: Optional[Dict[str, float]] = None
    if antagonists > 0:
        with AntagonistPool(antagonists, kind=antagonist_kind):
            loaded = run_condition(
                instance,
                config,
                period_s,
                deadline_s,
                jobs=jobs,
                warmup=warmup,
                overrun=overrun,
                granularity=granularity,
                state=state,
            )
        loaded["antagonists"] = antagonists
        loaded["antagonist_kind"] = antagonist_kind
        conditions["loaded"] = loaded
        base = conditions["unloaded"]["response_ms"]
        under = loaded["response_ms"]
        degradation = {
            "p50_ratio": under["p50"] / base["p50"] if base["p50"] else 0.0,
            "p99_ratio": under["p99"] / base["p99"] if base["p99"] else 0.0,
            "miss_rate_delta": (
                loaded["miss_rate"] - conditions["unloaded"]["miss_rate"]
            ),
        }

    if max_miss_rate is None:
        max_miss_rate = (
            RT_SMOKE_MAX_MISS_RATE if smoke else RT_DEFAULT_MAX_MISS_RATE
        )
    policy = SLOPolicy(deadline_s=deadline_s, max_miss_rate=max_miss_rate)
    verdict = evaluate_slo(conditions["unloaded"], policy)

    rt_block: Dict[str, Any] = {
        "kernel": cls.name,
        "stage": cls.stage,
        "granularity": granularity,
        "period_ms": period_s * 1e3,
        "deadline_ms": deadline_s * 1e3,
        "jobs": jobs,
        "warmup": warmup,
        "overrun": overrun,
        "smoke": smoke,
        "calibrated": calibrated,
        "antagonists": antagonists,
        "antagonist_kind": antagonist_kind if antagonists else None,
        "config": config.describe(),
    }
    if granularity == "step":
        rt_block["steps_per_episode"] = int(
            instance.num_steps(config, state)
        )
    return {
        "rt": rt_block,
        "conditions": conditions,
        "degradation": degradation,
        "slo": {"policy": policy.as_dict(), **verdict.as_dict()},
    }
