"""End-to-end real-time benchmarking (``rtrbench rt``, ``BENCH_rt.json``).

Glue between the rt building blocks and the rest of the harness: resolve
a kernel from the registry, run it as a periodic task through
:class:`~repro.rt.scheduler.PeriodicScheduler` (each job is one
``Kernel._run_once`` — the same setup + ROI + profiler path every other
experiment uses), optionally repeat the run under antagonist load, and
assemble the machine-readable report with latency quantiles, release
jitter, deadline-miss rate, an SLO verdict, and a phase breakdown with
per-phase min/max durations from the shared profiler stats.

The CI contract — outside smoke mode the unloaded SLO must pass, and an
antagonist run must actually degrade p99 latency — is expressed as the
``rt.*`` gate declarations in :data:`repro.results.gates.DEFAULT_GATES`
and enforced by ``rtrbench gate`` over the record that ``rtrbench rt``
emits (the ``check_rt_floors`` checker that used to live here).
"""

from __future__ import annotations

import statistics
from typing import Any, Dict, Optional

from repro.harness.config import KernelConfig, rt_defaults
from repro.harness.profiler import PhaseProfiler
from repro.harness.runner import Kernel, load_all_kernels, registry
from repro.rt.histogram import LatencyHistogram
from repro.rt.interference import AntagonistPool
from repro.rt.scheduler import PeriodicScheduler
from repro.rt.slo import SLOPolicy, evaluate_slo, summarize_jobs

#: Deadline-miss budget outside smoke mode (10% of jobs may miss).
RT_DEFAULT_MAX_MISS_RATE = 0.1

#: Smoke mode never fails on misses: CI machines are noisy and shared.
RT_SMOKE_MAX_MISS_RATE = 1.0

#: Auto-calibrated period = headroom x median job wall clock.
CALIBRATION_HEADROOM = 2.0

#: Floor for auto-calibrated periods (seconds).
CALIBRATION_MIN_PERIOD_S = 1e-3


def calibrate_period_s(
    kernel: Kernel, config: KernelConfig, samples: int = 3
) -> float:
    """Measure unpaced job wall clock and pick a schedulable period.

    One untimed run warms the workload cache, then the median of
    ``samples`` timed runs (setup + ROI, exactly what a periodic job
    costs) is scaled by :data:`CALIBRATION_HEADROOM` — a period the
    unloaded machine can hold without being trivially loose.
    """
    import time

    kernel._run_once(config)
    walls = []
    for _ in range(max(1, samples)):
        t0 = time.monotonic()
        kernel._run_once(config)
        walls.append(time.monotonic() - t0)
    return max(
        CALIBRATION_MIN_PERIOD_S,
        CALIBRATION_HEADROOM * statistics.median(walls),
    )


def _phase_block(profiler: PhaseProfiler) -> Dict[str, Any]:
    """Aggregate phase breakdown with per-call min/max/last durations."""
    fractions = profiler.fractions()
    return {
        "dominant": profiler.dominant_phase(),
        "phases": {
            name: {
                "share": fractions[name],
                "calls": st.calls,
                "mean_ms": (
                    st.inclusive_time / st.calls * 1e3 if st.calls else 0.0
                ),
                "min_ms": st.min_time * 1e3,
                "max_ms": st.max_time * 1e3,
                "last_ms": st.last_time * 1e3,
            }
            for name, st in profiler.stats.items()
        },
    }


def run_condition(
    kernel: Kernel,
    config: KernelConfig,
    period_s: float,
    deadline_s: float,
    jobs: int,
    warmup: int = 0,
    overrun: str = "skip",
) -> Dict[str, Any]:
    """One periodic run of ``kernel`` under the current machine condition."""
    aggregate = PhaseProfiler()
    roi_hist = LatencyHistogram()

    def job(index: int) -> None:
        result = kernel._run_once(config)
        if index >= warmup:
            aggregate.merge(result.profiler)
            roi_hist.record(result.roi_time)

    scheduler = PeriodicScheduler(
        period_s=period_s, deadline_s=deadline_s, overrun=overrun
    )
    schedule = scheduler.run(job, jobs=jobs, warmup=warmup)
    summary = summarize_jobs(
        schedule.records, deadline_s, schedule.skipped_releases
    )
    summary["roi_ms"] = roi_hist.summary(scale=1e3)
    summary["busy_s"] = sum(r.latency_s for r in schedule.measured())
    summary["phase_breakdown"] = _phase_block(aggregate)
    return summary


def run_rt(
    kernel: str,
    period_ms: Optional[float] = None,
    deadline_ms: Optional[float] = None,
    jobs: Optional[int] = None,
    warmup: Optional[int] = None,
    overrun: str = "skip",
    antagonists: int = 0,
    antagonist_kind: str = "cpu",
    smoke: bool = False,
    max_miss_rate: Optional[float] = None,
    config: Optional[KernelConfig] = None,
    **overrides: Any,
) -> Dict[str, Any]:
    """Run a registered kernel as a periodic task; return the rt report.

    ``period_ms=None`` takes the kernel's default from
    :data:`repro.harness.config.RT_KERNEL_DEFAULTS`; ``period_ms=0``
    auto-calibrates from warmup wall clock.  ``deadline_ms`` defaults to
    the period (implicit deadline).  With ``antagonists > 0`` the run
    executes twice — unloaded, then under the antagonist pool — and the
    report records both conditions side by side with degradation ratios.
    ``overrides`` patch the kernel's configuration, mirroring
    ``rtrbench run`` flags.
    """
    load_all_kernels()
    cls = registry.get(kernel)
    instance = cls()
    if config is None:
        config = cls.config_cls(**overrides) if overrides else cls.config_cls()
    elif overrides:
        config = config.replace(**overrides)

    jobs = (12 if smoke else 50) if jobs is None else int(jobs)
    warmup = (1 if smoke else 3) if warmup is None else max(0, int(warmup))
    defaults = rt_defaults(cls.name)
    calibrated = False
    if period_ms is None:
        period_s = defaults.period_ms / 1e3
    elif period_ms <= 0.0:
        period_s = calibrate_period_s(instance, config)
        calibrated = True
    else:
        period_s = period_ms / 1e3
    if deadline_ms is None:
        deadline_s = (
            period_s
            if calibrated or period_ms is not None
            else defaults.resolved_deadline_ms() / 1e3
        )
    else:
        deadline_s = deadline_ms / 1e3

    conditions: Dict[str, Any] = {
        "unloaded": run_condition(
            instance,
            config,
            period_s,
            deadline_s,
            jobs=jobs,
            warmup=warmup,
            overrun=overrun,
        )
    }
    degradation: Optional[Dict[str, float]] = None
    if antagonists > 0:
        with AntagonistPool(antagonists, kind=antagonist_kind):
            loaded = run_condition(
                instance,
                config,
                period_s,
                deadline_s,
                jobs=jobs,
                warmup=warmup,
                overrun=overrun,
            )
        loaded["antagonists"] = antagonists
        loaded["antagonist_kind"] = antagonist_kind
        conditions["loaded"] = loaded
        base = conditions["unloaded"]["response_ms"]
        under = loaded["response_ms"]
        degradation = {
            "p50_ratio": under["p50"] / base["p50"] if base["p50"] else 0.0,
            "p99_ratio": under["p99"] / base["p99"] if base["p99"] else 0.0,
            "miss_rate_delta": (
                loaded["miss_rate"] - conditions["unloaded"]["miss_rate"]
            ),
        }

    if max_miss_rate is None:
        max_miss_rate = (
            RT_SMOKE_MAX_MISS_RATE if smoke else RT_DEFAULT_MAX_MISS_RATE
        )
    policy = SLOPolicy(deadline_s=deadline_s, max_miss_rate=max_miss_rate)
    verdict = evaluate_slo(conditions["unloaded"], policy)

    return {
        "rt": {
            "kernel": cls.name,
            "stage": cls.stage,
            "period_ms": period_s * 1e3,
            "deadline_ms": deadline_s * 1e3,
            "jobs": jobs,
            "warmup": warmup,
            "overrun": overrun,
            "smoke": smoke,
            "calibrated": calibrated,
            "antagonists": antagonists,
            "antagonist_kind": antagonist_kind if antagonists else None,
            "config": config.describe(),
        },
        "conditions": conditions,
        "degradation": degradation,
        "slo": {"policy": policy.as_dict(), **verdict.as_dict()},
    }
