"""Mergeable log-bucketed latency histogram with exact quantiles.

Latency distributions are heavy-tailed, so the usual fixed-width
histogram either wastes buckets on the tail or loses the head.  This
histogram uses HdrHistogram-style bucketing — power-of-two octaves split
into linear sub-buckets, derived from :func:`math.frexp` so the mapping
is exactly monotonic (no floating-point ``log`` boundary surprises) —
but keeps the *raw samples* inside each bucket.  Recording stays O(1)
append; quantiles walk the cumulative bucket counts to locate the target
bucket and sort only that bucket, so ``quantile`` is **exact** (it
returns a recorded sample, identical to indexing a fully sorted list)
at far below full-sort cost for the common "one quantile sweep over a
long run" pattern.

Histograms with the same geometry merge bucket-wise, which is what the
rt suite needs to fold per-condition or per-worker runs into one
distribution.  Pure Python, no dependencies.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence

#: Default smallest distinguishable latency (1 microsecond, in seconds).
DEFAULT_MIN_VALUE = 1e-6

#: Default linear sub-buckets per power-of-two octave (~12% resolution).
DEFAULT_SUBBUCKETS = 8


class LatencyHistogram:
    """Log-bucketed histogram of non-negative values with exact quantiles.

    ``min_value`` is the resolution floor: everything at or below it
    lands in bucket 0.  Above it, bucket boundaries grow geometrically
    (each power-of-two octave split into ``subbuckets`` linear slices).
    Values are retained per bucket, so quantiles are exact; bucket
    counts give a compact serializable shape for reports.
    """

    def __init__(
        self,
        min_value: float = DEFAULT_MIN_VALUE,
        subbuckets: int = DEFAULT_SUBBUCKETS,
    ) -> None:
        if min_value <= 0.0:
            raise ValueError("min_value must be positive")
        if subbuckets < 1:
            raise ValueError("subbuckets must be >= 1")
        self.min_value = float(min_value)
        self.subbuckets = int(subbuckets)
        self._buckets: Dict[int, List[float]] = {}
        self.count = 0
        self.sum = 0.0
        self.min: float = math.inf
        self.max: float = 0.0

    # -- bucketing ---------------------------------------------------------

    def _index(self, value: float) -> int:
        """Monotonic bucket index for ``value`` (0 = at/below the floor)."""
        if value <= self.min_value:
            return 0
        mantissa, exponent = math.frexp(value / self.min_value)
        # ratio >= 1 so exponent >= 1 and mantissa is in [0.5, 1).
        sub = int((mantissa - 0.5) * 2.0 * self.subbuckets)
        sub = min(sub, self.subbuckets - 1)
        return 1 + (exponent - 1) * self.subbuckets + sub

    def bucket_lower_bound(self, index: int) -> float:
        """Smallest value that maps into bucket ``index``."""
        if index <= 0:
            return 0.0
        octave, sub = divmod(index - 1, self.subbuckets)
        width = 2.0 ** octave
        return self.min_value * (width + sub * width / self.subbuckets)

    # -- recording ---------------------------------------------------------

    def record(self, value: float) -> None:
        """Add one observation (must be >= 0)."""
        value = float(value)
        if value < 0.0 or math.isnan(value):
            raise ValueError(f"cannot record {value!r} in a latency histogram")
        self._buckets.setdefault(self._index(value), []).append(value)
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def record_many(self, values: Iterable[float]) -> None:
        """Add a batch of observations."""
        for value in values:
            self.record(value)

    # -- quantiles ---------------------------------------------------------

    def quantile(self, q: float) -> float:
        """Exact nearest-rank quantile: identical to sorting all samples.

        ``q`` in [0, 1]; ``q=0`` is the minimum, ``q=1`` the maximum.
        Only the bucket containing the target rank is sorted.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q!r} outside [0, 1]")
        if self.count == 0:
            raise ValueError("quantile of an empty histogram")
        rank = max(1, math.ceil(q * self.count))  # 1-based nearest rank
        seen = 0
        for index in sorted(self._buckets):
            bucket = self._buckets[index]
            if rank <= seen + len(bucket):
                return sorted(bucket)[rank - seen - 1]
            seen += len(bucket)
        raise AssertionError("rank walked past all buckets")  # pragma: no cover

    def quantiles(self, qs: Sequence[float]) -> Dict[float, float]:
        """Batch quantile lookup (one dict, keyed by the requested q)."""
        return {q: self.quantile(q) for q in qs}

    @property
    def mean(self) -> float:
        """Arithmetic mean of all recorded values (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    # -- merge / export ----------------------------------------------------

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold another histogram's samples into this one.

        Requires identical geometry (``min_value`` and ``subbuckets``),
        so bucket indices line up and the merge is a bucket-wise extend.
        """
        if (other.min_value, other.subbuckets) != (
            self.min_value,
            self.subbuckets,
        ):
            raise ValueError("cannot merge histograms with different geometry")
        for index, bucket in other._buckets.items():
            self._buckets.setdefault(index, []).extend(bucket)
        self.count += other.count
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def summary(self, scale: float = 1.0) -> Dict[str, float]:
        """Standard report block: count/mean/min/max + p50/p90/p99/p99.9.

        ``scale`` multiplies every value on the way out (e.g. 1e3 to
        report seconds as milliseconds).
        """
        if self.count == 0:
            return {"count": 0}
        qs = self.quantiles([0.5, 0.9, 0.99, 0.999])
        return {
            "count": self.count,
            "mean": self.mean * scale,
            "min": self.min * scale,
            "p50": qs[0.5] * scale,
            "p90": qs[0.9] * scale,
            "p99": qs[0.99] * scale,
            "p999": qs[0.999] * scale,
            "max": self.max * scale,
        }

    def bucket_counts(self) -> Dict[float, int]:
        """Lower-bound -> count view of the distribution's shape."""
        return {
            self.bucket_lower_bound(index): len(bucket)
            for index, bucket in sorted(self._buckets.items())
        }

    @classmethod
    def from_values(
        cls,
        values: Iterable[float],
        min_value: float = DEFAULT_MIN_VALUE,
        subbuckets: int = DEFAULT_SUBBUCKETS,
    ) -> "LatencyHistogram":
        """Build a histogram from an iterable in one call."""
        hist = cls(min_value=min_value, subbuckets=subbuckets)
        hist.record_many(values)
        return hist
