"""Deadline/SLO evaluation and report dataclasses.

A periodic run produces a list of :class:`~repro.rt.scheduler.JobRecord`
rows; this module turns them into the serving-style numbers the rt
report leads with — response/latency quantiles, release-jitter stats,
deadline-miss rate — and judges them against an :class:`SLOPolicy`.
The verdict is machine-checkable (``rtrbench rt`` exits non-zero on a
failed SLO outside smoke mode) and carries human-readable reasons.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.rt.histogram import LatencyHistogram
from repro.rt.scheduler import JobRecord


@dataclass
class SLOPolicy:
    """What a run must achieve to pass.

    ``deadline_s`` classifies each job; ``max_miss_rate`` bounds the
    fraction of jobs allowed to miss (inclusive — a run exactly at the
    bound passes); ``max_p99_response_s`` optionally bounds the p99
    response time; ``max_skip_rate`` bounds skipped releases per
    measured job under the "skip" overrun policy.
    """

    deadline_s: float
    max_miss_rate: float = 0.0
    max_p99_response_s: Optional[float] = None
    max_skip_rate: Optional[float] = None

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict view for JSON reports."""
        return {
            "deadline_ms": self.deadline_s * 1e3,
            "max_miss_rate": self.max_miss_rate,
            "max_p99_response_ms": (
                None
                if self.max_p99_response_s is None
                else self.max_p99_response_s * 1e3
            ),
            "max_skip_rate": self.max_skip_rate,
        }


@dataclass
class SLOVerdict:
    """Outcome of judging one run against a policy."""

    passed: bool
    reasons: List[str] = field(default_factory=list)

    @property
    def verdict(self) -> str:
        """``"pass"`` or ``"fail"``, the report's headline string."""
        return "pass" if self.passed else "fail"

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict view for JSON reports."""
        return {"verdict": self.verdict, "reasons": list(self.reasons)}


def summarize_jobs(
    records: Sequence[JobRecord],
    deadline_s: float,
    skipped_releases: int = 0,
) -> Dict[str, Any]:
    """Distill job records into the rt report's summary block.

    Warmup records are excluded.  Times are reported in milliseconds
    (the natural unit at robot control rates); jitter is summarized by
    mean/absolute-max/p99 of the release-time error.
    """
    measured = [r for r in records if not r.warmup]
    if not measured:
        return {"jobs": 0}
    response = LatencyHistogram.from_values(r.response_s for r in measured)
    latency = LatencyHistogram.from_values(r.latency_s for r in measured)
    # Jitter can be negative only by clock quirks; clamp for the histogram
    # but keep the signed mean.
    jitter_values = [max(0.0, r.jitter_s) for r in measured]
    jitter = LatencyHistogram.from_values(jitter_values)
    misses = sum(1 for r in measured if not r.met_deadline(deadline_s))
    return {
        "jobs": len(measured),
        "deadline_ms": deadline_s * 1e3,
        "misses": misses,
        "miss_rate": misses / len(measured),
        "skipped_releases": skipped_releases,
        "skip_rate": skipped_releases / len(measured),
        "response_ms": response.summary(scale=1e3),
        "latency_ms": latency.summary(scale=1e3),
        "jitter_ms": {
            "mean": sum(r.jitter_s for r in measured) / len(measured) * 1e3,
            "p99": jitter.quantile(0.99) * 1e3,
            "max": jitter.max * 1e3,
        },
    }


def evaluate_slo(
    summary: Dict[str, Any], policy: SLOPolicy
) -> SLOVerdict:
    """Judge a :func:`summarize_jobs` summary against ``policy``.

    Bounds are inclusive: a run exactly at ``max_miss_rate`` (or exactly
    at the p99/skip bound) passes.  An empty run fails — no evidence is
    not a met SLO.
    """
    reasons: List[str] = []
    if not summary.get("jobs"):
        return SLOVerdict(passed=False, reasons=["no measured jobs"])
    miss_rate = summary["miss_rate"]
    if miss_rate > policy.max_miss_rate:
        reasons.append(
            f"miss rate {miss_rate:.3f} exceeds bound "
            f"{policy.max_miss_rate:.3f} "
            f"({summary['misses']}/{summary['jobs']} jobs past the "
            f"{policy.deadline_s * 1e3:.3g}ms deadline)"
        )
    if policy.max_p99_response_s is not None:
        p99_s = summary["response_ms"]["p99"] / 1e3
        if p99_s > policy.max_p99_response_s:
            reasons.append(
                f"p99 response {p99_s * 1e3:.3f}ms exceeds bound "
                f"{policy.max_p99_response_s * 1e3:.3f}ms"
            )
    if policy.max_skip_rate is not None:
        skip_rate = summary.get("skip_rate", 0.0)
        if skip_rate > policy.max_skip_rate:
            reasons.append(
                f"skip rate {skip_rate:.3f} exceeds bound "
                f"{policy.max_skip_rate:.3f}"
            )
    return SLOVerdict(passed=not reasons, reasons=reasons)
