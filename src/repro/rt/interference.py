"""Antagonist processes: measured interference for degradation studies.

Real-time numbers taken on an idle machine flatter the system; the
interesting question is how the latency distribution moves when the
kernel shares the machine with load.  This module launches *antagonist*
processes — deliberately cache- and scheduler-hostile busy loops — next
to the measured task, reusing the process-isolation pattern of
:mod:`repro.harness.parallel` (forked daemon workers, terminate + join
teardown, kill fallback) so an antagonist can never outlive its run.

Kinds:

* ``"cpu"`` — pure arithmetic spin, competing for cycles and scheduler
  slots;
* ``"membw"`` — repeatedly copies a buffer much larger than the last-
  level cache, competing for memory bandwidth and evicting the measured
  task's working set;
* ``"mixed"`` — alternates the two kinds across the pool.

Antagonists synchronize on a shared :class:`multiprocessing.Event`, so
``stop()`` is prompt; they are daemons, so even a crashed parent leaks
nothing past its own exit.
"""

from __future__ import annotations

import multiprocessing
from typing import Any, List, Optional

#: Valid antagonist kinds, in documentation order.
ANTAGONIST_KINDS = ("cpu", "membw", "mixed")

#: Buffer size for the memory-bandwidth antagonist (bytes).  64 MiB is
#: far beyond any L3 on the machines this suite targets, so the copy
#: loop streams from DRAM.
MEMBW_BUFFER_BYTES = 64 * 1024 * 1024


def _cpu_spin(stop: Any) -> None:
    """Arithmetic busy loop until ``stop`` is set."""
    x = 1.0000001
    while not stop.is_set():
        for _ in range(50_000):
            x = x * 1.0000001
            if x > 2.0:
                x -= 1.0


def _membw_stream(stop: Any, buffer_bytes: int = MEMBW_BUFFER_BYTES) -> None:
    """Stream a cache-busting buffer back and forth until ``stop`` is set."""
    src = bytearray(buffer_bytes)
    dst = bytearray(buffer_bytes)
    while not stop.is_set():
        dst[:] = src
        src[:] = dst


def _default_start_method() -> str:
    """``fork`` where available, matching ``harness.parallel``."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


class AntagonistPool:
    """A stoppable pool of ``count`` antagonist processes.

    Usable as a context manager::

        with AntagonistPool(4, kind="membw"):
            ...  # measured section runs under load
    """

    def __init__(
        self,
        count: int,
        kind: str = "cpu",
        start_method: Optional[str] = None,
    ) -> None:
        if count < 0:
            raise ValueError("count must be >= 0")
        if kind not in ANTAGONIST_KINDS:
            raise ValueError(
                f"unknown antagonist kind {kind!r}; "
                f"expected one of {ANTAGONIST_KINDS}"
            )
        self.count = count
        self.kind = kind
        self._ctx = multiprocessing.get_context(
            start_method or _default_start_method()
        )
        self._stop = self._ctx.Event()
        self._processes: List[Any] = []

    def _target(self, index: int) -> Any:
        if self.kind == "cpu":
            return _cpu_spin
        if self.kind == "membw":
            return _membw_stream
        return _cpu_spin if index % 2 == 0 else _membw_stream

    def start(self) -> "AntagonistPool":
        """Launch the antagonists (idempotent; no-op for ``count == 0``)."""
        if self._processes:
            return self
        self._stop.clear()
        for index in range(self.count):
            process = self._ctx.Process(
                target=self._target(index),
                args=(self._stop,),
                daemon=True,
                name=f"rt-antagonist-{self.kind}-{index}",
            )
            process.start()
            self._processes.append(process)
        return self

    def stop(self, join_timeout: float = 5.0) -> None:
        """Signal, join, and (if necessary) terminate every antagonist."""
        self._stop.set()
        for process in self._processes:
            process.join(join_timeout)
            if process.is_alive():  # pragma: no cover - stubborn worker
                process.terminate()
                process.join(join_timeout)
                if process.is_alive():
                    process.kill()
                    process.join()
        self._processes.clear()

    def alive_count(self) -> int:
        """How many antagonist processes are currently running."""
        return sum(1 for p in self._processes if p.is_alive())

    def __enter__(self) -> "AntagonistPool":
        return self.start()

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.stop()
