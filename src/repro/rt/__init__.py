"""Real-time execution subsystem.

RTRBench's subject is *real-time* robotics, but a single ROI wall-clock
number says nothing about the properties that define real-time behavior:
response-time distributions, release jitter, and deadline misses under
load.  This package runs any registered kernel as a **periodic task** —
a release loop fires jobs at a configurable period, each job executes
one kernel iteration through the existing runner/ROI machinery — and
reports latency quantiles (exact, from a mergeable log-bucketed
histogram), release jitter, deadline-miss rate, and an SLO verdict,
optionally under CPU / memory-bandwidth antagonist load.

Modules:

* :mod:`repro.rt.histogram` — dependency-free log-bucketed latency
  histogram with exact quantiles and O(1) recording;
* :mod:`repro.rt.scheduler` — periodic release loop with
  monotonic-clock pacing, deterministic overrun policies, and warmup
  exclusion;
* :mod:`repro.rt.interference` — CPU and memory-bandwidth antagonist
  processes for degradation-under-load measurements;
* :mod:`repro.rt.slo` — deadline/SLO evaluation and report dataclasses;
* :mod:`repro.rt.run` — end-to-end orchestration behind ``rtrbench rt``
  (``BENCH_rt.json``).
"""

from repro.rt.histogram import LatencyHistogram
from repro.rt.scheduler import JobRecord, PeriodicScheduler, ScheduleResult
from repro.rt.slo import SLOPolicy, SLOVerdict, evaluate_slo, summarize_jobs
from repro.rt.run import run_rt

__all__ = [
    "LatencyHistogram",
    "JobRecord",
    "PeriodicScheduler",
    "ScheduleResult",
    "SLOPolicy",
    "SLOVerdict",
    "evaluate_slo",
    "summarize_jobs",
    "run_rt",
]
