"""Periodic release loop with monotonic-clock pacing.

The real-time execution model (RT-Bench-style): a task releases a job
every ``period_s`` seconds on a fixed release grid anchored at the
loop's start; each job runs one kernel iteration; the job's *response
time* is measured from its scheduled release to its completion, so a
job that starts late (the previous job overran, or the OS woke us late)
is charged for the delay exactly as a real control loop would be.

Pacing uses an injectable monotonic clock and sleep function —
``time.monotonic``/``time.sleep`` in production, a fake clock in tests —
so the overrun policies are deterministic and unit-testable without
real waiting.

Overrun policies (what happens when a job finishes after the next
scheduled release):

* ``"skip"`` — skip the releases that came due while the job ran; the
  next job releases at the next grid point strictly after completion.
  Missed grid points are counted in ``ScheduleResult.skipped_releases``.
  This models a control loop that always acts on fresh sensor data.
* ``"queue"`` — keep every release: late jobs start immediately,
  back-to-back, until the loop catches up with the grid.  This models a
  pipeline that must process every input (and exposes cascading misses).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

#: Valid overrun policies, in documentation order.
OVERRUN_POLICIES = ("skip", "queue")


@dataclass
class JobOutput:
    """Wrapper a job function may return to annotate its record.

    ``value`` is stored in ``ScheduleResult.outputs`` (when kept) and
    ``meta`` lands on the job's :class:`JobRecord` — e.g. which session
    episode and step index a per-iteration real-time job executed.
    """

    value: Any = None
    meta: Optional[Dict[str, Any]] = None


@dataclass
class JobRecord:
    """One periodic job's timing, all in seconds relative to loop start.

    ``response_s`` (completion minus scheduled release) is the number a
    deadline compares against; ``latency_s`` (completion minus actual
    start) is pure service time; ``jitter_s`` (actual start minus
    scheduled release) is the release-time error the scheduler itself
    introduced — sleep overshoot or a queued backlog.  ``meta`` is the
    job function's own annotation (via :class:`JobOutput`), if any.
    """

    index: int
    release_s: float
    start_s: float
    end_s: float
    warmup: bool = False
    meta: Optional[Dict[str, Any]] = None

    @property
    def response_s(self) -> float:
        """Completion minus scheduled release (the deadline-facing time)."""
        return self.end_s - self.release_s

    @property
    def latency_s(self) -> float:
        """Completion minus actual start (pure service time)."""
        return self.end_s - self.start_s

    @property
    def jitter_s(self) -> float:
        """Actual start minus scheduled release (release-time error)."""
        return self.start_s - self.release_s

    def met_deadline(self, deadline_s: float) -> bool:
        """True when the job completed within ``deadline_s`` of release."""
        return self.response_s <= deadline_s


@dataclass
class ScheduleResult:
    """Everything one periodic run produced.

    ``records`` includes warmup jobs (flagged ``warmup=True``) so traces
    are complete; :meth:`measured` filters them out for statistics.
    """

    period_s: float
    deadline_s: float
    overrun: str
    records: List[JobRecord] = field(default_factory=list)
    skipped_releases: int = 0
    outputs: List[Any] = field(default_factory=list)
    #: True when the loop ended before its job budget — the job function
    #: raised ``StopIteration`` (no more work to release).
    stopped_early: bool = False

    def measured(self) -> List[JobRecord]:
        """The non-warmup jobs, in release order."""
        return [r for r in self.records if not r.warmup]

    def miss_count(self) -> int:
        """Measured jobs that blew their deadline."""
        return sum(
            1
            for r in self.measured()
            if not r.met_deadline(self.deadline_s)
        )

    def miss_rate(self) -> float:
        """Fraction of measured jobs that missed the deadline."""
        measured = self.measured()
        return self.miss_count() / len(measured) if measured else 0.0


class PeriodicScheduler:
    """Release jobs on a fixed period and record per-job timing.

    ``job_fn`` receives the job index and may return an output (kept in
    ``ScheduleResult.outputs`` for non-warmup jobs); returning a
    :class:`JobOutput` additionally attaches its ``meta`` dict to the
    job's record.  Raising ``StopIteration`` from ``job_fn`` ends the
    loop cleanly before the job budget — the aborted release produces no
    record and the result is flagged ``stopped_early``.  ``warmup`` jobs
    run first, on the same release grid, but are excluded from
    statistics — they absorb cache warming and JIT-ish first-run
    effects.
    """

    def __init__(
        self,
        period_s: float,
        deadline_s: Optional[float] = None,
        overrun: str = "skip",
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if period_s <= 0.0:
            raise ValueError("period_s must be positive")
        if overrun not in OVERRUN_POLICIES:
            raise ValueError(
                f"unknown overrun policy {overrun!r}; "
                f"expected one of {OVERRUN_POLICIES}"
            )
        self.period_s = period_s
        self.deadline_s = period_s if deadline_s is None else deadline_s
        if self.deadline_s <= 0.0:
            raise ValueError("deadline_s must be positive")
        self.overrun = overrun
        self._clock = clock
        self._sleep = sleep

    def run(
        self,
        job_fn: Callable[[int], Any],
        jobs: int,
        warmup: int = 0,
        keep_outputs: bool = False,
    ) -> ScheduleResult:
        """Execute ``warmup + jobs`` periodic releases of ``job_fn``."""
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        warmup = max(0, int(warmup))
        result = ScheduleResult(
            period_s=self.period_s,
            deadline_s=self.deadline_s,
            overrun=self.overrun,
        )
        t0 = self._clock()
        grid = 0  # release index: release time is t0 + grid * period
        for index in range(warmup + jobs):
            release = t0 + grid * self.period_s
            now = self._clock()
            if now < release:
                self._sleep(release - now)
                now = self._clock()
            start = now
            try:
                output = job_fn(index)
            except StopIteration:
                result.stopped_early = True
                break
            end = self._clock()
            meta = None
            if isinstance(output, JobOutput):
                meta = output.meta
                output = output.value
            is_warmup = index < warmup
            result.records.append(
                JobRecord(
                    index=index,
                    release_s=release - t0,
                    start_s=start - t0,
                    end_s=end - t0,
                    warmup=is_warmup,
                    meta=meta,
                )
            )
            if keep_outputs and not is_warmup:
                result.outputs.append(output)
            if self.overrun == "queue":
                grid += 1
            else:
                # "skip": next release is the earliest grid point at or
                # after completion (a job ending exactly on the grid
                # still catches that release); grid points that came due
                # strictly mid-job are counted as skipped.
                next_grid = max(
                    grid + 1, math.ceil((end - t0) / self.period_s)
                )
                if not is_warmup:
                    result.skipped_releases += next_grid - (grid + 1)
                grid = next_grid
        return result
