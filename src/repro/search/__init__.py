"""Graph search substrate: priority queues, A*, Weighted A*, Dijkstra.

Best-first graph search is the backbone of the planning kernels (pp2d,
pp3d, movtar, prm, and the symbolic planners all reduce to it).  The
algorithms here operate over *implicit* graphs — a successor function
rather than materialized adjacency — which is how the paper's kernels
search environments too large to enumerate.
"""

from repro.search.astar import SearchResult, astar, weighted_astar
from repro.search.dijkstra import backward_dijkstra_grid, dijkstra
from repro.search.grid_core import (
    BucketQuantizationError,
    BucketQueue,
    FlatSearchResult,
    GridSweepStats,
    astar_flat,
    astar_grid_2d,
    astar_grid_3d,
    dijkstra_grid_bucketed,
)
from repro.search.queues import PriorityQueue
from repro.search.space import SearchSpace

__all__ = [
    "SearchResult",
    "astar",
    "weighted_astar",
    "backward_dijkstra_grid",
    "dijkstra",
    "BucketQuantizationError",
    "BucketQueue",
    "FlatSearchResult",
    "GridSweepStats",
    "astar_flat",
    "astar_grid_2d",
    "astar_grid_3d",
    "dijkstra_grid_bucketed",
    "PriorityQueue",
    "SearchSpace",
]
