"""Binary-heap priority queue with lazy decrease-key.

The open list of every best-first search in the suite.  Decrease-key is
implemented lazily (stale entries are skipped on pop), the standard
technique for heapq-based A* — re-pushing is cheaper than rebuilding and
keeps pop amortized O(log n).

Lazy invalidation is invisible at the public surface: ``__contains__``,
``priority_of``, ``__len__``, ``peek`` and ``pop`` all answer for the
*live* entry per item (the most recent ``push``) and never expose a
superseded one, even though its tombstone physically stays in the heap
until it drifts to the root.  ``tests/test_search_queues.py`` pins these
semantics.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Dict, Hashable, Optional, Tuple


class PriorityQueue:
    """Min-priority queue over hashable items with updatable priorities."""

    _REMOVED = object()

    def __init__(self) -> None:
        self._heap: list = []
        self._entries: Dict[Hashable, list] = {}
        self._counter = itertools.count()
        self._size = 0
        self.pushes = 0
        self.pops = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __contains__(self, item: Hashable) -> bool:
        """True iff ``item`` has a live entry (stale tombstones don't count)."""
        return item in self._entries

    def push(self, item: Hashable, priority: float) -> None:
        """Insert ``item``, or update its priority if already queued.

        Updating tombstones the old heap entry rather than re-sifting it;
        both decrease- and increase-key take this path, so the queue
        always orders by the latest pushed priority.
        """
        if item in self._entries:
            self._entries[item][2] = self._REMOVED
            self._size -= 1
        entry = [priority, next(self._counter), item]
        self._entries[item] = entry
        heapq.heappush(self._heap, entry)
        self._size += 1
        self.pushes += 1

    def pop(self) -> Tuple[Hashable, float]:
        """Remove and return ``(item, priority)`` with the lowest priority."""
        while self._heap:
            priority, _, item = heapq.heappop(self._heap)
            if item is not self._REMOVED:
                del self._entries[item]
                self._size -= 1
                self.pops += 1
                return item, priority
        raise IndexError("pop from an empty priority queue")

    def peek(self) -> Tuple[Hashable, float]:
        """Return the minimum ``(item, priority)`` without removing it."""
        while self._heap:
            priority, _, item = self._heap[0]
            if item is self._REMOVED:
                heapq.heappop(self._heap)
                continue
            return item, priority
        raise IndexError("peek at an empty priority queue")

    def priority_of(self, item: Hashable) -> Optional[float]:
        """Current queued priority of ``item``, or ``None`` if absent.

        "Current" means the most recent ``push`` — a superseded entry
        still sitting in the heap never leaks through here.
        """
        entry = self._entries.get(item)
        return None if entry is None else entry[0]
