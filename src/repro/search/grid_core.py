"""Array-backed grid-search engine: bucketed Dijkstra + flat-array A*.

The paper's performance argument (§VII, Fig. 21) is that graph search
dominates the planning kernels and that per-node Python data structures
— heapq entries as tuples, dict-keyed g/parent maps, hashable states —
are what make educational implementations orders of magnitude slower
than tuned ones.  This module is the suite's answer: search state lives
in preallocated flat arrays indexed by cell, never in dicts, and the
open list is chosen to match the cost structure:

* :class:`BucketQueue` — a Dial-style bucketed priority queue for the
  monotone, bounded-cost case (Dijkstra over a costmap).  With bucket
  width no larger than the minimum edge cost, every label in the
  current bucket is final when the bucket is reached (a relaxation out
  of bucket ``b`` lands in bucket ``>= b + 1``), so the engine can pop
  the *entire bucket at once* and expand it as one batched numpy
  frontier: successor indices from flat neighbor offsets, occupancy
  and improvement tests as vectorized masks, scatter-min relaxation
  via ``np.minimum.at``.  Exactness argument: for a frontier node
  ``u`` with ``dist[u]`` in bucket ``b`` and any edge cost
  ``c >= width``, ``dist[u] + c >= (b + 1) * width``, so no entry of
  bucket ``b`` can improve another entry of bucket ``b`` — precisely
  the classic Dial invariant, generalized to real costs.  The stored
  distances themselves stay exact floats; buckets only order work.

* :func:`astar_flat` — a lazy binary-heap A* over flat arrays for
  general (unquantizable) costs, e.g. f = g + epsilon * h with a
  Euclidean heuristic.  It is algorithm-for-algorithm the same search
  as :func:`repro.search.astar.weighted_astar` — same push condition,
  same FIFO tie-breaking, same goal-test-on-pop, same float arithmetic
  — so the two backends return identical costs, paths, and operation
  counters (expansions, pushes, pops); only the data layout differs.
  Grids are padded with a one-cell occupied halo so the inner loop
  needs no bounds checks: every flat neighbor offset lands either on a
  real cell or on the blocked halo, which is exactly the reference
  semantics of "out of bounds counts as occupied".

``backward_dijkstra_grid`` (movtar's heuristic-table sweep — the
full-grid recompute whenever the table invalidates) and the pp2d/pp3d
``backend="array"`` planners are built on these engines; the heapq
implementations in :mod:`repro.search.astar` / :mod:`.dijkstra` remain
the ``reference`` backend for equivalence testing.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

_SQRT2 = math.sqrt(2.0)

#: Canonical 8-connected move order for the 2D planners: the exact
#: iteration order of pp2d's reference successor function, so FIFO
#: tie-breaking (and therefore expansion order) matches across backends.
MOVES_2D_8: Tuple[Tuple[int, int], ...] = (
    (-1, 0), (1, 0), (0, -1), (0, 1), (-1, -1), (-1, 1), (1, -1), (1, 1),
)

#: Canonical 26-connected move order for the 3D planners (pp3d's
#: reference order: dz-major product, origin excluded).
MOVES_3D_26: Tuple[Tuple[int, int, int], ...] = tuple(
    (dz, dy, dx)
    for dz in (-1, 0, 1)
    for dy in (-1, 0, 1)
    for dx in (-1, 0, 1)
    if (dz, dy, dx) != (0, 0, 0)
)


class BucketQuantizationError(ValueError):
    """The cost structure cannot be bucket-quantized exactly.

    Raised when the minimum edge cost is not a positive finite number —
    the caller should fall back to the lazy binary-heap implementation,
    which handles general costs.
    """


class BucketQueue:
    """Dial-style bucketed min-priority queue over flat cell indices.

    Priorities are binned into buckets of fixed ``width``; entries are
    pushed in numpy batches and popped one *whole bucket* at a time.
    Bucket ids live in a dict (only touched buckets exist) ordered by a
    small heap of ids, so sparse/huge priority ranges cost nothing.

    Floating-point guard: a relaxation landing exactly on a bucket
    boundary can round *down* into the bucket currently being drained.
    Pushes are therefore clamped to the drain cursor and the engine
    keeps re-popping the current bucket until it is empty before
    advancing — the late entries are final by the same Dial invariant,
    just mis-binned by one ulp.
    """

    def __init__(self, width: float) -> None:
        if not (width > 0.0 and math.isfinite(width)):
            raise BucketQuantizationError(
                f"bucket width must be positive and finite, got {width!r}"
            )
        self.width = float(width)
        self._buckets: Dict[int, List[Tuple[np.ndarray, np.ndarray]]] = {}
        self._order: List[int] = []  # min-heap of live bucket ids
        self._cursor = 0
        self.pushes = 0
        self.pop_batches = 0

    def __bool__(self) -> bool:
        return any(parts for parts in self._buckets.values())

    def push_batch(self, indices: np.ndarray, priorities: np.ndarray) -> None:
        """Insert a batch of ``(index, priority)`` entries."""
        k = len(indices)
        if k == 0:
            return
        self.pushes += k
        bucket_ids = np.floor_divide(priorities, self.width).astype(np.int64)
        np.maximum(bucket_ids, self._cursor, out=bucket_ids)  # ulp guard
        lo_b = int(bucket_ids.min())
        hi_b = int(bucket_ids.max())
        if lo_b == hi_b:
            self._append(lo_b, indices, priorities)
            return
        # Edge costs are bounded, so a batch spans few buckets: group by
        # one unstable sort + searchsorted boundaries (order within a
        # bucket is irrelevant), slicing views instead of copies.
        order = np.argsort(bucket_ids)
        bs = bucket_ids[order]
        idxs = indices[order]
        prios = priorities[order]
        bounds = np.searchsorted(bs, np.arange(lo_b, hi_b + 2))
        for b in range(lo_b, hi_b + 1):
            lo, hi = bounds[b - lo_b], bounds[b - lo_b + 1]
            if lo < hi:
                self._append(b, idxs[lo:hi], prios[lo:hi])

    def _append(self, b: int, idx: np.ndarray, prio: np.ndarray) -> None:
        parts = self._buckets.get(b)
        if parts is None:
            self._buckets[b] = [(idx, prio)]
            heapq.heappush(self._order, b)
        else:
            parts.append((idx, prio))

    def pop_batch(self) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Drain and return the lowest non-empty bucket, or ``None``.

        The returned arrays may contain stale (superseded) entries and
        duplicates; callers filter against their distance table.
        """
        while self._order:
            b = self._order[0]
            parts = self._buckets.get(b)
            if not parts:
                heapq.heappop(self._order)
                self._buckets.pop(b, None)
                continue
            self._cursor = b
            self._buckets[b] = []  # keep b live: late same-bucket pushes
            self.pop_batches += 1
            if len(parts) == 1:
                return parts[0]
            return (
                np.concatenate([p[0] for p in parts]),
                np.concatenate([p[1] for p in parts]),
            )
        return None


@dataclass
class GridSweepStats:
    """Operation counters of one bucketed full-grid sweep."""

    pushes: int = 0
    pops: int = 0
    expansions: int = 0
    batches: int = 0


def dijkstra_grid_bucketed(
    traversal_cost: np.ndarray,
    goals: Iterable[Tuple[int, int]],
    obstacle_mask: Optional[np.ndarray] = None,
    stats: Optional[GridSweepStats] = None,
) -> np.ndarray:
    """Backward-Dijkstra cost-to-go table on the bucketed batch engine.

    Drop-in for the heapq reference in :mod:`repro.search.dijkstra`:
    8-connected moves, diagonal step sqrt(2), ``traversal_cost[r, c]``
    paid on *entering* (r, c), obstacles and unreachable cells +inf.
    Raises :class:`BucketQuantizationError` when the cost field has no
    positive finite minimum (the caller falls back to the heap).
    """
    cost = np.asarray(traversal_cost, dtype=float)
    rows, cols = cost.shape
    blocked = (
        np.zeros_like(cost, dtype=bool)
        if obstacle_mask is None
        else np.asarray(obstacle_mask, dtype=bool)
    )
    seeds: List[int] = []
    pcols = cols + 2
    for r, c in goals:
        if not (0 <= r < rows and 0 <= c < cols):
            raise ValueError(f"goal ({r}, {c}) outside the grid")
        if not blocked[r, c]:
            seeds.append((r + 1) * pcols + (c + 1))
    free = ~blocked
    if not seeds or not free.any():
        return np.full((rows, cols), np.inf)
    # Exactness requires bucket width <= the smallest edge cost; the
    # cheapest edge is a straight (length-1.0) step into the cheapest
    # free cell.
    min_cost = float(cost[free].min())
    if not (min_cost > 0.0 and math.isfinite(min_cost)):
        raise BucketQuantizationError(
            f"minimum free-cell cost {min_cost!r} is not bucketable"
        )
    if stats is None:
        stats = GridSweepStats()

    # One-cell occupied halo: flat neighbor offsets never need bounds
    # checks, and the halo reproduces "outside the map is blocked".
    # Blocked cells are encoded directly in the distance table as -inf,
    # so the single test ``nd < dist[n]`` rejects them for free — no
    # separate occupancy gather in the hot loop.
    prows = rows + 2
    cost_p = np.zeros((prows, pcols), dtype=float)
    cost_p[1:-1, 1:-1] = cost
    cost_flat = cost_p.ravel()

    offsets = np.array(
        [-pcols, pcols, -1, 1, -pcols - 1, -pcols + 1, pcols - 1, pcols + 1],
        dtype=np.int64,
    )
    steps = np.array([1.0, 1.0, 1.0, 1.0, _SQRT2, _SQRT2, _SQRT2, _SQRT2])

    dist_p = np.full((prows, pcols), -np.inf)
    dist_p[1:-1, 1:-1] = np.where(free, np.inf, -np.inf)
    dist = dist_p.ravel()
    seed_idx = np.asarray(sorted(set(seeds)), dtype=np.int64)
    dist[seed_idx] = 0.0

    queue = BucketQueue(min_cost)
    queue.push_batch(seed_idx, np.zeros(len(seed_idx)))

    # Invariant: the queue never holds two *live* entries for one cell.
    # Pushes require a strict improvement over ``dist`` and each batch
    # is deduplicated before pushing, so entries for the same cell have
    # strictly decreasing priorities — the latest matches ``dist``,
    # every earlier one fails ``prio <= dist`` as stale.  No settled
    # array and no sort on the pop side.
    while True:
        batch = queue.pop_batch()
        if batch is None:
            break
        idx, prio = batch
        live = prio <= dist.take(idx)  # lazy decrease-key staleness test
        if live.all():
            frontier, du = idx, prio
        else:
            frontier = idx[live]
            if frontier.size == 0:
                continue
            du = prio[live]  # live means prio == dist[frontier]
        stats.pops += len(frontier)
        stats.expansions += len(frontier)
        stats.batches += 1

        # Batched expansion: all successors of the whole bucket at once.
        nidx = frontier[:, None] + offsets
        nd = du[:, None] + steps * cost_flat.take(nidx)
        improving = nd < dist.take(nidx)  # blocked/halo are -inf: excluded
        cand = nidx[improving]
        if cand.size == 0:
            continue
        vals = nd[improving]
        # Scatter-min + dedupe: sort by cell, reduce each run to its
        # minimum.  Deduping before the push keeps the one-live-entry
        # invariant (equal-value duplicates would otherwise multiply
        # along symmetric shortest paths, e.g. on unit-cost maps).
        order = np.argsort(cand)
        cand = cand[order]
        vals = vals[order]
        first = np.empty(len(cand), dtype=bool)
        first[0] = True
        np.not_equal(cand[1:], cand[:-1], out=first[1:])
        starts = np.flatnonzero(first)
        cand = cand[starts]
        vals = np.minimum.reduceat(vals, starts)
        dist[cand] = vals
        queue.push_batch(cand, vals)
    stats.pushes = queue.pushes
    table = dist.reshape(prows, pcols)[1:-1, 1:-1].copy()
    table[np.isneginf(table)] = np.inf  # blocked cells report unreachable
    return table


# -- flat-array A* ---------------------------------------------------------------


@dataclass
class FlatSearchResult:
    """Outcome of a flat-index A* run (indices, not tuples)."""

    found: bool
    path: List[int] = field(default_factory=list)
    cost: float = float("inf")
    expansions: int = 0
    generated: int = 0
    pushes: int = 0
    pops: int = 0


def astar_flat(
    n: int,
    moves: Sequence[Tuple[int, float, Sequence[int]]],
    start: int,
    goal: int,
    heuristic: Callable[[int], float],
    epsilon: float = 1.0,
    max_expansions: Optional[int] = None,
) -> FlatSearchResult:
    """Weighted A* over a flat index space with preallocated state.

    ``moves`` is a sequence of ``(flat_offset, step_cost, blocked)``
    triples — ``blocked`` is a flat truthiness table (a Python list for
    scalar-access speed) over the same padded index space, allowing a
    *per-direction* validity table (pp2d's heading-dependent footprint
    masks) or one shared table (pp3d, fast 2D A*).  The search is the
    same algorithm as :func:`repro.search.astar.weighted_astar`: lazy
    decrease-key (re-push, skip superseded entries on pop), FIFO
    tie-breaking by a global insertion counter, goal test on pop, and
    identical float arithmetic — so expansion order, costs, and the
    (pushes, pops, expansions, generated) counters match the heapq
    reference exactly.  Only the storage differs: flat lists instead of
    dict-of-tuples maps.
    """
    if epsilon < 1.0:
        raise ValueError("epsilon must be >= 1.0")
    g = [math.inf] * n
    parent = [-1] * n
    closed = bytearray(n)
    # Latest push's FIFO ticket per node: the flat analogue of the
    # reference queue's tombstoning.  A decrease-key that leaves f
    # unchanged (equal-f corridors) would otherwise let the *stale*
    # entry's earlier ticket win f-ties the reference resolves in favor
    # of older entries for other nodes — diverging expansion order.
    live = [-1] * n
    g[start] = 0.0

    heap: List[Tuple[float, int, int]] = []
    counter = 0
    heapq.heappush(heap, (0.0 + epsilon * heuristic(start), counter, start))
    live[start] = counter
    pushes = 1
    pops = 0
    expansions = 0
    generated = 1
    heappush = heapq.heappush
    heappop = heapq.heappop

    while heap:
        _, ticket, idx = heappop(heap)
        if closed[idx] or ticket != live[idx]:
            continue  # superseded entry: a newer push owns this node
        pops += 1
        if idx == goal:
            path = [idx]
            while parent[idx] != -1:
                idx = parent[idx]
                path.append(idx)
            path.reverse()
            return FlatSearchResult(
                found=True, path=path, cost=g[goal],
                expansions=expansions, generated=generated,
                pushes=pushes, pops=pops,
            )
        closed[idx] = 1
        expansions += 1
        if max_expansions is not None and expansions > max_expansions:
            break
        g_here = g[idx]
        for offset, step, blocked in moves:
            nidx = idx + offset
            if blocked[nidx] or closed[nidx]:
                continue
            tentative = g_here + step
            if tentative < g[nidx]:
                g[nidx] = tentative
                parent[nidx] = idx
                counter += 1
                heappush(heap, (tentative + epsilon * heuristic(nidx),
                                counter, nidx))
                live[nidx] = counter
                pushes += 1
                generated += 1
    return FlatSearchResult(
        found=False, expansions=expansions, generated=generated,
        pushes=pushes, pops=pops,
    )


# -- padded-grid helpers ---------------------------------------------------------


def pad_blocked_2d(cells: np.ndarray) -> List[int]:
    """Flat occupancy list of a 2D grid with a one-cell occupied halo."""
    rows, cols = cells.shape
    padded = np.ones((rows + 2, cols + 2), dtype=bool)
    padded[1:-1, 1:-1] = cells
    return padded.ravel().tolist()


def pad_blocked_3d(cells: np.ndarray) -> List[int]:
    """Flat occupancy list of a 3D grid with a one-voxel occupied halo."""
    nz, ny, nx = cells.shape
    padded = np.ones((nz + 2, ny + 2, nx + 2), dtype=bool)
    padded[1:-1, 1:-1, 1:-1] = cells
    return padded.ravel().tolist()


def moves_2d(cols: int, resolution: float) -> List[Tuple[int, float]]:
    """(flat offset, step cost) per canonical 2D move on a padded grid.

    Step costs use the same expression as the pp2d reference successor
    function (``math.hypot(dr, dc) * resolution``) so g-values match
    bitwise across backends.
    """
    pcols = cols + 2
    return [
        (dr * pcols + dc, math.hypot(dr, dc) * resolution)
        for dr, dc in MOVES_2D_8
    ]


def moves_3d(ny: int, nx: int, resolution: float) -> List[Tuple[int, float]]:
    """(flat offset, step cost) per canonical 3D move on a padded grid.

    Step costs replicate the pp3d reference expression
    (``float(math.sqrt(dz*dz + dy*dy + dx*dx)) * resolution``).
    """
    pny, pnx = ny + 2, nx + 2
    return [
        (
            (dz * pny + dy) * pnx + dx,
            float(math.sqrt(dz * dz + dy * dy + dx * dx)) * resolution,
        )
        for dz, dy, dx in MOVES_3D_26
    ]


def astar_grid_2d(
    cells: np.ndarray,
    start: Tuple[int, int],
    goal: Tuple[int, int],
    resolution: float = 1.0,
    epsilon: float = 1.0,
    max_expansions: Optional[int] = None,
    blocked_by_move: Optional[Sequence[Sequence[int]]] = None,
) -> Tuple[FlatSearchResult, List[Tuple[int, int]]]:
    """8-connected flat-array A* over a 2D occupancy array.

    ``blocked_by_move`` optionally supplies one padded flat validity
    table per canonical move (heading-dependent footprints); default is
    the shared occupancy-with-halo table.  Returns the flat result plus
    the path as (row, col) tuples.
    """
    rows, cols = cells.shape
    pcols = cols + 2
    if blocked_by_move is None:
        shared = pad_blocked_2d(cells)
        blocked_by_move = [shared] * len(MOVES_2D_8)
    moves = [
        (offset, step, blocked)
        for (offset, step), blocked in zip(
            moves_2d(cols, resolution), blocked_by_move
        )
    ]
    goal_r, goal_c = goal
    res = resolution

    def heuristic(idx: int) -> float:
        r, c = divmod(idx, pcols)
        return math.hypot((r - 1) - goal_r, (c - 1) - goal_c) * res

    start_idx = (start[0] + 1) * pcols + (start[1] + 1)
    goal_idx = (goal_r + 1) * pcols + (goal_c + 1)
    result = astar_flat(
        (rows + 2) * pcols, moves, start_idx, goal_idx, heuristic,
        epsilon=epsilon, max_expansions=max_expansions,
    )
    path = [(idx // pcols - 1, idx % pcols - 1) for idx in result.path]
    return result, path


def astar_grid_3d(
    cells: np.ndarray,
    start: Tuple[int, int, int],
    goal: Tuple[int, int, int],
    resolution: float = 1.0,
    epsilon: float = 1.0,
    max_expansions: Optional[int] = None,
) -> Tuple[FlatSearchResult, List[Tuple[int, int, int]]]:
    """26-connected flat-array A* over a 3D voxel array.

    The same treatment :mod:`repro.planning.fast_astar` gave pp2d,
    extended to pp3d's (z, y, x) voxel grids.  Returns the flat result
    plus the path as (z, y, x) tuples.
    """
    nz, ny, nx = cells.shape
    pny, pnx = ny + 2, nx + 2
    plane = pny * pnx
    blocked = pad_blocked_3d(cells)
    moves = [
        (offset, step, blocked)
        for offset, step in moves_3d(ny, nx, resolution)
    ]
    gz, gy, gx = goal
    res = resolution

    def heuristic(idx: int) -> float:
        z, rem = divmod(idx, plane)
        y, x = divmod(rem, pnx)
        dz = (z - 1) - gz
        dy = (y - 1) - gy
        dx = (x - 1) - gx
        return math.sqrt(dz * dz + dy * dy + dx * dx) * res

    start_idx = ((start[0] + 1) * pny + (start[1] + 1)) * pnx + (start[2] + 1)
    goal_idx = ((gz + 1) * pny + (gy + 1)) * pnx + (gx + 1)
    result = astar_flat(
        (nz + 2) * plane, moves, start_idx, goal_idx, heuristic,
        epsilon=epsilon, max_expansions=max_expansions,
    )
    path = [
        (idx // plane - 1, (idx % plane) // pnx - 1, (idx % plane) % pnx - 1)
        for idx in result.path
    ]
    return result, path
