"""Implicit search-space protocol shared by the planning kernels."""

from __future__ import annotations

from typing import Hashable, Iterable, Protocol, Tuple


class SearchSpace(Protocol):
    """An implicit graph with a goal predicate and an admissible heuristic.

    States must be hashable.  ``successors`` yields ``(state, edge_cost)``
    pairs; expensive validity checks (collision detection) happen inside it
    so kernels can attribute that time to their collision phase.
    """

    def successors(self, state: Hashable) -> Iterable[Tuple[Hashable, float]]:
        """Neighbors of ``state`` with positive edge costs."""
        ...

    def heuristic(self, state: Hashable) -> float:
        """Estimated cost-to-go; 0 makes the search Dijkstra."""
        ...

    def is_goal(self, state: Hashable) -> bool:
        """Whether ``state`` satisfies the goal condition."""
        ...
