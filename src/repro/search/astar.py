"""A* and Weighted A* over implicit graphs.

A* (Hart, Nilsson, Raphael 1968) is the seminal planner the paper builds
pp2d/pp3d on; Weighted A* (Pohl 1970) inflates the heuristic by a factor
epsilon to trade path optimality for search speed, which the movtar kernel
relies on to make moving-target planning tractable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional

from repro.harness.profiler import PhaseProfiler
from repro.search.queues import PriorityQueue
from repro.search.space import SearchSpace


@dataclass
class SearchResult:
    """Outcome of a graph search."""

    found: bool
    path: List[Hashable] = field(default_factory=list)
    cost: float = float("inf")
    expansions: int = 0
    generated: int = 0

    def __bool__(self) -> bool:
        return self.found


def _reconstruct(
    parents: Dict[Hashable, Hashable], state: Hashable
) -> List[Hashable]:
    path = [state]
    while state in parents:
        state = parents[state]
        path.append(state)
    path.reverse()
    return path


def weighted_astar(
    space: SearchSpace,
    start: Hashable,
    epsilon: float = 1.0,
    profiler: Optional[PhaseProfiler] = None,
    max_expansions: Optional[int] = None,
) -> SearchResult:
    """Best-first search with f = g + epsilon * h.

    ``epsilon == 1`` is plain A* (optimal with an admissible heuristic);
    ``epsilon > 1`` biases toward the goal, bounding the returned cost to
    at most ``epsilon`` times optimal.  Heap operations, expansion
    bookkeeping, and heuristic evaluation are attributed to the
    profiler's ``search`` phase; ``space.successors`` and
    ``space.heuristic`` may open nested phases of their own (e.g.
    ``collision``, ``l2_norm``) — the search itself does not wrap each
    heuristic call, because for table-lookup heuristics the wrapper would
    cost more than the lookup and distort the breakdown.
    """
    if epsilon < 1.0:
        raise ValueError("epsilon must be >= 1.0")
    prof = profiler if profiler is not None else PhaseProfiler()

    g: Dict[Hashable, float] = {start: 0.0}
    parents: Dict[Hashable, Hashable] = {}
    closed = set()
    open_list = PriorityQueue()
    expansions = 0
    generated = 1

    with prof.phase("search"):
        open_list.push(start, epsilon * space.heuristic(start))
        while open_list:
            state, _ = open_list.pop()
            if state in closed:
                continue
            if space.is_goal(state):
                prof.count("astar_expansions", expansions)
                prof.count("search_pushes", open_list.pushes)
                prof.count("search_pops", open_list.pops)
                return SearchResult(
                    found=True,
                    path=_reconstruct(parents, state),
                    cost=g[state],
                    expansions=expansions,
                    generated=generated,
                )
            closed.add(state)
            expansions += 1
            if max_expansions is not None and expansions > max_expansions:
                break
            g_state = g[state]
            for succ, edge_cost in space.successors(state):
                if succ in closed:
                    continue
                tentative = g_state + edge_cost
                if tentative < g.get(succ, float("inf")):
                    g[succ] = tentative
                    parents[succ] = state
                    h = space.heuristic(succ)
                    open_list.push(succ, tentative + epsilon * h)
                    generated += 1
    prof.count("astar_expansions", expansions)
    prof.count("search_pushes", open_list.pushes)
    prof.count("search_pops", open_list.pops)
    return SearchResult(found=False, expansions=expansions, generated=generated)


def astar(
    space: SearchSpace,
    start: Hashable,
    profiler: Optional[PhaseProfiler] = None,
    max_expansions: Optional[int] = None,
) -> SearchResult:
    """Plain A*: :func:`weighted_astar` with epsilon = 1."""
    return weighted_astar(
        space, start, epsilon=1.0, profiler=profiler, max_expansions=max_expansions
    )
