"""Dijkstra's algorithm, including the backward-Dijkstra heuristic table.

The movtar kernel (paper section V.6) cannot be solved in reasonable time
without a well-informing heuristic; it runs *backward Dijkstra* from the
goal region over the 2D costmap before the 3D (x, y, time) search starts,
producing an environment-aware cost-to-go table that the Weighted A*
search then reads as its heuristic.
"""

from __future__ import annotations

import heapq
from typing import Dict, Hashable, Iterable, List, Optional, Tuple

import numpy as np

from repro.search.space import SearchSpace


def dijkstra(
    space: SearchSpace, start: Hashable, max_expansions: Optional[int] = None
) -> Dict[Hashable, float]:
    """Single-source shortest-path costs over an implicit graph.

    Ignores the space's heuristic and goal; explores until exhaustion (or
    ``max_expansions``), returning the cost-to-reach map.
    """
    dist: Dict[Hashable, float] = {start: 0.0}
    done = set()
    heap: List[Tuple[float, int, Hashable]] = [(0.0, 0, start)]
    tiebreak = 0
    expansions = 0
    while heap:
        d, _, state = heapq.heappop(heap)
        if state in done:
            continue
        done.add(state)
        expansions += 1
        if max_expansions is not None and expansions > max_expansions:
            break
        for succ, cost in space.successors(state):
            nd = d + cost
            if nd < dist.get(succ, float("inf")):
                dist[succ] = nd
                tiebreak += 1
                heapq.heappush(heap, (nd, tiebreak, succ))
    return dist


_GRID_NEIGHBORS = (
    (-1, 0, 1.0),
    (1, 0, 1.0),
    (0, -1, 1.0),
    (0, 1, 1.0),
    (-1, -1, 2.0**0.5),
    (-1, 1, 2.0**0.5),
    (1, -1, 2.0**0.5),
    (1, 1, 2.0**0.5),
)


def shortest_grid_path(
    obstacle_mask: np.ndarray,
    start: Tuple[int, int],
    goal: Tuple[int, int],
) -> List[Tuple[int, int]]:
    """Shortest 8-connected cell path through free space, start to goal.

    Runs backward Dijkstra from the goal on a unit costmap, then descends
    the cost-to-go table greedily from the start.  Returns an empty list
    when no path exists.  Used by workload generators to lay out robot
    trajectories through procedurally generated maps.
    """
    blocked = np.asarray(obstacle_mask, dtype=bool)
    if blocked[start] or blocked[goal]:
        return []
    dist = backward_dijkstra_grid(np.ones_like(blocked, dtype=float), [goal], blocked)
    if not np.isfinite(dist[start]):
        return []
    path = [start]
    r, c = start
    rows, cols = blocked.shape
    while (r, c) != goal:
        best = None
        best_d = dist[r, c]
        for dr, dc, _ in _GRID_NEIGHBORS:
            nr, nc = r + dr, c + dc
            if 0 <= nr < rows and 0 <= nc < cols and dist[nr, nc] < best_d:
                best_d = dist[nr, nc]
                best = (nr, nc)
        if best is None:  # pragma: no cover - cannot happen on finite dist
            return []
        r, c = best
        path.append((r, c))
    return path


def backward_dijkstra_grid(
    traversal_cost: np.ndarray,
    goals: Iterable[Tuple[int, int]],
    obstacle_mask: Optional[np.ndarray] = None,
    backend: str = "auto",
) -> np.ndarray:
    """Cost-to-go table from every cell to the nearest goal cell.

    ``traversal_cost[r, c]`` is the per-step cost of *entering* cell
    (r, c) (movtar's location cost); moves are 8-connected with diagonal
    step length sqrt(2).  Obstacles (and unreachable cells) get +inf.

    Because edges are reversed relative to the forward search, running
    Dijkstra *from* the goals yields exactly the forward cost-to-go — the
    backward-Dijkstra heuristic of the paper.

    ``backend`` selects the engine: ``"bucketed"`` runs the Dial-style
    batched sweep from :mod:`repro.search.grid_core`, ``"reference"``
    the original scalar heapq loop, and ``"auto"`` (default) uses the
    bucketed engine whenever the cost field is quantizable (positive
    finite minimum cost) and falls back to the heap otherwise.
    """
    if backend not in ("auto", "bucketed", "reference"):
        raise ValueError(
            "backend must be 'auto', 'bucketed', or 'reference', "
            f"got {backend!r}"
        )
    goals = list(goals)  # the heap fallback may need a second pass
    if backend != "reference":
        from repro.search.grid_core import (
            BucketQuantizationError,
            dijkstra_grid_bucketed,
        )

        try:
            return dijkstra_grid_bucketed(traversal_cost, goals, obstacle_mask)
        except BucketQuantizationError:
            if backend == "bucketed":
                raise
    cost = np.asarray(traversal_cost, dtype=float)
    rows, cols = cost.shape
    blocked = (
        np.zeros_like(cost, dtype=bool)
        if obstacle_mask is None
        else np.asarray(obstacle_mask, dtype=bool)
    )
    dist = np.full((rows, cols), np.inf)
    heap: List[Tuple[float, int, int]] = []
    for r, c in goals:
        if not (0 <= r < rows and 0 <= c < cols):
            raise ValueError(f"goal ({r}, {c}) outside the grid")
        if blocked[r, c]:
            continue
        dist[r, c] = 0.0
        heapq.heappush(heap, (0.0, r, c))
    while heap:
        d, r, c = heapq.heappop(heap)
        if d > dist[r, c]:
            continue
        for dr, dc, step in _GRID_NEIGHBORS:
            nr, nc = r + dr, c + dc
            if not (0 <= nr < rows and 0 <= nc < cols):
                continue
            if blocked[nr, nc]:
                continue
            nd = d + step * cost[nr, nc]
            if nd < dist[nr, nc]:
                dist[nr, nc] = nd
                heapq.heappush(heap, (nd, nr, nc))
    return dist
