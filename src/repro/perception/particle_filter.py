"""Kernel 01.pfl — particle filter localization (paper section V.1).

A robot with an odometer and a laser rangefinder localizes against a known
map.  Particles hypothesize the robot's pose; each update propagates them
through the noisy odometry model, weights them by matching ray-cast
expected ranges against the actual scan (the beam sensor model), and
resamples.  Ray-casting is the instrumented hot phase — the paper measures
it at 67-78% of execution time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.envs.mapgen import wean_hall_like
from repro.geometry.grid2d import OccupancyGrid2D
from repro.geometry.transforms import SE2
from repro.harness.config import KernelConfig, option
from repro.harness.profiler import PhaseProfiler
from repro.harness.runner import Kernel, registry
from repro.search.dijkstra import shortest_grid_path
from repro.sensors.lidar import Lidar
from repro.sensors.odometry import OdometryModel, OdometryReading


class ParticleFilter:
    """Monte Carlo localization over an occupancy grid.

    ``poses`` is an ``(n, 3)`` array of particle hypotheses; ``weights``
    their normalized importance weights.  The sensor model is the standard
    beam mixture: a Gaussian hit component around the expected range plus
    a uniform random-measurement floor, evaluated in log space.

    Two standard MCL robustness mechanisms are built in:

    * ``likelihood_power`` tempers the joint beam likelihood (beams are
      correlated, so the naive product is overconfident by orders of
      magnitude and collapses the filter onto one particle after a single
      scan);
    * Augmented MCL (Thrun et al.): short/long-term likelihood averages
      ``w_fast``/``w_slow`` drive random-particle injection, so the filter
      can recover when it has converged onto a wrong corridor mode.
    """

    def __init__(
        self,
        grid: OccupancyGrid2D,
        lidar: Lidar,
        motion_model: OdometryModel,
        n_particles: int = 300,
        hit_sigma: float = 0.3,
        uniform_floor: float = 1e-3,
        ess_threshold: float = 0.5,
        likelihood_power: float = 0.2,
        alpha_slow: float = 0.05,
        alpha_fast: float = 0.5,
        rng: Optional[np.random.Generator] = None,
        profiler: Optional[PhaseProfiler] = None,
        backend: str = "reference",
    ) -> None:
        if n_particles < 1:
            raise ValueError("need at least one particle")
        if backend not in ("reference", "vectorized"):
            raise ValueError("backend must be 'reference' or 'vectorized'")
        if not 0.0 <= ess_threshold <= 1.0:
            raise ValueError("ess_threshold must be in [0, 1]")
        if likelihood_power <= 0.0:
            raise ValueError("likelihood_power must be positive")
        self.grid = grid
        self.lidar = lidar
        self.motion_model = motion_model
        self.n_particles = int(n_particles)
        self.hit_sigma = float(hit_sigma)
        self.uniform_floor = float(uniform_floor)
        self.ess_threshold = float(ess_threshold)
        self.likelihood_power = float(likelihood_power)
        self.alpha_slow = float(alpha_slow)
        self.alpha_fast = float(alpha_fast)
        self.backend = backend
        self.w_slow = 0.0
        self.w_fast = 0.0
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.profiler = profiler if profiler is not None else PhaseProfiler()
        self.poses = np.zeros((self.n_particles, 3))
        self.weights = np.full(self.n_particles, 1.0 / self.n_particles)

    # -- initialization -----------------------------------------------------

    def initialize_uniform(self) -> None:
        """Scatter particles uniformly over the map's free space.

        "All particles are initially sampled from a uniform random
        distribution, meaning the robot could be anywhere" (section V.1).
        """
        free_rows, free_cols = np.nonzero(~self.grid.cells)
        idx = self.rng.integers(len(free_rows), size=self.n_particles)
        res = self.grid.resolution
        ox, oy = self.grid.origin
        self.poses[:, 0] = ox + (free_cols[idx] + self.rng.random(self.n_particles)) * res
        self.poses[:, 1] = oy + (free_rows[idx] + self.rng.random(self.n_particles)) * res
        self.poses[:, 2] = self.rng.uniform(-math.pi, math.pi, self.n_particles)
        self.weights[:] = 1.0 / self.n_particles

    def initialize_around(self, pose: SE2, sigma_xy: float, sigma_theta: float) -> None:
        """Scatter particles around a prior pose (tracking mode)."""
        self.poses[:, 0] = pose.x + self.rng.normal(0, sigma_xy, self.n_particles)
        self.poses[:, 1] = pose.y + self.rng.normal(0, sigma_xy, self.n_particles)
        self.poses[:, 2] = pose.theta + self.rng.normal(0, sigma_theta, self.n_particles)
        self.weights[:] = 1.0 / self.n_particles

    # -- filter update -------------------------------------------------------

    def update(self, odometry: OdometryReading, scan: np.ndarray) -> None:
        """One filter step: motion update, sensor weighting, resampling."""
        prof = self.profiler
        with prof.phase("motion_update"):
            self.poses = self.motion_model.sample_batch(
                self.poses, odometry, self.rng
            )
        with prof.phase("raycast"):
            expected = self.lidar.expected_ranges_batch(
                self.grid, self.poses, count=prof.count, backend=self.backend
            )
        with prof.phase("weight"):
            log_w = self._log_likelihood(expected, scan)
            # Augmented MCL bookkeeping: the weighted mean *per-beam*
            # likelihood is an absolute measure of how well the current
            # particle set explains the scan; its short/long-term averages
            # drive random-particle injection.
            per_beam = np.exp(log_w / self.lidar.n_beams)
            mean_lik = float(np.dot(self.weights, per_beam))
            self.w_slow += self.alpha_slow * (mean_lik - self.w_slow)
            self.w_fast += self.alpha_fast * (mean_lik - self.w_fast)
            # Beam-correlation temper: raise the likelihood to a power < 1.
            log_w = log_w * self.likelihood_power
            # Particles whose hypothesis sits inside an obstacle are killed.
            occupied = self.grid.occupied_world_batch(
                self.poses[:, 0], self.poses[:, 1]
            )
            log_w[occupied] = -np.inf
            log_w -= log_w.max() if np.isfinite(log_w.max()) else 0.0
            # Accumulate evidence into the persistent weights.
            weights = self.weights * np.exp(log_w)
            total = weights.sum()
            if total <= 0.0 or not np.isfinite(total):
                weights = np.full(self.n_particles, 1.0 / self.n_particles)
            else:
                weights = weights / total
            self.weights = weights
        with prof.phase("resample"):
            # Resample only when the effective sample size degenerates;
            # resampling every step starves particle diversity before the
            # corridor evidence can disambiguate symmetric hypotheses.
            ess = 1.0 / float(np.sum(self.weights**2))
            if ess < self.ess_threshold * self.n_particles:
                self._low_variance_resample()
                self._inject_random_particles()

    def _log_likelihood(
        self, expected: np.ndarray, scan: np.ndarray
    ) -> np.ndarray:
        """Beam-model log-likelihood of the scan for each particle."""
        diff = expected - scan[None, :]
        hit = np.exp(-0.5 * (diff / self.hit_sigma) ** 2) / (
            self.hit_sigma * math.sqrt(2 * math.pi)
        )
        per_beam = np.log(hit + self.uniform_floor)
        return per_beam.sum(axis=1)

    def _inject_random_particles(self) -> None:
        """Augmented-MCL recovery: replace a fraction with fresh uniforms.

        When the short-term likelihood average ``w_fast`` drops below the
        long-term average ``w_slow``, the filter is likely tracking a
        wrong mode; ``max(0, 1 - w_fast / w_slow)`` of the particles are
        replaced with uniform samples so the true pose can be rediscovered.
        """
        if self.w_slow <= 0.0:
            return
        frac = max(0.0, 1.0 - self.w_fast / self.w_slow)
        n_inject = int(frac * self.n_particles)
        if n_inject == 0:
            return
        free_rows, free_cols = np.nonzero(~self.grid.cells)
        idx = self.rng.integers(len(free_rows), size=n_inject)
        res = self.grid.resolution
        ox, oy = self.grid.origin
        victims = self.rng.choice(self.n_particles, size=n_inject, replace=False)
        self.poses[victims, 0] = ox + (free_cols[idx] + self.rng.random(n_inject)) * res
        self.poses[victims, 1] = oy + (free_rows[idx] + self.rng.random(n_inject)) * res
        self.poses[victims, 2] = self.rng.uniform(-math.pi, math.pi, n_inject)

    def _low_variance_resample(self) -> None:
        """Systematic (low-variance) resampling."""
        n = self.n_particles
        positions = (self.rng.random() + np.arange(n)) / n
        cumulative = np.cumsum(self.weights)
        cumulative[-1] = 1.0
        idx = np.searchsorted(cumulative, positions)
        self.poses = self.poses[idx]
        self.weights = np.full(n, 1.0 / n)

    # -- estimates ------------------------------------------------------------

    def estimate(self) -> SE2:
        """Weighted mean pose (circular mean for the heading)."""
        w = self.weights
        x = float(np.dot(w, self.poses[:, 0]))
        y = float(np.dot(w, self.poses[:, 1]))
        theta = float(
            math.atan2(
                np.dot(w, np.sin(self.poses[:, 2])),
                np.dot(w, np.cos(self.poses[:, 2])),
            )
        )
        return SE2(x, y, theta)

    def spread(self) -> float:
        """RMS distance of particles from their mean position.

        The convergence metric for the paper's Fig. 2: large when
        particles cover the building, small once they collapse onto the
        robot's true state.
        """
        mean = self.poses[:, :2].mean(axis=0)
        return float(
            np.sqrt(np.mean(np.sum((self.poses[:, :2] - mean) ** 2, axis=1)))
        )


# -- workload ------------------------------------------------------------------


@dataclass
class PflWorkload:
    """Everything pfl consumes: the map, the scans, and ground truth."""

    grid: OccupancyGrid2D
    lidar: Lidar
    motion_model: OdometryModel
    odometry: List[OdometryReading]
    scans: List[np.ndarray]
    true_poses: List[SE2]


def make_pfl_workload(
    region: int = 0,
    n_steps: int = 25,
    n_beams: int = 12,
    seed: int = 0,
    grid: Optional[OccupancyGrid2D] = None,
    map_rows: int = 160,
    map_cols: int = 200,
) -> PflWorkload:
    """Generate a localization run in one part of the building.

    ``region`` selects one of five start/goal areas (the paper evaluates
    pfl "in five different parts of the building").  The true trajectory
    follows a shortest path between two free cells; odometry readings and
    noisy scans are derived from it.
    """
    if grid is None:
        grid = wean_hall_like(rows=map_rows, cols=map_cols, seed=seed)
    rng = np.random.default_rng(seed * 101 + region)
    lidar = Lidar(n_beams=n_beams, max_range=12.0, noise_sigma=0.05)
    motion = OdometryModel()

    # Region anchors: five distinct areas of the floorplan.
    anchors = [
        (0.2, 0.2), (0.2, 0.8), (0.8, 0.2), (0.8, 0.8), (0.5, 0.5),
    ]
    ar, ac = anchors[region % len(anchors)]
    free = np.argwhere(~grid.cells)
    target = np.array([ar * grid.rows, ac * grid.cols])
    start_cell = tuple(free[np.argmin(np.abs(free - target).sum(axis=1))])
    # Goal: a free cell far from the start.
    dists = np.abs(free - np.asarray(start_cell)).sum(axis=1)
    candidates = free[dists > dists.max() * 0.5]
    goal_cell = tuple(candidates[int(rng.integers(len(candidates)))])
    cells = shortest_grid_path(grid.cells, start_cell, goal_cell)
    if not cells:
        raise RuntimeError("generated map has no path between regions")
    # Subsample the cell path into n_steps+1 poses with headings.
    idx = np.linspace(0, len(cells) - 1, n_steps + 1).astype(int)
    poses: List[SE2] = []
    for k, i in enumerate(idx):
        r, c = cells[i]
        x, y = grid.cell_to_world(r, c)
        j = idx[min(k + 1, len(idx) - 1)]
        nr, nc = cells[j]
        nx, ny = grid.cell_to_world(nr, nc)
        theta = math.atan2(ny - y, nx - x) if (nx, ny) != (x, y) else (
            poses[-1].theta if poses else 0.0
        )
        poses.append(SE2(x, y, theta))
    odometry = [
        OdometryModel.reading_between(a, b)
        for a, b in zip(poses[:-1], poses[1:])
    ]
    scans = [
        lidar.measure(grid, p.x, p.y, p.theta, rng) for p in poses[1:]
    ]
    return PflWorkload(
        grid=grid,
        lidar=lidar,
        motion_model=motion,
        odometry=odometry,
        scans=scans,
        true_poses=poses,
    )


# -- kernel ---------------------------------------------------------------------


@dataclass
class PflConfig(KernelConfig):
    """Configuration of the pfl kernel."""

    particles: int = option(1000, "Number of particles")
    beams: int = option(24, "Laser beams per scan")
    steps: int = option(25, "Trajectory length (filter updates)")
    region: int = option(0, "Which part of the building (0-4)")
    hit_sigma: float = option(0.3, "Beam model hit standard deviation (m)")
    map_rows: int = option(160, "Building map height (cells)")
    map_cols: int = option(200, "Building map width (cells)")


@registry.register
class PflKernel(Kernel):
    """Particle filter localization over the wean-hall-like map."""

    name = "01.pfl"
    stage = "perception"
    config_cls = PflConfig
    description = "Particle filter localization (ray-casting bound)"

    def setup(self, config: PflConfig) -> PflWorkload:
        return make_pfl_workload(
            region=config.region,
            n_steps=config.steps,
            n_beams=config.beams,
            seed=config.seed,
            map_rows=config.map_rows,
            map_cols=config.map_cols,
        )

    # Steppable protocol: one step processes one (odometry, scan) pair —
    # exactly one iteration of the robot's sensor loop.

    def begin_roi(
        self, config: PflConfig, state: PflWorkload, profiler: PhaseProfiler
    ) -> dict:
        pf = ParticleFilter(
            state.grid,
            state.lidar,
            state.motion_model,
            n_particles=config.particles,
            hit_sigma=config.hit_sigma,
            rng=np.random.default_rng(config.seed),
            profiler=profiler,
            backend=config.backend,
        )
        pf.initialize_uniform()
        return {"pf": pf, "spread_before": pf.spread()}

    def num_steps(self, config: PflConfig, state: PflWorkload) -> int:
        return min(len(state.odometry), len(state.scans))

    def step(self, index, session, profiler) -> None:
        state = session.state
        session.payload["pf"].update(
            state.odometry[index], state.scans[index]
        )

    def finalize(self, session) -> dict:
        pf = session.payload["pf"]
        state = session.state
        estimate = pf.estimate()
        true_final = state.true_poses[-1]
        return {
            "estimate": estimate,
            "true_pose": true_final,
            "error": estimate.distance_to(true_final),
            "spread_before": session.payload["spread_before"],
            "spread_after": pf.spread(),
        }
