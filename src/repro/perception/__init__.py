"""Perception kernels: localization, SLAM, and scene reconstruction.

The suite's perception stage (paper Table I):

* ``01.pfl``   — particle filter localization (:mod:`.particle_filter`)
* ``02.ekfslam`` — EKF simultaneous localization and mapping (:mod:`.ekf_slam`)
* ``03.srec``  — ICP-based 3D scene reconstruction (:mod:`.scene_recon`)
"""

from repro.perception.ekf_slam import EKFSlam, EkfSlamKernel
from repro.perception.icp import ICPResult, icp
from repro.perception.particle_filter import ParticleFilter, PflKernel
from repro.perception.scene_recon import SceneReconstruction, SrecKernel

__all__ = [
    "EKFSlam",
    "EkfSlamKernel",
    "ICPResult",
    "icp",
    "ParticleFilter",
    "PflKernel",
    "SceneReconstruction",
    "SrecKernel",
]
