"""Kernel 03.srec — 3D scene reconstruction in dynamic scenes (V.3).

The robot's camera produces a sequence of point-cloud scans under unknown
(to the algorithm) motion; reconstruction registers each incoming scan
against the running model with ICP and fuses the aligned points into a
voxel-deduplicated global map, following the point-based-fusion approach
of Keller et al. that the paper implements.  Phases: ``correspondence``
(ICP nearest neighbors — the irregular memory traffic the paper measures
at >68% of time), ``transform_estimation`` (SVD), ``apply_transform``,
and ``fusion`` (model update).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.envs.pointcloud import SimulatedScan, living_room, scan_trajectory
from repro.geometry.transforms import RigidTransform3D
from repro.harness.config import KernelConfig, option
from repro.harness.profiler import PhaseProfiler
from repro.harness.runner import Kernel, registry
from repro.perception.icp import icp


class SceneReconstruction:
    """Incremental point-based scene model built by ICP registration.

    ``integrate`` aligns a new scan to the current model and merges the
    aligned points, deduplicating at ``fusion_voxel`` resolution so the
    model grows with *scene coverage* rather than frame count.
    """

    def __init__(
        self,
        fusion_voxel: float = 0.05,
        icp_iterations: int = 20,
        icp_subsample: int = 1500,
        profiler: Optional[PhaseProfiler] = None,
        backend: str = "reference",
    ) -> None:
        if fusion_voxel <= 0:
            raise ValueError("fusion_voxel must be positive")
        self.fusion_voxel = float(fusion_voxel)
        self.icp_iterations = int(icp_iterations)
        self.icp_subsample = int(icp_subsample)
        self.backend = backend
        self.profiler = profiler if profiler is not None else PhaseProfiler()
        self._voxels: Dict[Tuple[int, int, int], np.ndarray] = {}
        self.poses: List[RigidTransform3D] = []

    # -- model access -----------------------------------------------------------

    @property
    def n_points(self) -> int:
        """Number of fused model points."""
        return len(self._voxels)

    def model_points(self) -> np.ndarray:
        """The fused model as an ``(n, 3)`` array."""
        if not self._voxels:
            return np.empty((0, 3))
        return np.vstack(list(self._voxels.values()))

    # -- integration ---------------------------------------------------------------

    def integrate(self, scan_points: np.ndarray) -> RigidTransform3D:
        """Register one scan against the model and fuse it.

        The first scan defines the world frame.  Returns the estimated
        camera pose of the scan.
        """
        prof = self.profiler
        scan_points = np.asarray(scan_points, dtype=float)
        if not self._voxels:
            pose = RigidTransform3D.identity()
            self._fuse(scan_points)
            self.poses.append(pose)
            return pose
        model = self.model_points()
        rng = np.random.default_rng(len(self.poses))
        src = scan_points
        if len(src) > self.icp_subsample:
            src = src[rng.choice(len(src), self.icp_subsample, replace=False)]
        if len(model) > 2 * self.icp_subsample:
            model = model[
                rng.choice(len(model), 2 * self.icp_subsample, replace=False)
            ]
        initial = self.poses[-1]  # motion prior: previous camera pose
        result = icp(
            src,
            model,
            max_iterations=self.icp_iterations,
            initial=initial,
            profiler=prof,
            correspondence="brute",
            backend=self.backend,
        )
        pose = result.transform
        with prof.phase("fusion"):
            self._fuse(pose.apply(scan_points))
        self.poses.append(pose)
        return pose

    def _fuse(self, world_points: np.ndarray) -> None:
        """Voxel-deduplicated point merge (running average per voxel).

        Keys round to the nearest voxel *center*, so flat surfaces lying
        on lattice-aligned coordinates sit mid-voxel instead of exactly on
        a boundary — otherwise sub-millimeter registration jitter flips
        half of a planar scene into neighboring voxels every frame.
        """
        keys = np.floor(world_points / self.fusion_voxel + 0.5).astype(int)
        for key, point in zip(map(tuple, keys), world_points):
            existing = self._voxels.get(key)
            if existing is None:
                self._voxels[key] = point.copy()
            else:
                self._voxels[key] = 0.5 * (existing + point)
        self.profiler.count("fused_points", len(world_points))


# -- workload -----------------------------------------------------------------------


@dataclass
class SrecWorkload:
    """The scan sequence plus ground truth for error evaluation."""

    scans: List[SimulatedScan]
    scene: np.ndarray


def make_srec_workload(
    n_frames: int = 6,
    scene_points: int = 9000,
    scan_points: int = 1800,
    noise_sigma: float = 0.004,
    seed: int = 0,
) -> SrecWorkload:
    """Simulated living-room scan sequence (ICL-NUIM substitute)."""
    scene = living_room(n_points=scene_points, seed=seed)
    scans = scan_trajectory(
        scene,
        n_frames=n_frames,
        n_points=scan_points,
        noise_sigma=noise_sigma,
        seed=seed + 1,
    )
    return SrecWorkload(scans=scans, scene=scene)


# -- kernel --------------------------------------------------------------------------


@dataclass
class SrecConfig(KernelConfig):
    """Configuration of the srec kernel."""

    frames: int = option(6, "Number of camera frames to fuse")
    scan_points: int = option(1800, "Points per scan")
    scene_points: int = option(9000, "Points in the underlying scene")
    icp_iterations: int = option(15, "Max ICP iterations per frame")
    noise_sigma: float = option(0.004, "Sensor noise std dev (m)")


@registry.register
class SrecKernel(Kernel):
    """Scene reconstruction over the synthetic living room."""

    name = "03.srec"
    stage = "perception"
    config_cls = SrecConfig
    description = "ICP scene reconstruction (memory/NN bound)"

    def setup(self, config: SrecConfig) -> SrecWorkload:
        return make_srec_workload(
            n_frames=config.frames,
            scene_points=config.scene_points,
            scan_points=config.scan_points,
            noise_sigma=config.noise_sigma,
            seed=config.seed,
        )

    # Steppable protocol: one step integrates one incoming frame (the
    # full ICP refinement for that frame).  A frame is the natural rt
    # job — a deployed reconstructor is released per depth image, and
    # ICP iterations within a frame share mutable alignment state that
    # cannot meaningfully be preempted between releases.

    def begin_roi(
        self, config: SrecConfig, state: SrecWorkload, profiler: PhaseProfiler
    ) -> dict:
        recon = SceneReconstruction(
            icp_iterations=config.icp_iterations,
            profiler=profiler,
            backend=config.backend,
        )
        return {"recon": recon, "pose_errors": []}

    def num_steps(self, config: SrecConfig, state: SrecWorkload) -> int:
        return len(state.scans)

    def step(self, index, session, profiler) -> None:
        scan = session.state.scans[index]
        estimated = session.payload["recon"].integrate(scan.points)
        session.payload["pose_errors"].append(
            float(
                np.linalg.norm(
                    estimated.translation - scan.true_pose.translation
                )
            )
        )

    def finalize(self, session) -> dict:
        recon = session.payload["recon"]
        pose_errors = session.payload["pose_errors"]
        return {
            "pose_errors": pose_errors,
            "final_pose_error": pose_errors[-1],
            "model_points": recon.n_points,
            "recon": recon,
        }
