"""Kernel 02.ekfslam — EKF simultaneous localization and mapping (V.2).

The robot moves through an environment with point landmarks, reading noisy
range/bearing measurements; the extended Kalman filter jointly estimates
the robot pose and every landmark position, carrying a full covariance so
uncertainty (the paper's red ellipses) is explicit.  The dominant phase is
the matrix algebra of the predict/update steps — the paper measures >85%
of execution time there.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry.transforms import SE2, wrap_angle
from repro.harness.config import KernelConfig, option
from repro.harness.profiler import PhaseProfiler
from repro.harness.runner import Kernel, registry
from repro.sensors.landmarks import LandmarkSensor, RangeBearing


class EKFSlam:
    """EKF-SLAM with known correspondences and range-bearing measurements.

    State vector: ``[x, y, theta, l1x, l1y, ..., lnx, lny]``.  Landmarks
    are initialized on first sight from the measurement; subsequent
    sightings update the joint state.  All matrix work happens inside the
    profiler's ``matrix_ops`` phase.
    """

    def __init__(
        self,
        n_landmarks: int,
        motion_noise: Tuple[float, float, float] = (0.05, 0.05, 0.02),
        range_sigma: float = 0.1,
        bearing_sigma: float = 0.02,
        profiler: Optional[PhaseProfiler] = None,
    ) -> None:
        if n_landmarks < 0:
            raise ValueError("n_landmarks must be non-negative")
        self.n_landmarks = int(n_landmarks)
        dim = 3 + 2 * self.n_landmarks
        self.mu = np.zeros(dim)
        large = 1e6
        self.sigma = np.zeros((dim, dim))
        self.sigma[3:, 3:] = np.eye(2 * self.n_landmarks) * large
        self.seen = [False] * self.n_landmarks
        self.motion_noise = np.diag([v * v for v in motion_noise])
        self.measurement_noise = np.diag(
            [range_sigma * range_sigma, bearing_sigma * bearing_sigma]
        )
        self.profiler = profiler if profiler is not None else PhaseProfiler()

    @property
    def dim(self) -> int:
        """Joint state dimension: 3 + 2 * n_landmarks."""
        return len(self.mu)

    def set_pose(self, pose: SE2) -> None:
        """Initialize the robot pose estimate (known start)."""
        self.mu[0:3] = [pose.x, pose.y, pose.theta]

    # -- EKF steps -------------------------------------------------------------

    def predict(self, v: float, w: float, dt: float) -> None:
        """Motion prediction with a velocity motion model."""
        prof = self.profiler
        with prof.phase("matrix_ops"):
            theta = self.mu[2]
            if abs(w) < 1e-9:
                dx = v * dt * math.cos(theta)
                dy = v * dt * math.sin(theta)
                dtheta = 0.0
                g_small = np.array(
                    [[1.0, 0.0, -v * dt * math.sin(theta)],
                     [0.0, 1.0, v * dt * math.cos(theta)],
                     [0.0, 0.0, 1.0]]
                )
            else:
                radius = v / w
                dx = radius * (math.sin(theta + w * dt) - math.sin(theta))
                dy = -radius * (math.cos(theta + w * dt) - math.cos(theta))
                dtheta = w * dt
                g_small = np.array(
                    [
                        [1.0, 0.0, radius * (math.cos(theta + w * dt) - math.cos(theta))],
                        [0.0, 1.0, radius * (math.sin(theta + w * dt) - math.sin(theta))],
                        [0.0, 0.0, 1.0],
                    ]
                )
            self.mu[0] += dx
            self.mu[1] += dy
            self.mu[2] = wrap_angle(self.mu[2] + dtheta)
            # Full-state Jacobian is identity outside the robot block.
            g = np.eye(self.dim)
            g[0:3, 0:3] = g_small
            r = np.zeros((self.dim, self.dim))
            r[0:3, 0:3] = self.motion_noise
            self.sigma = g @ self.sigma @ g.T + r
            prof.count("matrix_multiplies", 2)

    def update(self, observations: Sequence[RangeBearing]) -> None:
        """Correct the state with a batch of landmark observations."""
        prof = self.profiler
        for obs in observations:
            j = obs.landmark_id
            if not 0 <= j < self.n_landmarks:
                raise ValueError(f"landmark id {j} out of range")
            base = 3 + 2 * j
            with prof.phase("matrix_ops"):
                if not self.seen[j]:
                    # First sighting: place the landmark from the measurement.
                    self.mu[base] = self.mu[0] + obs.range * math.cos(
                        self.mu[2] + obs.bearing
                    )
                    self.mu[base + 1] = self.mu[1] + obs.range * math.sin(
                        self.mu[2] + obs.bearing
                    )
                    self.seen[j] = True
                dx = self.mu[base] - self.mu[0]
                dy = self.mu[base + 1] - self.mu[1]
                q = dx * dx + dy * dy
                sqrt_q = math.sqrt(q)
                z_hat = np.array(
                    [sqrt_q, wrap_angle(math.atan2(dy, dx) - self.mu[2])]
                )
                h = np.zeros((2, self.dim))
                h[0, 0] = -dx / sqrt_q
                h[0, 1] = -dy / sqrt_q
                h[1, 0] = dy / q
                h[1, 1] = -dx / q
                h[1, 2] = -1.0
                h[0, base] = dx / sqrt_q
                h[0, base + 1] = dy / sqrt_q
                h[1, base] = -dy / q
                h[1, base + 1] = dx / q
                s = h @ self.sigma @ h.T + self.measurement_noise
                k = self.sigma @ h.T @ np.linalg.inv(s)
                innovation = np.array(
                    [obs.range - z_hat[0], wrap_angle(obs.bearing - z_hat[1])]
                )
                self.mu = self.mu + k @ innovation
                self.mu[2] = wrap_angle(self.mu[2])
                self.sigma = (np.eye(self.dim) - k @ h) @ self.sigma
                prof.count("matrix_multiplies", 5)
                prof.count("matrix_inversions", 1)

    # -- estimates ---------------------------------------------------------------

    def pose_estimate(self) -> SE2:
        """Current robot pose estimate."""
        return SE2(float(self.mu[0]), float(self.mu[1]), float(self.mu[2]))

    def landmark_estimate(self, j: int) -> np.ndarray:
        """Estimated (x, y) of landmark ``j``."""
        base = 3 + 2 * j
        return self.mu[base : base + 2].copy()

    def landmark_covariance(self, j: int) -> np.ndarray:
        """2x2 covariance block of landmark ``j`` (the uncertainty ellipse)."""
        base = 3 + 2 * j
        return self.sigma[base : base + 2, base : base + 2].copy()

    def pose_covariance(self) -> np.ndarray:
        """3x3 covariance block of the robot pose."""
        return self.sigma[0:3, 0:3].copy()


# -- workload --------------------------------------------------------------------


@dataclass
class EkfSlamWorkload:
    """Controls, observations, and ground truth for one SLAM run."""

    landmarks: np.ndarray
    controls: List[Tuple[float, float]]
    observations: List[List[RangeBearing]]
    true_poses: List[SE2]
    dt: float
    sensor: LandmarkSensor


def make_ekfslam_workload(
    n_landmarks: int = 6,
    n_steps: int = 120,
    dt: float = 0.1,
    seed: int = 0,
) -> EkfSlamWorkload:
    """The paper's synthetic setting: a loop drive among landmarks.

    Landmarks ring the robot's circular trajectory; the robot drives the
    loop reading noisy range/bearing measurements each step (Fig. 3-(a)).
    """
    rng = np.random.default_rng(seed)
    radius = 8.0
    angles = np.linspace(0, 2 * math.pi, n_landmarks, endpoint=False)
    ring = radius * 1.5
    landmarks = np.column_stack(
        [ring * np.cos(angles), ring * np.sin(angles)]
    ) + rng.normal(0, 1.0, size=(n_landmarks, 2))
    sensor = LandmarkSensor(landmarks, max_range=30.0)
    v = 2.0 * math.pi * radius / (n_steps * dt)  # one full loop
    w = 2.0 * math.pi / (n_steps * dt)
    pose = SE2(radius, 0.0, math.pi / 2.0)
    true_poses = [pose]
    controls: List[Tuple[float, float]] = []
    observations: List[List[RangeBearing]] = []
    for _ in range(n_steps):
        controls.append((v, w))
        # Integrate the exact unicycle arc.
        theta = pose.theta
        r = v / w
        pose = SE2(
            pose.x + r * (math.sin(theta + w * dt) - math.sin(theta)),
            pose.y - r * (math.cos(theta + w * dt) - math.cos(theta)),
            wrap_angle(theta + w * dt),
        )
        true_poses.append(pose)
        observations.append(sensor.observe(pose, rng))
    return EkfSlamWorkload(
        landmarks=landmarks,
        controls=controls,
        observations=observations,
        true_poses=true_poses,
        dt=dt,
        sensor=sensor,
    )


# -- kernel ------------------------------------------------------------------------


@dataclass
class EkfSlamConfig(KernelConfig):
    """Configuration of the ekfslam kernel."""

    landmarks: int = option(6, "Number of landmarks in the environment")
    steps: int = option(120, "Trajectory length (filter updates)")
    dt: float = option(0.1, "Timestep (s)")
    range_sigma: float = option(0.1, "Range measurement noise (m)")
    bearing_sigma: float = option(0.02, "Bearing measurement noise (rad)")


@registry.register
class EkfSlamKernel(Kernel):
    """EKF-SLAM on the six-landmark synthetic loop."""

    name = "02.ekfslam"
    stage = "perception"
    config_cls = EkfSlamConfig
    description = "EKF simultaneous localization and mapping (matrix bound)"

    def setup(self, config: EkfSlamConfig) -> EkfSlamWorkload:
        return make_ekfslam_workload(
            n_landmarks=config.landmarks,
            n_steps=config.steps,
            dt=config.dt,
            seed=config.seed,
        )

    # Steppable protocol: one step is one predict/sense/update cycle over
    # the next precomputed observation batch.

    def begin_roi(
        self,
        config: EkfSlamConfig,
        state: EkfSlamWorkload,
        profiler: PhaseProfiler,
    ) -> dict:
        slam = EKFSlam(
            n_landmarks=len(state.landmarks),
            range_sigma=config.range_sigma,
            bearing_sigma=config.bearing_sigma,
            profiler=profiler,
        )
        slam.set_pose(state.true_poses[0])
        return {"slam": slam, "pose_errors": []}

    def num_steps(
        self, config: EkfSlamConfig, state: EkfSlamWorkload
    ) -> int:
        return min(
            len(state.controls),
            len(state.observations),
            len(state.true_poses) - 1,
        )

    def step(self, index, session, profiler) -> None:
        state = session.state
        slam = session.payload["slam"]
        v, w = state.controls[index]
        slam.predict(v, w, state.dt)
        with profiler.phase("sensing"):
            pass  # observations are precomputed in setup
        slam.update(state.observations[index])
        with profiler.phase("bookkeeping"):
            session.payload["pose_errors"].append(
                slam.pose_estimate().distance_to(
                    state.true_poses[index + 1]
                )
            )

    def finalize(self, session) -> dict:
        state = session.state
        slam = session.payload["slam"]
        pose_errors = session.payload["pose_errors"]
        landmark_errors = [
            float(np.linalg.norm(slam.landmark_estimate(j) - state.landmarks[j]))
            for j in range(len(state.landmarks))
            if slam.seen[j]
        ]
        return {
            "pose_errors": pose_errors,
            "final_pose_error": pose_errors[-1],
            "landmark_errors": landmark_errors,
            "mean_landmark_error": float(np.mean(landmark_errors)),
            "slam": slam,
        }
