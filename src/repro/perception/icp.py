"""Iterative closest point (ICP) registration.

The srec kernel reconstructs a scene by reconciling successive point
clouds with ICP (paper section V.3, following KinectFusion-style point
registration).  Each iteration finds nearest-neighbor correspondences
(the irregular-memory phase the paper calls out), estimates the optimal
rigid transform (the matrix-operation phase), and applies it.

Two error metrics are provided:

* **point-to-point** (default) — the classic Kabsch/SVD closed form;
* **point-to-plane** — the KinectFusion-style linearized solve against
  target surface normals (:func:`estimate_normals`), which converges in
  fewer iterations on the flat surfaces that dominate indoor scenes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.geometry.kdtree import KDTree, nearest_neighbors_batch
from repro.geometry.transforms import RigidTransform3D
from repro.harness.profiler import PhaseProfiler


@dataclass
class ICPResult:
    """Outcome of one ICP registration."""

    transform: RigidTransform3D
    iterations: int
    converged: bool
    rms_error: float
    error_history: List[float] = field(default_factory=list)


def best_fit_transform(
    source: np.ndarray, target: np.ndarray
) -> RigidTransform3D:
    """Least-squares rigid transform mapping ``source`` onto ``target``.

    Kabsch algorithm: SVD of the cross-covariance of the centered point
    sets, with the reflection guard on det(R).
    """
    src_centroid = source.mean(axis=0)
    tgt_centroid = target.mean(axis=0)
    src_centered = source - src_centroid
    tgt_centered = target - tgt_centroid
    covariance = src_centered.T @ tgt_centered
    u, _, vt = np.linalg.svd(covariance)
    d = np.sign(np.linalg.det(vt.T @ u.T))
    correction = np.diag([1.0, 1.0, d])
    rotation = vt.T @ correction @ u.T
    translation = tgt_centroid - rotation @ src_centroid
    return RigidTransform3D(rotation=rotation, translation=translation)


def estimate_normals(points: np.ndarray, k: int = 12) -> np.ndarray:
    """Per-point surface normals by local PCA.

    Each point's normal is the least-variance eigenvector of its
    k-nearest-neighborhood covariance.  Sign is not disambiguated (the
    point-to-plane residual squares it away).
    """
    points = np.asarray(points, dtype=float)
    n = len(points)
    if n < 3:
        raise ValueError("need at least 3 points to estimate normals")
    k = min(k, n - 1)
    normals = np.empty_like(points)
    # Chunked all-pairs distances keep memory bounded.
    sq = np.einsum("ij,ij->i", points, points)
    chunk = 512
    for lo in range(0, n, chunk):
        block = points[lo : lo + chunk]
        d2 = (
            np.einsum("ij,ij->i", block, block)[:, None]
            - 2.0 * block @ points.T
            + sq[None, :]
        )
        neighbor_idx = np.argpartition(d2, kth=k, axis=1)[:, : k + 1]
        for row, idx in enumerate(neighbor_idx):
            neighborhood = points[idx]
            centered = neighborhood - neighborhood.mean(axis=0)
            cov = centered.T @ centered
            eigenvalues, eigenvectors = np.linalg.eigh(cov)
            normals[lo + row] = eigenvectors[:, 0]  # smallest eigenvalue
    return normals


def best_fit_point_to_plane(
    source: np.ndarray, target: np.ndarray, normals: np.ndarray
) -> RigidTransform3D:
    """Linearized point-to-plane alignment step.

    Minimizes ``sum(((R p + t - q) . n)^2)`` under the small-angle
    approximation ``R ~ I + [w]x``; unknowns are ``(w, t)``.  The
    resulting ``w`` is re-orthogonalized into a proper rotation with the
    Rodrigues formula, so the returned transform is exactly rigid.
    """
    p = np.asarray(source, dtype=float)
    q = np.asarray(target, dtype=float)
    n = np.asarray(normals, dtype=float)
    a = np.hstack([np.cross(p, n), n])  # (m, 6)
    b = -np.einsum("ij,ij->i", p - q, n)
    solution, *_ = np.linalg.lstsq(a, b, rcond=None)
    omega, translation = solution[:3], solution[3:]
    angle = float(np.linalg.norm(omega))
    if angle < 1e-12:
        rotation = np.eye(3)
    else:
        axis = omega / angle
        k_mat = np.array(
            [
                [0.0, -axis[2], axis[1]],
                [axis[2], 0.0, -axis[0]],
                [-axis[1], axis[0], 0.0],
            ]
        )
        rotation = (
            np.eye(3)
            + math.sin(angle) * k_mat
            + (1.0 - math.cos(angle)) * (k_mat @ k_mat)
        )
    return RigidTransform3D(rotation=rotation, translation=translation)


def icp(
    source: np.ndarray,
    target: np.ndarray,
    max_iterations: int = 30,
    tolerance: float = 1e-6,
    max_correspondence_distance: Optional[float] = None,
    initial: Optional[RigidTransform3D] = None,
    profiler: Optional[PhaseProfiler] = None,
    correspondence: str = "kdtree",
    metric: str = "point_to_point",
    backend: str = "reference",
) -> ICPResult:
    """Register ``source`` onto ``target`` (both ``(n, 3)`` arrays).

    Phases reported to the profiler: ``correspondence`` (nearest
    neighbors), ``transform_estimation`` (SVD solve), ``apply_transform``
    (point updates).  Convergence is declared when the RMS correspondence
    error improves by less than ``tolerance`` between iterations.

    ``correspondence`` selects the matcher: ``"kdtree"`` (the instrumented
    tree with per-query node-visit counts) or ``"brute"`` (a vectorized
    all-pairs distance matrix — faster in numpy for the sizes srec fuses,
    and the same memory-bandwidth-bound behaviour the paper describes).

    ``metric`` selects the alignment step: ``"point_to_point"`` (Kabsch)
    or ``"point_to_plane"`` (linearized solve against target normals,
    estimated once per call).

    ``backend="vectorized"`` routes correspondence search through
    :func:`~repro.geometry.kdtree.nearest_neighbors_batch` (one matmul
    per chunk of queries) regardless of ``correspondence``; its argmin
    arithmetic matches the ``"brute"`` matcher exactly, so correspondence
    indices are identical and the registration trajectory is unchanged.
    """
    if correspondence not in ("kdtree", "brute"):
        raise ValueError("correspondence must be 'kdtree' or 'brute'")
    if backend not in ("reference", "vectorized"):
        raise ValueError("backend must be 'reference' or 'vectorized'")
    if metric not in ("point_to_point", "point_to_plane"):
        raise ValueError(
            "metric must be 'point_to_point' or 'point_to_plane'"
        )
    prof = profiler if profiler is not None else PhaseProfiler()
    source = np.asarray(source, dtype=float)
    target = np.asarray(target, dtype=float)
    if source.ndim != 2 or source.shape[1] != 3:
        raise ValueError("source must be (n, 3)")
    if target.ndim != 2 or target.shape[1] != 3:
        raise ValueError("target must be (n, 3)")

    with prof.phase("correspondence"):
        tree = (
            KDTree.build(target)
            if correspondence == "kdtree" and backend == "reference"
            else None
        )
        target_normals = (
            estimate_normals(target) if metric == "point_to_plane" else None
        )

    current = source if initial is None else initial.apply(source)
    accumulated = initial if initial is not None else RigidTransform3D.identity()
    previous_error = float("inf")
    history: List[float] = []
    converged = False
    iterations = 0

    for iterations in range(1, max_iterations + 1):
        with prof.phase("correspondence"):
            matched_idx = np.empty(len(current), dtype=int)
            if backend == "vectorized":
                matched_idx, distances = nearest_neighbors_batch(
                    target, current, count=prof.count
                )
                matched_target = target[matched_idx]
            elif tree is not None:
                matched_target = np.empty_like(current)
                distances = np.empty(len(current))
                for i, point in enumerate(current):
                    nn_point, payload, d = tree.nearest(point, count=prof.count)
                    matched_target[i] = nn_point
                    matched_idx[i] = payload
                    distances[i] = d
            else:
                # All-pairs squared distances, chunked to bound memory.
                matched_target = np.empty_like(current)
                distances = np.empty(len(current))
                chunk = 512
                tgt_sq = np.einsum("ij,ij->i", target, target)
                for lo in range(0, len(current), chunk):
                    block = current[lo : lo + chunk]
                    d2 = (
                        np.einsum("ij,ij->i", block, block)[:, None]
                        - 2.0 * block @ target.T
                        + tgt_sq[None, :]
                    )
                    idx = np.argmin(d2, axis=1)
                    matched_target[lo : lo + chunk] = target[idx]
                    matched_idx[lo : lo + chunk] = idx
                    rows = np.arange(len(block))
                    distances[lo : lo + chunk] = np.sqrt(
                        np.maximum(0.0, d2[rows, idx])
                    )
                prof.count("nn_node_visits", len(current) * len(target))
        if max_correspondence_distance is not None:
            mask = distances <= max_correspondence_distance
            if mask.sum() < 3:
                break
        else:
            mask = np.ones(len(current), dtype=bool)
        with prof.phase("transform_estimation"):
            if target_normals is not None:
                delta = best_fit_point_to_plane(
                    current[mask],
                    matched_target[mask],
                    target_normals[matched_idx[mask]],
                )
            else:
                delta = best_fit_transform(
                    current[mask], matched_target[mask]
                )
            prof.count("svd_solves", 1)
        with prof.phase("apply_transform"):
            current = delta.apply(current)
            accumulated = delta.compose(accumulated)
        rms = float(np.sqrt(np.mean(distances[mask] ** 2)))
        history.append(rms)
        if abs(previous_error - rms) < tolerance:
            converged = True
            break
        previous_error = rms

    return ICPResult(
        transform=accumulated,
        iterations=iterations,
        converged=converged,
        rms_error=history[-1] if history else float("inf"),
        error_history=history,
    )
