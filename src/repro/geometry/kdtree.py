"""A KD-tree supporting incremental insertion and instrumented queries.

The sampling-based planners (rrt, rrtstar, rrtpp) spend up to half their
time in nearest-neighbor search; the paper attributes this to irregular
memory access over the sample set.  This tree supports the access pattern
those kernels need — insert one sample, query nearest / near-radius — and
counts node visits per query, which is the architecture-independent proxy
for that irregular traversal work.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Sequence, Tuple

import numpy as np

CountFn = Callable[[str, int], None]


class _Node:
    __slots__ = ("point", "data", "axis", "left", "right")

    def __init__(self, point: np.ndarray, data: Any, axis: int) -> None:
        self.point = point
        self.data = data
        self.axis = axis
        self.left: Optional["_Node"] = None
        self.right: Optional["_Node"] = None


class KDTree:
    """k-d tree over points in R^d with attached payloads.

    Points inserted incrementally descend to a leaf (no rebalancing — the
    RRT insertion order is random, which keeps the tree near-balanced in
    expectation).  ``visits`` accumulates nodes touched across queries.
    """

    def __init__(self, dimensions: int) -> None:
        if dimensions < 1:
            raise ValueError("dimensions must be >= 1")
        self.dimensions = dimensions
        self._root: Optional[_Node] = None
        self._size = 0
        self.visits = 0

    def __len__(self) -> int:
        return self._size

    # -- construction --------------------------------------------------------

    def insert(self, point: Sequence[float], data: Any = None) -> None:
        """Insert one point with an optional payload."""
        pt = np.asarray(point, dtype=float)
        if pt.shape != (self.dimensions,):
            raise ValueError(
                f"expected a {self.dimensions}-dimensional point, got {pt.shape}"
            )
        if self._root is None:
            self._root = _Node(pt, data, axis=0)
            self._size = 1
            return
        node = self._root
        while True:
            axis = node.axis
            if pt[axis] < node.point[axis]:
                if node.left is None:
                    node.left = _Node(pt, data, (axis + 1) % self.dimensions)
                    break
                node = node.left
            else:
                if node.right is None:
                    node.right = _Node(pt, data, (axis + 1) % self.dimensions)
                    break
                node = node.right
        self._size += 1

    @staticmethod
    def build(
        points: np.ndarray, payloads: Optional[Sequence[Any]] = None
    ) -> "KDTree":
        """Construct a balanced tree from an ``(n, d)`` point array."""
        points = np.asarray(points, dtype=float)
        if points.ndim != 2:
            raise ValueError("points must be an (n, d) array")
        n, d = points.shape
        tree = KDTree(d)
        if payloads is None:
            payloads = list(range(n))
        order = list(range(n))

        def make(indices: List[int], axis: int) -> Optional[_Node]:
            if not indices:
                return None
            indices.sort(key=lambda i: points[i][axis])
            mid = len(indices) // 2
            i = indices[mid]
            node = _Node(points[i].copy(), payloads[i], axis)
            nxt = (axis + 1) % d
            node.left = make(indices[:mid], nxt)
            node.right = make(indices[mid + 1 :], nxt)
            return node

        tree._root = make(order, 0)
        tree._size = n
        return tree

    # -- queries --------------------------------------------------------------

    def nearest(
        self, query: Sequence[float], count: Optional[CountFn] = None
    ) -> Tuple[np.ndarray, Any, float]:
        """The single closest point: returns (point, payload, distance)."""
        results = self.k_nearest(query, 1, count)
        if not results:
            raise ValueError("nearest() on an empty tree")
        return results[0]

    def k_nearest(
        self,
        query: Sequence[float],
        k: int,
        count: Optional[CountFn] = None,
    ) -> List[Tuple[np.ndarray, Any, float]]:
        """The k closest points, nearest first."""
        q = np.asarray(query, dtype=float)
        heap: List[Tuple[float, int, _Node]] = []  # max-heap via negated dist
        counter = [0]
        tiebreak = [0]

        def visit(node: Optional[_Node]) -> None:
            if node is None:
                return
            counter[0] += 1
            d2 = float(np.sum((node.point - q) ** 2))
            if len(heap) < k:
                tiebreak[0] += 1
                heapq.heappush(heap, (-d2, tiebreak[0], node))
            elif d2 < -heap[0][0]:
                tiebreak[0] += 1
                heapq.heapreplace(heap, (-d2, tiebreak[0], node))
            axis = node.axis
            diff = q[axis] - node.point[axis]
            near, far = (node.left, node.right) if diff < 0 else (node.right, node.left)
            visit(near)
            if len(heap) < k or diff * diff < -heap[0][0]:
                visit(far)

        visit(self._root)
        self.visits += counter[0]
        if count is not None:
            count("nn_node_visits", counter[0])
        ordered = sorted(heap, key=lambda item: -item[0])
        return [
            (node.point, node.data, float(np.sqrt(-negd2)))
            for negd2, _, node in ordered
        ]

    def within_radius(
        self,
        query: Sequence[float],
        radius: float,
        count: Optional[CountFn] = None,
    ) -> List[Tuple[np.ndarray, Any, float]]:
        """All points within ``radius`` of the query, nearest first."""
        q = np.asarray(query, dtype=float)
        r2 = radius * radius
        found: List[Tuple[np.ndarray, Any, float]] = []
        counter = [0]

        def visit(node: Optional[_Node]) -> None:
            if node is None:
                return
            counter[0] += 1
            d2 = float(np.sum((node.point - q) ** 2))
            if d2 <= r2:
                found.append((node.point, node.data, float(np.sqrt(d2))))
            axis = node.axis
            diff = q[axis] - node.point[axis]
            near, far = (node.left, node.right) if diff < 0 else (node.right, node.left)
            visit(near)
            if diff * diff <= r2:
                visit(far)

        visit(self._root)
        self.visits += counter[0]
        if count is not None:
            count("nn_node_visits", counter[0])
        found.sort(key=lambda item: item[2])
        return found


def nearest_neighbors_batch(
    points: np.ndarray,
    queries: np.ndarray,
    count: Optional[CountFn] = None,
    chunk: int = 512,
) -> Tuple[np.ndarray, np.ndarray]:
    """Batched nearest neighbor: for each query, its closest ``points`` row.

    Returns ``(indices, distances)``.  The distance matrix is computed
    chunk-by-chunk (``chunk`` queries at a time) so memory stays bounded
    at ``chunk * len(points)`` floats; one matmul per chunk replaces the
    per-query tree descent, trading the tree's O(log n) visits for
    sequential memory traffic that numpy executes far faster at the sizes
    the perception kernels use.  The reported work is the all-pairs count
    (``len(queries) * len(points)``), the true number of candidate
    comparisons this strategy performs.
    """
    points = np.asarray(points, dtype=float)
    queries = np.asarray(queries, dtype=float)
    if points.ndim != 2 or queries.ndim != 2:
        raise ValueError("points and queries must be (n, d) arrays")
    if len(points) == 0:
        raise ValueError("nearest_neighbors_batch() with no points")
    indices = np.empty(len(queries), dtype=int)
    distances = np.empty(len(queries))
    pts_sq = np.einsum("ij,ij->i", points, points)
    for lo in range(0, len(queries), chunk):
        block = queries[lo : lo + chunk]
        d2 = (
            np.einsum("ij,ij->i", block, block)[:, None]
            - 2.0 * block @ points.T
            + pts_sq[None, :]
        )
        idx = np.argmin(d2, axis=1)
        indices[lo : lo + chunk] = idx
        rows = np.arange(len(block))
        distances[lo : lo + chunk] = np.sqrt(
            np.maximum(0.0, d2[rows, idx])
        )
    if count is not None:
        count("nn_node_visits", len(queries) * len(points))
    return indices, distances


class LinearNN:
    """Brute-force nearest neighbor over a growing point set.

    The classic RRT formulation scans all samples; this matches the
    paper's description of nearest-neighbor search touching samples that
    "could be allocated in distant memory locations".  Kept alongside the
    KD-tree so experiments can compare strategies.
    """

    def __init__(self, dimensions: int) -> None:
        self.dimensions = dimensions
        self._points: List[np.ndarray] = []
        self._data: List[Any] = []

    def __len__(self) -> int:
        return len(self._points)

    def insert(self, point: Sequence[float], data: Any = None) -> None:
        """Append one point with an optional payload."""
        pt = np.asarray(point, dtype=float)
        if pt.shape != (self.dimensions,):
            raise ValueError("dimension mismatch")
        self._points.append(pt)
        self._data.append(data)

    def nearest(
        self, query: Sequence[float], count: Optional[CountFn] = None
    ) -> Tuple[np.ndarray, Any, float]:
        """Closest point by full scan: returns (point, payload, distance)."""
        if not self._points:
            raise ValueError("nearest() on an empty index")
        q = np.asarray(query, dtype=float)
        pts = np.vstack(self._points)
        d2 = np.einsum("ij,ij->i", pts - q, pts - q)
        if count is not None:
            count("nn_node_visits", len(pts))
        i = int(np.argmin(d2))
        return self._points[i], self._data[i], float(np.sqrt(d2[i]))

    def within_radius(
        self,
        query: Sequence[float],
        radius: float,
        count: Optional[CountFn] = None,
    ) -> List[Tuple[np.ndarray, Any, float]]:
        """All stored points within ``radius``, nearest first."""
        if not self._points:
            return []
        q = np.asarray(query, dtype=float)
        pts = np.vstack(self._points)
        dists = np.sqrt(np.einsum("ij,ij->i", pts - q, pts - q))
        if count is not None:
            count("nn_node_visits", len(pts))
        hits = [
            (self._points[i], self._data[i], float(dists[i]))
            for i in np.nonzero(dists <= radius)[0]
        ]
        hits.sort(key=lambda item: item[2])
        return hits
