"""Grid ray casting.

Ray-casting is the dominant phase of particle filter localization (the
paper measures 67-78% of pfl execution time in it), so the implementation
here is both the algorithmic substrate and an instrumentation point: the
batch caster reports how many cell-step operations it performed via an
optional counter callback, giving an architecture-independent work metric
alongside wall-clock time.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

import numpy as np

from repro.geometry.grid2d import OccupancyGrid2D

CountFn = Callable[[str, int], None]


def cast_ray(
    grid: OccupancyGrid2D,
    x: float,
    y: float,
    angle: float,
    max_range: float,
    step: Optional[float] = None,
) -> float:
    """Distance from (x, y) along ``angle`` to the first occupied cell.

    Marches in ``step`` increments (default: half the grid resolution, a
    standard compromise between accuracy and cost).  Returns ``max_range``
    if nothing is hit.
    """
    if step is None:
        step = grid.resolution * 0.5
    dx = math.cos(angle) * step
    dy = math.sin(angle) * step
    n_steps = int(max_range / step)
    cx, cy = x, y
    for i in range(1, n_steps + 1):
        cx += dx
        cy += dy
        if grid.is_occupied_world(cx, cy):
            return i * step
    return max_range


def cast_rays_batch(
    grid: OccupancyGrid2D,
    xs: np.ndarray,
    ys: np.ndarray,
    angles: np.ndarray,
    max_range: float,
    step: Optional[float] = None,
    count: Optional[CountFn] = None,
) -> np.ndarray:
    """Vectorized ray casting: one ray per (xs[i], ys[i], angles[i]).

    All rays march in lock-step; rays that have already hit are frozen.
    This is the workhorse of the particle filter, where every particle
    casts one ray per laser beam.  ``count`` (if given) receives the number
    of per-cell occupancy checks performed, the paper's ray-casting work
    unit.
    """
    if step is None:
        step = grid.resolution * 0.5
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    angles = np.asarray(angles, dtype=float)
    n = xs.shape[0]
    dx = np.cos(angles) * step
    dy = np.sin(angles) * step
    cx = xs.copy()
    cy = ys.copy()
    distances = np.full(n, max_range, dtype=float)
    active = np.ones(n, dtype=bool)
    n_steps = int(max_range / step)
    checks = 0
    for i in range(1, n_steps + 1):
        if not active.any():
            break
        cx[active] += dx[active]
        cy[active] += dy[active]
        hit = grid.occupied_world_batch(cx[active], cy[active])
        checks += int(active.sum())
        if hit.any():
            active_idx = np.nonzero(active)[0]
            hit_idx = active_idx[hit]
            distances[hit_idx] = i * step
            active[hit_idx] = False
    if count is not None:
        count("raycast_cell_checks", checks)
    return distances


def cast_ray_dda(
    grid: OccupancyGrid2D,
    x: float,
    y: float,
    angle: float,
    max_range: float,
    count: Optional[CountFn] = None,
) -> float:
    """Exact ray casting with Amanatides-Woo grid traversal.

    Visits every cell the ray passes through (no step size, no skipped
    corners) and returns the exact distance to the first occupied cell
    boundary.  More work per ray than the sampled marcher for coarse
    steps, but exact — the ablation benchmark compares the two.
    """
    res = grid.resolution
    dir_x = math.cos(angle)
    dir_y = math.sin(angle)
    # Current cell and in-cell position.
    row, col = grid.world_to_cell(x, y)
    if grid.is_occupied(row, col):
        return 0.0
    step_col = 1 if dir_x > 0 else -1
    step_row = 1 if dir_y > 0 else -1
    # Parametric distance to the next vertical / horizontal cell border.
    ox, oy = grid.origin
    if dir_x > 0:
        t_max_x = ((col + 1) * res + ox - x) / dir_x
    elif dir_x < 0:
        t_max_x = (col * res + ox - x) / dir_x
    else:
        t_max_x = math.inf
    if dir_y > 0:
        t_max_y = ((row + 1) * res + oy - y) / dir_y
    elif dir_y < 0:
        t_max_y = (row * res + oy - y) / dir_y
    else:
        t_max_y = math.inf
    t_delta_x = abs(res / dir_x) if dir_x != 0 else math.inf
    t_delta_y = abs(res / dir_y) if dir_y != 0 else math.inf
    t = 0.0
    checks = 0
    while t <= max_range:
        if t_max_x < t_max_y:
            t = t_max_x
            t_max_x += t_delta_x
            col += step_col
        else:
            t = t_max_y
            t_max_y += t_delta_y
            row += step_row
        if t > max_range:
            break
        checks += 1
        if grid.is_occupied(row, col):
            if count is not None:
                count("raycast_cell_checks", checks)
            return t
    if count is not None:
        count("raycast_cell_checks", checks)
    return max_range


def scan_from_pose(
    grid: OccupancyGrid2D,
    x: float,
    y: float,
    theta: float,
    n_beams: int,
    fov: float = 2.0 * math.pi,
    max_range: float = 30.0,
    step: Optional[float] = None,
) -> np.ndarray:
    """A full simulated laser scan: ``n_beams`` ranges across ``fov``."""
    beam_angles = theta + np.linspace(-fov / 2.0, fov / 2.0, n_beams, endpoint=False)
    xs = np.full(n_beams, x)
    ys = np.full(n_beams, y)
    return cast_rays_batch(grid, xs, ys, beam_angles, max_range, step)
