"""Grid ray casting.

Ray-casting is the dominant phase of particle filter localization (the
paper measures 67-78% of pfl execution time in it), so the implementation
here is both the algorithmic substrate and an instrumentation point: the
batch casters report how many cell-step operations they performed via an
optional counter callback, giving an architecture-independent work metric
alongside wall-clock time.

Two execution backends live here:

* the **reference** casters (:func:`cast_ray`, :func:`cast_rays_batch`)
  march along each ray in fixed increments, checking one cell per step —
  the scalar baseline the paper's characterization runs on;
* the **vectorized** caster (:func:`cast_rays_dda_batch`) traces all rays
  at once with closed-form Amanatides-Woo grid-crossing arithmetic: every
  boundary crossing of every ray is computed as one numpy expression, so
  the per-cell Python loop disappears entirely.

Both agree within one grid resolution (the equivalence tests pin this);
the exact per-ray traversal :func:`cast_ray_dda` is the semantic anchor.
"""

from __future__ import annotations

import math
from typing import Callable, Optional, Tuple

import numpy as np

from repro.geometry.grid2d import OccupancyGrid2D

CountFn = Callable[[str, int], None]

# Occupancy margin (cells) around the map for the vectorized caster: crossing
# indices that escape the real grid land in padding, which is occupied — the
# same out-of-bounds rule the scalar casters implement with bounds checks.
# Also the upper bound on crossings one scan window may enumerate.
_PAD = 64

# Per-grid derived tables for the vectorized caster, keyed by the identity of
# the cells array and validated against a content checksum (grids are
# mutable).  Values: (checksum, shape, padded_flat, padded_flat_T, clear_flat,
# padded_width, padded_height) — padded_flat_T is the transposed occupancy,
# which lets the x boundary family index cells with the same single affine
# form the y family uses on the row-major table.
_CAST_TABLES: dict = {}

# Tuning constants for the vectorized caster's skip/scan schedule (swept on
# the benchmark map; the caster is exact for any values, these only move
# dispatch overhead around).
_N_SMALL = 5       # crossings per family per scan window, big herds
_N_BIG = 31        # crossings per family per scan window, tail herds
_TAIL_SIZE = 1024  # herd size at or below which the big window is used
_MAX_SPHERE = 16   # max clearance-jump iterations per round
_FAR_SHIFT = 4     # sphere exits when far rays <= round_size >> this
_COMPACT_RATIO = 4  # sphere compacts when far rays * this <= round size
_FAR_CELLS = 3.0    # clearance (cells) above which a ray keeps sphere-jumping

# Persistent scratch arrays for the vectorized caster, grown on demand and
# reused across calls: the hot buffers are megabyte-scale, and a fresh
# allocation every call means mmap + page-fault churn that can rival the
# arithmetic itself on short casts.
_WS: dict = {}


def _ws(name: str, size: int, dtype) -> np.ndarray:
    """Persistent scratch array of at least ``size`` elements (callers slice)."""
    arr = _WS.get(name)
    if arr is None or arr.size < size:
        arr = np.empty(size, dtype=dtype)
        _WS[name] = arr
    return arr


def _clearance_cells(cells: np.ndarray) -> np.ndarray:
    """Per-cell lower bound on the distance (in cells) to the nearest
    occupied cell, with the map border counting as occupied.

    Euclidean via :func:`scipy.ndimage.distance_transform_edt` when scipy is
    available; otherwise a Chebyshev distance computed by repeated
    8-neighbor dilation, which under-estimates the Euclidean distance and is
    therefore still a safe skip radius.
    """
    n_rows, n_cols = cells.shape
    framed = np.ones((n_rows + 2, n_cols + 2), dtype=bool)
    framed[1:-1, 1:-1] = cells
    try:
        from scipy import ndimage

        return ndimage.distance_transform_edt(~framed)[1:-1, 1:-1]
    except ImportError:
        pass
    dist = np.zeros(framed.shape, dtype=float)
    reached = framed.copy()
    radius = 0
    while not reached.all() and radius < 64:
        radius += 1
        grown = reached.copy()
        grown[1:, :] |= reached[:-1, :]
        grown[:-1, :] |= reached[1:, :]
        grown[:, 1:] |= reached[:, :-1]
        grown[:, :-1] |= reached[:, 1:]
        grown[1:, 1:] |= reached[:-1, :-1]
        grown[1:, :-1] |= reached[:-1, 1:]
        grown[:-1, 1:] |= reached[1:, :-1]
        grown[:-1, :-1] |= reached[1:, 1:]
        dist[grown & ~reached] = radius
        reached = grown
    dist[~reached] = radius
    return dist[1:-1, 1:-1]


def _cast_tables(grid: OccupancyGrid2D):
    """Cached (padded occupancy, padded clearance) tables for one grid.

    The clearance table fuses the two per-cell facts the main loop needs
    into a single gather: 0.0 means occupied (including everything in the
    padding margin), and a positive value c means free with no occupied
    cell within c meters (distance-transform lower bound, scaled to meters
    so the skip phase subtracts one scalar instead of rescaling).
    """
    cells = grid.cells
    checksum = hash(cells.tobytes())
    key = id(cells)
    entry = _CAST_TABLES.get(key)
    if (
        entry is not None
        and entry[0] == checksum
        and entry[1] == cells.shape
    ):
        return entry[2:]
    n_rows, n_cols = cells.shape
    padded = np.ones((n_rows + 2 * _PAD, n_cols + 2 * _PAD), dtype=bool)
    padded[_PAD : _PAD + n_rows, _PAD : _PAD + n_cols] = cells
    clearance = _clearance_cells(cells)
    clear = np.zeros(padded.shape, dtype=np.float32)
    clear[_PAD : _PAD + n_rows, _PAD : _PAD + n_cols] = np.where(
        cells, 0.0, np.maximum(clearance, 1.0) * grid.resolution
    ).astype(np.float32)
    if len(_CAST_TABLES) >= 64:
        _CAST_TABLES.pop(next(iter(_CAST_TABLES)))
    entry = (
        checksum, cells.shape, padded.ravel(),
        np.ascontiguousarray(padded.T).ravel(), clear.ravel(),
        n_cols + 2 * _PAD, n_rows + 2 * _PAD,
    )
    _CAST_TABLES[key] = entry
    return entry[2:]


def _occupied_cells(
    grid: OccupancyGrid2D, rows: np.ndarray, cols: np.ndarray
) -> np.ndarray:
    """Vectorized cell occupancy over index arrays; out-of-bounds -> occupied."""
    n_rows, n_cols = grid.cells.shape
    inside = (rows >= 0) & (rows < n_rows) & (cols >= 0) & (cols < n_cols)
    flat = (
        np.clip(rows, 0, n_rows - 1) * n_cols + np.clip(cols, 0, n_cols - 1)
    )
    return grid.cells.ravel().take(flat) | ~inside


def cast_ray(
    grid: OccupancyGrid2D,
    x: float,
    y: float,
    angle: float,
    max_range: float,
    step: Optional[float] = None,
) -> float:
    """Distance from (x, y) along ``angle`` to the first occupied cell.

    Marches in ``step`` increments (default: half the grid resolution, a
    standard compromise between accuracy and cost).  Returns ``max_range``
    if nothing is hit.

    When consecutive samples land in diagonally adjacent cells the ray has
    crossed through one intermediate cell that neither sample touched; that
    cell is checked explicitly (at its exact boundary-crossing distance),
    so a single-cell-thick wall clipped near its corner cannot be tunneled
    through.  With the default step this makes the marcher agree with the
    exact traversal of :func:`cast_ray_dda` on every hit/miss verdict.
    """
    if step is None:
        step = grid.resolution * 0.5
    dir_x = math.cos(angle)
    dir_y = math.sin(angle)
    dx = dir_x * step
    dy = dir_y * step
    n_steps = int(max_range / step)
    res = grid.resolution
    ox, oy = grid.origin
    prev_row, prev_col = grid.world_to_cell(x, y)
    cx, cy = x, y
    for i in range(1, n_steps + 1):
        cx += dx
        cy += dy
        col = math.floor((cx - ox) / res)
        row = math.floor((cy - oy) / res)
        if row != prev_row and col != prev_col:
            # Diagonal cell jump: the ray passed through exactly one of the
            # two adjacent cells; which one is decided by whichever grid
            # boundary the ray crossed first.
            t_x = (max(prev_col, col) * res + ox - x) / dir_x
            t_y = (max(prev_row, row) * res + oy - y) / dir_y
            if t_x < t_y:
                mid_row, mid_col = prev_row, col
            else:
                mid_row, mid_col = row, prev_col
            if grid.is_occupied(mid_row, mid_col):
                return min(t_x, t_y)
        if grid.is_occupied(row, col):
            return i * step
        prev_row, prev_col = row, col
    return max_range


def cast_rays_batch(
    grid: OccupancyGrid2D,
    xs: np.ndarray,
    ys: np.ndarray,
    angles: np.ndarray,
    max_range: float,
    step: Optional[float] = None,
    count: Optional[CountFn] = None,
) -> np.ndarray:
    """Reference batch ray casting: one ray per (xs[i], ys[i], angles[i]).

    All rays march in lock-step; rays that have already hit are frozen.
    Per-ray results are bit-identical to :func:`cast_ray` (including the
    diagonal-jump intermediate-cell check).  ``count`` (if given) receives
    the number of per-cell occupancy checks performed, the paper's
    ray-casting work unit.
    """
    if step is None:
        step = grid.resolution * 0.5
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    angles = np.asarray(angles, dtype=float)
    n = xs.shape[0]
    res = grid.resolution
    ox, oy = grid.origin
    dir_x = np.cos(angles)
    dir_y = np.sin(angles)
    dx = dir_x * step
    dy = dir_y * step
    cx = xs.copy()
    cy = ys.copy()
    prev_rows = np.floor((ys - oy) / res).astype(int)
    prev_cols = np.floor((xs - ox) / res).astype(int)
    distances = np.full(n, max_range, dtype=float)
    active = np.ones(n, dtype=bool)
    n_steps = int(max_range / step)
    checks = 0
    for i in range(1, n_steps + 1):
        if not active.any():
            break
        idx = np.nonzero(active)[0]
        cx[idx] += dx[idx]
        cy[idx] += dy[idx]
        cols = np.floor((cx[idx] - ox) / res).astype(int)
        rows = np.floor((cy[idx] - oy) / res).astype(int)
        checks += len(idx)
        diag = (rows != prev_rows[idx]) & (cols != prev_cols[idx])
        if diag.any():
            d = idx[diag]
            t_x = (
                np.maximum(prev_cols[d], cols[diag]) * res + ox - xs[d]
            ) / dir_x[d]
            t_y = (
                np.maximum(prev_rows[d], rows[diag]) * res + oy - ys[d]
            ) / dir_y[d]
            x_first = t_x < t_y
            mid_rows = np.where(x_first, prev_rows[d], rows[diag])
            mid_cols = np.where(x_first, cols[diag], prev_cols[d])
            checks += len(d)
            mid_hit = _occupied_cells(grid, mid_rows, mid_cols)
            if mid_hit.any():
                hit_idx = d[mid_hit]
                distances[hit_idx] = np.minimum(t_x, t_y)[mid_hit]
                active[hit_idx] = False
        hit = _occupied_cells(grid, rows, cols) & active[idx]
        if hit.any():
            hit_idx = idx[hit]
            distances[hit_idx] = i * step
            active[hit_idx] = False
        prev_rows[idx] = rows
        prev_cols[idx] = cols
    if count is not None:
        count("raycast_cell_checks", checks)
    return distances


def cast_rays_dda_batch(
    grid: OccupancyGrid2D,
    xs: np.ndarray,
    ys: np.ndarray,
    angles: np.ndarray,
    max_range: float,
    count: Optional[CountFn] = None,
) -> np.ndarray:
    """Vectorized exact ray casting: all rays advance together, no per-cell
    Python loop.

    Two alternating vectorized phases, with an active-ray mask throughout:

    * **skip** — rays in open space jump ``(clearance - 1.5) * resolution``
      meters at once, where ``clearance`` is a cached distance-transform
      lower bound on the cell distance to the nearest obstacle.  The jump
      is provably hit-free, so skipping never changes the answer.
    * **scan** — rays near an obstacle enumerate every grid-boundary
      crossing in a short window ahead with closed-form Amanatides-Woo
      arithmetic: crossing distances ``t = t_first + i * t_delta`` for both
      boundary families as one ``(rays, crossings)`` array, the entered
      cell derived from the number of opposite-axis crossings before ``t``
      (also closed form).  The first occupied entry in the window settles
      the ray; otherwise it advances a window length and resumes skipping.

    Distances equal :func:`cast_ray_dda` (exact first-boundary hits) up to
    tie-breaking on exact corner crossings, and agree with the reference
    marcher within one marching step.  ``count`` receives the number of
    boundary crossings up to each ray's hit — the same work metric the
    scalar traversal reports — so the architecture-independent breakdown
    survives vectorization.
    """
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    angles = np.asarray(angles, dtype=float)
    n = xs.shape[0]
    if n == 0:
        return np.full(0, max_range, dtype=float)
    res = grid.resolution
    ox, oy = grid.origin
    (
        padded_flat, padded_flat_t, clear_flat, padded_width, padded_height
    ) = _cast_tables(grid)
    pw = np.int32(padded_width)
    # Skip-phase constants: a ray standing anywhere in a cell with
    # clearance c meters cannot hit a wall within c - 1.46 * res meters
    # (sqrt(2) * res covers both cell-center offsets; 1.46 adds margin for
    # the float32 table).  "Far" rays (>= 3 cells clear) drive the exit.
    jump_sub = 1.46 * res
    far_thr = np.float32(_FAR_CELLS * res)

    dir_x = np.cos(angles)
    dir_y = np.sin(angles)
    # Ray state in *padded cell units*: position(t) = c?0 + t * cv?.  The
    # +_PAD offset keeps every reachable position positive (rays travel at
    # most max_range < _PAD cells past the map edge before the occupied
    # padding stops them), so int truncation is floor everywhere below.
    inv_res = 1.0 / res
    cx0 = (xs - ox) * inv_res + float(_PAD)
    cy0 = (ys - oy) * inv_res + float(_PAD)
    cvx = dir_x * inv_res
    cvy = dir_y * inv_res
    col0 = cx0.astype(np.int32)
    row0 = cy0.astype(np.int32)
    start_occupied = clear_flat.take(row0 * pw + col0, mode="clip") == 0.0

    # Flat-index step per crossing, as float64 (exact at these magnitudes):
    # the x family walks columns of the *transposed* table (stride = padded
    # height), the y family walks rows of the row-major table (stride =
    # padded width).  Using the transposed table for the x family makes both
    # families' cell index one affine expression folded into the floor
    # argument in the scan chain below.
    fph = float(padded_height)
    fpw = float(padded_width)
    fs_x = np.where(dir_x > 0, fph, -fph)
    fs_y = np.where(dir_y > 0, fpw, -fpw)
    has_x = dir_x != 0.0
    has_y = dir_y != 0.0
    with np.errstate(divide="ignore"):
        # rs of 0 (not inf) for axis-parallel rays keeps the crossing
        # expressions below nan-free: inf + 0 * k == inf.
        rs_x = np.where(has_x, res / dir_x, 0.0)
        rs_y = np.where(has_y, res / dir_y, 0.0)
    t_delta_x = np.abs(rs_x)
    t_delta_y = np.abs(rs_y)
    # Affine constant folding the direction bump and the axis-parallel
    # guard into one per-ray term: t_first = (moved0 - pos) * rs + tb,
    # where tb is rs for rays moving positive (bump 1), else 0 — i.e.
    # max(rs, 0) — and +inf if the family never crosses.
    tb_x = np.where(has_x, np.maximum(rs_x, 0.0), np.inf)
    tb_y = np.where(has_y, np.maximum(rs_y, 0.0), np.inf)

    # Scan windows: enumerate this many crossings per boundary family per
    # round.  The small window serves the bulk of the herd (most rays hit
    # within a few cells of leaving open space); once the surviving herd is
    # small, one big window settles every straggler at once instead of
    # paying per-round dispatch overhead on tiny arrays.
    n_small = _N_SMALL
    n_big = _N_BIG
    tail_size = _TAIL_SIZE

    # Scan workspaces: the 2D (crossing, pseudo-ray) work runs over
    # fixed-size contiguous chunks of the pseudo-ray axis, reusing one
    # small block buffer per dtype so the whole nine-op chain stays
    # L2-resident instead of streaming megabytes per pass (which also
    # keeps the caster fast when other code has just flushed the cache).
    chunk_cap = 32768
    buf_f = _ws("scan_f", chunk_cap, np.float64)
    buf_i = _ws("scan_i", chunk_cap, np.int32)
    buf_b = _ws("scan_b", chunk_cap, bool)
    # Per-pseudo-ray 1D vectors for one round, stacked [x-family | y-family]
    # in halves of persistent buffers (filled per round; no 2n concats).
    n2 = 2 * n
    v_td = _ws("v_td", n2, np.float64)
    v_tf = _ws("v_tf", n2, np.float64)
    v_a0 = _ws("v_a0", n2, np.float64)
    v_d0 = _ws("v_d0", n2, np.float64)
    v_ht = _ws("v_ht", n2, np.float64)
    v_fb = _ws("v_fb", n2, np.float64)
    v_hk = _ws("v_hk", n2, np.int32)
    # Sphere-phase iteration buffers (per-ray, full round size).
    sp_f1 = _ws("sp_f1", n, np.float64)
    sp_f2 = _ws("sp_f2", n, np.float64)
    sp_i1 = _ws("sp_i1", n, np.int32)
    sp_i2 = _ws("sp_i2", n, np.int32)
    sp_c = _ws("sp_c", n, np.float32)
    sp_b1 = _ws("sp_b1", n, bool)
    sp_b2 = _ws("sp_b2", n, bool)
    k_idx_all = np.arange(n_big, dtype=float)

    distances = np.full(n, max_range, dtype=float)
    distances[start_occupied] = 0.0
    # t_cur doubles as the live flag: settled and capped rays are parked at
    # exactly max_range (their positions then stay inside the padded map,
    # so letting them ride along in the sphere phase is harmless and
    # cheaper than masking them out of every op).
    t_cur = np.zeros(n)
    t_cur[start_occupied] = max_range
    alive = np.nonzero(~start_occupied)[0]
    max_sphere = _MAX_SPHERE
    while alive.size:
        a = alive
        # Compact the per-ray state once per outer round, then iterate.
        # The first round usually covers every ray — alias the freshly
        # built full-size arrays instead of paying a same-size gather
        # (t_cur is mutated in place there, which is what happens anyway).
        if a.size == n:
            cxa, cya, cvxa, cvya, ta = cx0, cy0, cvx, cvy, t_cur
        else:
            cxa, cya = cx0[a], cy0[a]
            cvxa, cvya = cvx[a], cvy[a]
            ta = t_cur[a]
        far_lim = max(16, a.size >> _FAR_SHIFT)
        sz = a.size
        f1, f2 = sp_f1[:sz], sp_f2[:sz]
        i1, i2 = sp_i1[:sz], sp_i2[:sz]
        cb, b1, b2 = sp_c[:sz], sp_b1[:sz], sp_b2[:sz]
        # ---- sphere phase: branch-free clearance jumps for the whole
        # herd.  Each iteration is a handful of fixed numpy ops into
        # persistent buffers with no boolean compaction — dispatch
        # overhead, not element work, dominates here.  Rays with clearance
        # code c jump the precomputed (c - 1.5) cells (provably cannot
        # cross a wall); near-wall and frozen rays creep or hold.  Once the
        # still-far minority is small the loop compacts down to just those
        # rays, and exits when nearly everyone is walled-in or capped.
        iters = 0
        saved = None  # set when the sphere loop compacts to far rays

        def _sphere_clear():
            # Clearance at each ray's current position: one fused gather
            # answers both "occupied" (0.0) and "how far to skip".
            np.multiply(ta, cvxa, out=f1)
            np.add(f1, cxa, out=f1)
            np.multiply(ta, cvya, out=f2)
            np.add(f2, cya, out=f2)
            i1[:] = f1  # float -> int32 truncation == floor (positive)
            i2[:] = f2
            np.multiply(i2, pw, out=i2)
            np.add(i2, i1, out=i2)
            return np.take(clear_flat, i2, mode="clip", out=cb)

        while True:
            clear = _sphere_clear()
            iters += 1
            np.greater_equal(clear, far_thr, out=b1)
            np.less(ta, max_range, out=b2)
            np.logical_and(b1, b2, out=b1)
            n_far = np.count_nonzero(b1)
            if iters >= max_sphere or n_far <= far_lim:
                break
            if saved is None and n_far * _COMPACT_RATIO <= sz:
                # Far rays are now the minority: compact to them and stop
                # reprocessing the walled-in majority until the scan.
                sub = np.nonzero(b1)[0]
                saved = (ta, cxa, cya, cvxa, cvya, sub)
                cxa, cya = cxa[sub], cya[sub]
                cvxa, cvya = cvxa[sub], cvya[sub]
                ta = ta[sub]
                clear_sub = clear[sub]
                sz = sub.size
                f1, f2 = sp_f1[:sz], sp_f2[:sz]
                i1, i2 = sp_i1[:sz], sp_i2[:sz]
                cb, b1, b2 = sp_c[:sz], sp_b1[:sz], sp_b2[:sz]
                cb[:] = clear_sub
                clear = cb
            np.subtract(clear, jump_sub, out=f1)
            np.maximum(f1, 0.0, out=f1)
            np.add(ta, f1, out=ta)
        if saved is not None:
            # Merge the compacted stragglers back and refresh the cell
            # clearance for the whole round before classifying.
            ta_all, cxa, cya, cvxa, cvya, sub = saved
            ta_all[sub] = ta
            ta = ta_all
            sz = a.size
            f1, f2 = sp_f1[:sz], sp_f2[:sz]
            i1, i2 = sp_i1[:sz], sp_i2[:sz]
            cb = sp_c[:sz]
            clear = _sphere_clear()
        if ta is not t_cur:
            t_cur[a] = ta
        live = ta < max_range
        # Floating-point advances can land an epsilon inside a wall the
        # scan saw at t + epsilon; settle those at their current t.
        occ0 = (clear == 0.0) & live
        if occ0.any():
            landed = a[occ0]
            distances[landed] = ta[occ0]
            t_cur[landed] = max_range
        # Everyone still moving scans one exact window from where they
        # stand (the few still-far stragglers just scan from open space).
        herd = (clear > 0.0) & live
        s = a[herd]
        m = s.size
        if m:
            n_window = n_big if m <= tail_size else n_small
            window_t = (n_window - 1) * res
            k_idx = k_idx_all[:n_window]
            # f1/f2/i1 still hold each ray's position (and integer column)
            # at ta from the classifying _sphere_clear call — reuse them
            # instead of recomputing position for the herd.
            t_s = ta[herd]
            cfx = f1[herd]
            cfy = f2[herd]
            cvx_s = cvxa[herd]
            cvy_s = cvya[herd]
            scol = i1[herd]
            srow = cfy.astype(np.int32)
            m2 = 2 * m
            # Per-pseudo-ray constants, x family in [:m], y family in [m:].
            # Crossing times are t = tf + k * td; the other-axis position
            # at that time is a0 + k * d0 (both affine in k, so the 2D
            # chain below is two broadcast ops per quantity).
            td = v_td[:m2]
            tf = v_tf[:m2]
            a0 = v_a0[:m2]
            d0 = v_d0[:m2]
            fb = v_fb[:m2]
            np.take(t_delta_x, s, out=td[:m])
            np.take(t_delta_y, s, out=td[m:])
            # tf = (moved0 - pos) * rs + tb  (distance to first boundary
            # crossing of the family, inf if axis-parallel).
            tfx, tfy = tf[:m], tf[m:]
            np.subtract(scol, cfx, out=tfx)
            np.multiply(tfx, rs_x.take(s), out=tfx)
            np.add(tfx, tb_x.take(s), out=tfx)
            np.subtract(srow, cfy, out=tfy)
            np.multiply(tfy, rs_y.take(s), out=tfy)
            np.add(tfy, tb_y.take(s), out=tfy)
            # a0/d0: other-axis position as a function of k.  No inf * 0
            # hazard: tf is only inf when the family is axis-parallel, and
            # then the *other* axis velocity is nonzero.
            np.multiply(tf[:m], cvy_s, out=a0[:m])
            np.add(a0[:m], cfy, out=a0[:m])
            np.multiply(tf[m:], cvx_s, out=a0[m:])
            np.add(a0[m:], cfx, out=a0[m:])
            np.multiply(td[:m], cvy_s, out=d0[:m])
            np.multiply(td[m:], cvx_s, out=d0[m:])
            # Fold the integer index terms into the affine position: the
            # flat index of the cell entered at crossing k is
            # floor(other_pos(k)) + base + (k + 1) * fs, and base, fs are
            # exact float64 integers, so floor(pos + base + fs + k * fs)
            # equals the same sum — one fused affine per element in the
            # chain below instead of a separate integer chain.  (The x
            # family indexes the transposed table: base = scol * padded
            # height, position is the row coordinate.)
            np.take(fs_x, s, out=fb[:m])
            np.take(fs_y, s, out=fb[m:])
            np.add(d0, fb, out=d0)
            np.add(a0, fb, out=a0)
            base = v_ht[:m2]  # v_ht is free until the hit-time reduce
            np.multiply(scol, fph, out=base[:m])
            np.multiply(srow, fpw, out=base[m:])
            np.add(a0, base, out=a0)
            w_cap = np.minimum(window_t, max_range - t_s)

            hk = v_hk[:m2]
            # Chunked over the pseudo-ray axis: each chunk's chain runs
            # entirely in the small persistent block buffers.  Positions of
            # axis-parallel or beyond-window crossings can be inf or huge;
            # their int32 casts wrap to garbage indices that take() clips,
            # and the entries are discarded anyway because their crossing
            # time exceeds the window cap — so only the cast warning needs
            # suppressing, not the values.
            bs_max = max(256, chunk_cap // n_window)
            with np.errstate(invalid="ignore"):
                for lo, hi, table in (
                    (0, m, padded_flat_t),
                    (m, m2, padded_flat),
                ):
                    for c0 in range(lo, hi, bs_max):
                        c1 = min(c0 + bs_max, hi)
                        bs = c1 - c0
                        elems = n_window * bs
                        F = buf_f[:elems].reshape(n_window, bs)
                        I = buf_i[:elems].reshape(n_window, bs)
                        B = buf_b[:elems].reshape(n_window, bs)
                        np.multiply(k_idx[:, None], d0[c0:c1][None, :], out=F)
                        np.add(F, a0[c0:c1][None, :], out=F)
                        np.floor(F, out=F)
                        np.copyto(I, F, casting="unsafe")
                        table.take(I, mode="clip", out=B)
                        # Crossing times are monotone in k, so the first
                        # occupied entry of each pseudo-ray is its window
                        # hit.  A reverse masked-fill sweep finds it in one
                        # contiguous pass per window row — far cheaper than
                        # strided any/argmax reductions over axis 0.  The
                        # sentinel n_window maps to a time > w_cap (td >=
                        # res, or tf is inf), so no-hit needs no
                        # special-casing.
                        hkb = hk[c0:c1]
                        hkb.fill(n_window)
                        for k in range(n_window - 1, -1, -1):
                            np.copyto(hkb, np.int32(k), where=B[k])
            ht = v_ht[:m2]
            np.multiply(hk, td, out=ht)
            np.add(ht, tf, out=ht)
            # Hits beyond the window cap are discarded (the next round
            # re-enumerates them); a 1D compare replaces a 2D valid mask.
            hit_rel = np.minimum(ht[:m], ht[m:])
            found = hit_rel <= w_cap
            settled = s[found]
            distances[settled] = np.minimum(
                t_s[found] + hit_rel[found], max_range
            )
            t_cur[settled] = max_range  # park: drop below
            missed = s[~found]
            t_cur[missed] += w_cap[~found]
            # Rounding can leave an advanced ray an epsilon short of
            # max_range; park it (its distance is already max_range).
            capped = missed[t_cur[missed] >= max_range - 1e-9]
            t_cur[capped] = max_range
        alive = a[t_cur[a] < max_range]
    if count is not None:
        # Crossings examined up to (and including) the hit — identical to
        # the per-ray traversal's counter, computed in closed form from the
        # ray origins so it is independent of the skip/scan schedule.
        bump_x = (dir_x > 0).astype(float)
        bump_y = (dir_y > 0).astype(float)
        tfx0 = np.where(has_x, (col0 + bump_x - cx0) * rs_x, np.inf)
        tfy0 = np.where(has_y, (row0 + bump_y - cy0) * rs_y, np.inf)
        k_max = int(math.ceil(max_range / res)) + 1
        t_stop = distances
        nx = np.floor((t_stop - tfx0) / np.where(has_x, t_delta_x, 1.0))
        ny = np.floor((t_stop - tfy0) / np.where(has_y, t_delta_y, 1.0))
        checks = (
            np.clip(nx + 1.0, 0, k_max).sum()
            + np.clip(ny + 1.0, 0, k_max).sum()
        )
        count("raycast_cell_checks", int(checks))
    return distances


def cast_ray_dda(
    grid: OccupancyGrid2D,
    x: float,
    y: float,
    angle: float,
    max_range: float,
    count: Optional[CountFn] = None,
) -> float:
    """Exact ray casting with Amanatides-Woo grid traversal.

    Visits every cell the ray passes through (no step size, no skipped
    corners) and returns the exact distance to the first occupied cell
    boundary.  More work per ray than the sampled marcher for coarse
    steps, but exact — the ablation benchmark compares the two.
    """
    res = grid.resolution
    dir_x = math.cos(angle)
    dir_y = math.sin(angle)
    # Current cell and in-cell position.
    row, col = grid.world_to_cell(x, y)
    if grid.is_occupied(row, col):
        return 0.0
    step_col = 1 if dir_x > 0 else -1
    step_row = 1 if dir_y > 0 else -1
    # Parametric distance to the next vertical / horizontal cell border.
    ox, oy = grid.origin
    if dir_x > 0:
        t_max_x = ((col + 1) * res + ox - x) / dir_x
    elif dir_x < 0:
        t_max_x = (col * res + ox - x) / dir_x
    else:
        t_max_x = math.inf
    if dir_y > 0:
        t_max_y = ((row + 1) * res + oy - y) / dir_y
    elif dir_y < 0:
        t_max_y = (row * res + oy - y) / dir_y
    else:
        t_max_y = math.inf
    t_delta_x = abs(res / dir_x) if dir_x != 0 else math.inf
    t_delta_y = abs(res / dir_y) if dir_y != 0 else math.inf
    t = 0.0
    checks = 0
    while t <= max_range:
        if t_max_x < t_max_y:
            t = t_max_x
            t_max_x += t_delta_x
            col += step_col
        else:
            t = t_max_y
            t_max_y += t_delta_y
            row += step_row
        if t > max_range:
            break
        checks += 1
        if grid.is_occupied(row, col):
            if count is not None:
                count("raycast_cell_checks", checks)
            return t
    if count is not None:
        count("raycast_cell_checks", checks)
    return max_range


def scan_from_pose(
    grid: OccupancyGrid2D,
    x: float,
    y: float,
    theta: float,
    n_beams: int,
    fov: float = 2.0 * math.pi,
    max_range: float = 30.0,
    step: Optional[float] = None,
    backend: str = "reference",
) -> np.ndarray:
    """A full simulated laser scan: ``n_beams`` ranges across ``fov``."""
    beam_angles = theta + np.linspace(-fov / 2.0, fov / 2.0, n_beams, endpoint=False)
    xs = np.full(n_beams, x)
    ys = np.full(n_beams, y)
    if backend == "vectorized":
        return cast_rays_dda_batch(grid, xs, ys, beam_angles, max_range)
    return cast_rays_batch(grid, xs, ys, beam_angles, max_range, step)
