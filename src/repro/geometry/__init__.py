"""Geometric substrates: grids, transforms, ray casting, collision, KD-trees.

These are the shared primitives underneath the perception and planning
kernels — the operations the paper identifies as architectural bottlenecks
(ray-casting, collision detection, nearest-neighbor search, L2 norms) all
live here so they can be instrumented uniformly.
"""

from repro.geometry.distance import (
    euclidean,
    squared_euclidean,
    angular_difference,
    joint_space_distance,
)
from repro.geometry.grid2d import OccupancyGrid2D
from repro.geometry.grid3d import OccupancyGrid3D
from repro.geometry.kdtree import KDTree
from repro.geometry.transforms import SE2, wrap_angle

__all__ = [
    "euclidean",
    "squared_euclidean",
    "angular_difference",
    "joint_space_distance",
    "OccupancyGrid2D",
    "OccupancyGrid3D",
    "KDTree",
    "SE2",
    "wrap_angle",
]
