"""Collision detection primitives.

Collision detection is the dominant bottleneck of several planning kernels
(pp2d >65%, rrt up to 62%).  Two families live here:

* grid-based checks — an oriented rectangular robot footprint (the pp2d
  self-driving car) or a swept segment is tested against an occupancy grid
  by sampling covered cells;
* continuous checks — segments against axis-aligned rectangular obstacles
  (the synthetic Map-C / Map-F arm workspaces of the paper's Fig. 9),
  using the Liang-Barsky slab test.

Both report their work (cells checked / segment tests) through optional
counter callbacks so kernels can expose collision work alongside time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry.grid2d import OccupancyGrid2D
from repro.geometry.grid3d import OccupancyGrid3D

CountFn = Callable[[str, int], None]


def footprint_points(
    length: float, width: float, resolution: float
) -> np.ndarray:
    """Sample points covering a ``length x width`` rectangle (body frame).

    Points are spaced at most ``resolution`` apart (grid resolution), so
    testing them against the grid cannot miss an occupied cell overlapping
    the footprint interior by more than one cell.  The rectangle is
    centered on the origin with its length along +x.
    """
    nx = max(2, int(math.ceil(length / resolution)) + 1)
    ny = max(2, int(math.ceil(width / resolution)) + 1)
    xs = np.linspace(-length / 2.0, length / 2.0, nx)
    ys = np.linspace(-width / 2.0, width / 2.0, ny)
    gx, gy = np.meshgrid(xs, ys)
    return np.column_stack([gx.ravel(), gy.ravel()])


def oriented_footprint_collides(
    grid: OccupancyGrid2D,
    x: float,
    y: float,
    theta: float,
    body_points: np.ndarray,
    count: Optional[CountFn] = None,
) -> bool:
    """Whether a rectangle footprint at pose (x, y, theta) hits an obstacle.

    ``body_points`` is the precomputed output of :func:`footprint_points`;
    precomputing amortizes the meshgrid across the thousands of collision
    checks a single plan performs.
    """
    c, s = math.cos(theta), math.sin(theta)
    wx = x + c * body_points[:, 0] - s * body_points[:, 1]
    wy = y + s * body_points[:, 0] + c * body_points[:, 1]
    if count is not None:
        count("collision_cell_checks", len(wx))
    return bool(grid.occupied_world_batch(wx, wy).any())


def oriented_footprints_collide_batch(
    grid: OccupancyGrid2D,
    xs: np.ndarray,
    ys: np.ndarray,
    thetas: np.ndarray,
    body_points: np.ndarray,
    count: Optional[CountFn] = None,
) -> np.ndarray:
    """Vectorized :func:`oriented_footprint_collides` over ``m`` poses.

    Rotates the shared body-frame sample points into every pose at once
    (``(m, p)`` world coordinates, one grid lookup) and reduces per pose.
    Verdicts are exactly those of the scalar check — the same sample
    points are tested against the same cells — and the reported cell-check
    work (``m * p``) matches ``m`` scalar calls.
    """
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    thetas = np.asarray(thetas, dtype=float)
    m = len(xs)
    if m == 0:
        return np.zeros(0, dtype=bool)
    p = len(body_points)
    if count is not None:
        count("collision_cell_checks", m * p)
    bx = body_points[None, :, 0]
    by = body_points[None, :, 1]
    result = np.empty(m, dtype=bool)
    # Chunk the pose batch so the (chunk, p) world-coordinate temporaries
    # stay cache-resident; one giant batch is measurably slower.
    chunk = max(1, 65536 // p)
    for lo in range(0, m, chunk):
        c = np.cos(thetas[lo : lo + chunk])[:, None]
        s = np.sin(thetas[lo : lo + chunk])[:, None]
        wx = xs[lo : lo + chunk, None] + c * bx - s * by
        wy = ys[lo : lo + chunk, None] + s * bx + c * by
        occupied = grid.occupied_world_batch(wx.ravel(), wy.ravel())
        result[lo : lo + chunk] = occupied.reshape(-1, p).any(axis=1)
    return result


def segments_collide_grid_batch(
    grid: OccupancyGrid2D,
    p0s: np.ndarray,
    p1s: np.ndarray,
    step: Optional[float] = None,
    count: Optional[CountFn] = None,
) -> np.ndarray:
    """Vectorized :func:`segment_collides_grid` over ``m`` segments.

    Each segment ``i`` is sampled at fractions ``k / n_i`` for
    ``k = 0..n_i`` — the exact sample set of the scalar check — padded to
    the longest segment by clamping ``k / n_i`` at 1 (repeats of the
    endpoint, which is already in the set, so verdicts are unchanged).
    """
    p0s = np.asarray(p0s, dtype=float)
    p1s = np.asarray(p1s, dtype=float)
    m = len(p0s)
    if m == 0:
        return np.zeros(0, dtype=bool)
    if step is None:
        step = grid.resolution * 0.5
    deltas = p1s - p0s
    dists = np.hypot(deltas[:, 0], deltas[:, 1])
    ns = np.maximum(1, (dists / step).astype(int))
    if count is not None:
        count("collision_cell_checks", int((ns + 1).sum()))
    ks = np.arange(ns.max() + 1, dtype=float)
    # linspace(0, 1, n + 1) is k * (1/n) with the endpoint forced to 1;
    # reproduce that bit-for-bit so cell lookups match the scalar check.
    fracs = ks[None, :] * (1.0 / ns)[:, None]
    np.copyto(fracs, 1.0, where=ks[None, :] >= ns[:, None])
    wx = p0s[:, 0:1] + fracs * deltas[:, 0:1]
    wy = p0s[:, 1:2] + fracs * deltas[:, 1:2]
    occupied = grid.occupied_world_batch(wx.ravel(), wy.ravel())
    return occupied.reshape(m, -1).any(axis=1)


def voxels_collide_batch(
    grid: OccupancyGrid3D,
    zis: np.ndarray,
    yis: np.ndarray,
    xis: np.ndarray,
    count: Optional[CountFn] = None,
) -> np.ndarray:
    """Vectorized :func:`voxel_collides` over a batch of voxel indices."""
    zis = np.asarray(zis)
    if count is not None:
        count("collision_cell_checks", zis.size)
    return grid.occupied_batch(zis, yis, xis)


def point_collides(
    grid: OccupancyGrid2D, x: float, y: float, count: Optional[CountFn] = None
) -> bool:
    """Single-point collision check against a grid."""
    if count is not None:
        count("collision_cell_checks", 1)
    return grid.is_occupied_world(x, y)


def segment_collides_grid(
    grid: OccupancyGrid2D,
    p0: Tuple[float, float],
    p1: Tuple[float, float],
    step: Optional[float] = None,
    count: Optional[CountFn] = None,
) -> bool:
    """Whether the segment p0-p1 passes through any occupied cell."""
    if step is None:
        step = grid.resolution * 0.5
    dx, dy = p1[0] - p0[0], p1[1] - p0[1]
    dist = math.hypot(dx, dy)
    n = max(1, int(dist / step))
    ts = np.linspace(0.0, 1.0, n + 1)
    xs = p0[0] + ts * dx
    ys = p0[1] + ts * dy
    if count is not None:
        count("collision_cell_checks", len(xs))
    return bool(grid.occupied_world_batch(xs, ys).any())


def voxel_collides(
    grid: OccupancyGrid3D,
    zi: int,
    yi: int,
    xi: int,
    count: Optional[CountFn] = None,
) -> bool:
    """Single-voxel collision check (the paper's small UAV fits one voxel)."""
    if count is not None:
        count("collision_cell_checks", 1)
    return grid.is_occupied(zi, yi, xi)


# -- continuous rectangular obstacles (arm workspaces) ------------------------


@dataclass(frozen=True)
class Rectangle:
    """Axis-aligned rectangle obstacle: [xmin, xmax] x [ymin, ymax]."""

    xmin: float
    ymin: float
    xmax: float
    ymax: float

    def __post_init__(self) -> None:
        if self.xmin > self.xmax or self.ymin > self.ymax:
            raise ValueError("rectangle extents must be ordered")

    def contains(self, x: float, y: float) -> bool:
        """Whether the point lies inside (or on the boundary of) the box."""
        return self.xmin <= x <= self.xmax and self.ymin <= y <= self.ymax

    def intersects_segment(
        self, p0: Tuple[float, float], p1: Tuple[float, float]
    ) -> bool:
        """Liang-Barsky slab test: does segment p0-p1 cross this box?"""
        x0, y0 = p0
        dx, dy = p1[0] - x0, p1[1] - y0
        t0, t1 = 0.0, 1.0
        for delta, lo, hi, start in (
            (dx, self.xmin, self.xmax, x0),
            (dy, self.ymin, self.ymax, y0),
        ):
            if delta == 0.0:
                if start < lo or start > hi:
                    return False
                continue
            ta = (lo - start) / delta
            tb = (hi - start) / delta
            if ta > tb:
                ta, tb = tb, ta
            t0 = max(t0, ta)
            t1 = min(t1, tb)
            if t0 > t1:
                return False
        return True


def segment_hits_obstacles(
    p0: Tuple[float, float],
    p1: Tuple[float, float],
    obstacles: Sequence[Rectangle],
    count: Optional[CountFn] = None,
) -> bool:
    """Whether segment p0-p1 crosses any rectangle in ``obstacles``."""
    if count is not None:
        count("segment_obstacle_tests", len(obstacles))
    return any(rect.intersects_segment(p0, p1) for rect in obstacles)


def polyline_hits_obstacles(
    points: Iterable[Tuple[float, float]],
    obstacles: Sequence[Rectangle],
    count: Optional[CountFn] = None,
) -> bool:
    """Whether any consecutive segment of ``points`` crosses an obstacle.

    This is the arm-link collision check: the planar arm's links form a
    polyline in the workspace and the whole chain must stay clear.
    """
    pts = list(points)
    for a, b in zip(pts[:-1], pts[1:]):
        if segment_hits_obstacles(a, b, obstacles, count):
            return True
    return False
