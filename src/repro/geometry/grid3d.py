"""3D voxel occupancy grids for the aerial-robot kernels (pp3d, movtar)."""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np


class OccupancyGrid3D:
    """A metric boolean voxel grid: ``cells[zi, yi, xi]``.

    Axis order keeps z (altitude) first so horizontal slices are contiguous,
    matching how the 3D planners expand mostly-horizontal neighborhoods.
    """

    def __init__(
        self,
        cells: np.ndarray,
        resolution: float = 1.0,
        origin: Tuple[float, float, float] = (0.0, 0.0, 0.0),
    ) -> None:
        cells = np.asarray(cells, dtype=bool)
        if cells.ndim != 3:
            raise ValueError("voxel grid must be 3-dimensional")
        if resolution <= 0:
            raise ValueError("resolution must be positive")
        self.cells = cells
        self.resolution = float(resolution)
        self.origin = tuple(float(v) for v in origin)

    @staticmethod
    def empty(
        nz: int,
        ny: int,
        nx: int,
        resolution: float = 1.0,
        origin: Tuple[float, float, float] = (0.0, 0.0, 0.0),
    ) -> "OccupancyGrid3D":
        """An all-free voxel grid of the given shape."""
        return OccupancyGrid3D(
            np.zeros((nz, ny, nx), dtype=bool), resolution, origin
        )

    @property
    def shape(self) -> Tuple[int, int, int]:
        """(nz, ny, nx) voxel counts."""
        return self.cells.shape  # type: ignore[return-value]

    def in_bounds(self, zi: int, yi: int, xi: int) -> bool:
        """Whether the voxel index is inside the grid."""
        nz, ny, nx = self.cells.shape
        return 0 <= zi < nz and 0 <= yi < ny and 0 <= xi < nx

    def is_occupied(self, zi: int, yi: int, xi: int) -> bool:
        """Occupancy of one voxel; out-of-bounds counts as occupied."""
        if not self.in_bounds(zi, yi, xi):
            return True
        return bool(self.cells[zi, yi, xi])

    def occupied_batch(
        self, zis: np.ndarray, yis: np.ndarray, xis: np.ndarray
    ) -> np.ndarray:
        """Vectorized voxel occupancy; out-of-bounds counts as occupied."""
        zis = np.asarray(zis)
        yis = np.asarray(yis)
        xis = np.asarray(xis)
        nz, ny, nx = self.cells.shape
        inside = (
            (zis >= 0) & (zis < nz)
            & (yis >= 0) & (yis < ny)
            & (xis >= 0) & (xis < nx)
        )
        result = np.ones(zis.shape, dtype=bool)
        result[inside] = self.cells[zis[inside], yis[inside], xis[inside]]
        return result

    def world_to_cell(
        self, x: float, y: float, z: float
    ) -> Tuple[int, int, int]:
        """World (x, y, z) -> voxel (zi, yi, xi).

        Uses floor so coordinates below the origin map out of bounds
        rather than wrapping into voxel 0.
        """
        xi = math.floor((x - self.origin[0]) / self.resolution)
        yi = math.floor((y - self.origin[1]) / self.resolution)
        zi = math.floor((z - self.origin[2]) / self.resolution)
        return zi, yi, xi

    def cell_to_world(
        self, zi: int, yi: int, xi: int
    ) -> Tuple[float, float, float]:
        """Voxel center -> world (x, y, z)."""
        x = self.origin[0] + (xi + 0.5) * self.resolution
        y = self.origin[1] + (yi + 0.5) * self.resolution
        z = self.origin[2] + (zi + 0.5) * self.resolution
        return x, y, z

    def fill_box(
        self,
        z0: int,
        y0: int,
        x0: int,
        z1: int,
        y1: int,
        x1: int,
        value: bool = True,
    ) -> None:
        """Set an axis-aligned voxel box (inclusive corners, clipped)."""
        nz, ny, nx = self.cells.shape
        za, zb = sorted((z0, z1))
        ya, yb = sorted((y0, y1))
        xa, xb = sorted((x0, x1))
        za, ya, xa = max(za, 0), max(ya, 0), max(xa, 0)
        zb, yb, xb = min(zb, nz - 1), min(yb, ny - 1), min(xb, nx - 1)
        if za <= zb and ya <= yb and xa <= xb:
            self.cells[za : zb + 1, ya : yb + 1, xa : xb + 1] = value

    def occupancy_ratio(self) -> float:
        """Fraction of occupied voxels."""
        return float(self.cells.mean())

    def sample_free_cell(
        self, rng: np.random.Generator
    ) -> Tuple[int, int, int]:
        """Uniformly sample a free voxel; raises if the grid is full."""
        zs, ys, xs = np.nonzero(~self.cells)
        if len(zs) == 0:
            raise ValueError("grid has no free voxels")
        i = int(rng.integers(len(zs)))
        return int(zs[i]), int(ys[i]), int(xs[i])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        nz, ny, nx = self.cells.shape
        return (
            f"OccupancyGrid3D({nz}x{ny}x{nx}, res={self.resolution}, "
            f"occ={self.occupancy_ratio():.1%})"
        )
