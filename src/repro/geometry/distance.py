"""Distance metrics.

L2-norm evaluation in joint space is one of the bottlenecks the paper
reports for PRM ("frequent L2-norm calculations ... to calculate the
distance of samples in n-dimension space"), so the metric functions are
factored here where the kernels can count them.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np


def euclidean(a: Sequence[float], b: Sequence[float]) -> float:
    """L2 distance between two equal-length vectors."""
    return math.sqrt(squared_euclidean(a, b))


def squared_euclidean(a: Sequence[float], b: Sequence[float]) -> float:
    """Squared L2 distance (avoids the sqrt when only comparing)."""
    av = np.asarray(a, dtype=float)
    bv = np.asarray(b, dtype=float)
    diff = av - bv
    return float(np.dot(diff, diff))


def euclidean_batch(points: np.ndarray, query: np.ndarray) -> np.ndarray:
    """L2 distances from every row of ``points`` to ``query``."""
    diff = np.asarray(points, dtype=float) - np.asarray(query, dtype=float)
    return np.sqrt(np.einsum("ij,ij->i", diff, diff))


def angular_difference(a: float, b: float) -> float:
    """Smallest absolute difference between two angles, in [0, pi]."""
    diff = math.fmod(a - b, 2.0 * math.pi)
    if diff > math.pi:
        diff -= 2.0 * math.pi
    elif diff < -math.pi:
        diff += 2.0 * math.pi
    return abs(diff)


def joint_space_distance(
    a: Sequence[float], b: Sequence[float], wrap: bool = False
) -> float:
    """Distance between two joint configurations.

    With ``wrap=True`` each coordinate is treated as an angle and measured
    on the circle; otherwise the plain L2 distance is used (the paper's arm
    joints are limited-range, so planar L2 is the default metric).
    """
    if not wrap:
        return euclidean(a, b)
    total = 0.0
    for ai, bi in zip(a, b):
        d = angular_difference(ai, bi)
        total += d * d
    return math.sqrt(total)


def path_length(points: np.ndarray) -> float:
    """Total polyline length of an ``(n, d)`` array of waypoints."""
    pts = np.asarray(points, dtype=float)
    if len(pts) < 2:
        return 0.0
    return float(np.sum(np.linalg.norm(np.diff(pts, axis=0), axis=1)))
