"""Planar and spatial rigid transforms.

SE(2) poses carry the robot state for the mobile-robot kernels (pfl, pp2d,
mpc); rotation matrices and rigid transforms in 3D support the point-cloud
kernels (srec) where ICP estimates an SE(3) alignment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np


def wrap_angle(theta: float) -> float:
    """Wrap an angle to (-pi, pi]."""
    wrapped = math.fmod(theta + math.pi, 2.0 * math.pi)
    if wrapped <= 0.0:
        wrapped += 2.0 * math.pi
    return wrapped - math.pi


def wrap_angles(theta: np.ndarray) -> np.ndarray:
    """Vectorized :func:`wrap_angle` over an array."""
    return np.mod(np.asarray(theta) + np.pi, 2.0 * np.pi) - np.pi


@dataclass(frozen=True)
class SE2:
    """A planar rigid transform / robot pose (x, y, heading).

    Composition follows the usual convention: ``a @ b`` applies ``b`` in
    ``a``'s frame (``a`` is the parent).
    """

    x: float = 0.0
    y: float = 0.0
    theta: float = 0.0

    def __matmul__(self, other: "SE2") -> "SE2":
        c, s = math.cos(self.theta), math.sin(self.theta)
        return SE2(
            x=self.x + c * other.x - s * other.y,
            y=self.y + s * other.x + c * other.y,
            theta=wrap_angle(self.theta + other.theta),
        )

    def inverse(self) -> "SE2":
        """The transform mapping this pose's frame back to its parent."""
        c, s = math.cos(self.theta), math.sin(self.theta)
        return SE2(
            x=-(c * self.x + s * self.y),
            y=-(-s * self.x + c * self.y),
            theta=wrap_angle(-self.theta),
        )

    def apply(self, point: Tuple[float, float]) -> Tuple[float, float]:
        """Map a point from this pose's frame into the parent frame."""
        c, s = math.cos(self.theta), math.sin(self.theta)
        px, py = point
        return (self.x + c * px - s * py, self.y + s * px + c * py)

    def apply_many(self, points: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`apply` for an ``(n, 2)`` array of points."""
        c, s = math.cos(self.theta), math.sin(self.theta)
        rot = np.array([[c, -s], [s, c]])
        return points @ rot.T + np.array([self.x, self.y])

    def as_array(self) -> np.ndarray:
        """``[x, y, theta]`` as a numpy vector."""
        return np.array([self.x, self.y, self.theta])

    @staticmethod
    def from_array(v: np.ndarray) -> "SE2":
        """Inverse of :meth:`as_array`."""
        return SE2(float(v[0]), float(v[1]), wrap_angle(float(v[2])))

    def distance_to(self, other: "SE2") -> float:
        """Euclidean translation distance between two poses."""
        return math.hypot(self.x - other.x, self.y - other.y)


def rotation_matrix_2d(theta: float) -> np.ndarray:
    """2x2 planar rotation matrix."""
    c, s = math.cos(theta), math.sin(theta)
    return np.array([[c, -s], [s, c]])


def rotation_matrix_3d(roll: float, pitch: float, yaw: float) -> np.ndarray:
    """3x3 rotation from intrinsic roll-pitch-yaw Euler angles."""
    cr, sr = math.cos(roll), math.sin(roll)
    cp, sp = math.cos(pitch), math.sin(pitch)
    cy, sy = math.cos(yaw), math.sin(yaw)
    rx = np.array([[1, 0, 0], [0, cr, -sr], [0, sr, cr]])
    ry = np.array([[cp, 0, sp], [0, 1, 0], [-sp, 0, cp]])
    rz = np.array([[cy, -sy, 0], [sy, cy, 0], [0, 0, 1]])
    return rz @ ry @ rx


@dataclass(frozen=True)
class RigidTransform3D:
    """An SE(3) transform: ``p' = R p + t``.  Used by ICP/scene recon."""

    rotation: np.ndarray  # (3, 3)
    translation: np.ndarray  # (3,)

    @staticmethod
    def identity() -> "RigidTransform3D":
        """The no-op transform."""
        return RigidTransform3D(np.eye(3), np.zeros(3))

    def apply(self, points: np.ndarray) -> np.ndarray:
        """Transform an ``(n, 3)`` point array."""
        return points @ self.rotation.T + self.translation

    def compose(self, other: "RigidTransform3D") -> "RigidTransform3D":
        """``self`` after ``other``: applies ``other`` first."""
        return RigidTransform3D(
            rotation=self.rotation @ other.rotation,
            translation=self.rotation @ other.translation + self.translation,
        )

    def inverse(self) -> "RigidTransform3D":
        """The transform undoing this one."""
        rt = self.rotation.T
        return RigidTransform3D(rotation=rt, translation=-rt @ self.translation)

    def rotation_angle(self) -> float:
        """Magnitude of the rotation, in radians."""
        trace = float(np.trace(self.rotation))
        return math.acos(min(1.0, max(-1.0, (trace - 1.0) / 2.0)))
