"""2D occupancy grids.

The occupancy grid is the canonical environment representation for the
mobile-robot kernels: pfl ray-casts against it, pp2d plans over it, and the
map generators in :mod:`repro.envs.mapgen` produce instances of it.  Cells
are booleans (``True`` = occupied); the grid also carries a metric
resolution and a world-frame origin so kernels can work in meters.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Optional, Tuple

import numpy as np


class OccupancyGrid2D:
    """A metric boolean occupancy grid.

    ``cells[row, col]`` with row ~ y and col ~ x; ``resolution`` is the
    cell edge length in meters; ``origin`` is the world coordinate of the
    (0, 0) cell corner.
    """

    def __init__(
        self,
        cells: np.ndarray,
        resolution: float = 1.0,
        origin: Tuple[float, float] = (0.0, 0.0),
    ) -> None:
        cells = np.asarray(cells, dtype=bool)
        if cells.ndim != 2:
            raise ValueError("occupancy grid must be 2-dimensional")
        if resolution <= 0:
            raise ValueError("resolution must be positive")
        self.cells = cells
        self.resolution = float(resolution)
        self.origin = (float(origin[0]), float(origin[1]))

    # -- constructors ------------------------------------------------------

    @staticmethod
    def empty(
        rows: int,
        cols: int,
        resolution: float = 1.0,
        origin: Tuple[float, float] = (0.0, 0.0),
    ) -> "OccupancyGrid2D":
        """An all-free grid of the given shape."""
        return OccupancyGrid2D(
            np.zeros((rows, cols), dtype=bool), resolution, origin
        )

    def copy(self) -> "OccupancyGrid2D":
        """Deep copy (cells included)."""
        return OccupancyGrid2D(self.cells.copy(), self.resolution, self.origin)

    # -- shape and conversion ----------------------------------------------

    @property
    def rows(self) -> int:
        """Grid height in cells."""
        return self.cells.shape[0]

    @property
    def cols(self) -> int:
        """Grid width in cells."""
        return self.cells.shape[1]

    @property
    def width(self) -> float:
        """World-frame width (x extent) in meters."""
        return self.cols * self.resolution

    @property
    def height(self) -> float:
        """World-frame height (y extent) in meters."""
        return self.rows * self.resolution

    def world_to_cell(self, x: float, y: float) -> Tuple[int, int]:
        """World (x, y) -> (row, col).  No bounds check.

        Uses floor (not truncation) so points left/below the origin map to
        negative — out-of-bounds — indices rather than wrapping into cell 0.
        """
        col = math.floor((x - self.origin[0]) / self.resolution)
        row = math.floor((y - self.origin[1]) / self.resolution)
        return row, col

    def cell_to_world(self, row: int, col: int) -> Tuple[float, float]:
        """Cell center -> world (x, y)."""
        x = self.origin[0] + (col + 0.5) * self.resolution
        y = self.origin[1] + (row + 0.5) * self.resolution
        return x, y

    def in_bounds(self, row: int, col: int) -> bool:
        """Whether (row, col) indexes a real cell."""
        return 0 <= row < self.rows and 0 <= col < self.cols

    def in_bounds_world(self, x: float, y: float) -> bool:
        """Whether world point (x, y) falls inside the grid extent."""
        return (
            self.origin[0] <= x < self.origin[0] + self.width
            and self.origin[1] <= y < self.origin[1] + self.height
        )

    # -- occupancy ----------------------------------------------------------

    def is_occupied(self, row: int, col: int) -> bool:
        """Occupancy of one cell; out-of-bounds counts as occupied."""
        if not self.in_bounds(row, col):
            return True
        return bool(self.cells[row, col])

    def is_occupied_world(self, x: float, y: float) -> bool:
        """Occupancy at a world point; outside the map counts as occupied."""
        row, col = self.world_to_cell(x, y)
        return self.is_occupied(row, col)

    def occupied_world_batch(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Vectorized world-point occupancy; out-of-bounds -> occupied."""
        cols = np.floor(
            (np.asarray(xs) - self.origin[0]) / self.resolution
        ).astype(int)
        rows = np.floor(
            (np.asarray(ys) - self.origin[1]) / self.resolution
        ).astype(int)
        inside = (
            (rows >= 0) & (rows < self.rows) & (cols >= 0) & (cols < self.cols)
        )
        # Flat clipped gather + bounds mask instead of boolean fancy
        # indexing: one contiguous take over the whole batch (out-of-bounds
        # indices clip to some valid cell, then the mask forces them
        # occupied), which is what keeps the batched collision checks fast.
        occupied = np.take(
            self.cells.ravel(), rows * self.cols + cols, mode="clip"
        )
        return occupied | ~inside

    def set_occupied(self, row: int, col: int, value: bool = True) -> None:
        """Set the occupancy of one in-bounds cell."""
        if not self.in_bounds(row, col):
            raise IndexError(f"cell ({row}, {col}) out of bounds")
        self.cells[row, col] = value

    def fill_rect(
        self, row0: int, col0: int, row1: int, col1: int, value: bool = True
    ) -> None:
        """Set an axis-aligned block of cells (inclusive corners, clipped)."""
        r0, r1 = sorted((row0, row1))
        c0, c1 = sorted((col0, col1))
        r0, c0 = max(r0, 0), max(c0, 0)
        r1, c1 = min(r1, self.rows - 1), min(c1, self.cols - 1)
        if r0 <= r1 and c0 <= c1:
            self.cells[r0 : r1 + 1, c0 : c1 + 1] = value

    def fill_border(self, thickness: int = 1) -> None:
        """Occupy a border of the given cell thickness around the map."""
        t = thickness
        self.cells[:t, :] = True
        self.cells[-t:, :] = True
        self.cells[:, :t] = True
        self.cells[:, -t:] = True

    def occupancy_ratio(self) -> float:
        """Fraction of occupied cells."""
        return float(self.cells.mean())

    # -- derived grids -------------------------------------------------------

    def inflate(self, radius_m: float, cache: bool = True) -> "OccupancyGrid2D":
        """Return a grid with obstacles dilated by ``radius_m`` (Chebyshev).

        Planners use inflated grids to approximate a circular robot; the
        dilation is done with a separable sliding-window maximum, so it is
        O(cells * radius_cells) rather than per-cell neighborhoods.

        Results are memoized through the workload cache keyed on the
        grid *content* (a digest of the cell bitmap plus geometry) and
        the radius in cells, so repeated plans on the same map skip the
        dilation entirely; ``cache=False`` forces a recompute.
        """
        r = int(np.ceil(radius_m / self.resolution))
        if r <= 0:
            return self.copy()
        if cache:
            # Imported lazily: repro.envs.__init__ pulls in mapgen which
            # imports this module, so a top-level import would be circular.
            from repro.envs.cache import default_cache
            import hashlib

            digest = hashlib.sha256(np.packbits(self.cells).tobytes())
            params = {
                "cells_sha256": digest.hexdigest(),
                "shape": [self.rows, self.cols],
                "radius_cells": r,
                "resolution": self.resolution,
                "origin": list(self.origin),
            }
            return default_cache().get_or_build(
                "inflate2d", params, lambda: self._inflate_uncached(r)
            )
        return self._inflate_uncached(r)

    def _inflate_uncached(self, r: int) -> "OccupancyGrid2D":
        occ = self.cells
        out = occ.copy()
        for _ in range(r):
            shifted = out.copy()
            shifted[1:, :] |= out[:-1, :]
            shifted[:-1, :] |= out[1:, :]
            shifted[:, 1:] |= out[:, :-1]
            shifted[:, :-1] |= out[:, 1:]
            shifted[1:, 1:] |= out[:-1, :-1]
            shifted[1:, :-1] |= out[:-1, 1:]
            shifted[:-1, 1:] |= out[1:, :-1]
            shifted[:-1, :-1] |= out[1:, 1:]
            out = shifted
        return OccupancyGrid2D(out, self.resolution, self.origin)

    def scaled(self, factor: int) -> "OccupancyGrid2D":
        """Upsample each cell into a ``factor x factor`` block.

        This reproduces the paper's Fig. 21 methodology of scaling the
        comparison map "by different factors to evaluate the implementations
        in larger (or finer-resolution) environments".
        """
        if factor < 1:
            raise ValueError("scale factor must be >= 1")
        cells = np.repeat(np.repeat(self.cells, factor, axis=0), factor, axis=1)
        return OccupancyGrid2D(cells, self.resolution / factor, self.origin)

    # -- iteration / sampling -------------------------------------------------

    def free_cells(self) -> Iterator[Tuple[int, int]]:
        """Iterate (row, col) over free cells."""
        free_rows, free_cols = np.nonzero(~self.cells)
        for row, col in zip(free_rows.tolist(), free_cols.tolist()):
            yield row, col

    def sample_free_cell(
        self, rng: np.random.Generator
    ) -> Tuple[int, int]:
        """Uniformly sample a free cell; raises if the map is full."""
        free_rows, free_cols = np.nonzero(~self.cells)
        if len(free_rows) == 0:
            raise ValueError("grid has no free cells")
        i = int(rng.integers(len(free_rows)))
        return int(free_rows[i]), int(free_cols[i])

    def sample_free_point(
        self, rng: np.random.Generator
    ) -> Tuple[float, float]:
        """Uniformly sample a world point whose cell is free."""
        row, col = self.sample_free_cell(rng)
        return self.cell_to_world(row, col)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"OccupancyGrid2D({self.rows}x{self.cols}, "
            f"res={self.resolution}, occ={self.occupancy_ratio():.1%})"
        )
