"""Plain-text visualization helpers.

The suite is terminal-first (no plotting dependencies); these renderers
turn grids, paths, and learning curves into ASCII so the examples can
*show* the paper's figures, not just print numbers.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry.grid2d import OccupancyGrid2D


def render_grid(
    grid: OccupancyGrid2D,
    path: Optional[Iterable[Tuple[int, int]]] = None,
    markers: Optional[Dict[Tuple[int, int], str]] = None,
    max_width: int = 100,
    max_height: int = 40,
) -> str:
    """ASCII map: ``#`` obstacles, ``.`` free, ``*`` path, custom markers.

    Large grids are downsampled to fit ``max_width`` x ``max_height``; a
    downsampled cell is an obstacle if any covered cell is, and a path
    cell if any covered cell is on the path.
    """
    rows, cols = grid.rows, grid.cols
    row_step = max(1, -(-rows // max_height))
    col_step = max(1, -(-cols // max_width))
    path_cells = set(map(tuple, path)) if path is not None else set()
    markers = markers or {}
    out_rows: List[str] = []
    for r0 in range(0, rows, row_step):
        line = []
        for c0 in range(0, cols, col_step):
            block = grid.cells[r0 : r0 + row_step, c0 : c0 + col_step]
            cell_range = [
                (r, c)
                for r in range(r0, min(r0 + row_step, rows))
                for c in range(c0, min(c0 + col_step, cols))
            ]
            marker = next(
                (markers[rc] for rc in cell_range if rc in markers), None
            )
            if marker is not None:
                line.append(marker[0])
            elif any(rc in path_cells for rc in cell_range):
                line.append("*")
            elif block.any():
                line.append("#")
            else:
                line.append(".")
        out_rows.append("".join(line))
    # Row 0 is the bottom of the world frame; print top-down.
    return "\n".join(reversed(out_rows))


def render_curve(
    values: Sequence[float],
    width: int = 60,
    height: int = 12,
    label: str = "",
) -> str:
    """ASCII line chart of a 1-D series (e.g. a reward history)."""
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        return "(empty series)"
    lo, hi = float(data.min()), float(data.max())
    span = hi - lo if hi > lo else 1.0
    # Resample to the chart width.
    xs = np.linspace(0, len(data) - 1, min(width, len(data)))
    ys = np.interp(xs, np.arange(len(data)), data)
    levels = np.round((ys - lo) / span * (height - 1)).astype(int)
    canvas = [[" "] * len(ys) for _ in range(height)]
    for x, level in enumerate(levels):
        canvas[height - 1 - level][x] = "o"
    lines = ["".join(row) for row in canvas]
    header = f"{label}  [{lo:.3g} .. {hi:.3g}]" if label else f"[{lo:.3g} .. {hi:.3g}]"
    return header + "\n" + "\n".join(lines)


def render_workspace(
    workspace,
    arm=None,
    configs: Optional[Sequence] = None,
    resolution: int = 40,
) -> str:
    """ASCII arm workspace: obstacles as ``#``, arm links as digits.

    ``configs`` is a sequence of joint configurations; each is drawn with
    the digit of its index (0-9), so a start/goal pair or a short path
    renders in one picture.
    """
    size = workspace.size
    canvas = [["."] * resolution for _ in range(resolution)]

    def to_cell(x: float, y: float) -> Optional[Tuple[int, int]]:
        col = int(x / size * (resolution - 1))
        row = int(y / size * (resolution - 1))
        if 0 <= row < resolution and 0 <= col < resolution:
            return row, col
        return None

    for rect in workspace.obstacles:
        for row in range(resolution):
            for col in range(resolution):
                x = col / (resolution - 1) * size
                y = row / (resolution - 1) * size
                if rect.contains(x, y):
                    canvas[row][col] = "#"
    if arm is not None and configs:
        for index, q in enumerate(configs):
            symbol = str(index % 10)
            points = arm.link_points(q, base=workspace.base)
            for (x0, y0), (x1, y1) in zip(points[:-1], points[1:]):
                for t in np.linspace(0.0, 1.0, 12):
                    cell = to_cell(x0 + (x1 - x0) * t, y0 + (y1 - y0) * t)
                    if cell is not None:
                        canvas[cell[0]][cell[1]] = symbol
    base_cell = to_cell(*workspace.base)
    if base_cell is not None:
        canvas[base_cell[0]][base_cell[1]] = "B"
    return "\n".join("".join(row) for row in reversed(canvas))
