"""RTRBench reproduction: a real-time robotics kernel suite in Python.

This package reproduces *RTRBench: A Benchmark Suite for Real-Time
Robotics* (Bakhshalipour, Likhachev, Gibbons — ISPASS 2022): sixteen
kernels spanning the perception -> planning -> control pipeline of
autonomous robots, each instrumented with a region-of-interest harness
and a phase profiler so the paper's workload characterization can be
regenerated.

Quick start::

    from repro import run_kernel
    result = run_kernel("pp2d")
    print(result.profiler.report())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

from repro.harness.runner import (
    Kernel,
    KernelResult,
    load_all_kernels,
    registry,
    run_kernel,
)
from repro.rt import run_rt

__version__ = "1.1.0"

__all__ = [
    "Kernel",
    "KernelResult",
    "load_all_kernels",
    "registry",
    "run_kernel",
    "run_rt",
    "__version__",
]
