#!/usr/bin/env python3
"""High-DoF arm pick-and-place: PRM vs RRT vs RRT* vs RRT+shortcut.

A 5-DoF manipulator in the paper's cluttered Map-C workspace must move
between two configurations.  This example runs all four sampling-based
planners from the suite (kernels 07-10) on the *same* query and compares:

* wall-clock planning time,
* path cost (joint-space length),
* where each planner spends its time (collision vs nearest-neighbor),

reproducing section V.8-V.10's narrative: RRT is fast but crude, RRT* is
slow but short, shortcutting lands in between, and PRM amortizes an
offline roadmap.

Run:  python examples/arm_pick_place.py
"""

import time

import numpy as np

from repro.envs.arm_maps import default_arm, map_c
from repro.geometry.distance import path_length
from repro.harness.profiler import PhaseProfiler
from repro.planning.prm import ProbabilisticRoadmap, distant_free_pair
from repro.planning.rrt import RRT
from repro.planning.rrt_postprocess import shortcut_path
from repro.planning.rrt_star import RRTStar


def main() -> None:
    workspace = map_c()
    arm = default_arm()
    rng = np.random.default_rng(2)
    start, goal = distant_free_pair(arm, workspace, rng)
    print(f"Workspace: {workspace.name} "
          f"({len(workspace.obstacles)} obstacles)")
    print(f"Query: |goal - start| = {np.linalg.norm(goal - start):.2f} rad "
          f"in {arm.dof}-D joint space\n")

    rows = []

    # --- PRM: offline roadmap, online query --------------------------------
    prof = PhaseProfiler()
    roadmap = ProbabilisticRoadmap(arm, workspace, k_neighbors=8,
                                   profiler=prof)
    t0 = time.perf_counter()
    roadmap.build(300, np.random.default_rng(0))
    offline = time.perf_counter() - t0
    t0 = time.perf_counter()
    result, waypoints = roadmap.query(start, goal)
    online = time.perf_counter() - t0
    cost = path_length(np.vstack(waypoints)) if result.found else float("inf")
    rows.append(("prm (online)", online, cost, prof))
    print(f"PRM offline build: {offline:.2f}s for {roadmap.n_nodes} nodes / "
          f"{roadmap.n_edges} edges (paid once)")

    # --- the RRT family ------------------------------------------------------
    for label, planner_cls, kwargs in (
        ("rrt", RRT, dict(max_samples=4000, goal_threshold=0.8)),
        ("rrtstar", RRTStar, dict(max_samples=4000, goal_threshold=0.8)),
    ):
        prof = PhaseProfiler()
        planner = planner_cls(arm, workspace, rng=np.random.default_rng(1),
                              profiler=prof, **kwargs)
        t0 = time.perf_counter()
        result = planner.plan(start, goal)
        elapsed = time.perf_counter() - t0
        rows.append((label, elapsed,
                     result.cost if result.found else float("inf"), prof))
        if label == "rrt" and result.found:
            # Post-process the RRT path (kernel 10).
            prof_pp = PhaseProfiler()
            t0 = time.perf_counter()
            improved = shortcut_path(arm, workspace, result.path,
                                     iterations=150,
                                     rng=np.random.default_rng(3),
                                     profiler=prof_pp)
            pp_time = elapsed + (time.perf_counter() - t0)
            rows.append(("rrtpp", pp_time,
                         path_length(np.vstack(improved)), prof_pp))

    print(f"\n{'planner':<14}{'time':>9}{'path cost':>12}  dominant phase")
    print("-" * 55)
    for label, elapsed, cost, prof in rows:
        dominant = prof.dominant_phase() or "-"
        share = prof.fraction(dominant) if dominant != "-" else 0.0
        cost_text = f"{cost:.2f}" if np.isfinite(cost) else "(failed)"
        print(f"{label:<14}{elapsed:>8.2f}s{cost_text:>12}  "
              f"{dominant} ({share:.0%})")

    print("\nPaper section V.9-V.10: RRT* runs longest but returns the")
    print("shortest path; shortcutting recovers most of that quality for")
    print("a fraction of the cost; collision checks and nearest-neighbor")
    print("search dominate all of them.")


if __name__ == "__main__":
    main()
