#!/usr/bin/env python3
"""Quickstart: run kernels from the suite and read their profiles.

This is the five-minute tour of the RTRBench reproduction:

1. list the registered kernels (the paper's Table I),
2. run one kernel from each pipeline stage with default settings,
3. print the per-phase execution breakdown the paper characterizes,
4. override a configuration parameter from code (the same knobs the
   ``rtrbench`` CLI exposes as ``--options``).

Run:  python examples/quickstart.py
"""

from repro import load_all_kernels, registry, run_kernel
from repro.harness.reporting import characterization_table, result_summary


def main() -> None:
    load_all_kernels()

    print("=== The suite (paper Table I) ===")
    for name in registry.names():
        cls = registry.get(name)
        print(f"  {name:<14} {cls.stage:<11} {cls.description}")
    print()

    print("=== One kernel per pipeline stage ===")
    results = []
    for name, overrides in (
        ("pfl", dict(particles=400, beams=12, steps=10)),   # perception
        ("pp2d", dict(rows=128, cols=128)),                  # planning
        ("mpc", dict(steps=80)),                             # control
    ):
        print(f"\n--- running {name} ---")
        result = run_kernel(name, **overrides)
        results.append(result)
        print(result_summary(result))

    print("\n=== Dominant-phase view (compare with Table I) ===")
    print(characterization_table(results))

    print("\n=== Flexible configuration (paper Fig. 20) ===")
    fast = run_kernel("pp2d", rows=96, cols=96, epsilon=2.5)
    exact = run_kernel("pp2d", rows=96, cols=96, epsilon=1.0)
    print(
        f"pp2d with epsilon=2.5: cost={fast.output.cost:.1f} "
        f"expansions={fast.output.expansions}"
    )
    print(
        f"pp2d with epsilon=1.0: cost={exact.output.cost:.1f} "
        f"expansions={exact.output.expansions}"
    )
    print("Weighted A* trades path cost for search effort, as expected.")


if __name__ == "__main__":
    main()
