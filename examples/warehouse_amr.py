#!/usr/bin/env python3
"""A warehouse autonomous mobile robot: the full Fig. 1 pipeline.

Sense -> Perception -> Planning -> Control, composed from the suite's
public API the way a downstream robotics team would:

* **Perception** — the AMR localizes against the known warehouse map with
  the particle filter (kernel 01), fusing odometry and lidar.
* **Planning** — from the *estimated* pose, it plans a collision-free
  route to the pick station with grid A* (kernel 04 machinery).
* **Control** — it tracks the planned route with the MPC controller
  (kernel 14) on a differential-drive-scale vehicle.

The script prints each stage's quality metric and phase profile, so you
can see the pipeline's per-stage bottlenecks shift exactly as the paper's
Table I predicts.

Run:  python examples/warehouse_amr.py
"""

import numpy as np

from repro.control.mpc import ModelPredictiveController
from repro.harness.profiler import PhaseProfiler
from repro.perception.particle_filter import ParticleFilter, make_pfl_workload
from repro.planning.fast_astar import fast_grid_astar
from repro.robots.bicycle import BicycleModel, BicycleState


def perceive(workload, profiler: PhaseProfiler):
    """Global localization: scatter particles, converge, estimate."""
    pf = ParticleFilter(
        workload.grid,
        workload.lidar,
        workload.motion_model,
        n_particles=1200,
        rng=np.random.default_rng(7),
        profiler=profiler,
    )
    pf.initialize_uniform()
    spread0 = pf.spread()
    for odometry, scan in zip(workload.odometry, workload.scans):
        pf.update(odometry, scan)
    estimate = pf.estimate()
    truth = workload.true_poses[-1]
    print(f"  particle spread: {spread0:.1f} m -> {pf.spread():.2f} m")
    print(f"  pose error vs ground truth: {estimate.distance_to(truth):.2f} m")
    return estimate


def plan(grid, estimate, profiler: PhaseProfiler):
    """Route from the estimated pose to the pick station."""
    start = grid.world_to_cell(estimate.x, estimate.y)
    # Pick station: the farthest cell that stays free after the planner
    # inflates obstacles by the robot radius.
    inflated = grid.inflate(0.3)
    free = np.argwhere(~inflated.cells)
    goal = tuple(
        int(v)
        for v in free[np.argmax(np.abs(free - np.asarray(start)).sum(axis=1))]
    )
    profiler.begin("plan")
    result = fast_grid_astar(grid, start, goal, robot_radius=0.3)
    profiler.end("plan")
    if not result.found:
        raise RuntimeError("warehouse route blocked")
    print(f"  route: {len(result.path)} cells, {result.cost:.1f} m, "
          f"{result.expansions} expansions")
    from repro.viz import render_grid

    print(render_grid(
        grid, path=result.path,
        markers={tuple(start): "S", tuple(goal): "G"},
        max_width=80, max_height=24,
    ))
    return [grid.cell_to_world(r, c) for r, c in result.path]


def control(waypoints, profiler: PhaseProfiler):
    """Track the planned route with receding-horizon MPC."""
    points = np.asarray(waypoints)
    headings = np.arctan2(
        np.gradient(points[:, 1]), np.gradient(points[:, 0])
    )
    speed = 1.2  # m/s: warehouse walking pace
    reference = np.column_stack(
        [points[:, 0], points[:, 1], headings, np.full(len(points), speed)]
    )
    model = BicycleModel(wheelbase=0.4, max_speed=2.0, max_steer=0.8)
    controller = ModelPredictiveController(
        model, horizon=8, dt=0.3, profiler=profiler
    )
    initial = BicycleState(
        x=points[0, 0], y=points[0, 1], theta=headings[0], v=speed
    )
    outcome = controller.track(initial, reference, steps=min(80, len(points) - 1))
    print(f"  tracking error: mean {outcome['errors'].mean():.2f} m, "
          f"max {outcome['errors'].max():.2f} m")
    return outcome


def main() -> None:
    print("Building the warehouse workload (map + sensor trace)...")
    workload = make_pfl_workload(region=2, n_steps=15, n_beams=24, seed=3)

    stages = {}
    print("\n[1/3] PERCEPTION - particle filter localization")
    stages["perception"] = PhaseProfiler()
    estimate = perceive(workload, stages["perception"])

    print("\n[2/3] PLANNING - A* route to the pick station")
    stages["planning"] = PhaseProfiler()
    waypoints = plan(workload.grid, estimate, stages["planning"])

    print("\n[3/3] CONTROL - MPC trajectory tracking")
    stages["control"] = PhaseProfiler()
    control(waypoints, stages["control"])

    print("\n=== Where the time went, per stage ===")
    for stage, profiler in stages.items():
        dominant = profiler.dominant_phase()
        share = profiler.fraction(dominant) if dominant else 0.0
        print(f"  {stage:<11} {profiler.total_time():7.3f}s  "
              f"dominant: {dominant} ({share:.0%})")
    print("\nCompare with the paper's Table I: ray-casting dominates the")
    print("perception stage and optimization dominates the control stage.")


if __name__ == "__main__":
    main()
