#!/usr/bin/env python3
"""Symbolic planning: the firefighter mission, written as text.

The paper's Fig. 14 describes the firefighting problem in a compact
symbolic notation; this example feeds (a self-contained version of) that
notation straight into the suite's parser, plans with three different
heuristics, and narrates the winning plan step by step — the
"one symbolic planner can solve any problem described in the language"
promise, exercised end to end.

Run:  python examples/firefighter_mission.py
"""

import time

from repro.planning.symbolic.parser import parse_problem_text
from repro.planning.symbolic.planner import SymbolicPlanner, execute_plan

MISSION = """
Symbols: L1, L2, L3, W, F
Initial conditions: Loc(L1), Loc(L2), Loc(L3), Loc(W), Loc(F),
    AtR(L1), AtQ(L2), InAir, EmptyTank, BattHigh, ExtZero(F)
Goal conditions: ExtOne(F)
Actions:
  MoveToLoc(x, y)
    Preconditions: Loc(x), Loc(y), AtR(x), InAir
    Effects: AtR(y), !AtR(x)
  MoveTogether(x, y)
    Preconditions: Loc(x), Loc(y), AtR(x), AtQ(x), OnRob
    Effects: AtR(y), AtQ(y), !AtR(x), !AtQ(x)
  Land(x)
    Preconditions: Loc(x), AtQ(x), AtR(x), InAir
    Effects: OnRob, !InAir
  FillWater()
    Preconditions: OnRob, EmptyTank, AtR(W), AtQ(W)
    Effects: FullTank, !EmptyTank
  PourWater()
    Preconditions: OnRob, FullTank, BattHigh, AtR(F), AtQ(F), ExtZero(F)
    Effects: ExtOne(F), !ExtZero(F), EmptyTank, !FullTank, BattLow, !BattHigh
"""

NARRATION = {
    "MoveToLoc": "the rover drives alone from {0} to {1}",
    "MoveTogether": "the rover carries the quadcopter from {0} to {1}",
    "Land": "the quadcopter lands on the rover at {0}",
    "FillWater": "the quadcopter fills its tank at the water source",
    "PourWater": "the quadcopter pours water on the fire",
}


def narrate(step: str) -> str:
    name, _, rest = step.partition("(")
    args = rest[:-1].split(",") if rest else []
    template = NARRATION.get(name, step)
    return template.format(*args)


def main() -> None:
    print("Parsing the mission description (paper Fig. 14 notation)...")
    problem = parse_problem_text(MISSION)
    print(f"  {len(problem.actions)} ground actions, "
          f"{len(problem.initial_state)} initial facts\n")

    print("Planning with three heuristics:")
    best = None
    for kind in ("goal-count", "hmax", "hadd"):
        t0 = time.perf_counter()
        result = SymbolicPlanner(problem, heuristic=kind).plan()
        elapsed = time.perf_counter() - t0
        print(f"  {kind:<11} plan length {len(result.plan):>2}, "
              f"{result.expansions:>4} expansions, {elapsed * 1e3:6.1f} ms")
        best = result

    print("\nThe mission plan:")
    for i, step in enumerate(best.plan, 1):
        print(f"  {i}. {narrate(step)}")

    final = execute_plan(problem, best.plan)
    assert problem.goal <= final
    print("\nGoal verified: the fire took its first dousing "
          "(re-run the full kernel `rtrbench run sym-fext` for the "
          "three-pour version with recharging).")


if __name__ == "__main__":
    main()
