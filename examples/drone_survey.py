#!/usr/bin/env python3
"""A survey drone over the campus: 3D planning + moving-target pursuit.

Two planning problems from the paper's aerial-robot kernels:

1. **Transit** (kernel 05): the drone crosses the campus volume with 3D
   A*, flying over buildings and under the overpass as the geometry
   demands.
2. **Pursuit** (kernel 06): a ground vehicle with a known patrol route
   must be intercepted at minimum accumulated cost; the planner
   precomputes its backward-Dijkstra heuristic and searches in
   (x, y, time).

The second part also demonstrates the paper's "input-dependent" claim:
the same pursuit on a small arena is dominated by heuristic
precomputation, while the large arena is search-bound.

Run:  python examples/drone_survey.py
"""

import numpy as np

from repro.envs.costmap import synthetic_costmap, target_trajectory
from repro.envs.mapgen import campus_like_3d
from repro.harness.profiler import PhaseProfiler
from repro.planning.moving_target import MovingTargetPlanner, free_start_far_from
from repro.planning.pp3d import far_apart_free_voxels, plan_3d


def transit() -> None:
    print("[1/2] TRANSIT - 3D A* across the campus")
    grid = campus_like_3d(nx=96, ny=96, nz=24, seed=0)
    start, goal = far_apart_free_voxels(grid)
    profiler = PhaseProfiler()
    result = plan_3d(grid, start, goal, profiler=profiler)
    if not result.found:
        raise RuntimeError("campus transit blocked")
    altitudes = [z for z, _, _ in result.path]
    print(f"  path: {len(result.path)} voxels, {result.cost:.1f} m, "
          f"{result.expansions} expansions")
    print(f"  altitude profile: min {min(altitudes)} max {max(altitudes)} "
          f"(climbs where buildings block)")
    fracs = profiler.fractions()
    print(f"  time split: search {fracs.get('search', 0):.0%}, "
          f"collision {fracs.get('collision', 0):.0%}, "
          f"heuristic {fracs.get('heuristic', 0):.0%}")


def pursue(rows: int, cols: int, horizon: int, label: str) -> None:
    field = synthetic_costmap(rows=rows, cols=cols, seed=1)
    trajectory = target_trajectory(field, horizon, seed=1)
    start = free_start_far_from(field, tuple(trajectory[0]),
                                np.random.default_rng(4))
    profiler = PhaseProfiler()
    planner = MovingTargetPlanner(field, trajectory, epsilon=2.0,
                                  profiler=profiler)
    planner.precompute_heuristic()
    result = planner.plan(start)
    fracs = profiler.fractions()
    status = "intercepted" if result.found else "escaped"
    catch_time = result.path[-1][2] if result.found else "-"
    print(f"  {label:<18} target {status} at t={catch_time}; "
          f"heuristic precompute {fracs.get('heuristic_precompute', 0):.0%} "
          f"vs search {fracs.get('search', 0) + fracs.get('heuristic', 0):.0%}")


def main() -> None:
    transit()
    print("\n[2/2] PURSUIT - catching the patrol vehicle (kernel 06)")
    pursue(24, 24, 48, "small arena:")
    pursue(96, 96, 256, "large arena:")
    print("\nPaper section V.6: the bottleneck is input-dependent — the")
    print("small arena pays mostly for the backward-Dijkstra heuristic,")
    print("the large one for the (x, y, time) graph search.")


if __name__ == "__main__":
    main()
