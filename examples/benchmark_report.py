#!/usr/bin/env python3
"""Regenerate the paper's evaluation artifacts as one text report.

Runs every experiment in the registry (Table I characterization, the
perception/planning/control figures, and the Fig. 21 library comparison)
and prints a paper-vs-measured report.  This is the script behind
EXPERIMENTS.md — run it after changing kernels to refresh the record.

Run:  python examples/benchmark_report.py            (full, ~2-4 min)
      python examples/benchmark_report.py --quick    (subset, ~40 s)
"""

import sys
import time

import numpy as np

from repro.experiments.characterization import (
    render_characterization,
    run_characterization,
)
from repro.experiments.fig21_comparison import render_fig21, run_fig21
from repro.experiments.figures_control import (
    run_bo_vs_cem,
    run_fig15_dmp,
    run_fig18_cem,
    run_fig19_bo,
)
from repro.experiments.figures_perception import (
    render_fig2,
    run_fig2_pfl,
    run_fig3_ekfslam,
    run_fig4_srec,
)
from repro.experiments.figures_planning import (
    render_movtar,
    render_rrt_family,
    run_movtar_input_dependence,
    run_rrt_family,
    run_symbolic_branching,
)


def banner(title: str) -> None:
    print(f"\n{'=' * 70}\n{title}\n{'=' * 70}")


def main() -> None:
    quick = "--quick" in sys.argv
    t_start = time.time()

    banner("T1 - Table I: workload characterization")
    kernels = ["02.ekfslam", "04.pp2d", "14.mpc"] if quick else None
    print(render_characterization(run_characterization(kernels)))

    banner("F2 - Fig. 2: particle filter convergence (5 building regions)")
    print(render_fig2(run_fig2_pfl(n_regions=2 if quick else 5)))

    banner("F3 - Fig. 3: EKF-SLAM estimates and uncertainty")
    fig3 = run_fig3_ekfslam()
    print(f"final pose error:      {fig3.final_pose_error:.3f} m")
    print(f"mean landmark error:   {fig3.mean_landmark_error:.3f} m")
    print(f"final pose uncertainty (sqrt tr cov): "
          f"{fig3.final_pose_uncertainty:.3f} m")

    banner("F4 - Fig. 4: ICP scene reconstruction")
    fig4 = run_fig4_srec()
    print(f"per-frame pose errors: "
          f"{', '.join(f'{e:.3f}' for e in fig4.pose_errors)} m")
    print(f"fused model: {fig4.model_points} points, "
          f"RMS to true scene {fig4.model_rms_to_scene:.3f} m")

    banner("E6 - movtar: input-dependent bottleneck")
    print(render_movtar(run_movtar_input_dependence()))

    if not quick:
        banner("E9/E10 - RRT vs RRT* vs RRT+shortcut")
        print(render_rrt_family(run_rrt_family()))

    banner("E11 - symbolic branching (sym-fext vs sym-blkw)")
    branching = run_symbolic_branching()
    print(f"sym-blkw branching: {branching.blkw_branching:.2f}")
    print(f"sym-fext branching: {branching.fext_branching:.2f}")
    print(f"ratio: {branching.ratio:.1f}x (paper: ~3.2x)")

    banner("F15 - Fig. 15: DMP trajectory generation")
    fig15 = run_fig15_dmp()
    print(f"RMS tracking error:  {fig15.rms_error:.3f} m")
    print(f"endpoint error:      {fig15.endpoint_error:.3f} m")
    print(f"peak speed:          {fig15.max_velocity:.2f} m/s; lateral "
          f"velocity oscillations: {fig15.velocity_sign_changes}")

    banner("F18/F19/E16 - CEM and BO policy learning")
    cem = run_fig18_cem()
    bo = run_fig19_bo()
    ratio = run_bo_vs_cem()
    print(f"CEM best reward over 5x15:   {cem.best_reward:.4f} "
          f"(history: {np.round(cem.reward_history, 3).tolist()})")
    print(f"BO best reward over 45 iter: {bo.best_reward:.4f}")
    print(f"BO/CEM compute ratio: {ratio.time_ratio:.0f}x; "
          f"sort volume ratio: {ratio.sort_ratio:.0f}x (paper: ~6x)")

    banner("F21 - library comparison (optimized vs educational A*)")
    scales = [1, 2] if quick else [1, 2, 4, 8]
    print(render_fig21(run_fig21(scales=scales, educational_max_scale=2)))

    banner("B1 - hot-path backends: reference vs vectorized speedups")
    from repro.harness.bench import render_report, run_bench

    print(render_report(run_bench(smoke=quick)))

    print(f"\nTotal report time: {time.time() - t_start:.0f}s")


if __name__ == "__main__":
    main()
