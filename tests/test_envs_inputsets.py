"""Tests for the named inputset registry (paper section VI)."""

import dataclasses

import pytest

from repro.envs.inputsets import INPUTSETS, inputset_names, inputset_overrides
from repro.harness.cli import main
from repro.harness.runner import load_all_kernels, registry, run_kernel


def test_every_kernel_has_inputsets():
    load_all_kernels()
    for name in registry.names():
        suffix = name.split(".", 1)[-1]
        assert suffix in INPUTSETS, f"kernel {name} has no inputsets"
        assert "default" in INPUTSETS[suffix]


def test_every_inputset_overrides_real_config_fields():
    """Every override key must be a field of the kernel's config class."""
    load_all_kernels()
    for suffix, sets in INPUTSETS.items():
        cls = registry.get(suffix)
        field_names = {f.name for f in dataclasses.fields(cls.config_cls)}
        for set_name, overrides in sets.items():
            unknown = set(overrides) - field_names
            assert not unknown, (
                f"{suffix}/{set_name}: unknown config fields {unknown}"
            )


def test_inputset_names_and_overrides():
    assert "dense-city" in inputset_names("pp2d")
    assert inputset_names("04.pp2d") == inputset_names("pp2d")
    overrides = inputset_overrides("pp2d", "dense-city")
    assert overrides["rows"] == 256


def test_unknown_kernel_or_set_raises():
    with pytest.raises(KeyError, match="no inputsets"):
        inputset_names("teleport")
    with pytest.raises(KeyError, match="no inputset"):
        inputset_overrides("pp2d", "marsmap")


def test_run_kernel_with_inputset_overrides():
    result = run_kernel("cem", **inputset_overrides("cem", "big-population"))
    assert result.config.samples == 60
    assert len(result.output["sample_rewards"]) == 10 * 60


def test_cli_inputsets_command(capsys):
    assert main(["inputsets", "rrt"]) == 0
    out = capsys.readouterr().out
    assert "map-f" in out


def test_cli_inputsets_all(capsys):
    assert main(["inputsets"]) == 0
    out = capsys.readouterr().out
    assert "pp2d" in out and "bo" in out


def test_cli_inputsets_unknown(capsys):
    assert main(["inputsets", "warp"]) == 2


def test_cli_run_with_inputset(capsys):
    code = main(["run", "cem", "--inputset", "big-population", "--seed", "2"])
    assert code == 0
    assert "15.cem" in capsys.readouterr().out


def test_cli_run_inputset_explicit_flag_wins(capsys):
    code = main(
        ["run", "cem", "--inputset", "big-population", "--samples", "5"]
    )
    assert code == 0
    # 10 iterations (from the inputset) x 5 samples (explicit override).
    out = capsys.readouterr().out
    assert "rollouts                 50" in out


def test_cli_run_inputset_missing_name(capsys):
    assert main(["run", "cem", "--inputset"]) == 2


def test_cli_run_inputset_unknown(capsys):
    assert main(["run", "cem", "--inputset", "nope"]) == 2


def test_cli_characterize_subset(capsys):
    assert main(["characterize", "ekfslam"]) == 0
    out = capsys.readouterr().out
    assert "02.ekfslam" in out
    assert "matrix_ops" in out
