"""Tests for the experiment runners (scaled-down where expensive)."""

import numpy as np
import pytest

from repro.experiments import EXPERIMENTS, run_experiment
from repro.experiments.characterization import (
    EXPECTATIONS,
    characterize_kernel,
    render_characterization,
)
from repro.experiments.fig21_comparison import render_fig21, run_fig21
from repro.experiments.figures_control import run_bo_vs_cem, run_fig18_cem
from repro.experiments.figures_perception import render_fig2, run_fig3_ekfslam
from repro.experiments.figures_planning import (
    render_movtar,
    run_movtar_input_dependence,
    run_symbolic_branching,
)


def test_registry_has_all_design_ids():
    for experiment_id in ("T1", "F2", "F3", "F4", "E6", "E9", "E11",
                          "F15", "F18", "F19", "E16", "F21"):
        assert experiment_id in EXPERIMENTS


def test_unknown_experiment_raises():
    with pytest.raises(KeyError, match="unknown experiment"):
        run_experiment("Z99")


def test_expectations_cover_all_kernels():
    assert len(EXPECTATIONS) == 16


def test_characterize_one_kernel_matches_paper():
    row = characterize_kernel(
        next(e for e in EXPECTATIONS if e.kernel == "02.ekfslam")
    )
    assert row.matches_paper
    assert "matrix_ops" in row.fractions
    text = render_characterization([row])
    assert "02.ekfslam" in text


def test_fig3_ekfslam_claims():
    fig = run_fig3_ekfslam(seed=0)
    assert fig.final_pose_error < 1.0
    assert fig.mean_landmark_error < 1.0
    assert len(fig.landmark_uncertainties) == 6


def test_movtar_input_dependence_shape():
    points = run_movtar_input_dependence(seed=0)
    assert len(points) == 4
    # E6: heuristic share falls as the environment grows.
    assert points[0].heuristic_share > points[-1].heuristic_share
    text = render_movtar(points)
    assert "heuristic" in text


def test_symbolic_branching_ratio():
    result = run_symbolic_branching()
    # Paper: ~3.2x more parallelism in sym-fext.
    assert result.ratio > 2.0


def test_fig18_cem_learning_curve():
    curve = run_fig18_cem(seed=0)
    assert curve.improved or curve.best_reward > -0.5
    assert len(curve.reward_history) == 5


def test_bo_vs_cem_ratios():
    result = run_bo_vs_cem(seed=0)
    assert result.time_ratio > 1.0
    assert result.sort_ratio > 6.0


def test_fig21_small_sweep():
    points = run_fig21(scales=[1, 2], educational_max_scale=2)
    assert len(points) == 2
    assert all(p.speedup and p.speedup > 1.0 for p in points)
    assert points[1].speedup > points[0].speedup
    text = render_fig21(points)
    assert "speedup" in text


def test_fig2_render():
    from repro.experiments.figures_perception import PflRegionResult

    rows = [PflRegionResult(0, 20.0, 0.2, 0.1, True)]
    text = render_fig2(rows)
    assert "region" in text and "yes" in text
