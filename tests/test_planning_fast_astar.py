"""Tests for the performance-first grid A* and the educational baseline."""

import numpy as np
import pytest

from repro.envs.mapgen import comparison_map
from repro.geometry.grid2d import OccupancyGrid2D
from repro.planning.baselines import (
    EducationalAStar,
    grid_to_obstacle_points,
)
from repro.planning.fast_astar import fast_grid_astar


def test_fast_astar_open_grid():
    grid = OccupancyGrid2D.empty(20, 20)
    result = fast_grid_astar(grid, (2, 2), (17, 17))
    assert result.found
    assert result.path[0] == (2, 2)
    assert result.path[-1] == (17, 17)
    assert result.cost == pytest.approx(15 * np.sqrt(2), rel=0.01)


def test_fast_astar_routes_around_wall():
    grid = OccupancyGrid2D.empty(20, 20)
    grid.fill_rect(0, 10, 15, 10)
    result = fast_grid_astar(grid, (5, 5), (5, 15))
    assert result.found
    for r, c in result.path:
        assert not grid.cells[r, c]


def test_fast_astar_no_row_wrap():
    """A wall to the map edge must not leak via flat-index wrapping."""
    grid = OccupancyGrid2D.empty(10, 10)
    grid.fill_rect(0, 5, 9, 5)  # full-height wall: right half unreachable
    result = fast_grid_astar(grid, (5, 2), (5, 8))
    assert not result.found


def test_fast_astar_inflation_blocks_tight_gap():
    grid = OccupancyGrid2D.empty(21, 21)
    grid.fill_rect(0, 10, 8, 10)
    grid.fill_rect(12, 10, 20, 10)  # 3-cell gap rows 9..11
    thin = fast_grid_astar(grid, (10, 3), (10, 17), robot_radius=0.0)
    assert thin.found
    fat = fast_grid_astar(grid, (10, 3), (10, 17), robot_radius=2.0)
    assert not fat.found


def test_fast_astar_occupied_endpoints_raise():
    grid = OccupancyGrid2D.empty(5, 5)
    grid.set_occupied(0, 0)
    with pytest.raises(ValueError):
        fast_grid_astar(grid, (0, 0), (4, 4))
    with pytest.raises(ValueError):
        fast_grid_astar(grid, (4, 4), (0, 0))


def test_fast_astar_matches_educational_cost():
    """Both planners are A*: equal-resolution costs must agree closely."""
    grid = comparison_map()
    fast = fast_grid_astar(grid, (10, 10), (50, 50), robot_radius=0.8)
    ox, oy = grid_to_obstacle_points(grid)
    edu = EducationalAStar(ox, oy, resolution=1.0, robot_radius=0.8)
    sx, sy = grid.cell_to_world(10, 10)
    gx, gy = grid.cell_to_world(50, 50)
    result = edu.plan(sx, sy, gx, gy)
    assert fast.found and result.found
    edu_cost = sum(
        np.hypot(x1 - x0, y1 - y0)
        for (x0, y0), (x1, y1) in zip(
            zip(result.path_x[:-1], result.path_y[:-1]),
            zip(result.path_x[1:], result.path_y[1:]),
        )
    )
    # Different inflation shapes (disk vs Chebyshev) allow small deltas.
    assert fast.cost == pytest.approx(edu_cost, rel=0.15)


def test_educational_planner_finds_the_demo_path():
    grid = comparison_map()
    ox, oy = grid_to_obstacle_points(grid)
    planner = EducationalAStar(ox, oy, resolution=1.0, robot_radius=0.8)
    sx, sy = grid.cell_to_world(10, 10)
    gx, gy = grid.cell_to_world(50, 50)
    result = planner.plan(sx, sy, gx, gy)
    assert result.found
    assert result.path_x[0] == pytest.approx(sx, abs=1.0)
    assert result.path_x[-1] == pytest.approx(gx, abs=1.0)
    assert result.expansions > 100


def test_educational_validation():
    with pytest.raises(ValueError):
        EducationalAStar([1.0], [1.0, 2.0], 1.0, 0.5)


def test_educational_unreachable():
    # Enclose the goal in a box of obstacle points.
    ox, oy = [], []
    for i in range(11):
        ox += [0.0 + i, 0.0 + i, 0.0, 10.0]
        oy += [0.0, 10.0, 0.0 + i, 0.0 + i]
    # Inner sealed box around (7, 7).
    for i in range(5):
        ox += [5.0 + i, 5.0 + i, 5.0, 9.0]
        oy += [5.0, 9.0, 5.0 + i, 5.0 + i]
    planner = EducationalAStar(ox, oy, resolution=1.0, robot_radius=0.4)
    result = planner.plan(2.0, 2.0, 7.0, 7.0)
    assert not result.found


def test_fig21_speedup_shape():
    """The optimized planner beats the educational one, more at scale."""
    import time

    base = comparison_map()
    speedups = []
    for scale in (1, 2):
        grid = base.scaled(scale) if scale > 1 else base
        start, goal = (10 * scale, 10 * scale), (50 * scale, 50 * scale)
        t0 = time.perf_counter()
        fast = fast_grid_astar(grid, start, goal, robot_radius=0.8)
        fast_time = time.perf_counter() - t0
        assert fast.found
        ox, oy = grid_to_obstacle_points(grid)
        planner = EducationalAStar(ox, oy, grid.resolution, 0.8)
        sx, sy = grid.cell_to_world(*start)
        gx, gy = grid.cell_to_world(*goal)
        t0 = time.perf_counter()
        edu = planner.plan(sx, sy, gx, gy)
        edu_time = time.perf_counter() - t0
        assert edu.found
        speedups.append(edu_time / fast_time)
    assert speedups[0] > 3.0  # orders of magnitude in the full experiment
    assert speedups[1] > speedups[0]  # the gap grows with scale
