"""Tests for collision detection primitives."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.geometry.collision import (
    Rectangle,
    footprint_points,
    oriented_footprint_collides,
    point_collides,
    polyline_hits_obstacles,
    segment_collides_grid,
    segment_hits_obstacles,
)
from repro.geometry.grid2d import OccupancyGrid2D


def test_footprint_points_cover_the_rectangle():
    pts = footprint_points(4.0, 2.0, 0.5)
    assert pts[:, 0].min() == pytest.approx(-2.0)
    assert pts[:, 0].max() == pytest.approx(2.0)
    assert pts[:, 1].min() == pytest.approx(-1.0)
    assert pts[:, 1].max() == pytest.approx(1.0)
    # Spacing never exceeds the requested resolution.
    xs = np.unique(pts[:, 0])
    assert np.diff(xs).max() <= 0.5 + 1e-9


def test_footprint_clear_vs_hit(small_grid):
    body = footprint_points(2.0, 1.0, 0.5)
    # Center of the free area left of the obstacle block.
    assert not oriented_footprint_collides(small_grid, 4.0, 4.0, 0.0, body)
    # On top of the obstacle block.
    assert oriented_footprint_collides(small_grid, 10.0, 10.0, 0.0, body)


def test_footprint_rotation_matters():
    grid = OccupancyGrid2D.empty(10, 10)
    grid.fill_rect(0, 6, 9, 6)  # vertical wall at column 6
    body = footprint_points(6.0, 0.5, 0.5)
    # Long axis along the wall direction (vertical): fits beside the wall.
    assert not oriented_footprint_collides(grid, 3.0, 5.0, math.pi / 2, body)
    # Long axis pointing through the wall: collides.
    assert oriented_footprint_collides(grid, 3.0, 5.0, 0.0, body)


def test_footprint_counts_checks(small_grid):
    counts = {}
    body = footprint_points(2.0, 1.0, 1.0)
    oriented_footprint_collides(
        small_grid, 4.0, 4.0, 0.0, body,
        count=lambda n, k: counts.__setitem__(n, counts.get(n, 0) + k),
    )
    assert counts["collision_cell_checks"] == len(body)


def test_point_collides(small_grid):
    assert point_collides(small_grid, 10.0, 10.0)
    assert not point_collides(small_grid, 4.0, 4.0)


def test_segment_collides_grid(small_grid):
    # Crossing the central block.
    assert segment_collides_grid(small_grid, (3.0, 10.0), (17.0, 10.0))
    # Hugging the free top lane.
    assert not segment_collides_grid(small_grid, (2.0, 2.0), (17.0, 2.0))


def test_segment_grid_degenerate_point(small_grid):
    assert not segment_collides_grid(small_grid, (4.0, 4.0), (4.0, 4.0))
    assert segment_collides_grid(small_grid, (10.0, 10.0), (10.0, 10.0))


# -- rectangle obstacles -------------------------------------------------------


def test_rectangle_validates():
    with pytest.raises(ValueError):
        Rectangle(1.0, 0.0, 0.0, 1.0)


def test_rectangle_contains():
    rect = Rectangle(0.0, 0.0, 2.0, 1.0)
    assert rect.contains(1.0, 0.5)
    assert rect.contains(0.0, 0.0)  # boundary
    assert not rect.contains(3.0, 0.5)


def test_segment_crossing_rectangle():
    rect = Rectangle(1.0, 1.0, 2.0, 2.0)
    assert rect.intersects_segment((0.0, 1.5), (3.0, 1.5))
    assert not rect.intersects_segment((0.0, 0.0), (3.0, 0.5))


def test_segment_fully_inside_rectangle():
    rect = Rectangle(0.0, 0.0, 4.0, 4.0)
    assert rect.intersects_segment((1.0, 1.0), (2.0, 2.0))


def test_segment_touching_corner():
    rect = Rectangle(1.0, 1.0, 2.0, 2.0)
    assert rect.intersects_segment((0.0, 2.0), (2.0, 0.0))  # through corner


def test_vertical_and_horizontal_segments():
    rect = Rectangle(1.0, 1.0, 2.0, 2.0)
    assert rect.intersects_segment((1.5, 0.0), (1.5, 3.0))  # vertical through
    assert not rect.intersects_segment((0.5, 0.0), (0.5, 3.0))  # vertical miss
    assert rect.intersects_segment((0.0, 1.5), (3.0, 1.5))  # horizontal


@given(
    st.floats(-5, 5), st.floats(-5, 5), st.floats(-5, 5), st.floats(-5, 5)
)
def test_segment_endpoint_inside_always_intersects(x0, y0, dx, dy):
    rect = Rectangle(-1.0, -1.0, 1.0, 1.0)
    inside = (max(-0.9, min(0.9, x0)), max(-0.9, min(0.9, y0)))
    outside = (inside[0] + dx, inside[1] + dy)
    assert rect.intersects_segment(inside, outside)


def test_segment_hits_obstacles_counts():
    obstacles = [Rectangle(0, 0, 1, 1), Rectangle(5, 5, 6, 6)]
    counts = {}
    hit = segment_hits_obstacles(
        (2.0, 2.0), (3.0, 3.0), obstacles,
        count=lambda n, k: counts.__setitem__(n, counts.get(n, 0) + k),
    )
    assert not hit
    assert counts["segment_obstacle_tests"] == 2


def test_polyline_hits_obstacles():
    obstacles = [Rectangle(1.0, 1.0, 2.0, 2.0)]
    clear = [(0.0, 0.0), (0.5, 3.0), (3.0, 3.0)]
    through = [(0.0, 0.0), (3.0, 3.0)]
    assert not polyline_hits_obstacles(clear, obstacles)
    assert polyline_hits_obstacles(through, obstacles)


def test_polyline_empty_or_single_point():
    obstacles = [Rectangle(0, 0, 1, 1)]
    assert not polyline_hits_obstacles([], obstacles)
    assert not polyline_hits_obstacles([(0.5, 0.5)], obstacles)
