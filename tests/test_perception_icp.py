"""Tests for ICP registration."""

import numpy as np
import pytest

from repro.envs.pointcloud import living_room
from repro.geometry.transforms import RigidTransform3D, rotation_matrix_3d
from repro.harness.profiler import PhaseProfiler
from repro.perception.icp import best_fit_transform, icp


def _random_transform(rng, angle=0.1, translation=0.1):
    rot = rotation_matrix_3d(
        rng.uniform(-angle, angle),
        rng.uniform(-angle, angle),
        rng.uniform(-angle, angle),
    )
    return RigidTransform3D(rot, rng.uniform(-translation, translation, 3))


def test_best_fit_exact_recovery(rng):
    points = rng.normal(size=(50, 3))
    true = _random_transform(rng, angle=0.5, translation=1.0)
    moved = true.apply(points)
    est = best_fit_transform(points, moved)
    assert np.allclose(est.rotation, true.rotation, atol=1e-9)
    assert np.allclose(est.translation, true.translation, atol=1e-9)


def test_best_fit_no_reflection(rng):
    points = rng.normal(size=(30, 3))
    target = rng.normal(size=(30, 3))
    est = best_fit_transform(points, target)
    assert np.linalg.det(est.rotation) == pytest.approx(1.0, abs=1e-9)


def test_icp_validates_shapes():
    with pytest.raises(ValueError):
        icp(np.zeros((5, 2)), np.zeros((5, 3)))
    with pytest.raises(ValueError):
        icp(np.zeros((5, 3)), np.zeros(5))


@pytest.mark.parametrize("method", ["kdtree", "brute"])
def test_icp_recovers_small_misalignment(rng, method):
    scene = living_room(1500, seed=0)
    true = _random_transform(rng, angle=0.06, translation=0.08)
    source = true.inverse().apply(scene[:600])
    result = icp(source, scene, max_iterations=30, correspondence=method)
    # Applying the estimated transform must land points back on the scene.
    registered = result.transform.apply(source)
    dists = np.linalg.norm(registered - scene[:600], axis=1)
    assert np.median(dists) < 0.03
    assert result.rms_error < 0.05


def test_icp_brute_matches_kdtree(rng):
    scene = living_room(800, seed=1)
    true = _random_transform(rng, angle=0.04, translation=0.05)
    source = true.inverse().apply(scene[:300])
    a = icp(source, scene, max_iterations=15, correspondence="kdtree")
    b = icp(source, scene, max_iterations=15, correspondence="brute")
    assert np.allclose(a.transform.translation, b.transform.translation,
                       atol=1e-6)


def test_icp_identity_when_aligned(rng):
    scene = living_room(800, seed=2)
    result = icp(scene[:300], scene, max_iterations=10)
    assert result.converged
    assert np.linalg.norm(result.transform.translation) < 1e-3
    assert result.transform.rotation_angle() < 1e-3


def test_icp_error_history_decreases(rng):
    scene = living_room(1000, seed=3)
    true = _random_transform(rng, angle=0.08, translation=0.08)
    source = true.inverse().apply(scene[:400])
    result = icp(source, scene, max_iterations=25, correspondence="brute")
    assert result.error_history[-1] <= result.error_history[0] + 1e-9


def test_icp_uses_initial_guess(rng):
    scene = living_room(1000, seed=4)
    true = _random_transform(rng, angle=0.3, translation=0.5)  # large offset
    source = true.inverse().apply(scene[:400])
    warm = icp(source, scene, max_iterations=10, initial=true,
               correspondence="brute")
    assert warm.rms_error < 0.05


def test_icp_unknown_correspondence_raises():
    with pytest.raises(ValueError):
        icp(np.zeros((4, 3)), np.zeros((4, 3)), correspondence="magic")


def test_icp_max_correspondence_distance_filters(rng):
    scene = living_room(600, seed=5)
    source = scene[:200] + rng.normal(0, 0.002, (200, 3))
    # Add gross outliers to the source.
    source = np.vstack([source, rng.uniform(10, 20, size=(20, 3))])
    result = icp(source, scene, max_iterations=15,
                 max_correspondence_distance=0.5, correspondence="brute")
    assert np.linalg.norm(result.transform.translation) < 0.05


def test_icp_profiles_phases(rng):
    prof = PhaseProfiler()
    scene = living_room(500, seed=6)
    icp(scene[:150], scene, max_iterations=5, profiler=prof)
    assert "correspondence" in prof.stats
    assert "transform_estimation" in prof.stats
    assert prof.counters.get("svd_solves", 0) >= 1
