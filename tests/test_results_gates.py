"""The declarative gate engine, including the legacy-checker equivalence.

The second half of this module freezes the three retired ad-hoc floor
checkers (``harness.bench.check_floors``, ``harness.suite.
check_suite_floors``, ``rt.run.check_rt_floors``) verbatim and proves
that the shipped gate policy reproduces every pass/fail verdict they
gave on the committed pre-migration fixtures — including perturbed
variants that trip each individual check.
"""

from __future__ import annotations

import copy
import json
import os

import pytest

from repro.results import (
    Gate,
    Measurement,
    ResultStore,
    RunRecord,
    default_gates,
    evaluate_gate,
    evaluate_gates,
    record_from_payload,
)
from repro.results.gates import (
    DEFAULT_GATES,
    gate_failures,
    gates_from_dicts,
    gates_from_file,
    render_gate_results,
)

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


def _bench_record(value=6.0, tags=(), hib=True):
    return RunRecord(
        kind="bench",
        tags=list(tags),
        measurements={"raycast.speedup": Measurement(value, "ratio", hib)},
    )


def _floor_gate(**overrides):
    spec = dict(
        name="floor", kind="bench", metric="raycast.speedup",
        op=">=", threshold=5.0,
    )
    spec.update(overrides)
    return Gate(**spec)


# -- declaration validation ----------------------------------------------------


def test_gate_rejects_unknown_op():
    with pytest.raises(ValueError, match="unknown op"):
        _floor_gate(op="~=")


def test_gate_rejects_bad_on_missing():
    with pytest.raises(ValueError, match="on_missing"):
        _floor_gate(on_missing="explode")


def test_gate_requires_exactly_one_bound():
    with pytest.raises(ValueError, match="exactly one"):
        _floor_gate(threshold=None)
    with pytest.raises(ValueError, match="exactly one"):
        _floor_gate(baseline="latest")


def test_gate_dict_roundtrip():
    for spec in DEFAULT_GATES:
        gate = Gate.from_dict(spec)
        assert Gate.from_dict(gate.to_dict()) == gate


def test_gates_from_file(tmp_path):
    path = tmp_path / "gates.json"
    path.write_text(json.dumps(DEFAULT_GATES))
    assert gates_from_file(str(path)) == default_gates()
    path.write_text(json.dumps({"not": "a list"}))
    with pytest.raises(ValueError, match="JSON list"):
        gates_from_file(str(path))


# -- evaluation edge cases -----------------------------------------------------


def test_threshold_boundary_is_inclusive_for_ge():
    gate = _floor_gate()
    assert evaluate_gate(gate, _bench_record(5.0)).passed
    assert evaluate_gate(gate, _bench_record(4.999)).failed


def test_exact_equality_op():
    gate = _floor_gate(op="==", threshold=0.0)
    assert evaluate_gate(gate, _bench_record(0.0)).passed
    assert evaluate_gate(gate, _bench_record(1e-9)).failed


def test_kind_mismatch_skips():
    result = evaluate_gate(
        _floor_gate(kind="suite"), _bench_record(1.0)
    )
    assert result.status == "skip"
    assert "kind" in result.reason


def test_skip_tags_exempt_tagged_records():
    gate = _floor_gate(skip_tags=("smoke",))
    assert evaluate_gate(gate, _bench_record(1.0, tags=["smoke"])).status == (
        "skip"
    )
    assert evaluate_gate(gate, _bench_record(1.0)).failed


def test_missing_metric_policy():
    empty = RunRecord(kind="bench")
    assert evaluate_gate(_floor_gate(on_missing="fail"), empty).failed
    assert evaluate_gate(
        _floor_gate(on_missing="skip"), empty
    ).status == "skip"


def test_nan_metric_always_fails():
    nan_record = _bench_record(float("nan"))
    result = evaluate_gate(_floor_gate(on_missing="skip"), nan_record)
    assert result.failed
    assert "NaN" in result.reason


def test_evaluate_gates_drops_other_kind_gates():
    results = evaluate_gates(_bench_record(6.0))
    assert results
    assert all(r.gate.startswith("bench.") for r in results)


def test_render_gate_results_summarizes_verdict():
    record = _bench_record(1.0)
    text = render_gate_results(record, evaluate_gates(record))
    assert "bench.raycast-speedup-floor" in text
    assert "-> FAIL" in text


# -- baseline gates ------------------------------------------------------------


def _baseline_gate(**overrides):
    spec = dict(
        name="vs-baseline", kind="bench", metric="raycast.speedup",
        baseline="latest", max_regression=0.1, on_missing="skip",
    )
    spec.update(overrides)
    return Gate(**spec)


@pytest.fixture
def store(tmp_path):
    return ResultStore(str(tmp_path / "results"))


def test_baseline_gate_allows_bounded_regression(store):
    store.save(_bench_record(6.0))
    gate = _baseline_gate()
    assert evaluate_gate(gate, _bench_record(5.5), store).passed
    result = evaluate_gate(gate, _bench_record(5.3), store)
    assert result.failed
    assert "regressed vs baseline" in result.reason


def test_baseline_gate_lower_is_better_direction(store):
    store.save(
        RunRecord(
            kind="bench",
            measurements={"t.wall_s": Measurement(1.0, "s", False)},
        )
    )
    gate = _baseline_gate(metric="t.wall_s")
    slower_ok = RunRecord(
        kind="bench",
        measurements={"t.wall_s": Measurement(1.05, "s", False)},
    )
    assert evaluate_gate(gate, slower_ok, store).passed
    too_slow = RunRecord(
        kind="bench",
        measurements={"t.wall_s": Measurement(1.2, "s", False)},
    )
    assert evaluate_gate(gate, too_slow, store).failed


def test_baseline_gate_without_store_follows_on_missing():
    assert evaluate_gate(
        _baseline_gate(on_missing="skip"), _bench_record(5.0)
    ).status == "skip"
    assert evaluate_gate(
        _baseline_gate(on_missing="fail"), _bench_record(5.0)
    ).failed


def test_baseline_gate_missing_baseline_record(store):
    result = evaluate_gate(_baseline_gate(), _bench_record(5.0), store)
    assert result.status == "skip"
    assert "no baseline record" in result.reason


def test_baseline_gate_skips_when_baseline_lacks_metric(store):
    store.save(RunRecord(kind="bench"))
    result = evaluate_gate(_baseline_gate(), _bench_record(5.0), store)
    assert result.status == "skip"
    assert "lacks metric" in result.reason


def test_baseline_gate_steps_past_the_record_under_test(store):
    store.save(_bench_record(6.0))
    candidate = _bench_record(5.5)
    store.save(candidate)
    # "latest" resolves to the candidate itself; the engine steps back
    # one entry so a freshly stored run is judged against its
    # predecessor, not itself.
    assert evaluate_gate(_baseline_gate(), candidate, store).passed
    lone = ResultStore(store.root + "-lone")
    only = _bench_record(5.5)
    lone.save(only)
    result = evaluate_gate(_baseline_gate(), only, lone)
    assert result.status == "skip"
    assert "record under test" in result.reason


def test_baseline_gate_needs_a_direction(store):
    store.save(_bench_record(6.0, hib=None))
    result = evaluate_gate(
        _baseline_gate(), _bench_record(5.5, hib=None), store
    )
    assert result.status == "skip"
    assert "direction-free" in result.reason


# == equivalence with the retired ad-hoc checkers ==============================
#
# Frozen verbatim from the pre-migration sources (the functions these
# gates replaced).  Do not modernize: the point is bit-for-bit verdict
# agreement on the same payloads.

LEGACY_SPEEDUP_FLOORS = {"raycast": 5.0, "collision": 3.0, "nn": 2.0}

LEGACY_SUITE_FLOORS = {"parallel_speedup": 2.0, "cache_hit_speedup": 5.0}


def legacy_check_floors(results, floors=LEGACY_SPEEDUP_FLOORS):
    failures = []
    for phase, floor in floors.items():
        if phase not in results:
            failures.append(f"{phase}: missing from results")
            continue
        speedup = results[phase]["speedup"]
        if speedup < floor:
            failures.append(
                f"{phase}: speedup {speedup:.2f}x below floor {floor:.1f}x"
            )
    return failures


def legacy_check_suite_floors(report, floors=LEGACY_SUITE_FLOORS):
    failures = []
    for row in report["tasks"]:
        if not row["ok"]:
            reason = "timed out" if row.get("timed_out") else "failed"
            failures.append(f"task {row['task']}: {reason}")
    determinism = report.get("determinism", {})
    if determinism.get("checked") and not determinism.get("matches"):
        failures.append(
            "determinism: parallel and serial fingerprints differ for "
            + ", ".join(determinism.get("mismatches", []))
        )
    speedup = report["suite"].get("parallel_speedup")
    floor = floors.get("parallel_speedup")
    if speedup is not None and floor is not None and speedup < floor:
        failures.append(
            f"parallel_speedup: {speedup:.2f}x below floor {floor:.1f}x"
        )
    hit_speedup = report["cache"]["probe"]["hit_speedup"]
    floor = floors.get("cache_hit_speedup")
    if floor is not None and hit_speedup < floor:
        failures.append(
            f"cache_hit_speedup: {hit_speedup:.2f}x below floor "
            f"{floor:.1f}x"
        )
    return failures


def legacy_check_rt_floors(report):
    if report["rt"]["smoke"]:
        return []
    failures = []
    if report["slo"]["verdict"] != "pass":
        failures.extend(
            f"slo: {reason}" for reason in report["slo"]["reasons"]
        )
    degradation = report.get("degradation")
    if degradation is not None and degradation["p99_ratio"] <= 1.0:
        failures.append(
            f"interference: p99 ratio {degradation['p99_ratio']:.3f}x "
            "under antagonist load (expected > 1.0x)"
        )
    return failures


LEGACY_CHECKERS = {
    "bench": legacy_check_floors,
    "suite": legacy_check_suite_floors,
    "rt": legacy_check_rt_floors,
}


def _fixture(kind):
    names = {"bench": "hotpaths", "suite": "suite", "rt": "rt"}
    with open(f"{FIXTURES}/legacy_BENCH_{names[kind]}.json") as fh:
        return json.load(fh)


def _verdicts(kind, payload):
    """(legacy verdict, gate verdict) for one payload; True = fail."""
    legacy_failed = bool(LEGACY_CHECKERS[kind](payload))
    record = record_from_payload(payload)
    gates_failed = bool(gate_failures(evaluate_gates(record)))
    return legacy_failed, gates_failed


def _perturbations(kind):
    """Deterministic payload variants tripping each individual check."""
    base = _fixture(kind)
    variants = [("as-committed", base)]

    def variant(label, mutate):
        payload = copy.deepcopy(base)
        mutate(payload)
        variants.append((label, payload))

    if kind == "bench":
        variant("raycast-below-floor",
                lambda p: p["raycast"].__setitem__("speedup", 4.9))
        variant("collision-below-floor",
                lambda p: p["collision"].__setitem__("speedup", 1.0))
        variant("nn-missing", lambda p: p.pop("nn"))
        variant("all-comfortably-above",
                lambda p: [row.__setitem__("speedup", 50.0)
                           for row in p.values()])
    elif kind == "suite":
        variant("speedup-above-floor",
                lambda p: p["suite"].__setitem__("parallel_speedup", 2.5))

        def good_but_nondeterministic(p):
            p["suite"]["parallel_speedup"] = 2.5
            p["determinism"].update(
                checked=True, matches=False, mismatches=["bench:raycast"]
            )

        variant("determinism-mismatch", good_but_nondeterministic)

        def good_but_failed_task(p):
            p["suite"]["parallel_speedup"] = 2.5
            p["tasks"][0]["ok"] = False
            p["suite"]["failures"] = 1

        variant("failed-task", good_but_failed_task)

        def good_but_cold_cache(p):
            p["suite"]["parallel_speedup"] = 2.5
            p["cache"]["probe"]["hit_speedup"] = 1.0

        variant("cache-hit-below-floor", good_but_cold_cache)

        def serial_only(p):
            p["suite"]["parallel_speedup"] = None
            p["suite"]["serial_wall_s"] = None
            p["determinism"] = {"checked": False, "matches": None,
                                "mismatches": []}

        variant("serial-only-no-floor", serial_only)
    else:
        def slo_fail(p):
            p["slo"]["verdict"] = "fail"
            p["slo"]["reasons"] = ["miss rate 1.00 above bound 0.10"]

        variant("slo-fail", slo_fail)
        variant("non-degrading-interference",
                lambda p: p["degradation"].__setitem__("p99_ratio", 0.98))
        variant("unloaded-only", lambda p: p.__setitem__("degradation", None))

        def smoke_exempts_everything(p):
            p["rt"]["smoke"] = True
            p["slo"]["verdict"] = "fail"
            p["slo"]["reasons"] = ["miss rate 1.00 above bound 0.10"]
            p["degradation"]["p99_ratio"] = 0.98

        variant("smoke-exempt", smoke_exempts_everything)
    return variants


@pytest.mark.parametrize("kind", ["bench", "suite", "rt"])
def test_gates_reproduce_legacy_verdicts(kind):
    """Acceptance: the gate engine agrees with the retired checker on the
    committed pre-migration fixture and on every perturbed variant."""
    for label, payload in _perturbations(kind):
        legacy_failed, gates_failed = _verdicts(kind, payload)
        assert legacy_failed == gates_failed, (
            f"{kind}/{label}: legacy checker "
            f"{'failed' if legacy_failed else 'passed'} but gate engine "
            f"{'failed' if gates_failed else 'passed'}"
        )


def test_committed_suite_fixture_fails_both_paths_on_the_same_check():
    """The committed BENCH_suite.json (1-core run, parallel speedup
    0.73x) fails the speedup floor under both the frozen checker and the
    gate engine — and under nothing else."""
    payload = _fixture("suite")
    legacy = legacy_check_suite_floors(payload)
    assert len(legacy) == 1 and "parallel_speedup" in legacy[0]
    failed = gate_failures(evaluate_gates(record_from_payload(payload)))
    assert [r.gate for r in failed] == ["suite.parallel-speedup-floor"]


def test_committed_bench_and_rt_fixtures_pass_both_paths():
    for kind in ("bench", "rt"):
        payload = _fixture(kind)
        assert LEGACY_CHECKERS[kind](payload) == []
        record = record_from_payload(payload)
        assert gate_failures(evaluate_gates(record)) == []
