"""Tests for grid ray casting."""

import math

import numpy as np
import pytest

from repro.geometry.grid2d import OccupancyGrid2D
from repro.geometry.raycast import cast_ray, cast_rays_batch, scan_from_pose


@pytest.fixture
def corridor():
    """A 1-cell-tall corridor with a wall at column 15."""
    grid = OccupancyGrid2D.empty(3, 20, resolution=1.0)
    grid.fill_rect(0, 15, 2, 15)
    return grid


def test_ray_hits_wall_at_expected_distance(corridor):
    # From x=0.5 toward +x, the wall cell [15, 16) is ~14.5 away.
    dist = cast_ray(corridor, 0.5, 1.5, 0.0, max_range=30.0)
    assert dist == pytest.approx(14.5, abs=0.5)


def test_ray_misses_returns_max_range():
    grid = OccupancyGrid2D.empty(3, 10)
    dist = cast_ray(grid, 0.5, 1.5, 0.0, max_range=5.0)
    assert dist == 5.0


def test_ray_leaving_map_is_a_hit():
    """Outside the map counts as occupied, so rays stop at the edge."""
    grid = OccupancyGrid2D.empty(5, 5)
    dist = cast_ray(grid, 2.5, 2.5, math.pi, max_range=50.0)
    assert dist <= 3.0


def test_batch_matches_scalar(corridor):
    angles = np.linspace(0, 2 * math.pi, 8, endpoint=False)
    xs = np.full(8, 2.5)
    ys = np.full(8, 1.5)
    batch = cast_rays_batch(corridor, xs, ys, angles, max_range=25.0)
    for angle, got in zip(angles, batch):
        want = cast_ray(corridor, 2.5, 1.5, angle, max_range=25.0)
        assert got == pytest.approx(want, abs=1e-9)


def test_batch_counts_cell_checks(corridor):
    counts = {}

    def count(name, n):
        counts[name] = counts.get(name, 0) + n

    cast_rays_batch(
        corridor,
        np.array([0.5]),
        np.array([1.5]),
        np.array([0.0]),
        max_range=10.0,
        count=count,
    )
    assert counts["raycast_cell_checks"] > 0


def test_batch_empty_input():
    grid = OccupancyGrid2D.empty(3, 3)
    out = cast_rays_batch(
        grid, np.empty(0), np.empty(0), np.empty(0), max_range=5.0
    )
    assert out.shape == (0,)


def test_rays_freeze_after_hit(corridor):
    """A ray that hits early must not keep consuming max_range steps."""
    # Two rays: one hits the wall quickly, one runs the corridor's length.
    xs = np.array([14.0, 0.5])
    ys = np.array([1.5, 1.5])
    angles = np.array([0.0, 0.0])
    out = cast_rays_batch(corridor, xs, ys, angles, max_range=30.0)
    assert out[0] < 2.0
    assert out[1] > 10.0


def test_scan_from_pose_shape_and_range(corridor):
    scan = scan_from_pose(corridor, 2.5, 1.5, 0.0, n_beams=12, max_range=9.0)
    assert scan.shape == (12,)
    assert (scan > 0).all()
    assert (scan <= 9.0).all()


def test_closer_obstacle_gives_shorter_ray():
    grid = OccupancyGrid2D.empty(3, 30)
    grid.fill_rect(0, 10, 2, 10)
    near = cast_ray(grid, 8.0, 1.5, 0.0, 30.0)
    far = cast_ray(grid, 2.0, 1.5, 0.0, 30.0)
    assert near < far


def test_diagonal_ray_cannot_tunnel_through_one_cell_wall():
    """Regression: a diagonal ray crossing a 1-cell wall exactly at a cell
    corner must register the hit instead of slipping between samples."""
    from repro.geometry.raycast import cast_ray_dda

    grid = OccupancyGrid2D.empty(10, 10, resolution=1.0)
    grid.fill_rect(0, 5, 5, 5)  # one-cell-thick vertical wall, rows 0-5
    x, y, angle = 4.0, 4.98, math.pi / 4.0
    exact = cast_ray_dda(grid, x, y, angle, 20.0)
    sampled = cast_ray(grid, x, y, angle, 20.0)
    # The wall face at x=5 is one diagonal unit away: t = 1/cos(pi/4).
    assert exact == pytest.approx(math.sqrt(2.0), abs=1e-9)
    assert sampled < 20.0  # the marcher must not tunnel through
    assert abs(sampled - exact) <= grid.resolution


def test_batch_marcher_does_not_tunnel_diagonally():
    grid = OccupancyGrid2D.empty(10, 10, resolution=1.0)
    grid.fill_rect(0, 5, 5, 5)
    out = cast_rays_batch(
        grid,
        np.array([4.0, 4.0]),
        np.array([4.98, 4.5]),
        np.array([math.pi / 4.0, math.pi / 4.0]),
        max_range=20.0,
    )
    assert (out < 20.0).all()
