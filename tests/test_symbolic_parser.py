"""Tests for the textual symbolic problem parser (paper Fig. 13 style)."""

import pytest

from repro.planning.symbolic.parser import (
    _mark_variables,
    _split_atoms,
    parse_problem_text,
)
from repro.planning.symbolic.planner import SymbolicPlanner, execute_plan

BLOCKS_TEXT = """
Symbols: A, B, C, Table
Initial conditions: On(A, B), On(B, C), On(C, Table), Clear(A),
    Block(A), Block(B), Block(C)
Goal conditions: On(C, B), On(B, A), On(A, Table)
Actions:
  Move(b, x, y)
    Preconditions: Block(b), Block(x), Block(y), On(b, x), Clear(b), Clear(y)
    Effects: On(b, y), Clear(x), !On(b, x), !Clear(y)
  MoveToTable(b, x)
    Preconditions: Block(b), Block(x), On(b, x), Clear(b)
    Effects: On(b, Table), Clear(x), !On(b, x)
  MoveFromTable(b, y)
    Preconditions: Block(b), Block(y), On(b, Table), Clear(b), Clear(y)
    Effects: On(b, y), !On(b, Table), !Clear(y)
"""


def test_split_atoms_respects_parentheses():
    assert _split_atoms("On(A, B), Clear(C)") == ["On(A,B)", "Clear(C)"]
    assert _split_atoms("Solo") == ["Solo"]
    assert _split_atoms("On(A, B), ...") == ["On(A,B)"]


def test_split_atoms_unbalanced_raises():
    with pytest.raises(ValueError):
        _split_atoms("On(A, B")


def test_mark_variables():
    assert _mark_variables("On(b, x)".replace(" ", ""), ["b", "x"]) == "On(?b,?x)"
    assert _mark_variables("On(b,Table)", ["b"]) == "On(?b,Table)"
    assert _mark_variables("!Clear(y)", ["y"]) == "!Clear(?y)"
    assert _mark_variables("HandEmpty", ["x"]) == "HandEmpty"


def test_parse_blocks_world_and_solve():
    problem = parse_problem_text(BLOCKS_TEXT)
    # Static Block(...) atoms pruned from the dynamic state.
    assert not any(a.startswith("Block(") for a in problem.initial_state)
    assert "On(A,B)" in problem.initial_state
    result = SymbolicPlanner(problem).plan()
    assert result.found
    final = execute_plan(problem, result.plan)
    assert problem.goal <= final


def test_parsed_matches_programmatic_domain():
    """The text domain solves in the same optimal plan length (3 blocks
    reversed -> 3 moves)."""
    problem = parse_problem_text(BLOCKS_TEXT)
    result = SymbolicPlanner(problem).plan()
    assert len(result.plan) == 3


def test_parse_requires_symbols_and_goal():
    with pytest.raises(ValueError, match="no symbols"):
        parse_problem_text("Goal conditions: X\nInitial conditions: Y")
    with pytest.raises(ValueError, match="no goal"):
        parse_problem_text("Symbols: A\nInitial conditions: P(A)")


def test_parse_rejects_orphan_clause():
    text = (
        "Symbols: A\nGoal conditions: P(A)\nActions:\n"
        "  Preconditions: P(A)\n"
    )
    with pytest.raises(ValueError, match="before any action"):
        parse_problem_text(text)


def test_parse_rejects_stray_content():
    with pytest.raises(ValueError, match="outside any section"):
        parse_problem_text("hello world\nSymbols: A\nGoal conditions: P(A)")


def test_multiline_sections_accumulate():
    problem = parse_problem_text(BLOCKS_TEXT)
    assert "Clear(A)" in problem.initial_state  # from the wrapped line


def test_parameterless_action():
    text = """
Symbols: F
Initial conditions: Wet(F)
Goal conditions: Dry(F)
Actions:
  Evaporate()
    Preconditions: Wet(F)
    Effects: Dry(F), !Wet(F)
"""
    problem = parse_problem_text(text)
    result = SymbolicPlanner(problem).plan()
    assert result.found
    assert result.plan == ["Evaporate"]
