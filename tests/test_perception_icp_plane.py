"""Tests for normal estimation and point-to-plane ICP."""

import numpy as np
import pytest

from repro.envs.pointcloud import living_room
from repro.geometry.transforms import RigidTransform3D, rotation_matrix_3d
from repro.perception.icp import (
    best_fit_point_to_plane,
    estimate_normals,
    icp,
)


def test_normals_are_unit_vectors(rng):
    points = rng.normal(size=(100, 3))
    normals = estimate_normals(points, k=8)
    assert np.allclose(np.linalg.norm(normals, axis=1), 1.0)


def test_normals_of_a_plane_are_perpendicular(rng):
    # Points on the z = 0 plane: normals must be +-e_z.
    points = np.column_stack(
        [rng.uniform(0, 1, 200), rng.uniform(0, 1, 200), np.zeros(200)]
    )
    normals = estimate_normals(points, k=10)
    assert np.allclose(np.abs(normals[:, 2]), 1.0, atol=1e-9)


def test_normals_of_a_sphere_are_radial(rng):
    directions = rng.normal(size=(300, 3))
    directions /= np.linalg.norm(directions, axis=1, keepdims=True)
    points = 5.0 * directions
    normals = estimate_normals(points, k=10)
    alignment = np.abs(np.einsum("ij,ij->i", normals, directions))
    assert np.median(alignment) > 0.95


def test_normals_need_three_points():
    with pytest.raises(ValueError):
        estimate_normals(np.zeros((2, 3)))


def test_point_to_plane_step_recovers_small_motion(rng):
    scene = living_room(1200, seed=0)
    normals = estimate_normals(scene)
    true = RigidTransform3D(
        rotation_matrix_3d(0.02, -0.015, 0.01), np.array([0.02, 0.01, -0.015])
    )
    source = true.inverse().apply(scene)
    # One linearized step against perfect correspondences.
    delta = best_fit_point_to_plane(source, scene, normals)
    registered = delta.apply(source)
    residual = np.einsum("ij,ij->i", registered - scene, normals)
    before = np.einsum("ij,ij->i", source - scene, normals)
    assert np.abs(residual).mean() < np.abs(before).mean() / 5.0


def test_point_to_plane_returns_proper_rotation(rng):
    source = rng.normal(size=(50, 3))
    target = source + rng.normal(0, 0.01, size=(50, 3))
    normals = rng.normal(size=(50, 3))
    normals /= np.linalg.norm(normals, axis=1, keepdims=True)
    delta = best_fit_point_to_plane(source, target, normals)
    assert np.allclose(delta.rotation @ delta.rotation.T, np.eye(3),
                       atol=1e-9)
    assert np.linalg.det(delta.rotation) == pytest.approx(1.0)


@pytest.mark.parametrize("metric", ["point_to_point", "point_to_plane"])
def test_icp_metrics_both_register(rng, metric):
    scene = living_room(1500, seed=1)
    true = RigidTransform3D(
        rotation_matrix_3d(0.05, -0.04, 0.06), np.array([0.08, -0.06, 0.05])
    )
    source = true.inverse().apply(scene[:500])
    result = icp(source, scene, max_iterations=30, correspondence="brute",
                 metric=metric)
    error = np.linalg.norm(result.transform.translation - true.translation)
    assert error < 0.02, metric


def test_icp_unknown_metric_raises():
    with pytest.raises(ValueError, match="metric"):
        icp(np.zeros((4, 3)), np.zeros((4, 3)), metric="chamfer")
