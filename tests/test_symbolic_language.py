"""Tests for the symbolic atom language."""

import pytest
from hypothesis import given, strategies as st

from repro.planning.symbolic.language import (
    atom,
    parse_atom,
    substitute,
    variables_in,
)

names = st.text(
    alphabet="ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz",
    min_size=1,
    max_size=8,
)


def test_atom_formatting():
    assert atom("On", "A", "B") == "On(A,B)"
    assert atom("HandEmpty") == "HandEmpty"


def test_atom_empty_predicate_raises():
    with pytest.raises(ValueError):
        atom("")


def test_parse_atom_basic():
    assert parse_atom("On(A,B)") == ("On", ["A", "B"])
    assert parse_atom("HandEmpty") == ("HandEmpty", [])
    assert parse_atom("  At( Q , W ) ") == ("At", ["Q", "W"])


def test_parse_malformed_raises():
    with pytest.raises(ValueError):
        parse_atom("On(A,B")


@given(names, st.lists(names, min_size=0, max_size=4))
def test_atom_parse_round_trip(predicate, args):
    text = atom(predicate, *args)
    parsed_pred, parsed_args = parse_atom(text)
    assert parsed_pred == predicate
    assert parsed_args == list(args)


def test_substitute_simple():
    assert substitute("On(?b,?x)", {"b": "A", "x": "Table"}) == "On(A,Table)"


def test_substitute_longest_variable_first():
    out = substitute("Near(?block,?b)", {"b": "X", "block": "LONG"})
    assert out == "Near(LONG,X)"


def test_substitute_unbound_raises():
    with pytest.raises(ValueError, match="unbound"):
        substitute("On(?b,?x)", {"b": "A"})


def test_variables_in():
    assert variables_in("Move(?b,?x,?y)") == ["b", "x", "y"]
    assert variables_in("On(A,B)") == []
    assert variables_in("On(?b,?b)") == ["b"]  # deduplicated
