"""Suite-level integration tests: every kernel runs end to end.

Each kernel runs with a scaled-down configuration (the flexibility the
paper's Fig. 20 CLI provides) so the whole-suite check stays fast while
still executing every code path: setup, ROI, profiler, output.
"""

import numpy as np
import pytest

from repro.harness.runner import load_all_kernels, registry, run_kernel

# kernel name -> (small-config overrides, output validator)
SMALL_CONFIGS = {
    "01.pfl": dict(particles=150, beams=8, steps=5),
    "02.ekfslam": dict(steps=30),
    "03.srec": dict(frames=3, scan_points=600, scene_points=3000,
                    icp_iterations=6),
    "04.pp2d": dict(rows=96, cols=96),
    "05.pp3d": dict(nx=48, ny=48, nz=12),
    "06.movtar": dict(rows=40, cols=40, horizon=96),
    "07.prm": dict(samples=120),
    "08.rrt": dict(map="map-f", samples=2000),
    "09.rrtstar": dict(map="map-f", star_samples=800),
    "10.rrtpp": dict(map="map-f", samples=2000, shortcut_iterations=50),
    "11.sym-blkw": dict(blocks=4),
    "12.sym-fext": dict(locations=4),
    "13.dmp": dict(demo_steps=100, dt=0.01),
    "14.mpc": dict(steps=40),
    "15.cem": dict(iterations=3, samples=10),
    "16.bo": dict(iterations=12, candidates=128),
    "17.rrtconnect": dict(map="map-f", samples=2000),
}


@pytest.fixture(scope="module", autouse=True)
def _load():
    load_all_kernels()


@pytest.mark.parametrize("name", sorted(SMALL_CONFIGS))
def test_kernel_runs_and_profiles(name):
    result = run_kernel(name, **SMALL_CONFIGS[name])
    assert result.kernel == name
    assert result.roi_time > 0.0
    assert result.profiler.stats, "kernel produced no phase data"
    assert result.profiler.total_time() > 0.0
    # Fractions always partition to 1.
    assert sum(result.profiler.fractions().values()) == pytest.approx(1.0)


@pytest.mark.parametrize("name", sorted(SMALL_CONFIGS))
def test_kernel_is_deterministic_in_seed(name):
    if name in ("01.pfl", "03.srec"):
        pytest.skip("sub-microsecond float jitter accumulates; covered by "
                    "their dedicated module tests")
    a = run_kernel(name, seed=1, **SMALL_CONFIGS[name])
    b = run_kernel(name, seed=1, **SMALL_CONFIGS[name])
    # Compare a scalar outcome per kernel type.
    for result in (a, b):
        assert result.output is not None

    def scalar(result):
        out = result.output
        if isinstance(out, dict):
            for key in ("error", "final_pose_error", "best_reward",
                        "mean_error"):
                if key in out:
                    return out[key]
            if "result" in out:
                return out["result"].cost
            return None
        return getattr(out, "cost", None)

    sa, sb = scalar(a), scalar(b)
    if sa is not None and np.isfinite(sa):
        assert sa == pytest.approx(sb, rel=1e-6)


def test_all_registered_kernels_covered():
    assert set(SMALL_CONFIGS) == set(registry.names())


def test_stage_pipeline_composition():
    """Perception output feeds planning feeds control — the Fig. 1 pipe.

    A miniature end-to-end robot: localize on a map, plan from the
    estimated pose to a goal, then drive the planned path with the
    tracking controller.
    """
    from repro.control.mpc import ModelPredictiveController
    from repro.envs.mapgen import wean_hall_like
    from repro.perception.particle_filter import make_pfl_workload, ParticleFilter
    from repro.planning.fast_astar import fast_grid_astar
    from repro.robots.bicycle import BicycleModel, BicycleState

    workload = make_pfl_workload(region=0, n_steps=8, n_beams=12, seed=0)
    pf = ParticleFilter(
        workload.grid, workload.lidar, workload.motion_model,
        n_particles=300, rng=np.random.default_rng(0),
    )
    pf.initialize_around(workload.true_poses[0], 0.5, 0.2)
    for odom, scan in zip(workload.odometry, workload.scans):
        pf.update(odom, scan)
    estimate = pf.estimate()

    # Plan from the estimated cell to a far free cell.
    start = workload.grid.world_to_cell(estimate.x, estimate.y)
    free = np.argwhere(~workload.grid.cells)
    goal = tuple(free[np.argmax(np.abs(free - np.asarray(start)).sum(axis=1))])
    plan = fast_grid_astar(workload.grid, start, goal)
    assert plan.found

    # Track the first stretch of the planned path with MPC.
    waypoints = np.array(
        [workload.grid.cell_to_world(r, c) for r, c in plan.path[:40]]
    )
    headings = np.arctan2(
        np.gradient(waypoints[:, 1]), np.gradient(waypoints[:, 0])
    )
    speed = 1.0
    reference = np.column_stack(
        [waypoints[:, 0], waypoints[:, 1], headings,
         np.full(len(waypoints), speed)]
    )
    model = BicycleModel(wheelbase=0.3, max_speed=2.0)
    controller = ModelPredictiveController(model, horizon=8, dt=0.25)
    initial = BicycleState(
        x=waypoints[0, 0], y=waypoints[0, 1], theta=headings[0], v=speed
    )
    outcome = controller.track(initial, reference)
    assert outcome["errors"].mean() < 1.0
