"""Tests for the shared-memory workload plane (publish/attach/unlink)."""

from __future__ import annotations

import os
import pickle
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.harness import shm

pytestmark = pytest.mark.skipif(
    not shm.HAVE_SHARED_MEMORY, reason="no multiprocessing.shared_memory"
)


def _sample_workload():
    return {
        "grid": np.arange(5000, dtype=np.float64).reshape(50, 100),
        "mask": np.zeros((50, 100), dtype=bool),
        "meta": {"resolution": 0.25, "name": "toy"},
    }


@pytest.fixture
def plane():
    p = shm.SharedWorkloadPlane()
    yield p
    p.close()


# -- serialization -------------------------------------------------------------


def test_serialize_roundtrip_preserves_arrays():
    value = _sample_workload()
    header, chunks = shm.serialize(value)
    buf = bytearray(shm._LEN.size + len(header))
    shm._LEN.pack_into(buf, 0, len(header))
    buf[shm._LEN.size:] = header
    for chunk in chunks:
        buf += bytes(memoryview(chunk).cast("B"))
    rebuilt = shm.deserialize(memoryview(buf))
    np.testing.assert_array_equal(rebuilt["grid"], value["grid"])
    np.testing.assert_array_equal(rebuilt["mask"], value["mask"])
    assert rebuilt["meta"] == value["meta"]


def test_serialize_extracts_array_buffers_out_of_band():
    _, chunks = shm.serialize(_sample_workload())
    assert len(chunks) >= 3  # meta pickle + one buffer per array


def test_serialize_falls_back_for_plain_values():
    header, chunks = shm.serialize({"just": "strings", "n": 3})
    assert len(chunks) >= 1
    assert pickle.loads(bytes(memoryview(chunks[0]).cast("B")))


# -- plane lifecycle -----------------------------------------------------------


def test_publish_attach_roundtrip_zero_copy(plane):
    value = _sample_workload()
    key = "k" * 24
    assert plane.publish(key, value)
    name = plane.mapping()[key]
    assert name.startswith(shm.SEGMENT_PREFIX)
    got, handle = shm.attach_value(name)
    try:
        np.testing.assert_array_equal(got["grid"], value["grid"])
        # Zero-copy: the attached array is a view, not an owning copy.
        assert not got["grid"].flags.owndata
    finally:
        del got
        handle.close()


def test_publish_is_idempotent_per_key(plane):
    value = _sample_workload()
    assert plane.publish("a" * 24, value)
    assert not plane.publish("a" * 24, value)
    assert len(plane) == 1


def test_publish_respects_byte_budget():
    small = shm.SharedWorkloadPlane(max_bytes=64)
    try:
        assert not small.publish("b" * 24, _sample_workload())
        assert len(small) == 0
    finally:
        small.close()


def test_close_unlinks_all_segments(plane):
    plane.publish("c" * 24, _sample_workload())
    plane.publish("d" * 24, {"x": np.ones(10)})
    assert len(shm.list_segments()) >= 2
    plane.close()
    assert shm.list_segments() == []
    plane.close()  # idempotent


def test_attached_cache_lru_evicts_and_serves_hits(plane):
    for i in range(4):
        plane.publish(f"{i}".rjust(24, "0"), {"x": np.full(100, i)})
    names = list(plane.mapping().values())
    cache = shm.AttachedSegmentCache(max_items=2)
    try:
        for name in names:
            assert cache.get(name) is not None
        assert len(cache) == 2  # older attachments evicted
        assert cache.attach_count == 4
        cache.get(names[-1])  # hit: no new attach
        assert cache.attach_count == 4
    finally:
        cache.close()


def test_attached_cache_returns_none_for_missing_segment():
    cache = shm.AttachedSegmentCache()
    assert cache.get("rtrbench-0-does-not-exist") is None


# -- abnormal-exit cleanup -----------------------------------------------------


_KILL_SCRIPT = r"""
import os, sys, time
sys.path.insert(0, {src!r})
import numpy as np
from repro.harness.shm import SharedWorkloadPlane

plane = SharedWorkloadPlane()
assert plane.publish("z" * 24, {{"x": np.arange(100000, dtype=np.float64)}})
print("published", flush=True)
time.sleep(60)
"""


def test_sigkill_of_publisher_leaves_no_orphan_segments(tmp_path):
    """Hard-killed parents cannot leak /dev/shm: the resource tracker
    (a separate process that survives the kill) unlinks what the dead
    process registered at create time."""
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    script = tmp_path / "publisher.py"
    script.write_text(_KILL_SCRIPT.format(src=os.path.abspath(src)))
    proc = subprocess.Popen(
        [sys.executable, str(script)], stdout=subprocess.PIPE, text=True
    )
    try:
        assert proc.stdout.readline().strip() == "published"
        pattern = f"{shm.SEGMENT_PREFIX}-{proc.pid:x}-"
        assert shm.list_segments(pattern)
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=10)
        # The tracker cleans up asynchronously after the main process
        # dies; poll briefly instead of racing it.
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if not shm.list_segments(pattern):
                break
            time.sleep(0.1)
        assert shm.list_segments(pattern) == []
    finally:
        if proc.poll() is None:
            proc.kill()
        proc.wait()


# -- workload-cache integration ------------------------------------------------


def test_cache_serves_from_plane_and_counts_shm_hits(plane, tmp_path):
    from repro.envs.cache import WorkloadCache, install_shared_plane

    producer = WorkloadCache(cache_dir=str(tmp_path / "cache"))
    value = producer.get_or_build(
        "toy", {"n": 1}, lambda: _sample_workload()
    )
    assert producer.publish_entries(plane) >= 1
    install_shared_plane(plane.mapping())
    try:
        # A fresh cache (cold memory layer, no disk dir) must be served
        # from the plane, not by rebuilding.
        consumer = WorkloadCache(cache_dir=str(tmp_path / "other"))
        got = consumer.get_or_build(
            "toy", {"n": 1},
            lambda: pytest.fail("should have been served from the plane"),
        )
        np.testing.assert_array_equal(got["grid"], value["grid"])
        assert consumer.stats.shm_hits == 1
        # Served values are private copies: mutating one must not
        # corrupt the shared original.
        got["grid"][0, 0] = -1.0
        again = consumer.get_or_build(
            "toy", {"n": 1},
            lambda: pytest.fail("should be served from the plane"),
        )
        assert again["grid"][0, 0] == 0.0
        assert consumer.stats.shm_hits == 2
    finally:
        install_shared_plane(None)
