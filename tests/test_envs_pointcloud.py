"""Tests for point-cloud scene generation and scan simulation."""

import numpy as np
import pytest

from repro.envs.pointcloud import living_room, scan_trajectory, simulate_scan
from repro.geometry.transforms import RigidTransform3D, rotation_matrix_3d


def test_living_room_shape_and_extent():
    scene = living_room(n_points=3000, seed=0)
    assert scene.shape[1] == 3
    assert len(scene) > 2000
    # Inside a room-sized bounding box.
    assert scene[:, 0].min() >= -0.1 and scene[:, 0].max() <= 5.1
    assert scene[:, 2].min() >= -0.1 and scene[:, 2].max() <= 2.6


def test_living_room_deterministic():
    assert np.array_equal(living_room(1000, seed=4), living_room(1000, seed=4))


def test_living_room_has_floor_and_elevation():
    scene = living_room(4000, seed=0)
    near_floor = (scene[:, 2] < 0.05).mean()
    elevated = (scene[:, 2] > 0.5).mean()
    assert near_floor > 0.1
    assert elevated > 0.1


def test_simulate_scan_identity_pose(rng):
    scene = living_room(2000, seed=1)
    scan = simulate_scan(scene, RigidTransform3D.identity(), n_points=500,
                         noise_sigma=0.0, rng=rng)
    assert len(scan.points) == 500
    # With no noise and identity pose, points are scene points.
    for p in scan.points[:10]:
        assert np.min(np.linalg.norm(scene - p, axis=1)) < 1e-9


def test_simulate_scan_inverse_maps_back(rng):
    scene = living_room(2000, seed=1)
    pose = RigidTransform3D(rotation_matrix_3d(0.1, 0.2, 0.3),
                            np.array([0.5, -0.2, 0.1]))
    scan = simulate_scan(scene, pose, n_points=300, noise_sigma=0.0, rng=rng)
    world = pose.apply(scan.points)
    for p in world[:10]:
        assert np.min(np.linalg.norm(scene - p, axis=1)) < 1e-9


def test_simulate_scan_noise_perturbs(rng):
    scene = living_room(1000, seed=2)
    noisy = simulate_scan(scene, RigidTransform3D.identity(), n_points=200,
                          noise_sigma=0.05, rng=rng)
    dists = [np.min(np.linalg.norm(scene - p, axis=1)) for p in noisy.points[:50]]
    assert np.mean(dists) > 0.01


def test_simulate_scan_dropout(rng):
    scene = living_room(1000, seed=3)
    scan = simulate_scan(scene, RigidTransform3D.identity(), n_points=400,
                         dropout=0.5, rng=rng)
    assert 100 < len(scan.points) < 300


def test_scan_trajectory_motion_is_bounded():
    scans = scan_trajectory(living_room(2000, seed=0), n_frames=4,
                            max_rotation=0.05, max_translation=0.08, seed=1)
    assert len(scans) == 4
    for a, b in zip(scans[:-1], scans[1:]):
        delta = b.true_pose.compose(a.true_pose.inverse())
        assert np.linalg.norm(delta.translation) < 0.3
        assert delta.rotation_angle() < 0.3
