"""Tests for the cross-entropy method (15.cem)."""

import numpy as np
import pytest

from repro.control.cem import CemConfig, CemKernel, CrossEntropyMethod
from repro.harness.profiler import PhaseProfiler
from repro.robots.ball_thrower import BallThrower


def _quadratic_reward(target):
    def reward(x):
        return -float(np.sum((x - target) ** 2))

    return reward


BOUNDS = np.array([[-5.0, 5.0], [-5.0, 5.0]])


def test_validation():
    with pytest.raises(ValueError):
        CrossEntropyMethod(lambda x: 0.0, np.zeros((2, 3)))
    with pytest.raises(ValueError):
        CrossEntropyMethod(lambda x: 0.0, BOUNDS, elite_fraction=0.0)


def test_converges_on_quadratic():
    target = np.array([1.5, -2.0])
    cem = CrossEntropyMethod(
        _quadratic_reward(target), BOUNDS, n_samples=30,
        rng=np.random.default_rng(0),
    )
    policy, best = cem.optimize(n_iterations=15)
    assert np.allclose(policy, target, atol=0.3)
    assert best > -0.2


def test_reward_history_improves():
    target = np.array([0.5, 0.5])
    cem = CrossEntropyMethod(
        _quadratic_reward(target), BOUNDS, n_samples=25,
        rng=np.random.default_rng(1),
    )
    cem.optimize(n_iterations=10)
    assert cem.reward_history[-1] > cem.reward_history[0]


def test_sigma_shrinks_with_convergence():
    cem = CrossEntropyMethod(
        _quadratic_reward(np.zeros(2)), BOUNDS, n_samples=30,
        rng=np.random.default_rng(2),
    )
    initial_sigma = cem.sigma.copy()
    cem.optimize(n_iterations=10)
    assert (cem.sigma < initial_sigma).all()
    assert (cem.sigma >= cem.min_sigma).all()


def test_samples_respect_bounds():
    seen = []

    def recording_reward(x):
        seen.append(x.copy())
        return 0.0

    cem = CrossEntropyMethod(recording_reward, BOUNDS, n_samples=20,
                             rng=np.random.default_rng(3))
    cem.iterate()
    arr = np.vstack(seen)
    assert (arr >= BOUNDS[:, 0] - 1e-9).all()
    assert (arr <= BOUNDS[:, 1] + 1e-9).all()


def test_elite_count():
    cem = CrossEntropyMethod(lambda x: 0.0, BOUNDS, n_samples=15,
                             elite_fraction=0.3)
    assert cem.n_elite == 4  # round(15 * 0.3)


def test_profiler_phases():
    prof = PhaseProfiler()
    thrower = BallThrower()
    cem = CrossEntropyMethod(thrower.reward, thrower.parameter_bounds,
                             rng=np.random.default_rng(0), profiler=prof)
    cem.optimize(n_iterations=3)
    for phase in ("rollout", "sort", "refit"):
        assert phase in prof.stats
    assert prof.counters["rollouts"] == 3 * cem.n_samples
    assert prof.counters["sort_elements"] == 3 * cem.n_samples


def test_kernel_learns_to_throw():
    """F18: the paper's 5x15 configuration reaches a good throw."""
    result = CemKernel().run(CemConfig())
    out = result.output
    assert out["best_reward"] > -0.5  # within 50 cm of the goal
    assert len(out["reward_history"]) == 5
    assert len(out["sample_rewards"]) == 5 * 15


def test_kernel_reward_improves_over_iterations():
    result = CemKernel().run(CemConfig(seed=3))
    history = result.output["reward_history"]
    assert max(history) >= history[0]
