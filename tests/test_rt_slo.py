"""Tests for SLO summarization and verdict boundaries."""

from __future__ import annotations

import pytest

from repro.rt.scheduler import JobRecord
from repro.rt.slo import SLOPolicy, evaluate_slo, summarize_jobs


def _records(responses, period=10.0):
    """Synthesize on-grid job records with the given response times."""
    return [
        JobRecord(
            index=i,
            release_s=i * period,
            start_s=i * period,
            end_s=i * period + response,
        )
        for i, response in enumerate(responses)
    ]


def test_summarize_counts_misses_and_quantiles():
    records = _records([1.0, 2.0, 3.0, 12.0])
    summary = summarize_jobs(records, deadline_s=10.0, skipped_releases=3)
    assert summary["jobs"] == 4
    assert summary["misses"] == 1
    assert summary["miss_rate"] == pytest.approx(0.25)
    assert summary["skipped_releases"] == 3
    assert summary["skip_rate"] == pytest.approx(0.75)
    assert summary["response_ms"]["max"] == pytest.approx(12_000.0)
    assert summary["response_ms"]["p50"] == pytest.approx(2_000.0)
    assert summary["deadline_ms"] == pytest.approx(10_000.0)


def test_summarize_excludes_warmup():
    records = _records([100.0, 1.0, 1.0])
    records[0].warmup = True
    summary = summarize_jobs(records, deadline_s=10.0)
    assert summary["jobs"] == 2
    assert summary["misses"] == 0


def test_summarize_jitter_block():
    records = [
        JobRecord(index=0, release_s=0.0, start_s=0.002, end_s=0.01),
        JobRecord(index=1, release_s=0.1, start_s=0.1, end_s=0.11),
    ]
    summary = summarize_jobs(records, deadline_s=1.0)
    assert summary["jitter_ms"]["max"] == pytest.approx(2.0)
    assert summary["jitter_ms"]["mean"] == pytest.approx(1.0)


def test_empty_records_summary_and_verdict():
    summary = summarize_jobs([], deadline_s=1.0)
    assert summary == {"jobs": 0}
    verdict = evaluate_slo(summary, SLOPolicy(deadline_s=1.0))
    assert not verdict.passed
    assert verdict.verdict == "fail"
    assert "no measured jobs" in verdict.reasons[0]


def test_miss_rate_bound_is_inclusive():
    records = _records([1.0, 1.0, 1.0, 12.0])  # 25% miss at deadline 10
    summary = summarize_jobs(records, deadline_s=10.0)
    at_bound = SLOPolicy(deadline_s=10.0, max_miss_rate=0.25)
    assert evaluate_slo(summary, at_bound).passed
    below_bound = SLOPolicy(deadline_s=10.0, max_miss_rate=0.249)
    verdict = evaluate_slo(summary, below_bound)
    assert not verdict.passed
    assert "miss rate" in verdict.reasons[0]


def test_zero_miss_policy_passes_clean_run():
    summary = summarize_jobs(_records([1.0, 2.0]), deadline_s=10.0)
    verdict = evaluate_slo(summary, SLOPolicy(deadline_s=10.0))
    assert verdict.passed
    assert verdict.reasons == []
    assert verdict.as_dict() == {"verdict": "pass", "reasons": []}


def test_p99_response_bound():
    records = _records([1.0] * 98 + [50.0, 50.0])
    summary = summarize_jobs(records, deadline_s=100.0)
    tight = SLOPolicy(
        deadline_s=100.0, max_miss_rate=1.0, max_p99_response_s=10.0
    )
    verdict = evaluate_slo(summary, tight)
    assert not verdict.passed
    assert "p99 response" in verdict.reasons[0]
    loose = SLOPolicy(
        deadline_s=100.0, max_miss_rate=1.0, max_p99_response_s=50.0
    )
    assert evaluate_slo(summary, loose).passed  # inclusive bound


def test_skip_rate_bound():
    records = _records([1.0, 1.0])
    summary = summarize_jobs(records, deadline_s=10.0, skipped_releases=4)
    policy = SLOPolicy(
        deadline_s=10.0, max_miss_rate=1.0, max_skip_rate=1.0
    )
    verdict = evaluate_slo(summary, policy)
    assert not verdict.passed
    assert "skip rate" in verdict.reasons[0]
    assert evaluate_slo(
        summary,
        SLOPolicy(deadline_s=10.0, max_miss_rate=1.0, max_skip_rate=2.0),
    ).passed


def test_multiple_violations_all_reported():
    records = _records([20.0, 20.0])
    summary = summarize_jobs(records, deadline_s=10.0, skipped_releases=10)
    policy = SLOPolicy(
        deadline_s=10.0,
        max_miss_rate=0.0,
        max_p99_response_s=1.0,
        max_skip_rate=0.1,
    )
    verdict = evaluate_slo(summary, policy)
    assert len(verdict.reasons) == 3


def test_policy_as_dict_round_trip_units():
    policy = SLOPolicy(
        deadline_s=0.05, max_miss_rate=0.1, max_p99_response_s=0.04
    )
    d = policy.as_dict()
    assert d["deadline_ms"] == pytest.approx(50.0)
    assert d["max_p99_response_ms"] == pytest.approx(40.0)
    assert d["max_skip_rate"] is None
