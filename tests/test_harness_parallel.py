"""Tests for the persistent-pool suite executor (crash/timeout isolation)."""

from __future__ import annotations

import multiprocessing
import os
import time
import warnings

import pytest

from repro.harness.parallel import (
    TaskResult,
    derive_seed,
    map_tasks,
    schedule_order,
)


def _square(x):
    return x * x


def _fail_on_two(x):
    if x == 2:
        raise ValueError("two is right out")
    return x


def _hang_on_one(x):
    if x == 1:
        time.sleep(60.0)
    return x


def _die_silently(x):
    if x == 1:
        os._exit(17)
    return x


def _unpicklable(_x):
    return lambda: None


def _pid(_x):
    return os.getpid()


# -- ordering and values -------------------------------------------------------


@pytest.mark.parametrize("jobs", [1, 3])
def test_results_in_input_order(jobs):
    results = map_tasks(_square, [3, 1, 2], jobs=jobs)
    assert [r.value for r in results] == [9, 1, 4]
    assert [r.index for r in results] == [0, 1, 2]
    assert all(r.ok for r in results)
    assert all(r.duration >= 0.0 for r in results)


def test_names_label_results():
    results = map_tasks(_square, [1, 2], jobs=2, names=["a", "b"])
    assert [r.name for r in results] == ["a", "b"]


def test_name_count_mismatch_raises():
    with pytest.raises(ValueError, match="names"):
        map_tasks(_square, [1, 2], names=["only-one"])


def test_empty_items():
    assert map_tasks(_square, [], jobs=4) == []


# -- persistent pool -----------------------------------------------------------


def test_workers_are_reused_across_tasks():
    """The pool amortizes start-up: tasks share worker processes."""
    results = map_tasks(_pid, list(range(12)), jobs=2)
    pids = {r.value for r in results}
    assert 1 <= len(pids) <= 2  # 12 tasks, at most 2 processes
    assert all(r.worker_id is not None for r in results)


def test_pool_stats_report_worker_count():
    stats = {}
    map_tasks(_square, list(range(6)), jobs=3, pool_stats=stats)
    assert stats["workers"] == 3
    assert stats["respawns"] == 0
    assert stats["crashes"] == 0
    assert stats["timeouts"] == 0


def test_pool_leaves_no_zombies_or_extra_fds():
    """Repeated pool lifecycles (incl. timeouts) must not leak."""
    map_tasks(_square, list(range(4)), jobs=2)  # warm imports
    fds_before = len(os.listdir("/proc/self/fd"))
    for _ in range(3):
        map_tasks(_hang_on_one, [0, 1, 2], jobs=2, timeout=0.5)
    assert multiprocessing.active_children() == []
    fds_after = len(os.listdir("/proc/self/fd"))
    assert fds_after <= fds_before + 1  # no fd growth across lifecycles


# -- scheduling ----------------------------------------------------------------


def test_schedule_order_longest_first_and_stable():
    assert schedule_order(4, [1.0, 3.0, 2.0, 3.0]) == [1, 3, 2, 0]
    assert schedule_order(3, None) == [0, 1, 2]
    assert schedule_order(3, [0.0, 0.0, 0.0]) == [0, 1, 2]


def test_schedule_order_length_mismatch_raises():
    with pytest.raises(ValueError, match="priorities"):
        schedule_order(3, [1.0])


@pytest.mark.parametrize("jobs", [1, 2])
def test_priorities_do_not_change_results_or_order(jobs):
    plain = map_tasks(_square, [3, 1, 2], jobs=jobs)
    hinted = map_tasks(
        _square, [3, 1, 2], jobs=jobs, priorities=[0.1, 5.0, 2.0]
    )
    assert [r.value for r in plain] == [r.value for r in hinted]
    assert [r.index for r in hinted] == [0, 1, 2]


# -- executor accounting -------------------------------------------------------


def test_exec_and_queue_wait_recorded():
    results = map_tasks(_square, list(range(4)), jobs=2)
    for r in results:
        assert r.exec_s >= 0.0
        assert r.queue_wait_s >= 0.0
        assert r.duration >= r.exec_s  # dispatch overhead is non-negative


def _mark_environment():
    os.environ["RTRBENCH_POOL_MARKER"] = "set"


def _read_marker(_x):
    return os.environ.get("RTRBENCH_POOL_MARKER")


@pytest.mark.parametrize("jobs", [1, 2])
def test_initializer_runs_before_tasks(jobs, monkeypatch):
    monkeypatch.delenv("RTRBENCH_POOL_MARKER", raising=False)
    results = map_tasks(
        _read_marker, [0, 1], jobs=jobs, initializer=_mark_environment
    )
    assert [r.value for r in results] == ["set", "set"]


# -- crash isolation -----------------------------------------------------------


@pytest.mark.parametrize("jobs", [1, 2])
def test_exception_becomes_failure_row(jobs):
    results = map_tasks(_fail_on_two, [1, 2, 3], jobs=jobs)
    assert [r.ok for r in results] == [True, False, True]
    assert [r.value for r in results] == [1, None, 3]
    assert "two is right out" in results[1].error


def test_silent_worker_death_is_reported():
    results = map_tasks(_die_silently, [0, 1, 2], jobs=2)
    assert [r.ok for r in results] == [True, False, True]
    assert results[1].exitcode == 17
    assert "died without reporting" in results[1].error


def _sleep_or_die(x):
    if x == 1:
        os._exit(23)
    time.sleep(0.3)
    return x


def test_crash_triggers_respawn_and_remaining_tasks_complete():
    """A worker lost mid-task is replaced; the rest of the queue drains.

    Tasks are slow enough that work is still pending when the crash is
    reaped, so pool capacity must be restored for the queue to finish.
    """
    stats = {}
    results = map_tasks(
        _sleep_or_die, list(range(6)), jobs=2, pool_stats=stats
    )
    assert [r.ok for r in results] == [
        True, False, True, True, True, True
    ]
    assert results[1].exitcode == 23
    assert stats["crashes"] == 1
    assert stats["respawns"] == 1
    assert multiprocessing.active_children() == []


def test_unpicklable_result_is_reported_not_hung():
    results = map_tasks(_unpicklable, [0], jobs=2)
    assert not results[0].ok
    assert "not sendable" in results[0].error


# -- timeouts ------------------------------------------------------------------


def test_timeout_kills_only_the_hung_task():
    t0 = time.perf_counter()
    results = map_tasks(_hang_on_one, [0, 1, 2], jobs=2, timeout=1.5)
    elapsed = time.perf_counter() - t0
    assert [r.ok for r in results] == [True, False, True]
    assert results[1].timed_out
    assert "timeout" in results[1].error
    assert not results[0].timed_out and not results[2].timed_out
    # The suite survived the hang in roughly one timeout, not sleep(60).
    assert elapsed < 30.0


def test_inline_timeout_warns_once():
    """jobs <= 1 cannot preempt a hung task; the caller hears about it."""
    import repro.harness.parallel as parallel_mod

    parallel_mod._warned_inline_timeout = False
    with pytest.warns(RuntimeWarning, match="cannot enforce"):
        map_tasks(_square, [1], jobs=1, timeout=5.0)
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # second run must stay silent
        map_tasks(_square, [1], jobs=1, timeout=5.0)


# -- determinism ---------------------------------------------------------------


def test_derive_seed_is_stable_and_content_keyed():
    assert derive_seed(7, "bench", "raycast") == derive_seed(
        7, "bench", "raycast"
    )
    assert derive_seed(7, "bench", "raycast") != derive_seed(
        7, "bench", "collision"
    )
    assert derive_seed(7, "a") != derive_seed(8, "a")
    seed = derive_seed(0, "x")
    assert 0 <= seed < 2**63


def test_parallel_and_serial_runs_match():
    serial = map_tasks(_square, list(range(8)), jobs=1)
    parallel = map_tasks(_square, list(range(8)), jobs=4)
    assert [r.value for r in serial] == [r.value for r in parallel]


def test_task_result_defaults():
    row = TaskResult(index=0, name="t", ok=True, value=1)
    assert row.error is None
    assert not row.timed_out
    assert row.exitcode is None
