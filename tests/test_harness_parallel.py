"""Tests for the process-pool suite executor (crash/timeout isolation)."""

from __future__ import annotations

import os
import time

import pytest

from repro.harness.parallel import TaskResult, derive_seed, map_tasks


def _square(x):
    return x * x


def _fail_on_two(x):
    if x == 2:
        raise ValueError("two is right out")
    return x


def _hang_on_one(x):
    if x == 1:
        time.sleep(60.0)
    return x


def _die_silently(x):
    if x == 1:
        os._exit(17)
    return x


def _unpicklable(_x):
    return lambda: None


# -- ordering and values -------------------------------------------------------


@pytest.mark.parametrize("jobs", [1, 3])
def test_results_in_input_order(jobs):
    results = map_tasks(_square, [3, 1, 2], jobs=jobs)
    assert [r.value for r in results] == [9, 1, 4]
    assert [r.index for r in results] == [0, 1, 2]
    assert all(r.ok for r in results)
    assert all(r.duration >= 0.0 for r in results)


def test_names_label_results():
    results = map_tasks(_square, [1, 2], jobs=2, names=["a", "b"])
    assert [r.name for r in results] == ["a", "b"]


def test_name_count_mismatch_raises():
    with pytest.raises(ValueError, match="names"):
        map_tasks(_square, [1, 2], names=["only-one"])


def test_empty_items():
    assert map_tasks(_square, [], jobs=4) == []


# -- crash isolation -----------------------------------------------------------


@pytest.mark.parametrize("jobs", [1, 2])
def test_exception_becomes_failure_row(jobs):
    results = map_tasks(_fail_on_two, [1, 2, 3], jobs=jobs)
    assert [r.ok for r in results] == [True, False, True]
    assert [r.value for r in results] == [1, None, 3]
    assert "two is right out" in results[1].error


def test_silent_worker_death_is_reported():
    results = map_tasks(_die_silently, [0, 1, 2], jobs=2)
    assert [r.ok for r in results] == [True, False, True]
    assert results[1].exitcode == 17
    assert "died without reporting" in results[1].error


def test_unpicklable_result_is_reported_not_hung():
    results = map_tasks(_unpicklable, [0], jobs=2)
    assert not results[0].ok
    assert "not sendable" in results[0].error


# -- timeouts ------------------------------------------------------------------


def test_timeout_kills_only_the_hung_task():
    t0 = time.perf_counter()
    results = map_tasks(_hang_on_one, [0, 1, 2], jobs=2, timeout=1.5)
    elapsed = time.perf_counter() - t0
    assert [r.ok for r in results] == [True, False, True]
    assert results[1].timed_out
    assert "timeout" in results[1].error
    assert not results[0].timed_out and not results[2].timed_out
    # The suite survived the hang in roughly one timeout, not sleep(60).
    assert elapsed < 30.0


# -- determinism ---------------------------------------------------------------


def test_derive_seed_is_stable_and_content_keyed():
    assert derive_seed(7, "bench", "raycast") == derive_seed(
        7, "bench", "raycast"
    )
    assert derive_seed(7, "bench", "raycast") != derive_seed(
        7, "bench", "collision"
    )
    assert derive_seed(7, "a") != derive_seed(8, "a")
    seed = derive_seed(0, "x")
    assert 0 <= seed < 2**63


def test_parallel_and_serial_runs_match():
    serial = map_tasks(_square, list(range(8)), jobs=1)
    parallel = map_tasks(_square, list(range(8)), jobs=4)
    assert [r.value for r in serial] == [r.value for r in parallel]


def test_task_result_defaults():
    row = TaskResult(index=0, name="t", ok=True, value=1)
    assert row.error is None
    assert not row.timed_out
    assert row.exitcode is None
