"""Tests for RRT* (09.rrtstar) and RRT post-processing (10.rrtpp)."""

import numpy as np
import pytest

from repro.envs.arm_maps import default_arm, map_c, map_f
from repro.geometry.distance import path_length
from repro.harness.profiler import PhaseProfiler
from repro.planning.prm import distant_free_pair
from repro.planning.rrt import RRT, make_arm_workload
from repro.planning.rrt_postprocess import (
    RrtPpConfig,
    RrtPpKernel,
    shortcut_path,
)
from repro.planning.rrt_star import RRTStar, RrtStarConfig, RrtStarKernel


@pytest.fixture(scope="module")
def free_setup():
    ws = map_f()
    arm = default_arm()
    rng = np.random.default_rng(0)
    start, goal = distant_free_pair(arm, ws, rng)
    return arm, ws, start, goal


def test_rrtstar_validation(free_setup):
    arm, ws, _, _ = free_setup
    with pytest.raises(ValueError):
        RRTStar(arm, ws, gamma=0.0)


def test_rrtstar_finds_path(free_setup):
    arm, ws, start, goal = free_setup
    planner = RRTStar(arm, ws, max_samples=600,
                      rng=np.random.default_rng(1))
    result = planner.plan(start, goal)
    assert result.found
    assert np.allclose(result.path[0], start)
    assert np.allclose(result.path[-1], goal)


def test_rrtstar_path_cost_beats_rrt_in_free_space(free_setup):
    """With matched budgets, RRT* paths are shorter (paper: ~1.6x)."""
    arm, ws, start, goal = free_setup
    rrt_costs, star_costs = [], []
    for seed in range(3):
        rrt = RRT(arm, ws, rng=np.random.default_rng(seed))
        star = RRTStar(arm, ws, max_samples=800,
                       rng=np.random.default_rng(seed))
        r1 = rrt.plan(start, goal)
        r2 = star.plan(start, goal)
        if r1.found and r2.found:
            rrt_costs.append(r1.cost)
            star_costs.append(r2.cost)
    assert rrt_costs, "no matched successes"
    assert np.mean(star_costs) < np.mean(rrt_costs)


def test_rrtstar_cost_near_straight_line_in_free_space(free_setup):
    arm, ws, start, goal = free_setup
    planner = RRTStar(arm, ws, max_samples=1000,
                      rng=np.random.default_rng(2))
    result = planner.plan(start, goal)
    assert result.found
    straight = float(np.linalg.norm(np.asarray(goal) - np.asarray(start)))
    assert result.cost < straight * 1.5


def test_rrtstar_tree_costs_consistent(free_setup):
    """Rewiring must keep every node's cost equal to its path length."""
    arm, ws, start, goal = free_setup
    planner = RRTStar(arm, ws, max_samples=300,
                      rng=np.random.default_rng(3))
    # Plan and inspect the internal tree through a custom subclass hook.
    result = planner.plan(start, goal)
    assert result.found
    # The returned cost equals the actual polyline length.
    assert result.cost == pytest.approx(
        path_length(np.vstack(result.path)), rel=1e-9
    )


def test_rrtstar_profiles_rewires(free_setup):
    arm, ws, start, goal = free_setup
    prof = PhaseProfiler()
    planner = RRTStar(arm, ws, max_samples=400,
                      rng=np.random.default_rng(4), profiler=prof)
    planner.plan(start, goal)
    assert "nn_search" in prof.stats
    assert prof.counters.get("rrtstar_rewires", 0) > 0


# -- shortcutting -----------------------------------------------------------------


def test_shortcut_never_lengthens(free_setup):
    arm, ws, start, goal = free_setup
    planner = RRT(arm, ws, rng=np.random.default_rng(5))
    result = planner.plan(start, goal)
    assert result.found
    improved = shortcut_path(arm, ws, result.path, iterations=100,
                             rng=np.random.default_rng(0))
    assert path_length(np.vstack(improved)) <= result.cost + 1e-9


def test_shortcut_preserves_endpoints_and_validity():
    w = make_arm_workload(5, "map-c", seed=2)
    planner = RRT(w.arm, w.workspace, goal_threshold=0.8,
                  rng=np.random.default_rng(0), max_samples=4000)
    result = planner.plan(w.start, w.goal)
    assert result.found
    improved = shortcut_path(w.arm, w.workspace, result.path,
                             iterations=150, rng=np.random.default_rng(1))
    assert np.allclose(improved[0], w.start)
    assert np.allclose(improved[-1], w.goal)
    for a, b in zip(improved[:-1], improved[1:]):
        assert not w.workspace.edge_collides(w.arm, a, b, step=0.05)


def test_shortcut_two_point_path_is_unchanged(free_setup):
    arm, ws, start, goal = free_setup
    path = [np.asarray(start), np.asarray(goal)]
    out = shortcut_path(arm, ws, path, iterations=10)
    assert len(out) == 2


def test_shortcut_profiles_collision(free_setup):
    arm, ws, start, goal = free_setup
    prof = PhaseProfiler()
    mid = 0.5 * (np.asarray(start) + np.asarray(goal)) + 0.3
    shortcut_path(arm, ws, [start, mid, goal], iterations=20,
                  profiler=prof, rng=np.random.default_rng(0))
    assert "shortcut" in prof.stats
    assert "collision" in prof.stats


# -- kernels -----------------------------------------------------------------------


def test_rrtpp_kernel_cost_not_worse_than_rrt():
    from repro.planning.rrt import RrtKernel

    seed = 2
    rrt = RrtKernel().run(RrtConfig_like(seed))
    rrtpp = RrtPpKernel().run(RrtPpConfig(seed=seed))
    if rrt.output.found and rrtpp.output.found:
        assert rrtpp.output.cost <= rrt.output.cost + 1e-9


def RrtConfig_like(seed):
    from repro.planning.rrt import RrtConfig

    return RrtConfig(seed=seed)


def test_rrtstar_kernel_small_budget():
    result = RrtStarKernel().run(
        RrtStarConfig(seed=1, star_samples=1500, map="map-f")
    )
    assert result.output.found
