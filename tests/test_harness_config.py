"""Tests for kernel configuration and CLI building."""

from dataclasses import dataclass

import pytest

from repro.harness.config import (
    KernelConfig,
    build_arg_parser,
    config_from_args,
    option,
)


@dataclass
class _DemoConfig(KernelConfig):
    """Demo kernel configuration."""

    samples: int = option(100, "Maximum samples")
    epsilon: float = option(0.5, "Step size")
    map_name: str = option("map-c", "Workspace name")
    verbose: bool = option(False, "Chatty output")


def test_defaults():
    config = _DemoConfig()
    assert config.samples == 100
    assert config.epsilon == 0.5
    assert config.seed == 0


def test_replace_returns_modified_copy():
    config = _DemoConfig()
    other = config.replace(samples=7)
    assert other.samples == 7
    assert config.samples == 100


def test_describe_mentions_fields():
    text = _DemoConfig().describe()
    assert "samples=100" in text
    assert "epsilon=0.5" in text


def test_cli_parses_overrides():
    config = config_from_args(
        _DemoConfig, ["--samples", "42", "--epsilon", "1.25", "--seed", "9"]
    )
    assert config.samples == 42
    assert config.epsilon == pytest.approx(1.25)
    assert config.seed == 9


def test_cli_dashes_map_to_underscores():
    config = config_from_args(_DemoConfig, ["--map-name", "map-f"])
    assert config.map_name == "map-f"


def test_cli_bool_flag():
    assert config_from_args(_DemoConfig, ["--verbose"]).verbose is True
    assert config_from_args(_DemoConfig, []).verbose is False


def test_help_message_lists_options(capsys):
    parser = build_arg_parser(_DemoConfig, prog="demo")
    with pytest.raises(SystemExit):
        parser.parse_args(["--help"])
    out = capsys.readouterr().out
    # The paper's Fig. 20 contract: every option with its help text.
    assert "--samples" in out
    assert "Maximum samples" in out
    assert "default" in out


def test_every_registered_kernel_has_a_working_parser():
    """Fig. 20: all kernels expose --help with their full option set."""
    from repro.harness.runner import load_all_kernels, registry

    load_all_kernels()
    for name in registry.names():
        cls = registry.get(name)
        parser = build_arg_parser(cls.config_cls, prog=name)
        config = cls.config_cls(
            **{
                f.name: getattr(parser.parse_args([]), f.name)
                for f in __import__("dataclasses").fields(cls.config_cls)
            }
        )
        assert isinstance(config, KernelConfig)
