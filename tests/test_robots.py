"""Tests for the robot models."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry.transforms import SE2
from repro.robots.arm import PlanarArm
from repro.robots.ball_thrower import BallThrower
from repro.robots.bicycle import BicycleModel, BicycleState
from repro.robots.differential import DifferentialDrive


# -- arm -------------------------------------------------------------------


def test_arm_validation():
    with pytest.raises(ValueError):
        PlanarArm([])
    with pytest.raises(ValueError):
        PlanarArm([1.0, -1.0])
    with pytest.raises(ValueError):
        PlanarArm([1.0], joint_limits=[(-1, 1), (-1, 1)])


def test_arm_straight_configuration():
    arm = PlanarArm([1.0, 1.0, 1.0])
    points = arm.link_points([0.0, 0.0, 0.0])
    assert points[-1] == pytest.approx((3.0, 0.0))
    assert len(points) == 4


def test_arm_right_angle():
    arm = PlanarArm([1.0, 1.0])
    x, y = arm.end_effector([math.pi / 2.0, math.pi / 2.0])
    assert x == pytest.approx(-1.0, abs=1e-12)
    assert y == pytest.approx(1.0, abs=1e-12)


def test_arm_base_offset():
    arm = PlanarArm([2.0])
    x, y = arm.end_effector([0.0], base=(5.0, 7.0))
    assert (x, y) == pytest.approx((7.0, 7.0))


def test_arm_wrong_dof_raises():
    arm = PlanarArm([1.0, 1.0])
    with pytest.raises(ValueError):
        arm.link_points([0.0])


@settings(max_examples=30)
@given(st.lists(st.floats(-3.1, 3.1), min_size=3, max_size=3))
def test_arm_links_have_constant_length(q):
    arm = PlanarArm([0.5, 0.7, 0.3])
    points = arm.link_points(q)
    for (a, b), length in zip(zip(points[:-1], points[1:]), arm.link_lengths):
        assert math.hypot(b[0] - a[0], b[1] - a[1]) == pytest.approx(length)


def test_arm_limits_and_clamp(rng):
    arm = PlanarArm([1.0, 1.0], joint_limits=[(-1.0, 1.0), (0.0, 2.0)])
    assert arm.within_limits([0.5, 1.0])
    assert not arm.within_limits([1.5, 1.0])
    clamped = arm.clamp([5.0, -5.0])
    assert clamped == pytest.approx([1.0, 0.0])
    for _ in range(50):
        assert arm.within_limits(arm.sample_configuration(rng))


# -- differential drive --------------------------------------------------------


def test_diff_drive_straight_motion():
    robot = DifferentialDrive()
    pose = robot.step(SE2(0, 0, 0), v=1.0, w=0.0, dt=2.0)
    assert pose.x == pytest.approx(2.0)
    assert pose.y == pytest.approx(0.0)


def test_diff_drive_full_circle():
    robot = DifferentialDrive(max_v=10.0, max_w=10.0)
    pose = SE2(1.0, 0.0, math.pi / 2.0)
    # One full circle of radius 1: v = r*w.
    n = 100
    for _ in range(n):
        pose = robot.step(pose, v=1.0, w=1.0, dt=2 * math.pi / n)
    assert pose.x == pytest.approx(1.0, abs=1e-6)
    assert pose.y == pytest.approx(0.0, abs=1e-6)


def test_diff_drive_clamps_controls():
    robot = DifferentialDrive(max_v=1.0, max_w=1.0)
    assert robot.clamp(5.0, -7.0) == (1.0, -1.0)


def test_diff_drive_validation():
    with pytest.raises(ValueError):
        DifferentialDrive(max_v=0.0)


def test_odometry_between_matches_sensor_model():
    robot = DifferentialDrive()
    before = SE2(0, 0, 0)
    after = SE2(1.0, 0.0, 0.5)
    rot1, trans, rot2 = robot.odometry_between(before, after)
    assert trans == pytest.approx(1.0)
    assert rot1 == pytest.approx(0.0)
    assert rot2 == pytest.approx(0.5)


# -- bicycle ---------------------------------------------------------------------


def test_bicycle_straight():
    model = BicycleModel()
    state = BicycleState(v=10.0)
    nxt = model.step(state, a=0.0, delta=0.0, dt=1.0)
    assert nxt.x == pytest.approx(10.0)
    assert nxt.theta == pytest.approx(0.0)


def test_bicycle_speed_limits():
    model = BicycleModel(max_speed=5.0, max_accel=100.0)
    state = BicycleState(v=4.9)
    nxt = model.step(state, a=100.0, delta=0.0, dt=1.0)
    assert nxt.v == 5.0
    nxt = model.step(BicycleState(v=0.1), a=-100.0, delta=0.0, dt=1.0)
    assert nxt.v == 0.0  # no reversing


def test_bicycle_steering_turns():
    model = BicycleModel()
    state = BicycleState(v=5.0)
    left = model.step(state, a=0.0, delta=0.3, dt=0.5)
    assert left.theta > 0.0


def test_bicycle_rollout_shape():
    model = BicycleModel()
    controls = np.zeros((10, 2))
    states = model.rollout(BicycleState(v=3.0), controls, dt=0.1)
    assert states.shape == (11, 4)
    assert states[-1, 0] == pytest.approx(3.0, abs=1e-9)


def test_bicycle_linearization_is_locally_accurate():
    model = BicycleModel()
    state = BicycleState(x=1.0, y=2.0, theta=0.2, v=6.0)
    a0, d0 = 0.5, 0.1
    A, B, c = model.linearize(state, a0, d0, dt=0.1)
    # Exact next state equals the linear model at the expansion point.
    exact = model.step(state, a0, d0, 0.1).as_array()
    linear = A @ state.as_array() + B @ np.array([a0, d0]) + c
    assert np.allclose(exact, linear, atol=1e-12)
    # Small perturbations are tracked to first order.
    da, dd = 0.01, 0.005
    exact2 = model.step(state, a0 + da, d0 + dd, 0.1).as_array()
    linear2 = A @ state.as_array() + B @ np.array([a0 + da, d0 + dd]) + c
    assert np.allclose(exact2, linear2, atol=1e-3)


def test_bicycle_validation():
    with pytest.raises(ValueError):
        BicycleModel(wheelbase=0.0)


# -- ball thrower -----------------------------------------------------------------


def test_thrower_validation():
    with pytest.raises(ValueError):
        BallThrower(link1=0.0)


def test_thrower_reward_is_negative_distance():
    thrower = BallThrower(goal_x=3.0)
    result = thrower.throw(np.array([0.8, -0.2, 10.0]))
    assert result.reward == pytest.approx(-abs(result.landing_x - 3.0))


def test_thrower_harder_throw_lands_farther():
    thrower = BallThrower()
    soft = thrower.throw(np.array([0.8, -0.2, 5.0]))
    hard = thrower.throw(np.array([0.8, -0.2, 15.0]))
    assert hard.landing_x > soft.landing_x


def test_thrower_clips_to_bounds():
    thrower = BallThrower()
    wild = thrower.throw(np.array([100.0, -100.0, 1e9]))
    assert np.isfinite(wild.landing_x)


def test_thrower_perfect_throw_exists():
    """Some parameter triple lands within 10 cm of the goal."""
    thrower = BallThrower(goal_x=3.0)
    rng = np.random.default_rng(0)
    bounds = thrower.parameter_bounds
    best = min(
        abs(thrower.throw(rng.uniform(bounds[:, 0], bounds[:, 1])).landing_x - 3.0)
        for _ in range(500)
    )
    assert best < 0.1


def test_thrower_drag_shortens_flight():
    no_drag = BallThrower(drag=0.0).throw(np.array([0.8, -0.2, 12.0]))
    with_drag = BallThrower(drag=0.5).throw(np.array([0.8, -0.2, 12.0]))
    assert with_drag.landing_x < no_drag.landing_x


def test_thrower_ballistics_consistency():
    """Closed-form landing matches a fine Euler integration (no drag)."""
    thrower = BallThrower()
    params = np.array([1.0, -0.4, 10.0])
    analytic = thrower.throw(params)
    (rx, ry), (vx, vy) = thrower.release_state(*params)
    x, y, t, dt = rx, ry, 0.0, 1e-5
    while y > 0.0:
        x += vx * dt
        vy -= 9.81 * dt
        y += vy * dt
        t += dt
    assert x == pytest.approx(analytic.landing_x, abs=1e-2)
