"""Tests for the sensor models."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.envs.mapgen import wean_hall_like
from repro.geometry.transforms import SE2
from repro.sensors.landmarks import LandmarkSensor
from repro.sensors.lidar import Lidar
from repro.sensors.noise import GaussianNoise
from repro.sensors.odometry import OdometryModel, OdometryReading


# -- noise ---------------------------------------------------------------------


def test_gaussian_noise_zero_sigma_is_identity(rng):
    noise = GaussianNoise(0.0)
    assert noise.perturb(3.0, rng) == 3.0
    values = np.array([1.0, 2.0])
    assert np.array_equal(noise.perturb_array(values, rng), values)


def test_gaussian_noise_perturbs(rng):
    noise = GaussianNoise(1.0)
    samples = [noise.perturb(0.0, rng) for _ in range(200)]
    assert 0.7 < np.std(samples) < 1.3


def test_gaussian_noise_negative_sigma_raises():
    with pytest.raises(ValueError):
        GaussianNoise(-1.0)


# -- odometry ----------------------------------------------------------------------


def test_reading_between_recovers_motion():
    before = SE2(0.0, 0.0, 0.0)
    after = SE2(1.0, 1.0, math.pi / 2.0)
    reading = OdometryModel.reading_between(before, after)
    assert reading.trans == pytest.approx(math.sqrt(2.0))
    assert reading.rot1 == pytest.approx(math.pi / 4.0)
    assert reading.rot2 == pytest.approx(math.pi / 4.0)


def test_noiseless_model_reproduces_pose(rng):
    model = OdometryModel(0.0, 0.0, 0.0, 0.0)
    before = SE2(1.0, 2.0, 0.3)
    after = SE2(2.5, 2.8, 1.1)
    reading = OdometryModel.reading_between(before, after)
    propagated = model.sample(before, reading, rng)
    assert propagated.x == pytest.approx(after.x, abs=1e-6)
    assert propagated.y == pytest.approx(after.y, abs=1e-6)
    assert propagated.theta == pytest.approx(after.theta, abs=1e-6)


def test_sample_batch_shape_and_spread(rng):
    model = OdometryModel(0.1, 0.01, 0.1, 0.01)
    poses = np.zeros((500, 3))
    reading = OdometryReading(rot1=0.2, trans=1.0, rot2=-0.1)
    out = model.sample_batch(poses, reading, rng)
    assert out.shape == (500, 3)
    # Mean motion is approximately the commanded motion.
    assert np.hypot(out[:, 0].mean(), out[:, 1].mean()) == pytest.approx(
        1.0, abs=0.1
    )
    # Noise actually spreads the particles.
    assert out[:, 0].std() > 0.0


def test_zero_motion_stays_near_pose(rng):
    model = OdometryModel()
    poses = np.tile([3.0, 4.0, 0.5], (100, 1))
    out = model.sample_batch(poses, OdometryReading(0.0, 0.0, 0.0), rng)
    assert np.allclose(out[:, :2].mean(axis=0), [3.0, 4.0], atol=0.05)


def test_negative_alpha_raises():
    with pytest.raises(ValueError):
        OdometryModel(alpha1=-0.1)


# -- lidar -------------------------------------------------------------------------


def test_lidar_validation():
    with pytest.raises(ValueError):
        Lidar(n_beams=0)
    with pytest.raises(ValueError):
        Lidar(max_range=0.0)


def test_lidar_beam_angles_span_fov():
    lidar = Lidar(n_beams=4, fov=math.pi)
    angles = lidar.beam_angles(0.0)
    assert angles[0] == pytest.approx(-math.pi / 2.0)
    assert len(angles) == 4


def test_expected_ranges_batch_matches_single():
    grid = wean_hall_like(rows=60, cols=60, seed=0)
    lidar = Lidar(n_beams=6, max_range=8.0)
    free = np.argwhere(~grid.cells)
    poses = []
    for i in (0, len(free) // 2, -1):
        r, c = free[i]
        x, y = grid.cell_to_world(int(r), int(c))
        poses.append([x, y, 0.7])
    poses = np.array(poses)
    batch = lidar.expected_ranges_batch(grid, poses)
    for pose, ranges in zip(poses, batch):
        single = lidar.expected_ranges(grid, pose[0], pose[1], pose[2])
        assert np.allclose(ranges, single)


def test_measure_clips_to_range(rng):
    grid = wean_hall_like(rows=60, cols=60, seed=0)
    lidar = Lidar(n_beams=12, max_range=5.0, noise_sigma=0.5)
    free = np.argwhere(~grid.cells)
    r, c = free[len(free) // 2]
    x, y = grid.cell_to_world(int(r), int(c))
    scan = lidar.measure(grid, x, y, 0.0, rng)
    assert (scan >= 0.0).all()
    assert (scan <= 5.0).all()


# -- landmarks -----------------------------------------------------------------------


def test_landmark_sensor_validation():
    with pytest.raises(ValueError):
        LandmarkSensor(np.zeros((3, 3)))


def test_true_observation_geometry():
    sensor = LandmarkSensor(np.array([[10.0, 0.0]]))
    obs = sensor.true_observation(SE2(0.0, 0.0, 0.0), 0)
    assert obs.range == pytest.approx(10.0)
    assert obs.bearing == pytest.approx(0.0)
    obs_rotated = sensor.true_observation(SE2(0.0, 0.0, math.pi / 2.0), 0)
    assert obs_rotated.bearing == pytest.approx(-math.pi / 2.0)


def test_observe_filters_by_range(rng):
    sensor = LandmarkSensor(
        np.array([[1.0, 0.0], [100.0, 0.0]]), max_range=10.0
    )
    observations = sensor.observe(SE2(0, 0, 0), rng)
    assert [o.landmark_id for o in observations] == [0]


def test_observe_noise_statistics(rng):
    sensor = LandmarkSensor(
        np.array([[5.0, 0.0]]), range_sigma=0.2, bearing_sigma=0.05
    )
    ranges = [sensor.observe(SE2(0, 0, 0), rng)[0].range for _ in range(300)]
    assert np.mean(ranges) == pytest.approx(5.0, abs=0.1)
    assert 0.1 < np.std(ranges) < 0.3


def test_observe_noiseless_without_rng():
    sensor = LandmarkSensor(np.array([[3.0, 4.0]]))
    obs = sensor.observe(SE2(0, 0, 0))[0]
    assert obs.range == pytest.approx(5.0)
