"""Tests for the RRT-Connect extension kernel."""

import numpy as np
import pytest

from repro.envs.arm_maps import default_arm, map_c, map_f
from repro.harness.profiler import PhaseProfiler
from repro.planning.prm import distant_free_pair
from repro.planning.rrt import make_arm_workload
from repro.planning.rrt_connect import RRTConnect, RrtConnectKernel


@pytest.fixture(scope="module")
def free_setup():
    ws = map_f()
    arm = default_arm()
    rng = np.random.default_rng(0)
    start, goal = distant_free_pair(arm, ws, rng)
    return arm, ws, start, goal


def test_plan_free_space(free_setup):
    arm, ws, start, goal = free_setup
    planner = RRTConnect(arm, ws, rng=np.random.default_rng(1))
    result = planner.plan(start, goal)
    assert result.found
    assert np.allclose(result.path[0], start)
    assert np.allclose(result.path[-1], goal)


def test_path_is_collision_free_on_map_c():
    w = make_arm_workload(5, "map-c", seed=0)
    planner = RRTConnect(w.arm, w.workspace, goal_threshold=0.8,
                         rng=np.random.default_rng(0), max_samples=4000)
    result = planner.plan(w.start, w.goal)
    assert result.found
    for a, b in zip(result.path[:-1], result.path[1:]):
        assert not w.workspace.edge_collides(w.arm, a, b, step=0.05)


def test_path_continuity(free_setup):
    """Consecutive waypoints never jump more than the connect threshold."""
    arm, ws, start, goal = free_setup
    planner = RRTConnect(arm, ws, epsilon=0.4, goal_threshold=0.8,
                         rng=np.random.default_rng(2))
    result = planner.plan(start, goal)
    assert result.found
    steps = [
        float(np.linalg.norm(b - a))
        for a, b in zip(result.path[:-1], result.path[1:])
    ]
    assert max(steps) <= 0.8 + 1e-9


def test_connect_beats_or_matches_rrt_samples():
    """Bidirectional search needs no more samples on matched queries."""
    from repro.planning.rrt import RRT

    wins = 0
    total = 0
    for seed in range(4):
        w = make_arm_workload(5, "map-c", seed=seed)
        connect = RRTConnect(w.arm, w.workspace, goal_threshold=0.8,
                             rng=np.random.default_rng(seed),
                             max_samples=6000)
        plain = RRT(w.arm, w.workspace, goal_threshold=0.8,
                    rng=np.random.default_rng(seed), max_samples=6000)
        rc = connect.plan(w.start, w.goal)
        rp = plain.plan(w.start, w.goal)
        if rc.found and rp.found:
            total += 1
            if rc.samples_drawn <= rp.samples_drawn:
                wins += 1
    assert total >= 2
    assert wins >= total // 2


def test_sample_budget_respected():
    """A goal buried inside an obstacle exhausts the budget unconnected."""
    ws = map_c()
    arm = default_arm()
    rect = ws.obstacles[0]
    target = ((rect.xmin + rect.xmax) / 2, (rect.ymin + rect.ymax) / 2)
    angle = np.arctan2(target[1] - ws.base[1], target[0] - ws.base[0])
    buried = np.array([angle] + [0.0] * (arm.dof - 1))
    assert ws.config_collides(arm, buried)
    rng = np.random.default_rng(3)
    from repro.planning.prm import find_free_configuration

    start = find_free_configuration(arm, ws, rng)
    planner = RRTConnect(arm, ws, max_samples=5,
                         rng=np.random.default_rng(3))
    result = planner.plan(start, buried)
    assert not result.found
    assert result.samples_drawn == 5


def test_profiler_phases(free_setup):
    arm, ws, start, goal = free_setup
    prof = PhaseProfiler()
    planner = RRTConnect(arm, ws, rng=np.random.default_rng(4),
                         profiler=prof)
    planner.plan(start, goal)
    for phase in ("sampling", "nn_search", "collision", "extend"):
        assert phase in prof.stats


def test_kernel_end_to_end():
    result = RrtConnectKernel().run(
        RrtConnectKernel.config_cls(seed=0, samples=6000)
    )
    assert result.output.found
    assert result.kernel == "17.rrtconnect"
