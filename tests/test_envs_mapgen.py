"""Tests for the procedural map generators."""

import numpy as np
import pytest

from repro.envs.mapgen import (
    campus_like_3d,
    city_like,
    comparison_map,
    random_obstacle_grid,
    wean_hall_like,
)
from repro.search.dijkstra import shortest_grid_path


def test_wean_hall_deterministic():
    a = wean_hall_like(seed=3)
    b = wean_hall_like(seed=3)
    assert np.array_equal(a.cells, b.cells)


def test_wean_hall_different_seeds_differ():
    a = wean_hall_like(seed=0)
    b = wean_hall_like(seed=1)
    assert not np.array_equal(a.cells, b.cells)


def test_wean_hall_has_free_space_and_walls():
    grid = wean_hall_like()
    assert 0.2 < grid.occupancy_ratio() < 0.9
    # Border is closed.
    assert grid.cells[0].all() and grid.cells[-1].all()


def test_wean_hall_free_space_is_connected_enough():
    """Corridors must connect distant regions (pfl walks long paths)."""
    grid = wean_hall_like()
    free = np.argwhere(~grid.cells)
    start = tuple(free[0])
    goal = tuple(free[-1])
    path = shortest_grid_path(grid.cells, start, goal)
    assert path, "no path across the floorplan"


def test_city_like_structure():
    grid = city_like(rows=128, cols=128, seed=1)
    # Urban density: substantial buildings, substantial streets.
    assert 0.15 < grid.occupancy_ratio() < 0.6
    assert grid.cells[0].all()


def test_city_like_is_plannable():
    grid = city_like(rows=128, cols=128, seed=0)
    free = np.argwhere(~grid.cells)
    start = tuple(free[np.argmin(free.sum(axis=1))])
    goal = tuple(free[np.argmax(free.sum(axis=1))])
    assert shortest_grid_path(grid.cells, start, goal)


def test_campus_3d_has_vertical_structure():
    grid = campus_like_3d(nx=48, ny=48, nz=16, seed=0)
    # Lower slices denser than the top slice (buildings taper off).
    low = grid.cells[1].mean()
    high = grid.cells[-1].mean()
    assert low > high


def test_campus_3d_walls_closed():
    grid = campus_like_3d(nx=32, ny=32, nz=8)
    assert grid.cells[:, 0, :].all()
    assert grid.cells[:, :, -1].all()


def test_comparison_map_matches_prob_demo():
    grid = comparison_map()
    assert grid.rows == grid.cols == 62
    # The start (10, 10) and goal (50, 50) of the P-Rob demo are free.
    assert not grid.is_occupied(10, 10)
    assert not grid.is_occupied(50, 50)
    # The two walls exist.
    assert grid.is_occupied(20, 20)
    assert grid.is_occupied(40, 40)


def test_comparison_map_requires_detour():
    """The S-walls force a path longer than the straight diagonal."""
    grid = comparison_map()
    path = shortest_grid_path(grid.cells, (10, 10), (50, 50))
    assert path
    assert len(path) > 45  # straight diagonal would be ~41 steps


def test_random_obstacle_grid_density():
    grid = random_obstacle_grid(50, 50, density=0.3, seed=0)
    assert 0.25 < grid.occupancy_ratio() < 0.45  # border adds some
