"""The append-only result store, including the legacy-schema loader."""

from __future__ import annotations

import json
import os

import pytest

from repro.results import (
    EnvironmentFingerprint,
    Measurement,
    ResultStore,
    RunRecord,
)

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


def _record(kind="bench", value=6.0, run_id=""):
    return RunRecord(
        kind=kind,
        run_id=run_id,
        measurements={"raycast.speedup": Measurement(value, "ratio", True)},
    )


@pytest.fixture
def store(tmp_path):
    return ResultStore(str(tmp_path / "results"))


def test_save_creates_history_and_latest_pointer(store):
    record = _record(run_id="20260806T000000Z-aaaaaa")
    path = store.save(record)
    assert os.path.exists(path)
    assert store.kinds() == ["bench"]
    assert store.history("bench") == [path]
    assert store.latest_path("bench") == path
    loaded = store.latest("bench")
    assert loaded is not None
    assert loaded.run_id == record.run_id


def test_save_never_overwrites_a_run_id(store):
    first = _record(run_id="20260806T000000Z-aaaaaa")
    second = _record(run_id="20260806T000000Z-aaaaaa")
    path_a = store.save(first)
    path_b = store.save(second)
    assert path_a != path_b
    assert second.run_id != first.run_id
    assert len(store.history("bench")) == 2
    # LATEST follows the newest write.
    assert store.latest("bench").run_id == second.run_id


def test_load_by_every_reference_form(store):
    record = _record(run_id="20260806T000000Z-aaaaaa")
    path = store.save(record)
    for ref in (
        path,
        "bench",
        "bench@latest",
        f"bench@{record.run_id}",
    ):
        assert store.load(ref).run_id == record.run_id


def test_load_unknown_references_raise(store):
    with pytest.raises(FileNotFoundError, match="neither a file nor a kind"):
        store.load("suite@latest")
    store.save(_record())
    with pytest.raises(FileNotFoundError, match="no record"):
        store.load("bench@20990101T000000Z-ffffff")


def test_latest_pointer_fallback_to_history(store):
    path = store.save(_record(run_id="20260806T000000Z-aaaaaa"))
    os.unlink(os.path.join(os.path.dirname(path), "LATEST"))
    assert store.latest_path("bench") == path


def test_env_var_relocates_default_store(tmp_path, monkeypatch):
    monkeypatch.setenv("RTRBENCH_RESULTS_DIR", str(tmp_path / "relocated"))
    assert ResultStore().root == str(tmp_path / "relocated")
    assert ResultStore("explicit").root == "explicit"


def test_stored_file_is_pretty_printed_json(store):
    path = store.save(_record())
    payload = json.loads(open(path).read())
    assert payload["schema_version"] >= 2
    assert payload["measurements"]["raycast.speedup"]["value"] == 6.0


# -- legacy-schema loading -----------------------------------------------------


def test_legacy_bench_fixture_loads_as_record(store):
    record = store.load(f"{FIXTURES}/legacy_BENCH_hotpaths.json")
    assert record.kind == "bench"
    assert record.schema_version == 0
    assert record.has_tag("legacy-schema")
    assert record.environment == EnvironmentFingerprint.unknown()
    assert record.metric("raycast.speedup") == pytest.approx(5.3627, rel=1e-3)
    assert record.metric("nn.ops") > 0


def test_legacy_suite_fixture_loads_as_record(store):
    record = store.load(f"{FIXTURES}/legacy_BENCH_suite.json")
    assert record.kind == "suite"
    assert record.schema_version == 0
    assert record.has_tag("legacy-schema")
    assert record.metric("suite.failures") == 0.0
    assert record.metric("suite.parallel_speedup") == pytest.approx(
        0.7264, rel=1e-3
    )
    assert record.metric("determinism.match") == 1.0
    assert record.metric("cache.hit_speedup") == pytest.approx(
        19.85, rel=1e-2
    )


def test_legacy_rt_fixture_loads_as_record(store):
    record = store.load(f"{FIXTURES}/legacy_BENCH_rt.json")
    assert record.kind == "rt"
    assert record.schema_version == 0
    assert record.has_tag("legacy-schema")
    assert record.metric("slo.pass") == 1.0
    assert record.metric("degradation.p99_ratio") == pytest.approx(
        4.158, rel=1e-3
    )
    assert record.metric("unloaded.response_p99_ms") > 0.0
    # The untouched legacy payload rides along for the human renderers.
    assert set(record.detail) == {"rt", "conditions", "degradation", "slo"}


def test_unrecognized_document_raises(store, tmp_path):
    bogus = tmp_path / "bogus.json"
    bogus.write_text(json.dumps({"hello": "world"}))
    with pytest.raises(ValueError, match="unrecognized report document"):
        store.load(str(bogus))


def test_current_schema_file_roundtrips_through_store(store, tmp_path):
    record = _record(run_id="20260806T000000Z-aaaaaa")
    path = store.save(record)
    reloaded = store.load(path)
    assert reloaded.schema_version == record.schema_version
    assert not reloaded.has_tag("legacy-schema")
    assert reloaded.measurements == record.measurements
