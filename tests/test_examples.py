"""Smoke tests: the runnable examples actually run.

Each example is executed in-process (imported as ``__main__``-style via
``runpy``) with stdout captured; only the fast ones are exercised here —
``benchmark_report.py`` is covered by the benchmark suite itself.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run_example(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


def test_firefighter_mission(capsys):
    out = _run_example("firefighter_mission.py", capsys)
    assert "pours water on the fire" in out
    assert "Goal verified" in out


def test_quickstart(capsys):
    out = _run_example("quickstart.py", capsys)
    assert "01.pfl" in out
    assert "Weighted A*" in out


def test_warehouse_amr(capsys):
    out = _run_example("warehouse_amr.py", capsys)
    assert "PERCEPTION" in out
    assert "tracking error" in out
    assert "dominant: raycast" in out


def test_drone_survey(capsys):
    out = _run_example("drone_survey.py", capsys)
    assert "TRANSIT" in out
    assert "intercepted" in out
