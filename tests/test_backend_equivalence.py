"""Reference vs vectorized backend equivalence.

The vectorized numpy backends must be drop-in replacements for the
reference hot paths: ray ranges within the grid resolution (the caster is
exact, the marcher samples at half-cell steps), collision verdicts
identical, and nearest-neighbor correspondences identical.  Each test
sweeps seeded random workloads so the equivalence claim covers more than
one hand-picked map.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.envs.mapgen import campus_like_3d, wean_hall_like
from repro.geometry.collision import (
    footprint_points,
    oriented_footprint_collides,
    oriented_footprints_collide_batch,
    segment_collides_grid,
    segments_collide_grid_batch,
    voxel_collides,
    voxels_collide_batch,
)
from repro.geometry.kdtree import KDTree, nearest_neighbors_batch
from repro.geometry.raycast import (
    cast_ray_dda,
    cast_rays_batch,
    cast_rays_dda_batch,
)
from repro.perception.icp import icp
from repro.perception.particle_filter import ParticleFilter
from repro.planning.pp2d import plan_2d
from repro.planning.pp3d import far_apart_free_voxels, plan_3d
from repro.sensors.lidar import Lidar


def _random_rays(grid, n, seed):
    rng = np.random.default_rng(seed)
    free = np.argwhere(~grid.cells)
    sel = free[rng.integers(0, len(free), n)]
    res = grid.resolution
    ox, oy = grid.origin
    xs = (sel[:, 1] + rng.uniform(0.2, 0.8, n)) * res + ox
    ys = (sel[:, 0] + rng.uniform(0.2, 0.8, n)) * res + oy
    angles = rng.uniform(-np.pi, np.pi, n)
    return xs, ys, angles


# -- ray casting ---------------------------------------------------------------


@pytest.mark.parametrize("seed", [0, 3, 7])
def test_raycast_ranges_within_resolution(seed):
    grid = wean_hall_like(rows=120, cols=150, resolution=0.25, seed=seed)
    xs, ys, angles = _random_rays(grid, 400, seed + 100)
    ref = cast_rays_batch(grid, xs, ys, angles, 12.0)
    vec = cast_rays_dda_batch(grid, xs, ys, angles, 12.0)
    assert np.abs(ref - vec).max() <= grid.resolution


def test_raycast_matches_scalar_dda_exactly():
    grid = wean_hall_like(rows=120, cols=150, resolution=0.25, seed=5)
    xs, ys, angles = _random_rays(grid, 300, 42)
    vec = cast_rays_dda_batch(grid, xs, ys, angles, 12.0)
    scalar = np.array(
        [
            cast_ray_dda(grid, x, y, a, 12.0)
            for x, y, a in zip(xs, ys, angles)
        ]
    )
    # Exact traversal either way; 1e-9 absorbs schedule-order float noise.
    np.testing.assert_allclose(vec, scalar, atol=1e-9)


def test_raycast_work_counter_reported():
    grid = wean_hall_like(rows=120, cols=150, resolution=0.25, seed=1)
    xs, ys, angles = _random_rays(grid, 200, 9)
    counters = {}

    def count(name, k):
        counters[name] = counters.get(name, 0) + k

    cast_rays_dda_batch(grid, xs, ys, angles, 12.0, count=count)
    assert counters["raycast_cell_checks"] > 0


def test_lidar_backend_dispatch():
    grid = wean_hall_like(rows=120, cols=150, resolution=0.25, seed=2)
    lidar = Lidar(n_beams=24, max_range=12.0)
    rng = np.random.default_rng(3)
    free = np.argwhere(~grid.cells)
    sel = free[rng.integers(0, len(free), 20)]
    poses = np.column_stack(
        [
            (sel[:, 1] + 0.5) * grid.resolution,
            (sel[:, 0] + 0.5) * grid.resolution,
            rng.uniform(-np.pi, np.pi, 20),
        ]
    )
    ref = lidar.expected_ranges_batch(grid, poses, backend="reference")
    vec = lidar.expected_ranges_batch(grid, poses, backend="vectorized")
    assert ref.shape == vec.shape == (20, 24)
    assert np.abs(ref - vec).max() <= grid.resolution


def test_particle_filter_rejects_unknown_backend():
    grid = wean_hall_like(rows=40, cols=50, resolution=0.5, seed=0)
    from repro.sensors.odometry import OdometryModel

    with pytest.raises(ValueError):
        ParticleFilter(
            grid, Lidar(n_beams=4), OdometryModel(), n_particles=10,
            backend="gpu",
        )


# -- collision -----------------------------------------------------------------


@pytest.mark.parametrize("seed", [0, 4, 11])
def test_footprint_batch_verdicts_identical(seed):
    grid = wean_hall_like(rows=100, cols=120, resolution=0.25, seed=seed)
    rng = np.random.default_rng(seed + 50)
    n = 300
    xs = rng.uniform(0.0, grid.width, n)
    ys = rng.uniform(0.0, grid.height, n)
    thetas = rng.uniform(-np.pi, np.pi, n)
    body = footprint_points(1.2, 0.6, grid.resolution)
    scalar = np.array(
        [
            oriented_footprint_collides(grid, x, y, t, body)
            for x, y, t in zip(xs, ys, thetas)
        ]
    )
    batch = oriented_footprints_collide_batch(grid, xs, ys, thetas, body)
    assert np.array_equal(scalar, batch)
    assert scalar.any() and not scalar.all()  # non-degenerate workload


def test_footprint_batch_counts_match_scalar():
    grid = wean_hall_like(rows=60, cols=60, resolution=0.5, seed=0)
    body = footprint_points(2.0, 1.0, grid.resolution)
    xs = np.array([5.0, 12.0, 20.0])
    ys = np.array([5.0, 12.0, 20.0])
    thetas = np.array([0.0, 1.0, 2.0])
    scalar_counts = {}
    batch_counts = {}
    for x, y, t in zip(xs, ys, thetas):
        oriented_footprint_collides(
            grid, x, y, t, body,
            count=lambda k, n: scalar_counts.__setitem__(
                k, scalar_counts.get(k, 0) + n
            ),
        )
    oriented_footprints_collide_batch(
        grid, xs, ys, thetas, body,
        count=lambda k, n: batch_counts.__setitem__(
            k, batch_counts.get(k, 0) + n
        ),
    )
    assert scalar_counts == batch_counts


@pytest.mark.parametrize("seed", [1, 8])
def test_segment_batch_verdicts_identical(seed):
    grid = wean_hall_like(rows=100, cols=120, resolution=0.25, seed=seed)
    rng = np.random.default_rng(seed)
    n = 200
    p0s = np.column_stack(
        [rng.uniform(0, grid.width, n), rng.uniform(0, grid.height, n)]
    )
    p1s = p0s + rng.uniform(-6.0, 6.0, (n, 2))
    scalar = np.array(
        [
            segment_collides_grid(grid, tuple(a), tuple(b))
            for a, b in zip(p0s, p1s)
        ]
    )
    batch = segments_collide_grid_batch(grid, p0s, p1s)
    assert np.array_equal(scalar, batch)


def test_voxel_batch_verdicts_identical():
    grid = campus_like_3d(nx=32, ny=32, nz=10, seed=3)
    rng = np.random.default_rng(6)
    zis = rng.integers(-2, 12, 500)
    yis = rng.integers(-2, 34, 500)
    xis = rng.integers(-2, 34, 500)
    scalar = np.array(
        [
            voxel_collides(grid, int(z), int(y), int(x))
            for z, y, x in zip(zis, yis, xis)
        ]
    )
    batch = voxels_collide_batch(grid, zis, yis, xis)
    assert np.array_equal(scalar, batch)


# -- planners end to end -------------------------------------------------------


def test_pp2d_backends_identical_plan():
    from repro.envs.mapgen import city_like
    from repro.harness.profiler import PhaseProfiler
    from repro.planning.pp2d import far_apart_free_cells

    grid = city_like(rows=96, cols=96, seed=0)
    rng = np.random.default_rng(0)
    clearance = footprint_points(4.8, 4.8, grid.resolution)
    start, goal = far_apart_free_cells(grid, rng, clearance)
    prof_ref, prof_vec = PhaseProfiler(), PhaseProfiler()
    ref = plan_2d(grid, start, goal, profiler=prof_ref)
    vec = plan_2d(grid, start, goal, profiler=prof_vec, backend="vectorized")
    assert ref.path == vec.path
    assert ref.cost == pytest.approx(vec.cost)
    assert prof_ref.counters == prof_vec.counters


def test_pp3d_backends_identical_plan():
    from repro.harness.profiler import PhaseProfiler

    grid = campus_like_3d(nx=40, ny=40, nz=10, seed=0)
    start, goal = far_apart_free_voxels(grid)
    prof_ref, prof_vec = PhaseProfiler(), PhaseProfiler()
    ref = plan_3d(grid, start, goal, profiler=prof_ref)
    vec = plan_3d(grid, start, goal, profiler=prof_vec, backend="vectorized")
    assert ref.path == vec.path
    assert ref.cost == pytest.approx(vec.cost)
    assert prof_ref.counters == prof_vec.counters


def test_pp2d_array_backend_identical_plan():
    """The flat-array core must replicate the reference plan bitwise.

    The search counters (expansions/pushes/pops) must match exactly;
    collision_cell_checks is architecturally different (the array
    backend precomputes full-grid footprint masks per heading) and is
    intentionally excluded from the comparison.
    """
    from repro.envs.mapgen import city_like
    from repro.harness.profiler import PhaseProfiler
    from repro.planning.pp2d import far_apart_free_cells

    grid = city_like(rows=96, cols=96, seed=0)
    rng = np.random.default_rng(0)
    clearance = footprint_points(4.8, 4.8, grid.resolution)
    start, goal = far_apart_free_cells(grid, rng, clearance)
    prof_ref, prof_arr = PhaseProfiler(), PhaseProfiler()
    ref = plan_2d(grid, start, goal, profiler=prof_ref)
    arr = plan_2d(grid, start, goal, profiler=prof_arr, backend="array")
    assert arr.found == ref.found
    assert arr.path == ref.path
    assert arr.cost == ref.cost  # identical float arithmetic: bitwise
    for counter in ("astar_expansions", "search_pushes", "search_pops"):
        assert prof_arr.counters[counter] == prof_ref.counters[counter]


def test_pp3d_array_backend_identical_plan_and_counters():
    from repro.harness.profiler import PhaseProfiler

    grid = campus_like_3d(nx=40, ny=40, nz=10, seed=0)
    start, goal = far_apart_free_voxels(grid)
    prof_ref, prof_arr = PhaseProfiler(), PhaseProfiler()
    ref = plan_3d(grid, start, goal, profiler=prof_ref)
    arr = plan_3d(grid, start, goal, profiler=prof_arr, backend="array")
    assert arr.found == ref.found
    assert arr.path == ref.path
    assert arr.cost == ref.cost
    # pp3d's collision test is per-voxel in both backends, so here *all*
    # counters are comparable, collision_cell_checks included.
    assert prof_arr.counters == prof_ref.counters


def test_movtar_array_backend_identical_plan():
    from repro.envs.costmap import synthetic_costmap, target_trajectory
    from repro.harness.profiler import PhaseProfiler
    from repro.planning.moving_target import MovingTargetPlanner

    field = synthetic_costmap(rows=64, cols=64, n_bumps=6, seed=3)
    traj = target_trajectory(field, length=40, seed=3)
    prof_ref, prof_arr = PhaseProfiler(), PhaseProfiler()
    ref_planner = MovingTargetPlanner(
        field, traj, profiler=prof_ref, backend="reference"
    )
    arr_planner = MovingTargetPlanner(
        field, traj, profiler=prof_arr, backend="array"
    )
    h_ref = ref_planner.precompute_heuristic()
    h_arr = arr_planner.precompute_heuristic()
    assert np.array_equal(np.isfinite(h_ref), np.isfinite(h_arr))
    finite = np.isfinite(h_ref)
    np.testing.assert_allclose(
        h_arr[finite], h_ref[finite], rtol=0.0, atol=1e-9
    )
    start = (2, 2) if not field.obstacles[2, 2] else tuple(
        int(v) for v in np.argwhere(~field.obstacles)[0]
    )
    ref = ref_planner.plan(start)
    arr = arr_planner.plan(start)
    assert arr.found == ref.found
    assert arr.cost == pytest.approx(ref.cost, abs=1e-9)


# -- nearest neighbors / ICP ---------------------------------------------------


@pytest.mark.parametrize("seed", [0, 2])
def test_nn_batch_matches_kdtree(seed):
    rng = np.random.default_rng(seed)
    target = rng.random((600, 3))
    queries = rng.random((250, 3))
    tree = KDTree.build(target)
    idx, dist = nearest_neighbors_batch(target, queries)
    assert np.array_equal(idx, np.argmin(
        ((queries[:, None, :] - target[None, :, :]) ** 2).sum(axis=2), axis=1
    ))
    for i, q in enumerate(queries):
        _, _, d = tree.nearest(q)
        assert d == pytest.approx(dist[i], abs=1e-9)


def test_icp_vectorized_identical_correspondences():
    rng = np.random.default_rng(4)
    target = rng.random((400, 3))
    # A slightly rotated/translated subset as the source cloud.
    angle = 0.05
    rot = np.array(
        [
            [math.cos(angle), -math.sin(angle), 0.0],
            [math.sin(angle), math.cos(angle), 0.0],
            [0.0, 0.0, 1.0],
        ]
    )
    source = target[:300] @ rot.T + np.array([0.02, -0.01, 0.03])
    ref = icp(source, target, max_iterations=10, correspondence="brute")
    vec = icp(source, target, max_iterations=10, backend="vectorized")
    # Same argmin arithmetic -> identical correspondence trajectory.
    assert ref.iterations == vec.iterations
    np.testing.assert_array_equal(
        np.asarray(ref.error_history), np.asarray(vec.error_history)
    )
    np.testing.assert_array_equal(
        ref.transform.rotation, vec.transform.rotation
    )
    np.testing.assert_array_equal(
        ref.transform.translation, vec.transform.translation
    )


def test_icp_rejects_unknown_backend():
    pts = np.zeros((4, 3))
    with pytest.raises(ValueError):
        icp(pts, pts, backend="fpga")
