"""Tests for the MovingAI .map parser."""

import numpy as np
import pytest

from repro.envs.mapgen import city_like
from repro.envs.movingai import load_movingai, parse_movingai, save_movingai

SAMPLE = """type octile
height 4
width 6
map
......
..@@..
..@@..
.T..W.
"""


def test_parse_sample():
    grid = parse_movingai(SAMPLE)
    assert grid.rows == 4
    assert grid.cols == 6
    assert grid.is_occupied(1, 2)
    assert grid.is_occupied(3, 1)  # tree
    assert grid.is_occupied(3, 4)  # water
    assert not grid.is_occupied(0, 0)


def test_parse_passable_g():
    grid = parse_movingai("type octile\nheight 1\nwidth 2\nmap\n.G\n")
    assert not grid.cells.any()


def test_parse_missing_header_raises():
    with pytest.raises(ValueError, match="missing"):
        parse_movingai("......\n......")


def test_parse_short_body_raises():
    with pytest.raises(ValueError, match="rows"):
        parse_movingai("type octile\nheight 5\nwidth 6\nmap\n......\n")


def test_parse_short_row_raises():
    with pytest.raises(ValueError, match="cols"):
        parse_movingai("type octile\nheight 1\nwidth 6\nmap\n...\n")


def test_parse_unknown_terrain_raises():
    with pytest.raises(ValueError, match="unknown terrain"):
        parse_movingai("type octile\nheight 1\nwidth 3\nmap\n.?.\n")


def test_round_trip(tmp_path):
    grid = city_like(rows=32, cols=32, seed=5)
    path = tmp_path / "city.map"
    save_movingai(grid, path)
    loaded = load_movingai(path)
    assert np.array_equal(loaded.cells, grid.cells)


def test_resolution_passthrough():
    grid = parse_movingai(SAMPLE, resolution=0.5)
    assert grid.resolution == 0.5
