"""Tests for text reporting."""

from repro.harness.profiler import PhaseProfiler
from repro.harness.reporting import (
    characterization_table,
    format_table,
    fractions_table,
    result_summary,
)
from repro.harness.runner import KernelResult


def _fake_result() -> KernelResult:
    prof = PhaseProfiler()
    with prof.phase("collision"):
        pass
    with prof.phase("search"):
        pass
    return KernelResult(
        kernel="04.pp2d",
        stage="planning",
        output=None,
        profiler=prof,
        roi_time=0.5,
        metrics={"cost": 12.5},
    )


def test_format_table_alignment():
    text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("a")
    assert "---" in lines[1]


def test_format_table_empty_rows():
    text = format_table(["x"], [])
    assert "x" in text


def test_result_summary_mentions_kernel_and_metrics():
    text = result_summary(_fake_result())
    assert "04.pp2d" in text
    assert "cost" in text
    assert "ROI time" in text


def test_characterization_table_lists_dominant():
    text = characterization_table([_fake_result()])
    assert "04.pp2d" in text
    assert "planning" in text


def test_fractions_table():
    text = fractions_table({"01.pfl": {"raycast": 0.7, "weight": 0.3}})
    assert "raycast" in text
    assert "70.0%" in text
