"""Tests for Dijkstra and the backward-Dijkstra heuristic tables."""

import math

import numpy as np
import pytest

from repro.search.dijkstra import (
    backward_dijkstra_grid,
    dijkstra,
    shortest_grid_path,
)


class _Chain:
    def __init__(self, n):
        self.n = n

    def successors(self, state):
        if state + 1 < self.n:
            yield state + 1, 2.0

    def heuristic(self, state):
        return 0.0

    def is_goal(self, state):
        return False


def test_dijkstra_chain_costs():
    dist = dijkstra(_Chain(5), 0)
    assert dist == {0: 0.0, 1: 2.0, 2: 4.0, 3: 6.0, 4: 8.0}


def test_dijkstra_max_expansions():
    dist = dijkstra(_Chain(100), 0, max_expansions=3)
    assert len(dist) <= 5


def test_backward_dijkstra_uniform_grid_is_chebyshev_like():
    cost = np.ones((10, 10))
    table = backward_dijkstra_grid(cost, [(0, 0)])
    # Diagonal moves cost sqrt(2): distance to (3, 4) is 3*sqrt2 + 1.
    assert table[3, 4] == pytest.approx(3 * math.sqrt(2) + 1)
    assert table[0, 0] == 0.0


def test_backward_dijkstra_multiple_goals_takes_nearest():
    cost = np.ones((5, 9))
    table = backward_dijkstra_grid(cost, [(2, 0), (2, 8)])
    assert table[2, 1] == pytest.approx(1.0)
    assert table[2, 7] == pytest.approx(1.0)
    assert table[2, 4] == pytest.approx(4.0)


def test_backward_dijkstra_blocks_obstacles():
    cost = np.ones((3, 5))
    obstacles = np.zeros((3, 5), dtype=bool)
    obstacles[:, 2] = True  # full wall
    table = backward_dijkstra_grid(cost, [(1, 0)], obstacles)
    assert np.isinf(table[1, 4])
    assert np.isinf(table[0, 2])


def test_backward_dijkstra_cost_terrain_detours():
    """Expensive cells are avoided when a cheap detour exists."""
    cost = np.ones((5, 5))
    cost[2, 1:4] = 100.0  # expensive band
    table = backward_dijkstra_grid(cost, [(0, 2)])
    direct_through_band = 100.0  # any path through row 2's band pays >= 100
    assert table[4, 2] < direct_through_band


def test_backward_dijkstra_goal_out_of_bounds_raises():
    with pytest.raises(ValueError):
        backward_dijkstra_grid(np.ones((3, 3)), [(5, 5)])


def test_backward_dijkstra_blocked_goal_gives_all_inf():
    obstacles = np.zeros((3, 3), dtype=bool)
    obstacles[1, 1] = True
    table = backward_dijkstra_grid(np.ones((3, 3)), [(1, 1)], obstacles)
    assert np.isinf(table).all()


def test_backward_dijkstra_is_admissible_heuristic():
    """Property: the table is a valid lower bound along 8-connected paths."""
    rng = np.random.default_rng(0)
    cost = rng.uniform(1.0, 3.0, size=(12, 12))
    obstacles = rng.random((12, 12)) < 0.15
    goal = (6, 6)
    obstacles[goal] = False
    table = backward_dijkstra_grid(cost, [goal], obstacles)
    # Consistency: h(u) <= step_cost(u, v) + h(v) for all free neighbors.
    for r in range(12):
        for c in range(12):
            if obstacles[r, c] or not np.isfinite(table[r, c]):
                continue
            for dr in (-1, 0, 1):
                for dc in (-1, 0, 1):
                    if dr == dc == 0:
                        continue
                    nr, nc = r + dr, c + dc
                    if not (0 <= nr < 12 and 0 <= nc < 12):
                        continue
                    if obstacles[nr, nc]:
                        continue
                    step = math.hypot(dr, dc) * cost[r, c]
                    assert table[r, c] <= step + table[nr, nc] + 1e-9


def test_shortest_grid_path_simple():
    blocked = np.zeros((5, 5), dtype=bool)
    path = shortest_grid_path(blocked, (0, 0), (4, 4))
    assert path[0] == (0, 0)
    assert path[-1] == (4, 4)
    assert len(path) == 5  # pure diagonal


def test_shortest_grid_path_routes_around_wall():
    blocked = np.zeros((5, 5), dtype=bool)
    blocked[2, :4] = True
    path = shortest_grid_path(blocked, (0, 0), (4, 0))
    assert path
    assert all(not blocked[r, c] for r, c in path)


def test_shortest_grid_path_no_route():
    blocked = np.zeros((5, 5), dtype=bool)
    blocked[2, :] = True
    assert shortest_grid_path(blocked, (0, 0), (4, 0)) == []


def test_shortest_grid_path_blocked_endpoint():
    blocked = np.zeros((3, 3), dtype=bool)
    blocked[0, 0] = True
    assert shortest_grid_path(blocked, (0, 0), (2, 2)) == []
    assert shortest_grid_path(blocked, (2, 2), (0, 0)) == []


def test_shortest_grid_path_steps_are_adjacent():
    blocked = np.zeros((8, 8), dtype=bool)
    blocked[3:6, 3:6] = True
    path = shortest_grid_path(blocked, (0, 0), (7, 7))
    for (r0, c0), (r1, c1) in zip(path[:-1], path[1:]):
        assert max(abs(r1 - r0), abs(c1 - c0)) == 1
