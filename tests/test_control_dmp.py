"""Tests for dynamic movement primitives (13.dmp)."""

import numpy as np
import pytest

from repro.control.dmp import (
    DmpConfig,
    DmpKernel,
    DynamicMovementPrimitive,
    demonstration_trajectory,
)
from repro.harness.profiler import PhaseProfiler


def test_validation():
    with pytest.raises(ValueError):
        DynamicMovementPrimitive(n_basis=1)
    dmp = DynamicMovementPrimitive()
    with pytest.raises(RuntimeError):
        dmp.rollout(dt=0.01)
    with pytest.raises(ValueError):
        dmp.fit(np.zeros((2, 2)), dt=0.01)


def test_demonstration_shapes():
    demo = demonstration_trajectory(steps=100)
    assert demo.shape == (100, 2)
    with pytest.raises(ValueError):
        demonstration_trajectory(kind="spiral")


def test_rollout_starts_at_y0_and_converges_to_goal():
    demo = demonstration_trajectory(steps=150)
    dmp = DynamicMovementPrimitive(n_basis=25)
    dmp.fit(demo, dt=0.01)
    ys, vs, accs = dmp.rollout(dt=0.005)
    assert np.allclose(ys[0], demo[0], atol=1e-9)
    assert np.linalg.norm(ys[-1] - demo[-1]) < 0.15
    # Velocity starts and ends near zero (discrete DMP property).
    assert np.linalg.norm(vs[0]) < 1e-9
    assert np.linalg.norm(vs[-1]) < 1.0


def test_rollout_reproduces_demonstration_shape():
    demo = demonstration_trajectory(steps=200)
    dmp = DynamicMovementPrimitive(n_basis=30)
    dmp.fit(demo, dt=0.01)
    ys, _, _ = dmp.rollout(dt=0.01)
    resampled = np.column_stack(
        [
            np.interp(np.linspace(0, 1, len(ys)),
                      np.linspace(0, 1, len(demo)), demo[:, d])
            for d in range(2)
        ]
    )
    rms = float(np.sqrt(np.mean((ys - resampled) ** 2)))
    # The S-curve spans ~15 m; tracking within ~1 m RMS shows the learned
    # forcing term shapes the attractor (an unforced spring would cut
    # straight to the goal, several meters off).
    assert rms < 1.2


def test_unforced_dmp_is_worse_than_fitted():
    demo = demonstration_trajectory(steps=200)
    fitted = DynamicMovementPrimitive(n_basis=30)
    fitted.fit(demo, dt=0.01)
    ys_fit, _, _ = fitted.rollout(dt=0.01)
    unforced = DynamicMovementPrimitive(n_basis=30)
    unforced.fit(demo, dt=0.01)
    unforced.weights = np.zeros_like(unforced.weights)
    ys_plain, _, _ = unforced.rollout(dt=0.01)
    ref = np.column_stack(
        [
            np.interp(np.linspace(0, 1, len(ys_fit)),
                      np.linspace(0, 1, len(demo)), demo[:, d])
            for d in range(2)
        ]
    )
    err_fit = np.sqrt(np.mean((ys_fit - ref) ** 2))
    err_plain = np.sqrt(np.mean((ys_plain - ref) ** 2))
    assert err_fit < err_plain


def test_goal_change_generalizes():
    """A DMP replayed toward a new goal still lands on the new goal."""
    demo = demonstration_trajectory(steps=150)
    dmp = DynamicMovementPrimitive(n_basis=25)
    dmp.fit(demo, dt=0.01)
    new_goal = demo[-1] + np.array([2.0, -1.0])
    ys, _, _ = dmp.rollout(dt=0.005, goal=new_goal)
    assert np.linalg.norm(ys[-1] - new_goal) < 0.3


def test_temporal_scaling():
    demo = demonstration_trajectory(steps=150)
    dmp = DynamicMovementPrimitive(n_basis=25)
    dmp.fit(demo, dt=0.01)
    fast, _, _ = dmp.rollout(dt=0.005, tau=dmp.tau / 2.0)
    slow, _, _ = dmp.rollout(dt=0.005, tau=dmp.tau)
    assert len(fast) < len(slow)
    # Both still end at the goal.
    assert np.linalg.norm(fast[-1] - demo[-1]) < 0.3


def test_profiler_phases():
    prof = PhaseProfiler()
    dmp = DynamicMovementPrimitive(n_basis=20, profiler=prof)
    dmp.fit(demonstration_trajectory(steps=100), dt=0.01)
    dmp.rollout(dt=0.01)
    assert "fit" in prof.stats
    assert "integrate" in prof.stats
    assert "basis_eval" in prof.stats
    assert prof.counters["basis_evaluations"] > 0


def test_kernel_end_to_end():
    result = DmpKernel().run(DmpConfig(demo_steps=120, dt=0.01))
    out = result.output
    assert out["endpoint_error"] < 0.3
    assert out["trajectory"].shape == out["velocity"].shape
    fr = result.profiler.fractions()
    assert fr.get("integrate", 0) + fr.get("basis_eval", 0) > 0.6
