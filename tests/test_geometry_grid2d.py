"""Tests for the 2D occupancy grid."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.geometry.grid2d import OccupancyGrid2D


def test_empty_grid_is_all_free():
    grid = OccupancyGrid2D.empty(5, 7)
    assert grid.rows == 5
    assert grid.cols == 7
    assert grid.occupancy_ratio() == 0.0


def test_constructor_validates_shape():
    with pytest.raises(ValueError):
        OccupancyGrid2D(np.zeros(5, dtype=bool))


def test_constructor_validates_resolution():
    with pytest.raises(ValueError):
        OccupancyGrid2D.empty(3, 3, resolution=0.0)


def test_world_cell_round_trip():
    grid = OccupancyGrid2D.empty(10, 10, resolution=0.5, origin=(2.0, -1.0))
    row, col = 4, 7
    x, y = grid.cell_to_world(row, col)
    assert grid.world_to_cell(x, y) == (row, col)


def test_out_of_bounds_counts_as_occupied():
    grid = OccupancyGrid2D.empty(4, 4)
    assert grid.is_occupied(-1, 0)
    assert grid.is_occupied(0, 4)
    assert grid.is_occupied_world(-0.5, 0.5)


def test_set_and_query_occupancy():
    grid = OccupancyGrid2D.empty(4, 4)
    grid.set_occupied(2, 3)
    assert grid.is_occupied(2, 3)
    grid.set_occupied(2, 3, False)
    assert not grid.is_occupied(2, 3)


def test_set_occupied_out_of_bounds_raises():
    grid = OccupancyGrid2D.empty(4, 4)
    with pytest.raises(IndexError):
        grid.set_occupied(9, 9)


def test_fill_rect_clips_to_bounds():
    grid = OccupancyGrid2D.empty(5, 5)
    grid.fill_rect(-3, -3, 1, 1)
    assert grid.cells[:2, :2].all()
    assert not grid.cells[2:, 2:].any()


def test_fill_rect_accepts_reversed_corners():
    grid = OccupancyGrid2D.empty(5, 5)
    grid.fill_rect(3, 3, 1, 1)
    assert grid.cells[1:4, 1:4].all()


def test_fill_border():
    grid = OccupancyGrid2D.empty(5, 5)
    grid.fill_border(1)
    assert grid.cells[0].all() and grid.cells[-1].all()
    assert grid.cells[:, 0].all() and grid.cells[:, -1].all()
    assert not grid.cells[1:-1, 1:-1].any()


def test_occupied_world_batch_matches_scalar():
    grid = OccupancyGrid2D.empty(10, 10)
    grid.fill_rect(3, 3, 6, 6)
    xs = np.array([0.5, 4.5, 9.5, -1.0, 20.0])
    ys = np.array([0.5, 4.5, 9.5, 5.0, 5.0])
    batch = grid.occupied_world_batch(xs, ys)
    for x, y, got in zip(xs, ys, batch):
        assert got == grid.is_occupied_world(x, y)


def test_inflate_grows_obstacles():
    grid = OccupancyGrid2D.empty(11, 11)
    grid.set_occupied(5, 5)
    inflated = grid.inflate(2.0)
    # Chebyshev ball of radius 2 around (5, 5).
    assert inflated.cells[3:8, 3:8].all()
    assert not inflated.cells[0, 0]
    # Original untouched.
    assert grid.cells.sum() == 1


def test_inflate_zero_radius_is_copy():
    grid = OccupancyGrid2D.empty(5, 5)
    grid.set_occupied(2, 2)
    out = grid.inflate(0.0)
    assert np.array_equal(out.cells, grid.cells)
    out.set_occupied(0, 0)
    assert not grid.is_occupied(0, 0)


def test_inflate_is_memoized_by_content_and_radius(tmp_path):
    from repro.envs.cache import WorkloadCache, set_default_cache

    cache = WorkloadCache(cache_dir=str(tmp_path / "cache"))
    set_default_cache(cache)
    try:
        grid = OccupancyGrid2D.empty(16, 16)
        grid.fill_rect(4, 4, 8, 8)
        first = grid.inflate(1.0)
        assert cache.stats.misses == 1
        again = grid.inflate(1.0)
        assert cache.stats.memory_hits == 1  # dilation skipped
        assert np.array_equal(again.cells, first.cells)
        # A different radius (or different cells) is a different key.
        grid.inflate(2.0)
        assert cache.stats.misses == 2
        twin = OccupancyGrid2D.empty(16, 16)
        twin.fill_rect(4, 4, 8, 8)
        twin.inflate(1.0)  # same content, same key: hit
        assert cache.stats.misses == 2
        changed = OccupancyGrid2D.empty(16, 16)
        changed.fill_rect(4, 4, 8, 9)
        changed.inflate(1.0)
        assert cache.stats.misses == 3
        # cache=False bypasses without touching the counters.
        misses = cache.stats.misses
        uncached = grid.inflate(1.0, cache=False)
        assert np.array_equal(uncached.cells, first.cells)
        assert cache.stats.misses == misses
        # The category shows up in the observability breakdown.
        assert cache.stats.as_dict()["per_category"]["inflate2d"] >= 3
    finally:
        set_default_cache(None)


def test_inflate_cached_result_is_isolated_from_caller_mutation(tmp_path):
    from repro.envs.cache import WorkloadCache, set_default_cache

    cache = WorkloadCache(cache_dir=str(tmp_path / "cache"))
    set_default_cache(cache)
    try:
        grid = OccupancyGrid2D.empty(8, 8)
        grid.set_occupied(3, 3)
        first = grid.inflate(1.0)
        first.set_occupied(0, 0)  # mutate the returned grid
        second = grid.inflate(1.0)  # served from cache
        assert not second.is_occupied(0, 0)
    finally:
        set_default_cache(None)


@given(st.integers(1, 4))
def test_scaled_preserves_occupancy_ratio(factor):
    grid = OccupancyGrid2D.empty(6, 6)
    grid.fill_rect(1, 1, 3, 4)
    scaled = grid.scaled(factor)
    assert scaled.rows == grid.rows * factor
    assert scaled.occupancy_ratio() == pytest.approx(grid.occupancy_ratio())
    # World extent is preserved: finer cells, same meters.
    assert scaled.width == pytest.approx(grid.width)


def test_scaled_rejects_bad_factor():
    with pytest.raises(ValueError):
        OccupancyGrid2D.empty(3, 3).scaled(0)


def test_sample_free_point_is_free(rng):
    grid = OccupancyGrid2D.empty(10, 10)
    grid.fill_rect(0, 0, 9, 4)  # left half occupied
    for _ in range(20):
        x, y = grid.sample_free_point(rng)
        assert not grid.is_occupied_world(x, y)


def test_sample_free_cell_full_grid_raises(rng):
    grid = OccupancyGrid2D(np.ones((3, 3), dtype=bool))
    with pytest.raises(ValueError):
        grid.sample_free_cell(rng)


def test_free_cells_iterates_exactly_free():
    grid = OccupancyGrid2D.empty(3, 3)
    grid.set_occupied(1, 1)
    free = set(grid.free_cells())
    assert (1, 1) not in free
    assert len(free) == 8


def test_copy_is_deep():
    grid = OccupancyGrid2D.empty(3, 3)
    clone = grid.copy()
    clone.set_occupied(0, 0)
    assert not grid.is_occupied(0, 0)


def test_world_extent_properties():
    grid = OccupancyGrid2D.empty(4, 8, resolution=0.5)
    assert grid.width == pytest.approx(4.0)
    assert grid.height == pytest.approx(2.0)
    assert grid.in_bounds_world(3.9, 1.9)
    assert not grid.in_bounds_world(4.1, 1.0)
