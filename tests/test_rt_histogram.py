"""Tests for the rt latency histogram: exactness, merging, bucketing."""

from __future__ import annotations

import math
import random

import pytest

from repro.rt.histogram import LatencyHistogram


def _oracle_quantile(values, q):
    """Nearest-rank quantile of a fully sorted list (the ground truth)."""
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


QUANTILES = (0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0)


def test_quantiles_match_sorted_oracle_lognormal():
    rng = random.Random(42)
    values = [rng.lognormvariate(-7.0, 2.0) for _ in range(5000)]
    hist = LatencyHistogram.from_values(values)
    for q in QUANTILES:
        assert hist.quantile(q) == _oracle_quantile(values, q), q


def test_quantiles_match_sorted_oracle_uniform_and_heavy_tail():
    rng = random.Random(7)
    values = [rng.uniform(1e-6, 1e-3) for _ in range(997)]
    values += [rng.uniform(0.5, 50.0) for _ in range(13)]  # far tail
    hist = LatencyHistogram.from_values(values)
    for q in QUANTILES:
        assert hist.quantile(q) == _oracle_quantile(values, q), q


def test_quantile_edge_ranks():
    hist = LatencyHistogram.from_values([3.0, 1.0, 2.0])
    assert hist.quantile(0.0) == 1.0
    assert hist.quantile(1.0) == 3.0
    assert hist.quantile(0.5) == 2.0


def test_single_value_all_quantiles():
    hist = LatencyHistogram.from_values([0.25])
    for q in QUANTILES:
        assert hist.quantile(q) == 0.25


def test_min_max_mean_sum_count():
    hist = LatencyHistogram.from_values([0.1, 0.2, 0.3, 0.4])
    assert hist.count == 4
    assert hist.min == 0.1
    assert hist.max == 0.4
    assert hist.sum == pytest.approx(1.0)
    assert hist.mean == pytest.approx(0.25)


def test_values_at_or_below_floor_land_in_bucket_zero():
    hist = LatencyHistogram(min_value=1e-6)
    hist.record(0.0)
    hist.record(1e-9)
    assert hist.count == 2
    assert hist.quantile(1.0) == 1e-9


def test_bucket_index_is_monotonic():
    """Sorted inputs must map to non-decreasing bucket indices."""
    hist = LatencyHistogram()
    rng = random.Random(3)
    values = sorted(rng.lognormvariate(-8.0, 3.0) for _ in range(2000))
    indices = [hist._index(v) for v in values]
    assert indices == sorted(indices)


def test_bucket_lower_bound_brackets_members():
    hist = LatencyHistogram()
    rng = random.Random(5)
    for _ in range(500):
        value = rng.lognormvariate(-6.0, 2.0)
        index = hist._index(value)
        assert hist.bucket_lower_bound(index) <= value
        assert value < hist.bucket_lower_bound(index + 1) or index == 0


def test_merge_equals_recording_everything_in_one():
    rng = random.Random(11)
    a_values = [rng.expovariate(1000.0) for _ in range(700)]
    b_values = [rng.expovariate(10.0) for _ in range(300)]
    a = LatencyHistogram.from_values(a_values)
    b = LatencyHistogram.from_values(b_values)
    a.merge(b)
    combined = LatencyHistogram.from_values(a_values + b_values)
    assert a.count == combined.count
    assert a.min == combined.min
    assert a.max == combined.max
    assert a.sum == pytest.approx(combined.sum)
    for q in QUANTILES:
        assert a.quantile(q) == combined.quantile(q), q


def test_merge_rejects_different_geometry():
    a = LatencyHistogram(min_value=1e-6)
    b = LatencyHistogram(min_value=1e-3)
    with pytest.raises(ValueError, match="geometry"):
        a.merge(b)


def test_empty_histogram_behavior():
    hist = LatencyHistogram()
    assert hist.count == 0
    assert hist.mean == 0.0
    assert hist.summary() == {"count": 0}
    with pytest.raises(ValueError, match="empty"):
        hist.quantile(0.5)


def test_record_rejects_negative_and_nan():
    hist = LatencyHistogram()
    with pytest.raises(ValueError):
        hist.record(-1.0)
    with pytest.raises(ValueError):
        hist.record(float("nan"))


def test_quantile_rejects_out_of_range_q():
    hist = LatencyHistogram.from_values([1.0])
    with pytest.raises(ValueError):
        hist.quantile(1.5)
    with pytest.raises(ValueError):
        hist.quantile(-0.1)


def test_summary_scale_converts_units():
    hist = LatencyHistogram.from_values([0.001, 0.002])
    summary = hist.summary(scale=1e3)
    assert summary["min"] == pytest.approx(1.0)
    assert summary["max"] == pytest.approx(2.0)
    assert summary["count"] == 2
    assert set(summary) == {
        "count", "mean", "min", "p50", "p90", "p99", "p999", "max"
    }


def test_bucket_counts_sum_to_count():
    rng = random.Random(13)
    hist = LatencyHistogram.from_values(
        rng.lognormvariate(-7.0, 1.5) for _ in range(400)
    )
    counts = hist.bucket_counts()
    assert sum(counts.values()) == hist.count
    bounds = list(counts)
    assert bounds == sorted(bounds)


def test_invalid_construction():
    with pytest.raises(ValueError):
        LatencyHistogram(min_value=0.0)
    with pytest.raises(ValueError):
        LatencyHistogram(subbuckets=0)
