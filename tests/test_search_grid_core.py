"""Tests for the flat-array grid search core (bucketed Dijkstra + flat A*).

The load-bearing guarantee is backend equivalence: on any grid, the
batched/bucketed engines must return the same optimal costs, valid paths,
and operation counters as the scalar heapq references.  Hypothesis
drives random occupancy grids and cost fields through both backends.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.search.astar import weighted_astar
from repro.search.dijkstra import backward_dijkstra_grid
from repro.search.grid_core import (
    MOVES_2D_8,
    MOVES_3D_26,
    BucketQuantizationError,
    BucketQueue,
    GridSweepStats,
    astar_grid_2d,
    astar_grid_3d,
    dijkstra_grid_bucketed,
)


# -- reference search spaces (scalar, tuple-state) ---------------------------


class _Grid2DSpace:
    """8-connected reference space with pp2d's float expressions."""

    def __init__(self, cells, goal, resolution=1.0):
        self.cells = cells
        self.goal = goal
        self.res = resolution
        self.rows, self.cols = cells.shape

    def successors(self, state):
        r, c = state
        for dr, dc in MOVES_2D_8:
            nr, nc = r + dr, c + dc
            if 0 <= nr < self.rows and 0 <= nc < self.cols:
                if not self.cells[nr, nc]:
                    yield (nr, nc), math.hypot(dr, dc) * self.res

    def heuristic(self, state):
        return math.hypot(
            state[0] - self.goal[0], state[1] - self.goal[1]
        ) * self.res

    def is_goal(self, state):
        return state == self.goal


class _Grid3DSpace:
    """26-connected reference space with pp3d's float expressions."""

    def __init__(self, cells, goal, resolution=1.0):
        self.cells = cells
        self.goal = goal
        self.res = resolution
        self.nz, self.ny, self.nx = cells.shape

    def successors(self, state):
        z, y, x = state
        for dz, dy, dx in MOVES_3D_26:
            nz, ny, nx = z + dz, y + dy, x + dx
            if (
                0 <= nz < self.nz
                and 0 <= ny < self.ny
                and 0 <= nx < self.nx
                and not self.cells[nz, ny, nx]
            ):
                step = float(math.sqrt(dz * dz + dy * dy + dx * dx))
                yield (nz, ny, nx), step * self.res

    def heuristic(self, state):
        dz = state[0] - self.goal[0]
        dy = state[1] - self.goal[1]
        dx = state[2] - self.goal[2]
        return math.sqrt(dz * dz + dy * dy + dx * dx) * self.res

    def is_goal(self, state):
        return state == self.goal


def _random_grid_2d(seed, rows, cols, density):
    rng = np.random.default_rng(seed)
    cells = rng.random((rows, cols)) < density
    free = np.argwhere(~cells)
    if len(free) < 2:
        cells[0, 0] = cells[rows - 1, cols - 1] = False
        free = np.argwhere(~cells)
    start = tuple(int(v) for v in free[0])
    goal = tuple(int(v) for v in free[-1])
    return cells, start, goal


def _random_grid_3d(seed, nz, ny, nx, density):
    rng = np.random.default_rng(seed)
    cells = rng.random((nz, ny, nx)) < density
    free = np.argwhere(~cells)
    if len(free) < 2:
        cells[0, 0, 0] = cells[nz - 1, ny - 1, nx - 1] = False
        free = np.argwhere(~cells)
    start = tuple(int(v) for v in free[0])
    goal = tuple(int(v) for v in free[-1])
    return cells, start, goal


def _assert_valid_grid_path(path, cells, start, goal, moves, cost, res):
    """The path must be a real free-space walk whose steps sum to cost."""
    assert path[0] == start
    assert path[-1] == goal
    total = 0.0
    for a, b in zip(path, path[1:]):
        delta = tuple(y - x for x, y in zip(a, b))
        assert delta in moves
        assert not cells[b]
        total += math.sqrt(sum(d * d for d in delta)) * res
    assert total == pytest.approx(cost, abs=1e-9)


# -- hypothesis: bucketed Dijkstra vs heapq reference ------------------------


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    rows=st.integers(3, 14),
    cols=st.integers(3, 14),
    density=st.floats(0.0, 0.5),
    unit_costs=st.booleans(),
    n_goals=st.integers(1, 3),
)
def test_bucketed_dijkstra_matches_reference(
    seed, rows, cols, density, unit_costs, n_goals
):
    rng = np.random.default_rng(seed)
    blocked = rng.random((rows, cols)) < density
    blocked[0, 0] = False  # at least one free goal candidate
    if unit_costs:
        cost = np.ones((rows, cols))
    else:
        cost = rng.uniform(0.5, 3.0, size=(rows, cols))
    free = np.argwhere(~blocked)
    picks = rng.integers(0, len(free), size=n_goals)
    goals = [tuple(int(v) for v in free[p]) for p in picks]

    ref = backward_dijkstra_grid(cost, goals, blocked, backend="reference")
    fast = dijkstra_grid_bucketed(cost, goals, blocked)

    assert np.array_equal(np.isfinite(ref), np.isfinite(fast))
    finite = np.isfinite(ref)
    assert np.allclose(ref[finite], fast[finite], rtol=0.0, atol=1e-9)
    # Goal cells are distance zero; blocked cells are unreachable.
    for g in goals:
        assert fast[g] == 0.0
    assert np.all(np.isinf(fast[blocked]))


# -- hypothesis: flat-array A* vs weighted_astar reference -------------------


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    rows=st.integers(3, 14),
    cols=st.integers(3, 14),
    density=st.floats(0.0, 0.45),
    epsilon=st.sampled_from([1.0, 1.5, 3.0]),
)
def test_astar_2d_matches_reference(seed, rows, cols, density, epsilon):
    cells, start, goal = _random_grid_2d(seed, rows, cols, density)
    space = _Grid2DSpace(cells, goal)
    ref = weighted_astar(space, start, epsilon=epsilon)
    flat, path = astar_grid_2d(cells, start, goal, epsilon=epsilon)

    assert flat.found == ref.found
    assert flat.expansions == ref.expansions
    assert flat.generated == ref.generated
    if ref.found:
        assert flat.cost == ref.cost  # identical float arithmetic: bitwise
        assert path == ref.path
        _assert_valid_grid_path(
            path, cells, start, goal, set(MOVES_2D_8), flat.cost, 1.0
        )


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    nz=st.integers(2, 6),
    ny=st.integers(2, 7),
    nx=st.integers(2, 7),
    density=st.floats(0.0, 0.4),
    epsilon=st.sampled_from([1.0, 2.0]),
)
def test_astar_3d_matches_reference(seed, nz, ny, nx, density, epsilon):
    cells, start, goal = _random_grid_3d(seed, nz, ny, nx, density)
    space = _Grid3DSpace(cells, goal)
    ref = weighted_astar(space, start, epsilon=epsilon)
    flat, path = astar_grid_3d(cells, start, goal, epsilon=epsilon)

    assert flat.found == ref.found
    assert flat.expansions == ref.expansions
    assert flat.generated == ref.generated
    if ref.found:
        assert flat.cost == ref.cost
        assert path == ref.path
        _assert_valid_grid_path(
            path, cells, start, goal, set(MOVES_3D_26), flat.cost, 1.0
        )


def test_astar_2d_respects_resolution_and_unreachable():
    cells = np.zeros((5, 5), dtype=bool)
    cells[:, 2] = True  # full wall: right half unreachable
    flat, path = astar_grid_2d(cells, (0, 0), (0, 4), resolution=0.25)
    assert not flat.found and path == []
    cells[4, 2] = False  # open a gap
    flat, path = astar_grid_2d(cells, (0, 0), (0, 4), resolution=0.25)
    assert flat.found
    space = _Grid2DSpace(cells, (0, 4), resolution=0.25)
    ref = weighted_astar(space, (0, 0))
    assert flat.cost == ref.cost


# -- BucketQueue unit tests --------------------------------------------------


@pytest.mark.parametrize("width", [0.0, -1.0, float("inf"), float("nan")])
def test_bucket_queue_rejects_bad_width(width):
    with pytest.raises(BucketQuantizationError):
        BucketQueue(width)


def test_bucket_queue_pops_lowest_bucket_first():
    q = BucketQueue(1.0)
    q.push_batch(np.array([10, 11]), np.array([5.2, 5.7]))
    q.push_batch(np.array([3]), np.array([1.1]))
    idx, prio = q.pop_batch()
    assert idx.tolist() == [3]
    idx, prio = q.pop_batch()
    assert sorted(idx.tolist()) == [10, 11]
    assert q.pop_batch() is None
    assert not q
    assert q.pushes == 3
    assert q.pop_batches == 2


def test_bucket_queue_multi_bucket_batch_grouping():
    q = BucketQueue(1.0)
    q.push_batch(
        np.array([1, 2, 3, 4]), np.array([3.5, 0.5, 3.9, 0.1])
    )
    idx, prio = q.pop_batch()
    assert sorted(idx.tolist()) == [2, 4]
    assert sorted(prio.tolist()) == [0.1, 0.5]
    idx, _ = q.pop_batch()
    assert sorted(idx.tolist()) == [1, 3]


def test_bucket_queue_ulp_guard_clamps_to_cursor():
    # A push that bins *below* the bucket being drained (the one-ulp
    # rounding case) must land in the current bucket, not a past one —
    # otherwise it would never be popped.
    q = BucketQueue(1.0)
    q.push_batch(np.array([1]), np.array([2.5]))
    q.pop_batch()  # drains bucket 2, cursor now 2
    q.push_batch(np.array([2]), np.array([0.1]))  # bins to 0, clamped to 2
    batch = q.pop_batch()
    assert batch is not None
    assert batch[0].tolist() == [2]


# -- bucketed sweep unit tests ----------------------------------------------


def test_dijkstra_bucketed_goal_outside_raises():
    with pytest.raises(ValueError, match="outside the grid"):
        dijkstra_grid_bucketed(np.ones((4, 4)), [(4, 0)])


def test_dijkstra_bucketed_blocked_goal_skipped():
    blocked = np.zeros((4, 4), dtype=bool)
    blocked[1, 1] = True
    table = dijkstra_grid_bucketed(np.ones((4, 4)), [(1, 1)], blocked)
    assert np.all(np.isinf(table))


def test_dijkstra_bucketed_unbucketable_costs_raise():
    cost = np.ones((4, 4))
    cost[2, 2] = 0.0  # a zero-cost free cell: no positive minimum
    with pytest.raises(BucketQuantizationError):
        dijkstra_grid_bucketed(cost, [(0, 0)])


def test_dijkstra_bucketed_stats_counters():
    stats = GridSweepStats()
    table = dijkstra_grid_bucketed(np.ones((6, 6)), [(0, 0)], stats=stats)
    assert np.isfinite(table).all()
    assert stats.expansions == 36  # every cell expanded exactly once
    assert stats.pops == stats.expansions
    assert stats.pushes >= stats.pops  # stale entries inflate pushes only
    assert stats.batches > 0


def test_backward_dijkstra_backend_validation_and_fallback():
    cost = np.ones((5, 5))
    cost[3, 3] = 0.0  # unbucketable
    with pytest.raises(ValueError, match="backend"):
        backward_dijkstra_grid(cost, [(0, 0)], backend="gpu")
    with pytest.raises(BucketQuantizationError):
        backward_dijkstra_grid(cost, [(0, 0)], backend="bucketed")
    # auto falls back to the heapq loop and still answers
    auto = backward_dijkstra_grid(cost, [(0, 0)], backend="auto")
    ref = backward_dijkstra_grid(cost, [(0, 0)], backend="reference")
    assert np.array_equal(auto, ref)


def test_backward_dijkstra_auto_is_bitwise_equal_on_unit_costs():
    rng = np.random.default_rng(3)
    blocked = rng.random((40, 40)) < 0.3
    blocked[5, 5] = False
    cost = np.ones((40, 40))
    ref = backward_dijkstra_grid(cost, [(5, 5)], blocked, backend="reference")
    fast = backward_dijkstra_grid(cost, [(5, 5)], blocked, backend="bucketed")
    assert np.array_equal(ref, fast)


def test_backward_dijkstra_accepts_goal_iterator():
    # ``goals`` may be a one-shot iterator; the auto backend must not
    # consume it before a potential heap fallback.
    cost = np.ones((4, 4))
    cost[2, 2] = 0.0
    table = backward_dijkstra_grid(
        cost, iter([(0, 0)]), backend="auto"
    )
    assert table[0, 0] == 0.0
