"""Tests for the 3D voxel grid."""

import numpy as np
import pytest

from repro.geometry.grid3d import OccupancyGrid3D


def test_empty_shape():
    grid = OccupancyGrid3D.empty(4, 5, 6)
    assert grid.shape == (4, 5, 6)
    assert grid.occupancy_ratio() == 0.0


def test_constructor_validates():
    with pytest.raises(ValueError):
        OccupancyGrid3D(np.zeros((3, 3), dtype=bool))
    with pytest.raises(ValueError):
        OccupancyGrid3D.empty(2, 2, 2, resolution=-1)


def test_world_cell_round_trip():
    grid = OccupancyGrid3D.empty(8, 8, 8, resolution=0.25, origin=(1, 2, 3))
    zi, yi, xi = 3, 5, 7
    x, y, z = grid.cell_to_world(zi, yi, xi)
    assert grid.world_to_cell(x, y, z) == (zi, yi, xi)


def test_out_of_bounds_is_occupied():
    grid = OccupancyGrid3D.empty(3, 3, 3)
    assert grid.is_occupied(-1, 0, 0)
    assert grid.is_occupied(0, 3, 0)
    assert not grid.is_occupied(1, 1, 1)


def test_fill_box():
    grid = OccupancyGrid3D.empty(5, 5, 5)
    grid.fill_box(1, 1, 1, 3, 3, 3)
    assert grid.cells[1:4, 1:4, 1:4].all()
    assert not grid.cells[0].any()


def test_fill_box_clips_and_reorders():
    grid = OccupancyGrid3D.empty(4, 4, 4)
    grid.fill_box(3, 3, 3, -10, -10, -10)
    assert grid.cells.all()


def test_sample_free_cell(rng):
    grid = OccupancyGrid3D.empty(4, 4, 4)
    grid.fill_box(0, 0, 0, 3, 3, 1)  # block the low-x half
    for _ in range(10):
        zi, yi, xi = grid.sample_free_cell(rng)
        assert not grid.is_occupied(zi, yi, xi)


def test_sample_free_cell_full_raises(rng):
    grid = OccupancyGrid3D(np.ones((2, 2, 2), dtype=bool))
    with pytest.raises(ValueError):
        grid.sample_free_cell(rng)
