"""Serialization and environment-fingerprint tests for run records."""

from __future__ import annotations

import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.results import (
    RECORD_SCHEMA_VERSION,
    THREAD_ENV_VARS,
    EnvironmentFingerprint,
    Measurement,
    RunRecord,
    capture_environment,
    pinned_thread_env,
)


def _sample_record() -> RunRecord:
    return RunRecord(
        kind="bench",
        environment=capture_environment(),
        provenance={"seed": 7, "jobs": 2, "smoke": False},
        tags=["full"],
        measurements={
            "raycast.speedup": Measurement(6.5, "ratio", True),
            "raycast.reference_s": Measurement(1.3, "s", False),
            "raycast.ops": Measurement(4096, "count", None),
        },
        detail={"raycast": {"speedup": 6.5}},
    )


def test_record_autogenerates_identity():
    record = _sample_record()
    assert record.schema_version == RECORD_SCHEMA_VERSION
    assert record.created_at.endswith("Z")
    assert "-" in record.run_id and len(record.run_id) > 10


def test_record_roundtrip_through_json():
    record = _sample_record()
    payload = json.loads(json.dumps(record.to_dict()))
    loaded = RunRecord.from_dict(payload)
    assert loaded.kind == record.kind
    assert loaded.run_id == record.run_id
    assert loaded.created_at == record.created_at
    assert loaded.schema_version == record.schema_version
    assert loaded.tags == record.tags
    assert loaded.provenance == record.provenance
    assert loaded.measurements == record.measurements
    assert loaded.detail == record.detail
    assert loaded.environment == record.environment


def test_from_dict_rejects_legacy_documents():
    with pytest.raises(ValueError, match="schema_version"):
        RunRecord.from_dict({"raycast": {"speedup": 6.5}})


def test_metric_access():
    record = _sample_record()
    assert record.metric("raycast.speedup") == 6.5
    assert record.metric("no.such.metric") is None
    assert record.metric_names() == sorted(record.measurements)
    assert record.has_tag("full") and not record.has_tag("smoke")


_NAMES = st.text(
    alphabet=st.sampled_from("abcdefghij._-"), min_size=1, max_size=24
)
_VALUES = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e12, max_value=1e12
)


@settings(max_examples=50, deadline=None)
@given(
    measurements=st.dictionaries(
        _NAMES,
        st.builds(
            Measurement,
            value=_VALUES,
            unit=st.sampled_from(["", "s", "ms", "ratio", "count"]),
            higher_is_better=st.sampled_from([None, True, False]),
        ),
        max_size=8,
    ),
    tags=st.lists(st.sampled_from(["smoke", "full", "legacy-schema"]),
                  max_size=2, unique=True),
)
def test_record_roundtrip_property(measurements, tags):
    record = RunRecord(
        kind="bench", measurements=measurements, tags=list(tags)
    )
    loaded = RunRecord.from_dict(json.loads(json.dumps(record.to_dict())))
    assert loaded.measurements == record.measurements
    assert loaded.tags == record.tags
    assert loaded.run_id == record.run_id


# -- thread-env pinning --------------------------------------------------------


def test_pinned_thread_env_pins_and_restores(monkeypatch):
    for var in THREAD_ENV_VARS:
        monkeypatch.delenv(var, raising=False)
    with pinned_thread_env() as effective:
        for var in THREAD_ENV_VARS:
            assert os.environ[var] == "1"
            assert effective[var] == "1"
    for var in THREAD_ENV_VARS:
        assert var not in os.environ


def test_pinned_thread_env_respects_user_settings(monkeypatch):
    monkeypatch.setenv("OMP_NUM_THREADS", "4")
    with pinned_thread_env() as effective:
        assert os.environ["OMP_NUM_THREADS"] == "4"
        assert effective["OMP_NUM_THREADS"] == "4"
        assert effective["MKL_NUM_THREADS"] == "1"
    assert os.environ["OMP_NUM_THREADS"] == "4"
    assert "MKL_NUM_THREADS" not in os.environ


# -- environment fingerprint ---------------------------------------------------


def test_capture_environment_records_interpreter_and_threads():
    env = capture_environment(thread_env={"OMP_NUM_THREADS": "1"})
    import platform

    assert env.python == platform.python_version()
    assert env.numpy
    assert env.cpu_count >= 1
    assert env.thread_env == {"OMP_NUM_THREADS": "1"}


def test_fingerprint_digest_is_short_and_stable():
    env = EnvironmentFingerprint(python="3.11", numpy="2.0", cpu_count=4)
    assert len(env.digest()) == 12
    assert env.digest() == EnvironmentFingerprint(
        python="3.11", numpy="2.0", cpu_count=4
    ).digest()


def test_fingerprint_differences_name_disagreeing_fields():
    a = EnvironmentFingerprint(python="3.11", numpy="2.0", cpu_count=4)
    b = EnvironmentFingerprint(python="3.12", numpy="2.0", cpu_count=8)
    assert a.differences(b) == ["cpu_count", "python"]
    assert a.differences(a) == []


def test_fingerprint_roundtrip():
    env = capture_environment()
    assert EnvironmentFingerprint.from_dict(env.as_dict()) == env
