"""Fast unit tests for the ablation runners (scaled-down workloads).

The full-size ablations live in ``benchmarks/test_ablations.py``; these
exercise the same code paths in seconds so test failures localize.
"""

import numpy as np
import pytest

from repro.experiments.ablations import (
    ablate_bo_acquisition,
    ablate_ekf_landmarks,
    ablate_epsilon,
    ablate_icp_metric,
    ablate_mpc_horizon,
    ablate_particles,
    ablate_raycast_method,
    ablate_symbolic_heuristics,
)


def test_epsilon_points_are_ordered_and_bounded():
    points = ablate_epsilon(epsilons=[1.0, 3.0])
    assert [p.epsilon for p in points] == [1.0, 3.0]
    assert points[1].cost <= 3.0 * points[0].cost + 1e-9
    assert points[1].expansions <= points[0].expansions


def test_particles_points_fields():
    points = ablate_particles(counts=[100, 200])
    assert points[0].particles == 100
    # At tiny counts total ray work is dominated by per-ray length (lost
    # particles cast long rays), so only basic sanity is asserted here;
    # the linear-scaling claim is checked at realistic counts in
    # benchmarks/test_ablations.py.
    assert all(p.raycast_checks > 0 for p in points)
    assert all(p.roi_time > 0 for p in points)


def test_ekf_landmarks_scaling_fields():
    points = ablate_ekf_landmarks(counts=[4, 12])
    assert points[0].state_dim == 11
    assert points[1].state_dim == 27
    assert points[1].time_per_update > points[0].time_per_update


def test_mpc_horizon_fields():
    points = ablate_mpc_horizon(horizons=[4, 12])
    assert [p.horizon for p in points] == [4, 12]
    assert points[1].roi_time > points[0].roi_time


def test_raycast_method_small():
    result = ablate_raycast_method(n_rays=60)
    assert result.rays == 60
    assert result.undershoots == 0
    assert result.max_disagreement >= 0.0


def test_symbolic_heuristics_blkw_domain():
    points = ablate_symbolic_heuristics(domain="blkw")
    kinds = {p.heuristic for p in points}
    assert kinds == {"goal-count", "hmax", "hadd"}
    assert len({p.plan_length for p in points}) == 1


def test_icp_metric_quick():
    result = ablate_icp_metric(seed=1)
    assert result.p2p_error < 0.05
    assert result.p2plane_error < 0.05


def test_bo_acquisition_single_seed():
    result = ablate_bo_acquisition(seeds=[0])
    assert np.isfinite(result.ucb_best)
    assert np.isfinite(result.ei_best)
