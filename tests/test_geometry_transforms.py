"""Tests for SE(2)/SE(3) transforms."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.geometry.transforms import (
    SE2,
    RigidTransform3D,
    rotation_matrix_2d,
    rotation_matrix_3d,
    wrap_angle,
    wrap_angles,
)

angles = st.floats(-50.0, 50.0, allow_nan=False)
coords = st.floats(-100.0, 100.0, allow_nan=False)


@given(angles)
def test_wrap_angle_range(theta):
    wrapped = wrap_angle(theta)
    assert -math.pi < wrapped <= math.pi


@given(angles)
def test_wrap_angle_preserves_direction(theta):
    assert math.cos(wrap_angle(theta)) == pytest.approx(math.cos(theta), abs=1e-9)
    assert math.sin(wrap_angle(theta)) == pytest.approx(math.sin(theta), abs=1e-9)


def test_wrap_angles_vectorized_matches_scalar():
    values = np.linspace(-10, 10, 101)
    vector = wrap_angles(values)
    for v, w in zip(values, vector):
        assert w == pytest.approx(wrap_angle(v), abs=1e-9)


@given(coords, coords, angles)
def test_se2_compose_with_inverse_is_identity(x, y, theta):
    pose = SE2(x, y, wrap_angle(theta))
    identity = pose @ pose.inverse()
    assert identity.x == pytest.approx(0.0, abs=1e-6)
    assert identity.y == pytest.approx(0.0, abs=1e-6)
    assert wrap_angle(identity.theta) == pytest.approx(0.0, abs=1e-9)


def test_se2_compose_translation():
    a = SE2(1.0, 2.0, math.pi / 2.0)
    b = SE2(3.0, 0.0, 0.0)
    c = a @ b
    # b's x axis maps onto a's y axis after the 90 degree rotation.
    assert c.x == pytest.approx(1.0, abs=1e-12)
    assert c.y == pytest.approx(5.0, abs=1e-12)


def test_se2_apply_matches_compose():
    pose = SE2(1.0, -2.0, 0.7)
    point = (0.5, 0.25)
    via_apply = pose.apply(point)
    via_compose = pose @ SE2(point[0], point[1], 0.0)
    assert via_apply[0] == pytest.approx(via_compose.x)
    assert via_apply[1] == pytest.approx(via_compose.y)


def test_se2_apply_many_matches_apply(rng):
    pose = SE2(0.3, 1.7, -1.1)
    points = rng.normal(size=(10, 2))
    batch = pose.apply_many(points)
    for point, mapped in zip(points, batch):
        expected = pose.apply(tuple(point))
        assert mapped[0] == pytest.approx(expected[0])
        assert mapped[1] == pytest.approx(expected[1])


def test_se2_array_round_trip():
    pose = SE2(1.0, 2.0, 0.5)
    assert SE2.from_array(pose.as_array()) == pose


def test_se2_distance():
    assert SE2(0, 0, 0).distance_to(SE2(3, 4, 1)) == pytest.approx(5.0)


def test_rotation_matrix_2d_orthonormal():
    r = rotation_matrix_2d(0.83)
    assert np.allclose(r @ r.T, np.eye(2))
    assert np.linalg.det(r) == pytest.approx(1.0)


@given(st.floats(-3, 3), st.floats(-1.5, 1.5), st.floats(-3, 3))
def test_rotation_matrix_3d_orthonormal(roll, pitch, yaw):
    r = rotation_matrix_3d(roll, pitch, yaw)
    assert np.allclose(r @ r.T, np.eye(3), atol=1e-9)
    assert np.linalg.det(r) == pytest.approx(1.0, abs=1e-9)


def test_rigid_transform_identity():
    t = RigidTransform3D.identity()
    points = np.array([[1.0, 2.0, 3.0]])
    assert np.allclose(t.apply(points), points)


def test_rigid_transform_inverse_round_trip(rng):
    r = rotation_matrix_3d(0.2, -0.4, 1.1)
    t = RigidTransform3D(r, np.array([1.0, -2.0, 0.5]))
    points = rng.normal(size=(20, 3))
    recovered = t.inverse().apply(t.apply(points))
    assert np.allclose(recovered, points, atol=1e-9)


def test_rigid_transform_compose_order(rng):
    t1 = RigidTransform3D(rotation_matrix_3d(0.3, 0, 0), np.array([1.0, 0, 0]))
    t2 = RigidTransform3D(rotation_matrix_3d(0, 0.5, 0), np.array([0, 2.0, 0]))
    points = rng.normal(size=(5, 3))
    assert np.allclose(
        t1.compose(t2).apply(points), t1.apply(t2.apply(points)), atol=1e-9
    )


def test_rotation_angle():
    r = rotation_matrix_3d(0.0, 0.0, 0.7)
    t = RigidTransform3D(r, np.zeros(3))
    assert t.rotation_angle() == pytest.approx(0.7, abs=1e-9)
    assert RigidTransform3D.identity().rotation_angle() == pytest.approx(0.0)
