"""Tests for the phase profiler."""

import time

import pytest

from repro.harness.profiler import PhaseProfiler


class _FakeClock:
    """Deterministic clock: each call advances by preset increments."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def test_single_phase_accumulates_time():
    clock = _FakeClock()
    prof = PhaseProfiler(clock=clock)
    prof.begin("work")
    clock.advance(2.0)
    prof.end("work")
    assert prof.stats["work"].exclusive_time == pytest.approx(2.0)
    assert prof.stats["work"].inclusive_time == pytest.approx(2.0)
    assert prof.stats["work"].calls == 1


def test_nested_phase_excludes_child_time_from_parent():
    clock = _FakeClock()
    prof = PhaseProfiler(clock=clock)
    prof.begin("outer")
    clock.advance(1.0)
    prof.begin("inner")
    clock.advance(3.0)
    prof.end("inner")
    clock.advance(1.0)
    prof.end("outer")
    assert prof.stats["outer"].exclusive_time == pytest.approx(2.0)
    assert prof.stats["outer"].inclusive_time == pytest.approx(5.0)
    assert prof.stats["inner"].exclusive_time == pytest.approx(3.0)


def test_fractions_partition_total():
    clock = _FakeClock()
    prof = PhaseProfiler(clock=clock)
    with prof.phase("a"):
        clock.advance(1.0)
    with prof.phase("b"):
        clock.advance(3.0)
    fracs = prof.fractions()
    assert fracs["a"] == pytest.approx(0.25)
    assert fracs["b"] == pytest.approx(0.75)
    assert sum(fracs.values()) == pytest.approx(1.0)


def test_fraction_of_unknown_phase_is_zero():
    prof = PhaseProfiler()
    with prof.phase("a"):
        pass
    assert prof.fraction("nonexistent") == 0.0


def test_dominant_phase():
    clock = _FakeClock()
    prof = PhaseProfiler(clock=clock)
    with prof.phase("short"):
        clock.advance(0.1)
    with prof.phase("long"):
        clock.advance(5.0)
    assert prof.dominant_phase() == "long"


def test_dominant_phase_empty_is_none():
    assert PhaseProfiler().dominant_phase() is None


def test_mismatched_phase_end_raises():
    prof = PhaseProfiler()
    prof.begin("a")
    with pytest.raises(RuntimeError, match="mismatched"):
        prof.end("b")


def test_end_without_begin_raises():
    prof = PhaseProfiler()
    with pytest.raises(RuntimeError, match="no open phase"):
        prof.end("a")


def test_counters_accumulate():
    prof = PhaseProfiler()
    prof.count("ops", 5)
    prof.count("ops", 7)
    prof.count("other")
    assert prof.counters == {"ops": 12, "other": 1}


def test_merge_combines_stats_and_counters():
    clock = _FakeClock()
    a = PhaseProfiler(clock=clock)
    with a.phase("x"):
        clock.advance(1.0)
    a.count("n", 2)
    b = PhaseProfiler(clock=clock)
    with b.phase("x"):
        clock.advance(2.0)
    with b.phase("y"):
        clock.advance(1.0)
    b.count("n", 3)
    a.merge(b)
    assert a.stats["x"].exclusive_time == pytest.approx(3.0)
    assert a.stats["x"].calls == 2
    assert a.stats["y"].exclusive_time == pytest.approx(1.0)
    assert a.counters["n"] == 5


def test_reset_clears_state():
    prof = PhaseProfiler()
    with prof.phase("a"):
        pass
    prof.count("n")
    prof.reset()
    assert prof.stats == {}
    assert prof.counters == {}


def test_reset_with_open_phase_raises():
    prof = PhaseProfiler()
    prof.begin("open")
    with pytest.raises(RuntimeError):
        prof.reset()


def test_phase_reentry_accumulates_calls():
    clock = _FakeClock()
    prof = PhaseProfiler(clock=clock)
    for _ in range(3):
        with prof.phase("loop"):
            clock.advance(1.0)
    assert prof.stats["loop"].calls == 3
    assert prof.stats["loop"].exclusive_time == pytest.approx(3.0)


def test_exception_inside_phase_still_closes():
    prof = PhaseProfiler()
    with pytest.raises(ValueError):
        with prof.phase("risky"):
            raise ValueError("boom")
    # Phase closed: a new phase can open and reset works.
    prof.reset()


def test_report_contains_phases_and_counters():
    prof = PhaseProfiler()
    with prof.phase("alpha"):
        pass
    prof.count("widgets", 3)
    report = prof.report()
    assert "alpha" in report
    assert "widgets" in report


def test_total_time_sums_exclusive():
    clock = _FakeClock()
    prof = PhaseProfiler(clock=clock)
    with prof.phase("a"):
        clock.advance(1.0)
        with prof.phase("b"):
            clock.advance(2.0)
    assert prof.total_time() == pytest.approx(3.0)


def test_per_call_min_max_last_track_inclusive_durations():
    clock = _FakeClock()
    prof = PhaseProfiler(clock=clock)
    for dt in (2.0, 5.0, 3.0):
        with prof.phase("loop"):
            clock.advance(dt)
    st = prof.stats["loop"]
    assert st.min_time == pytest.approx(2.0)
    assert st.max_time == pytest.approx(5.0)
    assert st.last_time == pytest.approx(3.0)


def test_min_max_use_inclusive_not_exclusive_time():
    clock = _FakeClock()
    prof = PhaseProfiler(clock=clock)
    with prof.phase("outer"):
        clock.advance(1.0)
        with prof.phase("inner"):
            clock.advance(3.0)
    # The outer call lasted 4s inclusive even though only 1s is exclusive.
    assert prof.stats["outer"].min_time == pytest.approx(4.0)
    assert prof.stats["outer"].max_time == pytest.approx(4.0)
    assert prof.stats["outer"].last_time == pytest.approx(4.0)


def test_min_time_is_inf_before_any_call():
    from repro.harness.profiler import PhaseStats

    st = PhaseStats("fresh")
    assert st.min_time == float("inf")
    assert st.max_time == 0.0
    assert st.last_time == 0.0


def test_merge_combines_min_max_and_takes_others_last():
    clock = _FakeClock()
    a = PhaseProfiler(clock=clock)
    with a.phase("x"):
        clock.advance(4.0)
    b = PhaseProfiler(clock=clock)
    for dt in (1.0, 9.0):
        with b.phase("x"):
            clock.advance(dt)
    a.merge(b)
    st = a.stats["x"]
    assert st.min_time == pytest.approx(1.0)
    assert st.max_time == pytest.approx(9.0)
    assert st.last_time == pytest.approx(9.0)  # other ran most recently
    assert st.calls == 3


def test_merge_with_empty_other_keeps_last_time():
    clock = _FakeClock()
    a = PhaseProfiler(clock=clock)
    with a.phase("x"):
        clock.advance(2.0)
    b = PhaseProfiler(clock=clock)  # never ran phase "x"
    a.merge(b)
    assert a.stats["x"].last_time == pytest.approx(2.0)
    assert a.stats["x"].min_time == pytest.approx(2.0)


def test_fraction_on_profiler_that_never_ran():
    """A fresh profiler (no phases at all) reports 0.0, not an error."""
    prof = PhaseProfiler()
    assert prof.fraction("raycast") == 0.0


def test_fraction_with_zero_total_time():
    clock = _FakeClock()
    prof = PhaseProfiler(clock=clock)
    with prof.phase("instant"):
        pass  # clock never advances: total time is exactly zero
    assert prof.fraction("instant") == 0.0
    assert prof.fraction("other") == 0.0
