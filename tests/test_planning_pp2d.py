"""Tests for 2D path planning (04.pp2d)."""

import math

import numpy as np
import pytest

from repro.envs.mapgen import city_like, comparison_map
from repro.geometry.collision import footprint_points
from repro.geometry.grid2d import OccupancyGrid2D
from repro.harness.profiler import PhaseProfiler
from repro.planning.pp2d import (
    GridPlanningSpace2D,
    Pp2dConfig,
    Pp2dKernel,
    far_apart_free_cells,
    plan_2d,
)


@pytest.fixture
def open_grid():
    grid = OccupancyGrid2D.empty(30, 30)
    grid.fill_border(1)
    return grid


def test_plan_on_open_grid_is_near_straight(open_grid):
    result = plan_2d(open_grid, (5, 5), (25, 25),
                     robot_length=1.0, robot_width=1.0)
    assert result.found
    # Diagonal distance is 20 * sqrt(2) ~ 28.3.
    assert result.cost == pytest.approx(20 * math.sqrt(2), rel=0.1)


def test_path_endpoints_and_adjacency(open_grid):
    result = plan_2d(open_grid, (5, 5), (20, 10),
                     robot_length=1.0, robot_width=1.0)
    assert result.path[0] == (5, 5)
    assert result.path[-1] == (20, 10)
    for (r0, c0), (r1, c1) in zip(result.path[:-1], result.path[1:]):
        assert max(abs(r1 - r0), abs(c1 - c0)) == 1


def test_footprint_keeps_clearance():
    """A wide robot must not squeeze through a 1-cell gap."""
    grid = OccupancyGrid2D.empty(21, 21)
    grid.fill_border(1)
    grid.fill_rect(1, 10, 9, 10)
    grid.fill_rect(11, 10, 19, 10)  # wall with a 1-cell slit at row 10
    narrow = plan_2d(grid, (10, 3), (10, 17),
                     robot_length=0.8, robot_width=0.8)
    assert narrow.found  # a small robot fits through the slit
    wide = plan_2d(grid, (10, 3), (10, 17),
                   robot_length=4.0, robot_width=3.0)
    assert not wide.found  # the car cannot


def test_unreachable_goal(open_grid):
    open_grid.fill_rect(10, 0, 12, 29)  # full wall
    result = plan_2d(open_grid, (5, 5), (25, 25),
                     robot_length=1.0, robot_width=1.0)
    assert not result.found


def test_collision_phase_dominates_profiling():
    grid = city_like(rows=96, cols=96, seed=0)
    prof = PhaseProfiler()
    rng = np.random.default_rng(0)
    clearance = footprint_points(5.0, 5.0, 1.0)
    start, goal = far_apart_free_cells(grid, rng, clearance)
    result = plan_2d(grid, start, goal, profiler=prof)
    assert result.found
    assert prof.fraction("collision") > 0.5
    assert prof.counters["collision_cell_checks"] > 0


def test_heuristic_is_admissible_on_found_path(open_grid):
    space = GridPlanningSpace2D(open_grid, (25, 25), 1.0, 1.0)
    result = plan_2d(open_grid, (5, 5), (25, 25),
                     robot_length=1.0, robot_width=1.0)
    assert space.heuristic((5, 5)) <= result.cost + 1e-9


def test_weighted_plan_is_bounded_suboptimal():
    grid = comparison_map()
    optimal = plan_2d(grid, (10, 10), (50, 50),
                      robot_length=1.0, robot_width=1.0, epsilon=1.0)
    fast = plan_2d(grid, (10, 10), (50, 50),
                   robot_length=1.0, robot_width=1.0, epsilon=2.0)
    assert fast.found and optimal.found
    assert fast.cost <= 2.0 * optimal.cost + 1e-9
    assert fast.expansions <= optimal.expansions


def test_far_apart_free_cells_are_far():
    grid = city_like(rows=128, cols=128, seed=1)
    rng = np.random.default_rng(0)
    start, goal = far_apart_free_cells(grid, rng)
    assert not grid.cells[start]
    assert not grid.cells[goal]
    assert abs(start[0] - goal[0]) + abs(start[1] - goal[1]) > 100


def test_kernel_end_to_end_small():
    result = Pp2dKernel().run(Pp2dConfig(rows=96, cols=96))
    assert result.output.found
    assert result.output.cost > 0
    assert result.profiler.fraction("collision") > 0.5


def test_kernel_accepts_movingai_map_file(tmp_path):
    """A real MovingAI map drops in for the procedural city (paper's
    Boston_1_1024 methodology)."""
    from repro.envs.movingai import save_movingai

    grid = city_like(rows=96, cols=96, seed=3)
    map_path = tmp_path / "boston_small.map"
    save_movingai(grid, map_path)
    result = Pp2dKernel().run(Pp2dConfig(map_file=str(map_path), seed=3))
    assert result.output.found
    reference = Pp2dKernel().run(Pp2dConfig(rows=96, cols=96, seed=3))
    assert result.output.cost == pytest.approx(reference.output.cost)
