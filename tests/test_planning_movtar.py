"""Tests for moving-target planning (06.movtar)."""

import numpy as np
import pytest

from repro.envs.costmap import CostField, synthetic_costmap, target_trajectory
from repro.harness.profiler import PhaseProfiler
from repro.planning.moving_target import (
    MovingTargetPlanner,
    MovtarConfig,
    MovingTargetKernel,
    free_start_far_from,
)


def _uniform_field(rows=20, cols=20):
    return CostField(
        cost=np.ones((rows, cols)), obstacles=np.zeros((rows, cols), dtype=bool)
    )


def test_epsilon_validation():
    field = _uniform_field()
    traj = np.tile([10, 10], (5, 1))
    with pytest.raises(ValueError):
        MovingTargetPlanner(field, traj, epsilon=0.5)


def test_catches_stationary_target():
    field = _uniform_field()
    traj = np.tile([10, 10], (30, 1))
    planner = MovingTargetPlanner(field, traj, epsilon=1.0)
    result = planner.plan((10, 15))
    assert result.found
    final = result.path[-1]
    assert (final[0], final[1]) == (10, 10)
    assert final[2] == 5  # 5 diagonal-free steps along the row


def test_interception_is_at_target_position():
    field = _uniform_field(30, 30)
    # Target walks right along row 5 one cell per step.
    traj = np.array([[5, c] for c in range(2, 28)])
    planner = MovingTargetPlanner(field, traj, epsilon=1.0)
    result = planner.plan((25, 2))
    assert result.found
    r, c, t = result.path[-1]
    assert (r, c) == tuple(traj[t])


def test_path_respects_time_steps():
    field = _uniform_field()
    traj = np.array([[10, 10 + min(i, 8)] for i in range(20)])
    planner = MovingTargetPlanner(field, traj)
    result = planner.plan((2, 2))
    assert result.found
    times = [t for _, _, t in result.path]
    assert times == list(range(len(times)))  # one step per tick


def test_cost_terrain_shapes_route():
    """The planner pays less crossing cheap terrain than expensive."""
    rows, cols = 15, 15
    cost = np.ones((rows, cols))
    cost[5:10, :] = 50.0  # expensive band the robot should minimize time in
    field = CostField(cost=cost, obstacles=np.zeros((rows, cols), dtype=bool))
    traj = np.tile([14, 7], (40, 1))
    planner = MovingTargetPlanner(field, traj, epsilon=1.0)
    result = planner.plan((0, 7))
    assert result.found
    # Optimal play crosses the band by the shortest (vertical) route:
    # exactly 5 cells of the band.
    band_entries = sum(1 for r, c, _ in result.path if 5 <= r < 10)
    assert band_entries == 5


def test_unreachable_target():
    field = _uniform_field()
    field.obstacles[:, 10] = True  # full wall
    traj = np.tile([10, 15], (20, 1))
    planner = MovingTargetPlanner(field, traj)
    result = planner.plan((10, 2))
    assert not result.found


def test_heuristic_precompute_is_separately_profiled():
    field = synthetic_costmap(rows=32, cols=32, seed=0)
    traj = target_trajectory(field, 50, seed=0)
    prof = PhaseProfiler()
    planner = MovingTargetPlanner(field, traj, profiler=prof)
    planner.precompute_heuristic()
    assert "heuristic_precompute" in prof.stats
    rng = np.random.default_rng(1)
    start = free_start_far_from(field, tuple(traj[0]), rng)
    result = planner.plan(start)
    assert result.found
    assert "search" in prof.stats


def test_free_start_far_from_is_free_and_far():
    field = synthetic_costmap(rows=40, cols=40, seed=1)
    rng = np.random.default_rng(0)
    start = free_start_far_from(field, (5, 5), rng)
    assert not field.obstacles[start]
    assert abs(start[0] - 5) + abs(start[1] - 5) > 20


def test_kernel_end_to_end_small():
    result = MovingTargetKernel().run(
        MovtarConfig(rows=40, cols=40, horizon=96)
    )
    assert result.output.found
