"""Tests for the arm workspaces (Map-F / Map-C)."""

import numpy as np
import pytest

from repro.envs.arm_maps import default_arm, map_c, map_f


def test_map_f_has_no_obstacles():
    ws = map_f()
    assert ws.obstacles == []
    assert ws.name == "Map-F"


def test_map_c_is_cluttered():
    ws = map_c()
    assert len(ws.obstacles) >= 4
    assert ws.name == "Map-C"


def test_workspace_bounds():
    ws = map_f()
    assert ws.in_bounds(0.25, 0.25)
    assert not ws.in_bounds(-0.01, 0.25)
    assert not ws.in_bounds(0.25, ws.size + 0.01)


def test_default_arm_fits_workspace():
    ws = map_f()
    arm = default_arm()
    assert arm.dof == 5
    # Reach from the centered base never leaves the arena.
    assert arm.reach < ws.size / 2.0


def test_free_map_never_collides(rng):
    ws = map_f()
    arm = default_arm()
    for _ in range(100):
        q = arm.sample_configuration(rng)
        assert not ws.config_collides(arm, q)


def test_cluttered_map_sometimes_collides(rng):
    ws = map_c()
    arm = default_arm()
    outcomes = {
        ws.config_collides(arm, arm.sample_configuration(rng))
        for _ in range(200)
    }
    assert outcomes == {True, False}


def test_config_reaching_into_obstacle_collides():
    ws = map_c()
    arm = default_arm()
    rect = ws.obstacles[0]
    target = (
        (rect.xmin + rect.xmax) / 2.0,
        (rect.ymin + rect.ymax) / 2.0,
    )
    # Point the whole arm straight at the obstacle center.
    angle = np.arctan2(target[1] - ws.base[1], target[0] - ws.base[0])
    q = np.array([angle] + [0.0] * (arm.dof - 1))
    dist = np.hypot(target[0] - ws.base[0], target[1] - ws.base[1])
    if dist <= arm.reach:
        assert ws.config_collides(arm, q)


def test_edge_collides_detects_sweep_through_obstacle(rng):
    ws = map_c()
    arm = default_arm()
    # Straight arm sweeping a half-circle must pass through some obstacle.
    q0 = np.zeros(arm.dof)
    q1 = np.array([np.pi] + [0.0] * (arm.dof - 1))
    collides_somewhere = ws.edge_collides(arm, q0, q1, step=0.02)
    # The sweep covers the full disk of radius `reach`; Map-C has
    # obstacles within that disk, so the sweep must hit one.
    assert collides_somewhere


def test_edge_collides_free_in_map_f(rng):
    ws = map_f()
    arm = default_arm()
    q0 = arm.sample_configuration(rng)
    q1 = arm.sample_configuration(rng)
    assert not ws.edge_collides(arm, q0, q1)


def test_edge_collides_counts(rng):
    ws = map_c()
    arm = default_arm()
    counts = {}
    ws.edge_collides(
        arm, np.zeros(5), np.full(5, 0.5),
        count=lambda n, k: counts.__setitem__(n, counts.get(n, 0) + k),
    )
    assert counts.get("segment_obstacle_tests", 0) > 0
