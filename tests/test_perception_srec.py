"""Tests for scene reconstruction (03.srec)."""

import numpy as np
import pytest

from repro.envs.pointcloud import living_room, scan_trajectory
from repro.perception.scene_recon import (
    SceneReconstruction,
    SrecConfig,
    SrecKernel,
    make_srec_workload,
)


def test_validation():
    with pytest.raises(ValueError):
        SceneReconstruction(fusion_voxel=0.0)


def test_first_scan_defines_world_frame():
    recon = SceneReconstruction()
    points = np.random.default_rng(0).normal(size=(100, 3))
    pose = recon.integrate(points)
    assert np.allclose(pose.translation, 0.0)
    assert recon.n_points > 0


def test_fusion_deduplicates_voxels():
    recon = SceneReconstruction(fusion_voxel=1.0)
    points = np.array([[0.1, 0.1, 0.1], [0.2, 0.2, 0.2], [5.0, 5.0, 5.0]])
    recon.integrate(points)
    assert recon.n_points == 2  # first two share a voxel


def test_model_grows_with_coverage_not_frames():
    """Re-scanning the SAME surface must not balloon the model.

    Every frame observes the full scene (n_points == scene size) from the
    same pose with no sensor noise, so after the first frame the fused
    voxel set is saturated.  (With noise, points lying exactly on the
    scene's axis-aligned surfaces straddle voxel boundaries and duplicate
    — a real fusion property, but not what this test checks.)
    """
    scene = living_room(2000, seed=0)
    scans = scan_trajectory(scene, n_frames=3, max_rotation=0.0,
                            max_translation=0.0, n_points=len(scene),
                            noise_sigma=0.0, seed=0)
    recon = SceneReconstruction(icp_iterations=8)
    sizes = []
    for scan in scans:
        recon.integrate(scan.points)
        sizes.append(recon.n_points)
    # Later frames of the same surface add little (< 20% growth).
    assert sizes[-1] < sizes[0] * 1.2


def test_registration_tracks_camera_motion():
    workload = make_srec_workload(n_frames=4, scene_points=5000,
                                  scan_points=1200, seed=0)
    recon = SceneReconstruction(icp_iterations=12)
    errors = []
    for scan in workload.scans:
        estimated = recon.integrate(scan.points)
        errors.append(
            float(np.linalg.norm(estimated.translation
                                 - scan.true_pose.translation))
        )
    assert errors[-1] < 0.1


def test_empty_model_points():
    recon = SceneReconstruction()
    assert recon.model_points().shape == (0, 3)


def test_kernel_run_correspondence_dominates():
    result = SrecKernel().run(
        SrecConfig(frames=3, scan_points=800, scene_points=4000,
                   icp_iterations=8)
    )
    prof = result.profiler
    assert prof.fraction("correspondence") > 0.5
    assert result.output["final_pose_error"] < 0.15
    assert result.output["model_points"] > 500
