"""Tests for the Gaussian process and Bayesian optimization (16.bo)."""

import numpy as np
import pytest

from repro.control.bayesopt import BayesianOptimizer, BoConfig, BoKernel
from repro.control.gp import GaussianProcess, rbf_kernel
from repro.harness.profiler import PhaseProfiler
from repro.robots.ball_thrower import BallThrower


# -- GP ------------------------------------------------------------------------


def test_gp_validation():
    with pytest.raises(ValueError):
        GaussianProcess(length_scale=0.0)
    gp = GaussianProcess()
    with pytest.raises(RuntimeError):
        gp.predict(np.zeros((1, 1)))
    with pytest.raises(ValueError):
        gp.fit(np.zeros((3, 1)), np.zeros(2))


def test_rbf_kernel_properties(rng):
    x = rng.normal(size=(10, 2))
    k = rbf_kernel(x, x, length_scale=1.0, signal_var=2.0)
    assert np.allclose(np.diag(k), 2.0)
    assert np.allclose(k, k.T)
    eigvals = np.linalg.eigvalsh(k)
    assert eigvals.min() > -1e-9  # positive semidefinite


def test_gp_interpolates_training_points(rng):
    x = np.linspace(0, 1, 8)[:, None]
    y = np.sin(4 * x).ravel()
    gp = GaussianProcess(length_scale=0.3, noise_var=1e-8)
    gp.fit(x, y)
    mean, var = gp.predict(x)
    assert np.allclose(mean, y, atol=1e-3)
    assert (var < 1e-3).all()


def test_gp_uncertainty_grows_away_from_data():
    x = np.array([[0.0], [0.1]])
    gp = GaussianProcess(length_scale=0.1)
    gp.fit(x, np.array([1.0, 1.1]))
    _, var_near = gp.predict(np.array([[0.05]]))
    _, var_far = gp.predict(np.array([[3.0]]))
    assert var_far[0] > var_near[0]


def test_gp_prediction_quality(rng):
    x = rng.uniform(0, 1, size=(40, 1))
    y = np.cos(3 * x).ravel() + rng.normal(0, 0.01, 40)
    gp = GaussianProcess(length_scale=0.3, noise_var=1e-3)
    gp.fit(x, y)
    xq = np.linspace(0.1, 0.9, 20)[:, None]
    mean, _ = gp.predict(xq)
    assert np.max(np.abs(mean - np.cos(3 * xq).ravel())) < 0.1


def test_gp_ucb_exceeds_mean():
    gp = GaussianProcess()
    gp.fit(np.array([[0.0]]), np.array([1.0]))
    xq = np.array([[0.5]])
    mean, _ = gp.predict(xq)
    assert gp.ucb(xq, beta=2.0)[0] > mean[0]


# -- BO -------------------------------------------------------------------------


def test_bo_validation():
    with pytest.raises(ValueError):
        BayesianOptimizer(lambda x: 0.0, np.zeros((2, 3)))


def test_bo_optimizes_quadratic():
    target = np.array([0.3, -0.6])
    bounds = np.array([[-2.0, 2.0], [-2.0, 2.0]])

    def reward(x):
        return -float(np.sum((x - target) ** 2))

    bo = BayesianOptimizer(reward, bounds, n_candidates=256,
                           rng=np.random.default_rng(0))
    best_x, best_y = bo.optimize(n_iterations=25)
    assert best_y > -0.1
    assert np.allclose(best_x, target, atol=0.4)


def test_bo_beats_random_search_on_average():
    """BO is data-efficient: with a matched trial budget it beats random
    search on average across seeds (any single seed can get lucky)."""
    thrower = BallThrower()
    bounds = thrower.parameter_bounds
    budget = 25
    random_scores, bo_scores = [], []
    for seed in range(5):
        rng = np.random.default_rng(seed)
        random_scores.append(max(
            thrower.reward(rng.uniform(bounds[:, 0], bounds[:, 1]))
            for _ in range(budget)
        ))
        bo = BayesianOptimizer(thrower.reward, bounds,
                               rng=np.random.default_rng(seed))
        _, best = bo.optimize(n_iterations=budget)
        bo_scores.append(best)
    assert np.mean(bo_scores) >= np.mean(random_scores)


def test_bo_observation_bookkeeping():
    bo = BayesianOptimizer(lambda x: float(x[0]), np.array([[0.0, 1.0]]),
                           rng=np.random.default_rng(1))
    bo.optimize(n_iterations=10)
    assert len(bo.observed_x) == 10
    assert len(bo.reward_history) == 10


def test_bo_profiler_phases():
    prof = PhaseProfiler()
    thrower = BallThrower()
    bo = BayesianOptimizer(thrower.reward, thrower.parameter_bounds,
                           rng=np.random.default_rng(2), profiler=prof)
    bo.optimize(n_iterations=8)
    for phase in ("gp_fit", "acquisition", "sort", "rollout"):
        assert phase in prof.stats
    assert prof.counters["gp_fits"] == 8 - bo.n_initial


def test_kernel_f19_learning_curve():
    """F19: 45 iterations; best reward is close to a perfect throw."""
    result = BoKernel().run(BoConfig())
    out = result.output
    assert len(out["reward_history"]) == 45
    assert out["best_reward"] > -0.3
    assert max(out["reward_history"]) > out["reward_history"][0]


def test_bo_more_compute_than_cem():
    """E16: bo is the heavier kernel and its sort moves more metadata."""
    from repro.harness.runner import run_kernel

    cem = run_kernel("cem", seed=0)
    bo = run_kernel("bo", seed=0)
    assert bo.roi_time > cem.roi_time
    assert (
        bo.profiler.counters["sort_elements"]
        > 6 * cem.profiler.counters["sort_elements"]
    )
