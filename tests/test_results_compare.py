"""Record-vs-record comparison: deltas, tolerance, direction, rendering."""

from __future__ import annotations

import math

from repro.results import (
    EnvironmentFingerprint,
    Measurement,
    RunRecord,
    compare_records,
)
from repro.results.compare import render_comparison


def _record(values, kind="bench", env=None, **measurement_kwargs):
    measurements = {}
    for name, spec in values.items():
        if isinstance(spec, Measurement):
            measurements[name] = spec
        else:
            measurements[name] = Measurement(
                spec, "ratio", measurement_kwargs.get("higher_is_better", True)
            )
    return RunRecord(
        kind=kind,
        measurements=measurements,
        environment=env or EnvironmentFingerprint.unknown(),
    )


def _one(comparison, name):
    return next(d for d in comparison.deltas if d.name == name)


def test_identical_records_have_no_movement():
    a = _record({"raycast.speedup": 6.0})
    comparison = compare_records(a, _record({"raycast.speedup": 6.0}))
    delta = _one(comparison, "raycast.speedup")
    assert delta.within_tolerance and not delta.regression
    assert comparison.regressions() == []


def test_tolerance_boundary_is_inclusive():
    a = _record({"m": 100.0})
    exactly = compare_records(a, _record({"m": 95.0}), tolerance=0.05)
    assert _one(exactly, "m").within_tolerance
    beyond = compare_records(a, _record({"m": 94.9}), tolerance=0.05)
    delta = _one(beyond, "m")
    assert not delta.within_tolerance
    assert delta.regression  # higher_is_better dropped beyond tolerance


def test_improvement_beyond_tolerance_is_not_a_regression():
    a = _record({"m": 100.0})
    comparison = compare_records(a, _record({"m": 150.0}), tolerance=0.05)
    delta = _one(comparison, "m")
    assert not delta.within_tolerance and not delta.regression


def test_lower_is_better_direction():
    a = _record({"t": Measurement(1.0, "s", False)})
    slower = compare_records(
        a, _record({"t": Measurement(2.0, "s", False)}), tolerance=0.05
    )
    assert _one(slower, "t").regression
    faster = compare_records(
        a, _record({"t": Measurement(0.5, "s", False)}), tolerance=0.05
    )
    assert not _one(faster, "t").regression


def test_direction_free_metrics_never_regress():
    a = _record({"ops": Measurement(100.0, "count", None)})
    comparison = compare_records(
        a, _record({"ops": Measurement(50.0, "count", None)})
    )
    delta = _one(comparison, "ops")
    assert not delta.within_tolerance and not delta.regression


def test_zero_baseline_requires_exact_match():
    a = _record({"m": 0.0})
    same = compare_records(a, _record({"m": 0.0}))
    assert _one(same, "m").within_tolerance
    assert _one(same, "m").rel_delta is None
    moved = compare_records(a, _record({"m": 0.1}))
    assert not _one(moved, "m").within_tolerance


def test_nan_handling():
    nan = float("nan")
    a = _record({"m": nan})
    both = compare_records(a, _record({"m": nan}))
    assert _one(both, "m").within_tolerance
    one_sided = compare_records(_record({"m": 1.0}), _record({"m": nan}))
    delta = _one(one_sided, "m")
    assert not delta.within_tolerance and delta.regression
    assert math.isnan(delta.b)


def test_disjoint_metrics_are_reported_not_compared():
    a = _record({"raycast.speedup": 6.0, "old.metric": 1.0})
    b = _record({"raycast.speedup": 6.0, "new.metric": 1.0})
    comparison = compare_records(a, b)
    assert [d.name for d in comparison.deltas] == ["raycast.speedup"]
    assert comparison.only_in_a == ["old.metric"]
    assert comparison.only_in_b == ["new.metric"]


def test_metrics_glob_restricts_comparison():
    a = _record({"raycast.speedup": 6.0, "raycast.reference_s": 1.0})
    b = _record({"raycast.speedup": 5.0, "raycast.reference_s": 2.0})
    comparison = compare_records(a, b, metrics="*.speedup")
    assert [d.name for d in comparison.deltas] == ["raycast.speedup"]
    assert comparison.only_in_a == []


def test_environment_differences_surface():
    a = _record({"m": 1.0}, env=EnvironmentFingerprint(python="3.11"))
    b = _record({"m": 1.0}, env=EnvironmentFingerprint(python="3.12"))
    comparison = compare_records(a, b)
    assert comparison.environment_differences == ["python"]


def test_render_comparison_labels_regressions():
    a = _record({"raycast.speedup": 6.0})
    b = _record({"raycast.speedup": 3.0})
    text = render_comparison(compare_records(a, b))
    assert "raycast.speedup" in text
    assert "REGRESSED" in text
    assert "1 regressions" in text
