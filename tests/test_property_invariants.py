"""Cross-cutting property tests on core data-structure invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.envs.movingai import parse_movingai, save_movingai
from repro.geometry.grid2d import OccupancyGrid2D
from repro.geometry.kdtree import KDTree


grids = st.builds(
    lambda rows, cols, seed, density: _random_grid(rows, cols, seed, density),
    st.integers(4, 24),
    st.integers(4, 24),
    st.integers(0, 100),
    st.floats(0.0, 0.5),
)


def _random_grid(rows, cols, seed, density):
    rng = np.random.default_rng(seed)
    return OccupancyGrid2D(rng.random((rows, cols)) < density)


@settings(max_examples=40, deadline=None)
@given(grids, st.floats(0.0, 3.0))
def test_inflate_is_monotone_and_superset(grid, radius):
    """Inflation never frees a cell, and more radius never frees more."""
    inflated = grid.inflate(radius)
    assert (inflated.cells | grid.cells == inflated.cells).all()
    bigger = grid.inflate(radius + 1.0)
    assert (bigger.cells | inflated.cells == bigger.cells).all()


@settings(max_examples=30, deadline=None)
@given(grids)
def test_inflate_zero_identity(grid):
    assert np.array_equal(grid.inflate(0.0).cells, grid.cells)


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(st.floats(-5, 5, allow_nan=False),
                  st.floats(-5, 5, allow_nan=False)),
        min_size=1, max_size=40,
    ),
    st.tuples(st.floats(-6, 6), st.floats(-6, 6)),
)
def test_kdtree_build_and_incremental_agree(points, query):
    """Balanced build and incremental insertion answer queries identically."""
    arr = np.asarray(points)
    built = KDTree.build(arr)
    incremental = KDTree(2)
    for i, p in enumerate(points):
        incremental.insert(p, i)
    _, _, d_built = built.nearest(query)
    _, _, d_incr = incremental.nearest(query)
    assert d_built == pytest.approx(d_incr, abs=1e-9)


@settings(max_examples=25, deadline=None)
@given(grids)
def test_movingai_round_trip_property(grid):
    """Any grid survives a save/parse round trip bit-exactly."""
    import tempfile
    from pathlib import Path

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "grid.map"
        save_movingai(grid, path)
        loaded = parse_movingai(path.read_text())
    assert np.array_equal(loaded.cells, grid.cells)


@settings(max_examples=25, deadline=None)
@given(grids, st.integers(0, 10_000))
def test_sample_free_point_property(grid, seed):
    """Sampled free points are always genuinely free (when any exist)."""
    rng = np.random.default_rng(seed)
    if grid.cells.all():
        with pytest.raises(ValueError):
            grid.sample_free_point(rng)
        return
    x, y = grid.sample_free_point(rng)
    assert not grid.is_occupied_world(x, y)
