"""Tests for the symbolic planner and both paper domains."""

import pytest

from repro.harness.profiler import PhaseProfiler
from repro.planning.symbolic.domains import blocks_world, firefighter
from repro.planning.symbolic.planner import (
    SymbolicPlanner,
    SymbolicProblem,
    execute_plan,
)


def test_blocks_world_plan_is_valid():
    problem = blocks_world(n_blocks=3)
    result = SymbolicPlanner(problem).plan()
    assert result.found
    final = execute_plan(problem, result.plan)
    assert problem.goal <= final


def test_blocks_world_reverse_optimal_length():
    """Reversing an n-stack needs exactly n moves.

    Unstack the top block to the table, then restack each freed block
    onto the growing reversed pile: one move per block.
    """
    for n in (2, 3, 4, 5):
        problem = blocks_world(n_blocks=n)
        result = SymbolicPlanner(problem).plan()
        assert result.found
        assert len(result.plan) == n, f"n={n}: {result.plan}"


def test_blocks_world_spread_goal():
    problem = blocks_world(n_blocks=4, goal="spread")
    result = SymbolicPlanner(problem).plan()
    assert result.found
    # Unstacking 4 blocks (3 above the base) takes 3 moves.
    assert len(result.plan) == 3


def test_blocks_world_validation():
    with pytest.raises(ValueError):
        blocks_world(n_blocks=1)
    with pytest.raises(ValueError):
        blocks_world(goal="impossible-preset")


def test_firefighter_plan_reaches_ext_three():
    problem = firefighter()
    result = SymbolicPlanner(problem).plan()
    assert result.found
    final = execute_plan(problem, result.plan)
    assert "ExtThree(F)" in final


def test_firefighter_plan_pours_three_times():
    problem = firefighter()
    result = SymbolicPlanner(problem).plan()
    pours = [a for a in result.plan if a.startswith("PourWater")]
    assert len(pours) == 3
    fills = [a for a in result.plan if a.startswith("FillWater")]
    assert len(fills) == 3  # tank starts empty, each pour drains it


def test_firefighter_branching_exceeds_blocks_world():
    """E11: the firefighter domain has ~3x the branching (paper: ~3.2x)."""
    blkw = SymbolicPlanner(blocks_world(n_blocks=5)).plan()
    fext = SymbolicPlanner(firefighter()).plan()
    assert fext.mean_branching > 2.0 * blkw.mean_branching


def test_unsolvable_problem_reports_not_found():
    problem = blocks_world(n_blocks=3)
    impossible = SymbolicProblem(
        initial_state=problem.initial_state,
        goal=frozenset({"On(A,Mars)"}),
        actions=problem.actions,
    )
    result = SymbolicPlanner(impossible).plan()
    assert not result.found
    assert result.expansions > 0


def test_execute_plan_rejects_bogus_steps():
    problem = blocks_world(n_blocks=3)
    with pytest.raises(KeyError):
        execute_plan(problem, ["Teleport(A)"])
    # An action that exists but is inapplicable in the initial state.
    inapplicable = next(
        a.name for a in problem.actions
        if not a.applicable(problem.initial_state)
    )
    with pytest.raises(ValueError, match="not applicable"):
        execute_plan(problem, [inapplicable])


def test_planner_profiles_string_ops():
    prof = PhaseProfiler()
    SymbolicPlanner(blocks_world(n_blocks=4), profiler=prof).plan()
    assert "string_ops" in prof.stats
    assert "search" in prof.stats
    assert prof.counters.get("applicability_checks", 0) > 0


def test_goal_count_heuristic_prunes_search():
    problem = blocks_world(n_blocks=5)
    informed = SymbolicPlanner(problem, epsilon=1.0).plan()
    greedy = SymbolicPlanner(problem, epsilon=3.0).plan()
    assert informed.found and greedy.found
    assert greedy.expansions <= informed.expansions


def test_firefighter_validation():
    with pytest.raises(ValueError):
        firefighter(n_locations=1)
